#!/usr/bin/env bash
# Full local gate: formatting, lints, tests, the repo linter, and the
# bounded model checker. Everything runs offline against the committed
# tree; any failure fails the script.
#
#   ./ci/check.sh          # full gate (release-mode model check)
#   QUICK=1 ./ci/check.sh  # smaller model-check sweep for fast iteration
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n== %s ==\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo clippy (deny warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

step "cargo test"
cargo test --offline --workspace -q

step "cargo test (audit feature: invariants after every transition)"
cargo test --offline -q -p convgpu-scheduler --features audit

step "observability suite (golden trace + live exposition)"
cargo test --offline -q --test observability

step "chrome-trace artifact export"
artifact="$(mktemp -d)/convgpu-trace.json"
cargo run --offline -q --release --bin convgpu-cli -- trace --out="$artifact"
# `convgpu-cli trace` already refuses to write invalid JSON; assert the
# artifact landed, is non-empty, and contains trace events.
[[ -s "$artifact" ]] || { echo "trace artifact missing or empty: $artifact"; exit 1; }
grep -q '"ph"' "$artifact" || { echo "trace artifact has no events: $artifact"; exit 1; }
rm -rf "$(dirname "$artifact")"

step "convgpu-lint"
cargo run --offline -q --bin convgpu-lint

step "bounded model check"
if [[ "${QUICK:-0}" == "1" ]]; then
  cargo run --offline -q --release -p convgpu-audit --bin convgpu-audit -- --quick
else
  cargo run --offline -q --release -p convgpu-audit --bin convgpu-audit
fi

printf '\nAll checks passed.\n'
