#!/usr/bin/env bash
# Full local gate: formatting, lints, tests, the repo linter, and the
# bounded model checker. Everything runs offline against the committed
# tree; any failure fails the script.
#
#   ./ci/check.sh          # full gate (release-mode model check)
#   QUICK=1 ./ci/check.sh  # smaller model-check sweep for fast iteration
#
# Knobs:
#   SKIP_PERF=1     skip the loadgen campaigns + perf-trend gate
#                   (e.g. on loaded machines)
#   ARTIFACT_DIR=d  keep artifacts (chrome trace, BENCH_3.json,
#                   BENCH_4.json, BENCH_7.json, BENCH_8.json,
#                   BENCH_9.json, lint-findings.txt) under d
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n== %s ==\n' "$*"; }

# Artifacts land here; temporary unless the caller asked to keep them.
if [[ -n "${ARTIFACT_DIR:-}" ]]; then
  keep_artifacts=1
  mkdir -p "$ARTIFACT_DIR"
else
  keep_artifacts=0
  ARTIFACT_DIR="$(mktemp -d)"
fi

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo clippy (deny warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

step "cargo build (RUSTFLAGS=-Dwarnings)"
RUSTFLAGS="-D warnings" cargo build --offline --workspace --all-targets

step "cargo test"
cargo test --offline --workspace -q

step "cargo test (audit feature: invariants after every transition)"
cargo test --offline -q -p convgpu-scheduler --features audit

step "observability suite (golden trace + live exposition)"
cargo test --offline -q --test observability

step "chrome-trace artifact export"
artifact="$ARTIFACT_DIR/convgpu-trace.json"
cargo run --offline -q --release --bin convgpu-cli -- trace --out="$artifact"
# `convgpu-cli trace` already refuses to write invalid JSON; assert the
# artifact landed, is non-empty, and contains trace events.
[[ -s "$artifact" ]] || { echo "trace artifact missing or empty: $artifact"; exit 1; }
grep -q '"ph"' "$artifact" || { echo "trace artifact has no events: $artifact"; exit 1; }

step "convgpu-lint (workspace analyzer, docs/LINT.md)"
# Hard gate: any finding exits non-zero. The findings (or the clean
# summary line) land in the artifact dir for CI upload; pipefail keeps
# the lint exit code authoritative through the tee.
cargo run --offline -q --bin convgpu-lint | tee "$ARTIFACT_DIR/lint-findings.txt"

step "cluster battery (router acceptance + node-death fault injection)"
# Real per-node socket servers behind the cluster router: golden routed
# trace, ticket canonicality (native and post-migration), both codecs
# surviving a node killed mid-run, and the cluster_faults +
# migration_faults halves of the fault-injection suite (drain racing a
# parked suspension, double node death, the kill-mid-storm acceptance
# scenario asserted over the wire).
cargo test --offline -q --test cluster_router
cargo test --offline -q --test failure_injection cluster_faults
cargo test --offline -q --test failure_injection migration_faults

step "journal battery (restart recovery + truncated-tail fixture)"
# Durable router state (docs/CLUSTER.md, "Durability & restart"): the
# kill -9 mid-storm acceptance scenario (restarted router migrates with
# pre-restart checkpoints), byte-level replay-prefix equivalence, a
# small randomized kill-point campaign (nightly runs the big one), and
# the checked-in truncated-tail corruption fixture.
cargo test --offline -q --test journal_recovery

step "transport matrix (same batteries over TCP loopback)"
# Every socket the wire tests bind is transport-parameterized
# (CONVGPU_TRANSPORT=tcp swaps unix:/path for tcp:127.0.0.1:0): the
# protocol round-trip + hostile-client battery and the full cluster
# battery rerun over real TCP connections, asserting byte-identical
# canonical traces and ticket bit-equality against the same goldens the
# UNIX runs above used.
CONVGPU_TRANSPORT=tcp cargo test --offline -q --test protocol_roundtrip
CONVGPU_TRANSPORT=tcp cargo test --offline -q --test cluster_router
CONVGPU_TRANSPORT=tcp cargo test --offline -q --test failure_injection cluster_faults
CONVGPU_TRANSPORT=tcp cargo test --offline -q --test failure_injection migration_faults
CONVGPU_TRANSPORT=tcp cargo test --offline -q --test journal_recovery

step "bounded model check (single-GPU + multi-GPU + cluster universes)"
# Phase 3 of the binary exhaustively checks the 2-device x 3-container
# multi-GPU universe for every policy x placement combination; phase 4
# does the same for the 2-node cluster universe across every Swarm
# strategy.
if [[ "${QUICK:-0}" == "1" ]]; then
  cargo run --offline -q --release -p convgpu-audit --bin convgpu-audit -- --quick
else
  cargo run --offline -q --release -p convgpu-audit --bin convgpu-audit
fi

# The four loadgen campaigns only *produce* artifacts here; the single
# "perf trend" step below diffs all of them against ci/perf_baseline.json
# in one place and is the only perf pass/fail authority.
quick_flag=()
if [[ "${QUICK:-0}" == "1" ]]; then
  quick_flag=(--quick)
fi

step "perf campaign (loadgen -> BENCH_3.json)"
if [[ "${SKIP_PERF:-0}" == "1" ]]; then
  echo "skipped (SKIP_PERF=1)"
else
  cargo run --offline -q --release -p convgpu-bench --bin loadgen -- \
    --out="$ARTIFACT_DIR/BENCH_3.json" "${quick_flag[@]}"
fi

step "perf campaign (sharded loadgen -> BENCH_4.json)"
if [[ "${SKIP_PERF:-0}" == "1" ]]; then
  echo "skipped (SKIP_PERF=1)"
else
  # Same storm against the multi-GPU service, swept over all three
  # placement policies.
  cargo run --offline -q --release -p convgpu-bench --bin loadgen -- \
    --sharded --out="$ARTIFACT_DIR/BENCH_4.json" "${quick_flag[@]}"
fi

step "routed cluster campaign (multi-socket loadgen -> BENCH_7.json)"
if [[ "${SKIP_PERF:-0}" == "1" ]]; then
  echo "skipped (SKIP_PERF=1)"
else
  # Real node servers behind the router, all three Swarm strategies.
  # The run itself asserts zero timeouts/failovers on a healthy cluster;
  # the artifact records per-strategy throughput and placement.
  cargo run --offline -q --release -p convgpu-bench --bin loadgen -- \
    --cluster --out="$ARTIFACT_DIR/BENCH_7.json" "${quick_flag[@]}"
fi

step "migration fault campaign (kill-node loadgen -> BENCH_8.json)"
if [[ "${SKIP_PERF:-0}" == "1" ]]; then
  echo "skipped (SKIP_PERF=1)"
else
  # The cluster storm with one node shut down mid-run: asserts the
  # victim is marked down, its containers drain onto the survivor, and
  # the survivor ends the run clean; records steady vs recovery
  # admission percentiles.
  cargo run --offline -q --release -p convgpu-bench --bin loadgen -- \
    --migration --out="$ARTIFACT_DIR/BENCH_8.json" "${quick_flag[@]}"
fi

step "transport compare campaign (unix vs tcp loadgen -> BENCH_9.json)"
if [[ "${SKIP_PERF:-0}" == "1" ]]; then
  echo "skipped (SKIP_PERF=1)"
else
  # The same storm over a UNIX socket and TCP loopback back to back; the
  # artifact's transport_tcp_vs_unix_ratio keeps the TCP backend honest
  # relative to the UNIX path (gated by the perf-trend step below).
  # Always standard scale, even under QUICK=1: the smoke storm is too
  # short to amortize TCP connection setup and the ratio collapses into
  # noise, while the full campaign costs only a couple of seconds.
  cargo run --offline -q --release -p convgpu-bench --bin loadgen -- \
    --transport-compare --out="$ARTIFACT_DIR/BENCH_9.json"
fi

step "perf trend (all campaigns vs ci/perf_baseline.json)"
if [[ "${SKIP_PERF:-0}" == "1" ]]; then
  echo "skipped (SKIP_PERF=1)"
else
  # One delta table over every artifact; fails below 80% of any
  # baseline metric, and on a baseline metric with no artifact. Also
  # appends the table to $GITHUB_STEP_SUMMARY on Actions.
  cargo run --offline -q --release -p convgpu-bench --bin perf_trend -- \
    --baseline=ci/perf_baseline.json \
    "$ARTIFACT_DIR/BENCH_3.json" "$ARTIFACT_DIR/BENCH_4.json" \
    "$ARTIFACT_DIR/BENCH_7.json" "$ARTIFACT_DIR/BENCH_8.json" \
    "$ARTIFACT_DIR/BENCH_9.json"
fi

if [[ "$keep_artifacts" == "1" ]]; then
  echo
  echo "artifacts kept in $ARTIFACT_DIR:"
  ls -l "$ARTIFACT_DIR"
else
  rm -rf "$ARTIFACT_DIR"
fi

printf '\nAll checks passed.\n'
