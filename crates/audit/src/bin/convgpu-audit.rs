//! Exhaustive audit runner.
//!
//! Sweeps the bounded model checker over every policy on the standard
//! quantized configurations (positive proof: no invariant violation, no
//! §III-E stall, no lost wakeup on any interleaving), sweeps the
//! multi-GPU universe over every policy × placement-policy combination,
//! sweeps the cluster universe over every policy × Swarm-strategy
//! combination, sweeps the **migration** universe (cluster lifecycles
//! crossed with every node-death point) over the same combinations, then
//! prints the naive baseline's minimal deadlock trace (negative
//! witness).
//!
//! ```text
//! convgpu-audit [--policy fifo|bf|ru|rand|all] [--mode dfs|bfs]
//!               [--max-states N] [--seed N] [--quick]
//!               [--skip-ctx] [--skip-multi] [--skip-cluster]
//!               [--skip-migration] [--skip-naive]
//! ```
//!
//! Exits non-zero on any failure — `ci/check.sh` runs it as a gate.

use convgpu_audit::cluster::{self, ClusterModelConfig};
use convgpu_audit::migration::{self, MigrationOutcome};
use convgpu_audit::model::{explore, CheckOutcome, ModelConfig, SearchMode};
use convgpu_audit::multi::{self, MultiModelConfig};
use convgpu_audit::naive::{find_deadlock, NaiveConfig};
use convgpu_scheduler::cluster::SwarmStrategy;
use convgpu_scheduler::{PlacementPolicy, PolicyKind};
use std::process::ExitCode;

struct Options {
    policies: Vec<PolicyKind>,
    mode: SearchMode,
    max_states: Option<usize>,
    seed: Option<u64>,
    quick: bool,
    skip_ctx: bool,
    skip_multi: bool,
    skip_cluster: bool,
    skip_migration: bool,
    skip_naive: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: convgpu-audit [--policy fifo|bf|ru|rand|all] [--mode dfs|bfs]\n\
         \x20                    [--max-states N] [--seed N] [--quick]\n\
         \x20                    [--skip-ctx] [--skip-multi] [--skip-cluster]\n\
         \x20                    [--skip-migration] [--skip-naive]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        policies: PolicyKind::ALL.to_vec(),
        mode: SearchMode::Dfs,
        max_states: None,
        seed: None,
        quick: false,
        skip_ctx: false,
        skip_multi: false,
        skip_cluster: false,
        skip_migration: false,
        skip_naive: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--policy" => {
                opts.policies = match value("--policy").as_str() {
                    "fifo" => vec![PolicyKind::Fifo],
                    "bf" | "bestfit" => vec![PolicyKind::BestFit],
                    "ru" | "recentuse" => vec![PolicyKind::RecentUse],
                    "rand" | "random" => vec![PolicyKind::Random],
                    "all" => PolicyKind::ALL.to_vec(),
                    other => {
                        eprintln!("unknown policy '{other}'");
                        usage()
                    }
                };
            }
            "--mode" => {
                opts.mode = match value("--mode").as_str() {
                    "dfs" => SearchMode::Dfs,
                    "bfs" => SearchMode::Bfs,
                    other => {
                        eprintln!("unknown mode '{other}'");
                        usage()
                    }
                };
            }
            "--max-states" => {
                opts.max_states = Some(value("--max-states").parse().unwrap_or_else(|_| usage()));
            }
            "--seed" => {
                opts.seed = Some(value("--seed").parse().unwrap_or_else(|_| usage()));
            }
            "--quick" => opts.quick = true,
            "--skip-ctx" => opts.skip_ctx = true,
            "--skip-multi" => opts.skip_multi = true,
            "--skip-cluster" => opts.skip_cluster = true,
            "--skip-migration" => opts.skip_migration = true,
            "--skip-naive" => opts.skip_naive = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument '{other}'");
                usage()
            }
        }
    }
    opts
}

fn customize(mut cfg: ModelConfig, opts: &Options) -> ModelConfig {
    cfg.mode = opts.mode;
    if let Some(m) = opts.max_states {
        cfg.max_states = m;
    }
    if let Some(s) = opts.seed {
        cfg.seed = s;
    }
    if opts.quick {
        cfg.max_allocs = cfg.max_allocs.min(1);
    }
    cfg
}

/// Run one configuration for one policy; returns whether it passed.
fn run_one(label: &str, cfg: &ModelConfig) -> bool {
    let started = std::time::Instant::now();
    let outcome = explore(cfg);
    let elapsed = started.elapsed();
    match outcome {
        CheckOutcome::Pass(stats) => {
            println!(
                "  PASS {label:<24} {:>8} states {:>9} transitions  depth {:>2}  \
                 {} terminal, {} suspended  ({:.2?})",
                stats.states,
                stats.transitions,
                stats.max_depth,
                stats.terminals,
                stats.suspended_states,
                elapsed
            );
            true
        }
        CheckOutcome::Fail {
            failure,
            trace,
            stats,
        } => {
            println!("  FAIL {label}: {failure}");
            println!(
                "       after {} states, {} transitions",
                stats.states, stats.transitions
            );
            println!("       counterexample ({} events):", trace.len());
            for (i, ev) in trace.iter().enumerate() {
                println!("         {:>2}. {ev}", i + 1);
            }
            false
        }
    }
}

fn customize_multi(mut cfg: MultiModelConfig, opts: &Options) -> MultiModelConfig {
    cfg.mode = opts.mode;
    if let Some(m) = opts.max_states {
        cfg.max_states = m;
    }
    if let Some(s) = opts.seed {
        cfg.seed = s;
    }
    if opts.quick {
        cfg.max_allocs = cfg.max_allocs.min(1);
    }
    cfg
}

/// Run one multi-GPU configuration; returns whether it passed.
fn run_one_multi(label: &str, cfg: &MultiModelConfig) -> bool {
    let started = std::time::Instant::now();
    let outcome = multi::explore(cfg);
    let elapsed = started.elapsed();
    match outcome {
        CheckOutcome::Pass(stats) => {
            println!(
                "  PASS {label:<24} {:>8} states {:>9} transitions  depth {:>2}  \
                 {} terminal, {} suspended  ({:.2?})",
                stats.states,
                stats.transitions,
                stats.max_depth,
                stats.terminals,
                stats.suspended_states,
                elapsed
            );
            true
        }
        CheckOutcome::Fail {
            failure,
            trace,
            stats,
        } => {
            println!("  FAIL {label}: {failure}");
            println!(
                "       after {} states, {} transitions",
                stats.states, stats.transitions
            );
            println!("       counterexample ({} events):", trace.len());
            for (i, ev) in trace.iter().enumerate() {
                println!("         {:>2}. {ev}", i + 1);
            }
            false
        }
    }
}

fn customize_cluster(mut cfg: ClusterModelConfig, opts: &Options) -> ClusterModelConfig {
    cfg.mode = opts.mode;
    if let Some(m) = opts.max_states {
        cfg.max_states = m;
    }
    if let Some(s) = opts.seed {
        cfg.seed = s;
    }
    if opts.quick {
        cfg.max_allocs = cfg.max_allocs.min(1);
    }
    cfg
}

/// Run one migration configuration; returns whether it passed. The
/// migration universe has its own event space (node kills), so its
/// outcome type carries its own trace.
fn run_one_migration(label: &str, cfg: &ClusterModelConfig) -> bool {
    let started = std::time::Instant::now();
    let outcome = migration::explore(cfg);
    let elapsed = started.elapsed();
    match outcome {
        MigrationOutcome::Pass(stats) => {
            println!(
                "  PASS {label:<24} {:>8} states {:>9} transitions  depth {:>2}  \
                 {} terminal, {} suspended  ({:.2?})",
                stats.states,
                stats.transitions,
                stats.max_depth,
                stats.terminals,
                stats.suspended_states,
                elapsed
            );
            true
        }
        MigrationOutcome::Fail {
            failure,
            trace,
            stats,
        } => {
            println!("  FAIL {label}: {failure}");
            println!(
                "       after {} states, {} transitions",
                stats.states, stats.transitions
            );
            println!("       counterexample ({} events):", trace.len());
            for (i, ev) in trace.iter().enumerate() {
                println!("         {:>2}. {ev}", i + 1);
            }
            false
        }
    }
}

/// Run one cluster configuration; returns whether it passed.
fn run_one_cluster(label: &str, cfg: &ClusterModelConfig) -> bool {
    let started = std::time::Instant::now();
    let outcome = cluster::explore(cfg);
    let elapsed = started.elapsed();
    match outcome {
        CheckOutcome::Pass(stats) => {
            println!(
                "  PASS {label:<24} {:>8} states {:>9} transitions  depth {:>2}  \
                 {} terminal, {} suspended  ({:.2?})",
                stats.states,
                stats.transitions,
                stats.max_depth,
                stats.terminals,
                stats.suspended_states,
                elapsed
            );
            true
        }
        CheckOutcome::Fail {
            failure,
            trace,
            stats,
        } => {
            println!("  FAIL {label}: {failure}");
            println!(
                "       after {} states, {} transitions",
                stats.states, stats.transitions
            );
            println!("       counterexample ({} events):", trace.len());
            for (i, ev) in trace.iter().enumerate() {
                println!("         {:>2}. {ev}", i + 1);
            }
            false
        }
    }
}

fn main() -> ExitCode {
    let opts = parse_args();
    let mut ok = true;

    println!(
        "convgpu-audit: bounded model check, mode {:?} — full-guarantee discipline",
        opts.mode
    );
    println!("[1/6] 3 containers, 1 GiB device, 256 MiB quanta, no ctx overhead");
    for &p in &opts.policies {
        let cfg = customize(ModelConfig::three_containers(p), &opts);
        ok &= run_one(&format!("{} / 3-container", p.label()), &cfg);
    }

    if opts.skip_ctx {
        println!("[2/6] skipped (--skip-ctx)");
    } else {
        println!("[2/6] 2 containers, 1 GiB device, 66 MiB per-pid ctx overhead charged");
        for &p in &opts.policies {
            let cfg = customize(ModelConfig::two_containers_with_ctx(p), &opts);
            ok &= run_one(&format!("{} / 2-container+ctx", p.label()), &cfg);
        }
    }

    if opts.skip_multi {
        println!("[3/6] skipped (--skip-multi)");
    } else {
        println!("[3/6] multi-GPU: 3 containers on 2 × 768 MiB devices, 256 MiB quanta");
        for &p in &opts.policies {
            for placement in [
                PlacementPolicy::RoundRobin,
                PlacementPolicy::MostFree,
                PlacementPolicy::BestFitDevice,
            ] {
                let cfg = customize_multi(
                    MultiModelConfig::two_devices_three_containers(p, placement),
                    &opts,
                );
                ok &= run_one_multi(&format!("{}+{}", p.label(), placement.label()), &cfg);
            }
        }
    }

    if opts.skip_cluster {
        println!("[4/6] skipped (--skip-cluster)");
    } else {
        println!("[4/6] cluster: 3 containers on 2 single-GPU 768 MiB nodes, 256 MiB quanta");
        for &p in &opts.policies {
            for strategy in [
                SwarmStrategy::Spread,
                SwarmStrategy::BinPack,
                SwarmStrategy::Random,
            ] {
                let cfg = customize_cluster(
                    ClusterModelConfig::two_nodes_three_containers(p, strategy),
                    &opts,
                );
                ok &= run_one_cluster(&format!("{}+{}", p.label(), strategy.label()), &cfg);
            }
        }
    }

    if opts.skip_migration {
        println!("[5/6] skipped (--skip-migration)");
    } else {
        println!("[5/6] migration: the cluster universe crossed with every node-death point");
        for &p in &opts.policies {
            for strategy in [
                SwarmStrategy::Spread,
                SwarmStrategy::BinPack,
                SwarmStrategy::Random,
            ] {
                let cfg = customize_cluster(
                    ClusterModelConfig::two_nodes_three_containers(p, strategy),
                    &opts,
                );
                ok &= run_one_migration(&format!("{}+{}", p.label(), strategy.label()), &cfg);
            }
        }
    }

    if opts.skip_naive {
        println!("[6/6] skipped (--skip-naive)");
    } else {
        println!("[6/6] naive baseline (grant-if-fits, no guarantees) — negative witness");
        match find_deadlock(&NaiveConfig::classic()) {
            Some(w) => {
                println!(
                    "  minimal deadlock in {} steps (BFS over {} states):",
                    w.trace.len(),
                    w.states
                );
                println!("{w}");
                println!(
                    "  (the model checker above proves the real scheduler reaches no such \
                     state on any interleaving)"
                );
            }
            None => {
                println!("  FAIL: naive baseline did not deadlock — witness lost");
                ok = false;
            }
        }
    }

    if ok {
        println!("convgpu-audit: all checks passed");
        ExitCode::SUCCESS
    } else {
        println!("convgpu-audit: FAILURES above");
        ExitCode::FAILURE
    }
}
