//! Bounded model checker for the **cluster** scheduler
//! ([`ClusterScheduler`]) — the distributed-mode counterpart of
//! [`crate::multi`].
//!
//! The checker drives a real [`ClusterScheduler`] through every
//! interleaving of container lifecycle events for a small quantized
//! universe, and checks after every transition:
//!
//! 1. the **whole-cluster invariant oracle**
//!    ([`ClusterScheduler::check_invariants`]): every node's per-device
//!    invariants plus cluster home-map consistency;
//! 2. **no cross-node budget leakage** — a container's record exists only
//!    on its home node, so one node's guarantees can never be backed by
//!    another node's capacity (the property the distributed router relies
//!    on when it fails a dead node's containers over to rejections);
//! 3. **per-device deadlock-freedom across all nodes** — the §III-E
//!    argument applies per device because memory never migrates across
//!    devices, let alone nodes;
//! 4. **wakeup consistency under two-level ticket tagging** — the set of
//!    node-and-device-tagged tickets the driver is owed equals the set of
//!    parked requests across the whole cluster (tag = node index at
//!    [`NODE_TICKET_SHIFT`] over device index at [`DEVICE_TICKET_SHIFT`]),
//!    so stacked tagging can neither lose, invent, nor cross-wire a
//!    wakeup;
//! 5. **node-tag canonicality** — every outstanding ticket's top byte
//!    names exactly the issuing container's home node (and node 0's tags
//!    are zero, which is why node-0 tickets are bit-for-bit identical to
//!    single-host tickets — see `tests/golden/`);
//! 6. at every terminal state: no memory assigned on any node and no
//!    ticket outstanding.
//!
//! State deduplication extends the multi-GPU canonical encoding with the
//! cluster home map and the cluster fingerprint (per-node scheduler
//! fingerprints + the Swarm RNG state) — the complete set of quantities
//! future placement decisions depend on.

use crate::model::{digest, CheckOutcome, Event, ExploreStats, Failure, SearchMode};
use convgpu_ipc::message::{AllocDecision, ApiKind};
use convgpu_scheduler::cluster::{ClusterNode, ClusterScheduler, SwarmStrategy, NODE_TICKET_SHIFT};
use convgpu_scheduler::deadlock::{self, ProgressState};
use convgpu_scheduler::multi_gpu::DEVICE_TICKET_SHIFT;
use convgpu_scheduler::{
    AllocOutcome, ContainerState, PolicyKind, ResumeAction, ResumeRule, SchedulerConfig,
};
use convgpu_sim_core::ids::ContainerId;
use convgpu_sim_core::time::SimTime;
use convgpu_sim_core::units::Bytes;
use std::collections::{BTreeMap, HashSet, VecDeque};

/// A bounded cluster model-checking configuration.
#[derive(Clone, Debug)]
pub struct ClusterModelConfig {
    /// Per-node, per-device capacities (outer length = node count).
    pub node_capacities: Vec<Vec<Bytes>>,
    /// Per-pid context overhead (only charged if `charge_ctx`).
    pub ctx_overhead: Bytes,
    /// Whether to charge the context overhead.
    pub charge_ctx: bool,
    /// Resume discipline under test.
    pub resume_rule: ResumeRule,
    /// Declared limit per container (the vector length is the container
    /// count).
    pub limits: Vec<Bytes>,
    /// The quantized allocation-size menu.
    pub alloc_sizes: Vec<Bytes>,
    /// Maximum allocation requests *issued* per container.
    pub max_allocs: u32,
    /// Redistribution policy running on every device of every node.
    pub policy: PolicyKind,
    /// Swarm placement strategy under test.
    pub strategy: SwarmStrategy,
    /// Seed (Random strategy determinism).
    pub seed: u64,
    /// Abort if the visited set exceeds this bound.
    pub max_states: usize,
    /// Search order.
    pub mode: SearchMode,
}

impl ClusterModelConfig {
    /// The CI universe: 2 single-GPU nodes of 768 MiB, 3 × 512 MiB
    /// containers, 256/512 MiB quanta — small enough to sweep
    /// exhaustively for every Swarm strategy, contended enough that at
    /// least one node suspends (some node hosts two containers).
    ///
    /// The placement capability check needs `limit + 66 MiB` to fit a
    /// device, so the 768 MiB devices admit the 512 MiB limits.
    pub fn two_nodes_three_containers(policy: PolicyKind, strategy: SwarmStrategy) -> Self {
        let u = Bytes::mib(256);
        ClusterModelConfig {
            node_capacities: vec![vec![Bytes::new(u.0 * 3)], vec![Bytes::new(u.0 * 3)]],
            ctx_overhead: Bytes::ZERO,
            charge_ctx: false,
            resume_rule: ResumeRule::FullGuarantee,
            limits: vec![
                Bytes::new(u.0 * 2),
                Bytes::new(u.0 * 2),
                Bytes::new(u.0 * 2),
            ],
            alloc_sizes: vec![u, Bytes::new(u.0 * 2)],
            max_allocs: 2,
            policy,
            strategy,
            seed: 0xC1F5,
            max_states: 10_000_000,
            mode: SearchMode::Dfs,
        }
    }

    fn scheduler(&self) -> ClusterScheduler {
        let base = SchedulerConfig {
            capacity: self.node_capacities[0][0],
            ctx_overhead: self.ctx_overhead,
            charge_ctx_overhead: self.charge_ctx,
            resume_rule: self.resume_rule,
            default_limit: self.limits[0],
        };
        let nodes = self
            .node_capacities
            .iter()
            .enumerate()
            .map(|(i, caps)| {
                ClusterNode::with_config(
                    format!("n{i}"),
                    base.clone(),
                    caps,
                    self.policy,
                    self.seed.wrapping_add(i as u64),
                )
            })
            .collect();
        ClusterScheduler::new(nodes, self.strategy, self.seed)
    }
}

/// Driver-side state for one container's wrapper + process.
#[derive(Clone, Debug)]
struct DriverContainer {
    registered: bool,
    exited: bool,
    closed: bool,
    allocs_issued: u32,
    live: VecDeque<(u64, Bytes)>,
}

/// Driver-side state for the whole system. Tickets in `outstanding` are
/// the *node-and-device-tagged* values the cluster handed out.
#[derive(Clone, Debug)]
struct Driver {
    cs: Vec<DriverContainer>,
    outstanding: BTreeMap<u64, (usize, Bytes)>,
    next_addr: u64,
}

impl Driver {
    fn new(n: usize) -> Self {
        Driver {
            cs: (0..n)
                .map(|_| DriverContainer {
                    registered: false,
                    exited: false,
                    closed: false,
                    allocs_issued: 0,
                    live: VecDeque::new(),
                })
                .collect(),
            outstanding: BTreeMap::new(),
            next_addr: 0x1000,
        }
    }
}

#[derive(Clone)]
struct Node {
    sched: ClusterScheduler,
    driver: Driver,
    trace: Vec<Event>,
}

fn cid(c: usize) -> ContainerId {
    ContainerId(c as u64 + 1)
}

fn pid(c: usize) -> u64 {
    100 + c as u64
}

fn is_suspended(cs: &ClusterScheduler, c: usize) -> bool {
    let Some(home) = cs.home_of(cid(c)) else {
        return false;
    };
    let gpus = &cs.node(home).gpus;
    gpus.home_of(cid(c))
        .map(|d| gpus.device(d))
        .and_then(|s| s.container(cid(c)))
        .is_some_and(|r| r.is_suspended())
}

fn enabled(cfg: &ClusterModelConfig, node: &Node) -> Vec<Event> {
    let mut out = Vec::new();
    for (c, d) in node.driver.cs.iter().enumerate() {
        if d.closed {
            continue;
        }
        if !d.registered {
            out.push(Event::Register { c });
            continue;
        }
        if !d.exited {
            if !is_suspended(&node.sched, c) {
                if d.allocs_issued < cfg.max_allocs {
                    for &size in &cfg.alloc_sizes {
                        out.push(Event::Alloc { c, size });
                    }
                }
                if !d.live.is_empty() {
                    out.push(Event::Free { c });
                }
            }
            out.push(Event::Exit { c });
        }
        out.push(Event::Close { c });
    }
    out
}

fn deliver(node: &mut Node, actions: Vec<ResumeAction>, now: SimTime) -> Result<(), Failure> {
    for a in actions {
        let (c, size) = match node.driver.outstanding.remove(&a.ticket) {
            Some(entry) => entry,
            None => return Err(Failure::PhantomWakeup { ticket: a.ticket }),
        };
        if a.container != cid(c) || a.pid != pid(c) {
            return Err(Failure::SchedError(format!(
                "resume for ticket {} addressed {}/pid {}, expected {}/pid {}",
                a.ticket,
                a.container,
                a.pid,
                cid(c),
                pid(c)
            )));
        }
        match a.decision {
            AllocDecision::Granted => {
                let d = &node.driver.cs[c];
                if d.exited || d.closed {
                    return Err(Failure::SchedError(format!(
                        "granted resume (ticket {}) for a dead process of C{}",
                        a.ticket,
                        c + 1
                    )));
                }
                let addr = node.driver.next_addr;
                node.driver.next_addr += 1;
                node.sched
                    .alloc_done(cid(c), pid(c), addr, size, now)
                    .map_err(|e| Failure::SchedError(format!("alloc_done after resume: {e:?}")))?;
                node.driver.cs[c].live.push_back((addr, size));
            }
            AllocDecision::Rejected => {}
        }
    }
    Ok(())
}

fn apply(node: &Node, ev: Event, cfg: &ClusterModelConfig) -> Result<Node, (Failure, Vec<Event>)> {
    let mut n = node.clone();
    n.trace.push(ev);
    let now = SimTime::from_nanos(n.trace.len() as u64);
    let res: Result<(), Failure> = (|| {
        match ev {
            Event::Register { c } => {
                n.sched
                    .register(cid(c), cfg.limits[c], now)
                    .map_err(|e| Failure::SchedError(format!("register: {e:?}")))?;
                n.driver.cs[c].registered = true;
            }
            Event::Alloc { c, size } => {
                n.driver.cs[c].allocs_issued += 1;
                let (outcome, actions) = n
                    .sched
                    .alloc_request(cid(c), pid(c), size, ApiKind::Malloc, now)
                    .map_err(|e| Failure::SchedError(format!("alloc_request: {e:?}")))?;
                match outcome {
                    AllocOutcome::Granted => {
                        let addr = n.driver.next_addr;
                        n.driver.next_addr += 1;
                        n.sched
                            .alloc_done(cid(c), pid(c), addr, size, now)
                            .map_err(|e| Failure::SchedError(format!("alloc_done: {e:?}")))?;
                        n.driver.cs[c].live.push_back((addr, size));
                    }
                    AllocOutcome::Rejected => {}
                    AllocOutcome::Suspended { ticket } => {
                        n.driver.outstanding.insert(ticket, (c, size));
                    }
                }
                deliver(&mut n, actions, now)?;
            }
            Event::Free { c } => {
                let (addr, size) = n.driver.cs[c]
                    .live
                    .pop_front()
                    .expect("Free only enabled with live allocations");
                let (freed, actions) = n
                    .sched
                    .free(cid(c), pid(c), addr, now)
                    .map_err(|e| Failure::SchedError(format!("free: {e:?}")))?;
                if freed != size {
                    return Err(Failure::SchedError(format!(
                        "free(0x{addr:x}) returned {freed}, driver recorded {size}"
                    )));
                }
                deliver(&mut n, actions, now)?;
            }
            Event::Exit { c } => {
                n.driver.cs[c].exited = true;
                n.driver.cs[c].live.clear();
                let actions = n
                    .sched
                    .process_exit(cid(c), pid(c), now)
                    .map_err(|e| Failure::SchedError(format!("process_exit: {e:?}")))?;
                deliver(&mut n, actions, now)?;
            }
            Event::Close { c } => {
                n.driver.cs[c].closed = true;
                n.driver.cs[c].live.clear();
                let actions = n
                    .sched
                    .container_close(cid(c), now)
                    .map_err(|e| Failure::SchedError(format!("container_close: {e:?}")))?;
                deliver(&mut n, actions, now)?;
            }
        }
        check_state(&n)
    })();
    match res {
        Ok(()) => Ok(n),
        Err(f) => Err((f, n.trace.clone())),
    }
}

/// The per-state property suite.
fn check_state(n: &Node) -> Result<(), Failure> {
    // 1. Whole-cluster invariants (per-node oracles + cluster home map).
    n.sched.check_invariants().map_err(Failure::SchedError)?;
    // 2. No cross-node budget leakage: a container's record lives only on
    //    its home node.
    for c in 0..n.driver.cs.len() {
        let home = n.sched.home_of(cid(c));
        for nn in 0..n.sched.node_count() {
            let present = n.sched.node(nn).gpus.home_of(cid(c)).is_some();
            let is_home = home == Some(nn);
            if present && !is_home {
                return Err(Failure::SchedError(format!(
                    "C{} has a record on node {nn} but its home is {home:?}",
                    c + 1
                )));
            }
        }
    }
    // 3. Per-device deadlock-freedom across every node.
    for nn in 0..n.sched.node_count() {
        let gpus = &n.sched.node(nn).gpus;
        for d in 0..gpus.device_count() {
            if let ProgressState::Stalled { waiting } = deadlock::assess(gpus.device(d)) {
                return Err(Failure::Stalled { waiting });
            }
        }
    }
    // 4. Wakeup consistency under two-level ticket tagging.
    let mut parked: BTreeMap<u64, ()> = BTreeMap::new();
    for nn in 0..n.sched.node_count() {
        let gpus = &n.sched.node(nn).gpus;
        let node_tag = (nn as u64) << NODE_TICKET_SHIFT;
        for d in 0..gpus.device_count() {
            let tag = node_tag | ((d as u64) << DEVICE_TICKET_SHIFT);
            for r in gpus.device(d).containers() {
                for p in r.pending.iter() {
                    parked.insert(tag | p.ticket, ());
                }
            }
        }
    }
    let lost: Vec<u64> = n
        .driver
        .outstanding
        .keys()
        .filter(|t| !parked.contains_key(t))
        .copied()
        .collect();
    if !lost.is_empty() {
        return Err(Failure::LostWakeup { tickets: lost });
    }
    if let Some((&ticket, _)) = parked
        .iter()
        .find(|(t, _)| !n.driver.outstanding.contains_key(t))
    {
        return Err(Failure::PhantomWakeup { ticket });
    }
    // 5. Node-tag canonicality: an outstanding ticket's top byte is its
    //    container's home node, always.
    for (&ticket, &(c, _)) in &n.driver.outstanding {
        let tag = ticket >> NODE_TICKET_SHIFT;
        let home = n.sched.home_of(cid(c));
        if home != Some(tag as usize) {
            return Err(Failure::SchedError(format!(
                "ticket {ticket} carries node tag {tag} but C{}'s home is {home:?}",
                c + 1
            )));
        }
    }
    Ok(())
}

fn check_terminal(n: &Node) -> Result<(), Failure> {
    for nn in 0..n.sched.node_count() {
        let gpus = &n.sched.node(nn).gpus;
        for d in 0..gpus.device_count() {
            let assigned = gpus.device(d).total_assigned();
            if !assigned.is_zero() {
                return Err(Failure::TerminalResidue { assigned });
            }
        }
    }
    if let Some((&ticket, _)) = n.driver.outstanding.iter().next() {
        return Err(Failure::LostWakeup {
            tickets: vec![ticket],
        });
    }
    Ok(())
}

/// Canonical encoding: the multi-GPU encoding per node, plus the cluster
/// home map and the cluster fingerprint (which folds each node's
/// scheduler fingerprint and the Swarm RNG state).
fn canonical(n: &Node) -> (u64, u64) {
    let mut words: Vec<u64> = Vec::with_capacity(64 + n.driver.cs.len() * 16);
    for (c, d) in n.driver.cs.iter().enumerate() {
        words.push(
            u64::from(d.registered) | (u64::from(d.exited) << 1) | (u64::from(d.closed) << 2),
        );
        words.push(u64::from(d.allocs_issued));
        words.push(d.live.len() as u64);
        words.extend(d.live.iter().map(|&(_, s)| s.0));
        words.push(n.sched.home_of(cid(c)).map_or(u64::MAX, |h| h as u64));
    }
    for nn in 0..n.sched.node_count() {
        let gpus = &n.sched.node(nn).gpus;
        for (c, _) in n.driver.cs.iter().enumerate() {
            words.push(gpus.home_of(cid(c)).map_or(u64::MAX, |h| h as u64));
        }
        for dev in 0..gpus.device_count() {
            let s = gpus.device(dev);
            // Relative ranks of the time-valued fields, per device.
            let mut reg: Vec<(SimTime, usize)> = Vec::new();
            let mut susp: Vec<(SimTime, usize)> = Vec::new();
            for (c, _) in n.driver.cs.iter().enumerate() {
                if let Some(r) = s.container(cid(c)) {
                    if r.state != ContainerState::Closed {
                        reg.push((r.registered_at, c));
                        if let Some(t) = r.suspended_since {
                            susp.push((t, c));
                        }
                    }
                }
            }
            reg.sort();
            susp.sort();
            let rank = |list: &[(SimTime, usize)], c: usize| -> u64 {
                list.iter()
                    .position(|&(_, i)| i == c)
                    .map_or(u64::MAX, |p| p as u64)
            };
            for (c, _) in n.driver.cs.iter().enumerate() {
                match s.container(cid(c)) {
                    None => words.push(u64::MAX),
                    Some(r) => {
                        words.push(match r.state {
                            ContainerState::Active => 1,
                            ContainerState::Suspended => 2,
                            ContainerState::Closed => 3,
                        });
                        words.push(r.assigned.0);
                        words.push(r.used.0);
                        words.push(rank(&reg, c));
                        words.push(rank(&susp, c));
                        words.push(u64::from(r.charged_pids.contains(&pid(c))));
                        words.push(r.pending.len() as u64);
                        words.extend(r.pending.iter().map(|p| p.size.0));
                    }
                }
            }
            words.push(s.total_assigned().0);
            words.push(s.sticky_target().map_or(u64::MAX, |t| t.as_u64()));
        }
        words.push(gpus.rr_cursor() as u64);
    }
    words.push(n.sched.fingerprint());
    digest(&words)
}

/// Exhaustively explore `cfg`'s state space, checking every transition.
pub fn explore(cfg: &ClusterModelConfig) -> CheckOutcome {
    let root = Node {
        sched: cfg.scheduler(),
        driver: Driver::new(cfg.limits.len()),
        trace: Vec::new(),
    };
    let mut stats = ExploreStats::default();
    let mut seen: HashSet<(u64, u64)> = HashSet::new();
    seen.insert(canonical(&root));
    stats.states = 1;
    let mut work: VecDeque<Node> = VecDeque::new();
    work.push_back(root);
    while let Some(node) = match cfg.mode {
        SearchMode::Dfs => work.pop_back(),
        SearchMode::Bfs => work.pop_front(),
    } {
        let events = enabled(cfg, &node);
        if events.is_empty() {
            stats.terminals += 1;
            if let Err(failure) = check_terminal(&node) {
                return CheckOutcome::Fail {
                    failure,
                    trace: node.trace,
                    stats,
                };
            }
            continue;
        }
        for ev in events {
            stats.transitions += 1;
            let next = match apply(&node, ev, cfg) {
                Ok(n) => n,
                Err((failure, trace)) => {
                    return CheckOutcome::Fail {
                        failure,
                        trace,
                        stats,
                    }
                }
            };
            stats.max_depth = stats.max_depth.max(next.trace.len() as u64);
            if (0..next.driver.cs.len()).any(|c| is_suspended(&next.sched, c)) {
                stats.suspended_states += 1;
            }
            if seen.insert(canonical(&next)) {
                stats.states += 1;
                if stats.states > cfg.max_states {
                    return CheckOutcome::Fail {
                        failure: Failure::BoundExceeded {
                            states: cfg.max_states,
                        },
                        trace: next.trace,
                        stats,
                    };
                }
                work.push_back(next);
            }
        }
    }
    CheckOutcome::Pass(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(policy: PolicyKind, strategy: SwarmStrategy) -> ClusterModelConfig {
        let u = Bytes::mib(256);
        ClusterModelConfig {
            node_capacities: vec![vec![Bytes::new(u.0 * 2)], vec![Bytes::new(u.0 * 2)]],
            ctx_overhead: Bytes::ZERO,
            charge_ctx: false,
            resume_rule: ResumeRule::FullGuarantee,
            limits: vec![Bytes::new(u.0), Bytes::new(u.0)],
            alloc_sizes: vec![u],
            max_allocs: 2,
            policy,
            strategy,
            seed: 7,
            max_states: 1_000_000,
            mode: SearchMode::Dfs,
        }
    }

    #[test]
    fn tiny_universe_passes_for_every_strategy() {
        for strategy in [
            SwarmStrategy::Spread,
            SwarmStrategy::BinPack,
            SwarmStrategy::Random,
        ] {
            let out = explore(&tiny(PolicyKind::Fifo, strategy));
            match out {
                CheckOutcome::Pass(stats) => {
                    assert!(stats.states > 10, "trivially small: {stats:?}");
                    assert!(stats.terminals > 0);
                }
                CheckOutcome::Fail { failure, trace, .. } => {
                    panic!("{strategy:?} failed: {failure} after {trace:?}")
                }
            }
        }
    }

    #[test]
    fn contended_universe_actually_suspends() {
        // Three 512 MiB containers on two single-GPU 768 MiB nodes: some
        // node hosts two containers and must suspend under contention.
        let cfg =
            ClusterModelConfig::two_nodes_three_containers(PolicyKind::Fifo, SwarmStrategy::Spread);
        match explore(&cfg) {
            CheckOutcome::Pass(stats) => {
                assert!(
                    stats.suspended_states > 0,
                    "universe never suspends — checks nothing: {stats:?}"
                );
            }
            CheckOutcome::Fail { failure, trace, .. } => {
                panic!("CI universe failed: {failure} after {trace:?}")
            }
        }
    }

    #[test]
    fn dfs_and_bfs_agree_on_state_count() {
        let mut a = tiny(PolicyKind::BestFit, SwarmStrategy::BinPack);
        let mut b = a.clone();
        a.mode = SearchMode::Dfs;
        b.mode = SearchMode::Bfs;
        match (explore(&a), explore(&b)) {
            (CheckOutcome::Pass(sa), CheckOutcome::Pass(sb)) => {
                assert_eq!(sa.states, sb.states);
                assert_eq!(sa.transitions, sb.transitions);
            }
            other => panic!("expected both to pass: {other:?}"),
        }
    }
}
