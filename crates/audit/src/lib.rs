//! **convgpu-audit** — the verification layer of the ConVGPU
//! reproduction.
//!
//! Three pieces, all dependency-free:
//!
//! * [`model`] — a bounded model checker that drives the *real*
//!   [`Scheduler`] through every interleaving of container lifecycle
//!   events for small quantized configurations, checking the shared
//!   invariant oracle ([`Scheduler::check_invariants`]), the paper's
//!   §III-E deadlock-freedom claim, and wakeup consistency after every
//!   transition.
//! * [`multi`] — the same exhaustive exploration for the **multi-GPU**
//!   scheduler: per-device invariants, cross-device budget isolation,
//!   per-device deadlock-freedom, and wakeup consistency under the
//!   device ticket tagging.
//! * [`cluster`] — the same exhaustive exploration one level up, for the
//!   **cluster** scheduler: cross-node budget isolation, wakeup
//!   consistency under the stacked node-over-device ticket tagging, and
//!   node-tag canonicality.
//! * [`migration`] — the cluster exploration crossed with **node
//!   death**: every lifecycle interleaving times every possible death
//!   point, checking budget conservation across the checkpointed
//!   hand-off, no double-home, post-move ticket canonicality and §III-E
//!   deadlock-freedom mid-migration.
//! * [`naive`] — the uncoordinated-sharing baseline the paper argues
//!   against, plus a breadth-first search for its **minimal** deadlock
//!   trace: the negative witness that makes the positive proof above
//!   meaningful.
//! * [`prop`] — a small deterministic property-test harness (seeded
//!   [`DetRng`] per case, replayable failures) standing in for
//!   `proptest` in the sealed build environment.
//!
//! The `convgpu-audit` binary runs the whole suite:
//!
//! ```text
//! cargo run --release -p convgpu-audit --bin convgpu-audit
//! ```
//!
//! See `docs/AUDIT.md` for the invariants, the state-space bounds and
//! the soundness argument for the canonical state encoding.
//!
//! [`Scheduler`]: convgpu_scheduler::Scheduler
//! [`Scheduler::check_invariants`]: convgpu_scheduler::Scheduler::check_invariants
//! [`DetRng`]: convgpu_sim_core::rng::DetRng

#![forbid(unsafe_code)]

pub mod cluster;
pub mod migration;
pub mod model;
pub mod multi;
pub mod naive;
pub mod prop;

pub use cluster::ClusterModelConfig;
pub use migration::{MigEvent, MigrationOutcome};
pub use model::{CheckOutcome, Event, ExploreStats, Failure, ModelConfig, SearchMode};
pub use multi::MultiModelConfig;
pub use naive::{find_deadlock, NaiveConfig, NaiveScheduler, NaiveWitness};
