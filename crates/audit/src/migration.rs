//! Bounded model checker for **live migration** — node death in the
//! middle of arbitrary container lifecycles.
//!
//! [`crate::cluster`] proves the cluster scheduler safe while every node
//! stays alive. This universe adds the event that PR's router layer is
//! built around: a node *dies* at an arbitrary point and its containers
//! are drained onto the survivor via checkpointed adoption
//! ([`ClusterScheduler::migrate_node`]). The checker explores every
//! interleaving of register / alloc / free / close across the containers
//! **crossed with every possible death point** of every node, and checks
//! after each transition:
//!
//! 1. the **whole-cluster invariant oracle** — including that committed
//!    memory never exceeds any node's capacity with adopted budgets in
//!    the books;
//! 2. **no double-home** — during and after a drain a container's record
//!    exists on at most one node, and exactly the node the cluster home
//!    map names;
//! 3. **budget conservation across the hand-off** — the `used` bytes a
//!    completed migration carries equal the bytes the driver knows the
//!    container had committed on the source (nothing lost, nothing
//!    invented), and the adoptive node's own container record opens with
//!    exactly that carried budget marked used;
//! 4. **§III-E deadlock-freedom mid-migration** — no reachable state,
//!    including every state between and after migrations, stalls any
//!    device;
//! 5. **wakeup consistency and node-tag canonicality** — a drain cancels
//!    the dying containers' parked tickets with explicit rejections
//!    (never silently), and every outstanding ticket's node tag names
//!    its issuer's *current* home, so post-move tickets are canonical;
//! 6. at every terminal state: no memory assigned anywhere, no ticket
//!    outstanding.
//!
//! The event space is local to this module — the shared [`crate::model::Event`]
//! stays untouched so the other universes' exhaustive matches keep
//! compiling unchanged.

use crate::cluster::ClusterModelConfig;
use crate::model::{digest, ExploreStats, Failure, SearchMode};
use convgpu_ipc::message::{AllocDecision, ApiKind};
use convgpu_scheduler::cluster::{ClusterNode, ClusterScheduler, NODE_TICKET_SHIFT};
use convgpu_scheduler::deadlock::{self, ProgressState};
use convgpu_scheduler::multi_gpu::DEVICE_TICKET_SHIFT;
use convgpu_scheduler::{AllocOutcome, ContainerState, ResumeAction, SchedulerConfig};
use convgpu_sim_core::ids::ContainerId;
use convgpu_sim_core::time::SimTime;
use convgpu_sim_core::units::Bytes;
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::fmt;

/// One event of the migration model. Container events mirror
/// [`crate::model::Event`]; `Kill` is the death of a whole node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MigEvent {
    /// Container `c` registers with its configured limit.
    Register {
        /// Container index.
        c: usize,
    },
    /// Container `c` requests `size` of device memory.
    Alloc {
        /// Container index.
        c: usize,
        /// Requested size.
        size: Bytes,
    },
    /// Container `c` frees its oldest live allocation.
    Free {
        /// Container index.
        c: usize,
    },
    /// Container `c` stops.
    Close {
        /// Container index.
        c: usize,
    },
    /// Node `n` dies; the cluster drains it onto survivors.
    Kill {
        /// Node index.
        n: usize,
    },
}

impl fmt::Display for MigEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MigEvent::Register { c } => write!(f, "register(C{})", c + 1),
            MigEvent::Alloc { c, size } => write!(f, "alloc(C{}, {size})", c + 1),
            MigEvent::Free { c } => write!(f, "free(C{}, oldest)", c + 1),
            MigEvent::Close { c } => write!(f, "close(C{})", c + 1),
            MigEvent::Kill { n } => write!(f, "kill(node {n})"),
        }
    }
}

/// Result of one exhaustive migration run (local event space, so it
/// carries [`MigEvent`] traces instead of the shared model's).
#[derive(Clone, Debug)]
pub enum MigrationOutcome {
    /// Every reachable state satisfied every check.
    Pass(ExploreStats),
    /// A reachable state failed; `trace` replays it.
    Fail {
        /// What went wrong.
        failure: Failure,
        /// Event path from the initial state to the failure.
        trace: Vec<MigEvent>,
        /// Statistics up to the failure.
        stats: ExploreStats,
    },
}

/// Driver-side state for one container.
#[derive(Clone, Debug)]
struct DriverContainer {
    registered: bool,
    closed: bool,
    /// Survived a drain onto a new node: its pre-kill device addresses
    /// died with the source, only the committed budget travelled.
    migrated: bool,
    allocs_issued: u32,
    live: VecDeque<(u64, Bytes)>,
}

#[derive(Clone, Debug)]
struct Driver {
    cs: Vec<DriverContainer>,
    outstanding: BTreeMap<u64, (usize, Bytes)>,
    next_addr: u64,
    killed: Option<usize>,
}

impl Driver {
    fn new(n: usize) -> Self {
        Driver {
            cs: (0..n)
                .map(|_| DriverContainer {
                    registered: false,
                    closed: false,
                    migrated: false,
                    allocs_issued: 0,
                    live: VecDeque::new(),
                })
                .collect(),
            outstanding: BTreeMap::new(),
            next_addr: 0x1000,
            killed: None,
        }
    }
}

#[derive(Clone)]
struct Node {
    sched: ClusterScheduler,
    driver: Driver,
    trace: Vec<MigEvent>,
}

fn cid(c: usize) -> ContainerId {
    ContainerId(c as u64 + 1)
}

fn pid(c: usize) -> u64 {
    100 + c as u64
}

fn scheduler(cfg: &ClusterModelConfig) -> ClusterScheduler {
    let base = SchedulerConfig {
        capacity: cfg.node_capacities[0][0],
        ctx_overhead: cfg.ctx_overhead,
        charge_ctx_overhead: cfg.charge_ctx,
        resume_rule: cfg.resume_rule,
        default_limit: cfg.limits[0],
    };
    let nodes = cfg
        .node_capacities
        .iter()
        .enumerate()
        .map(|(i, caps)| {
            ClusterNode::with_config(
                format!("n{i}"),
                base.clone(),
                caps,
                cfg.policy,
                cfg.seed.wrapping_add(i as u64),
            )
        })
        .collect();
    ClusterScheduler::new(nodes, cfg.strategy, cfg.seed)
}

fn is_suspended(cs: &ClusterScheduler, c: usize) -> bool {
    let Some(home) = cs.home_of(cid(c)) else {
        return false;
    };
    let gpus = &cs.node(home).gpus;
    gpus.home_of(cid(c))
        .map(|d| gpus.device(d))
        .and_then(|s| s.container(cid(c)))
        .is_some_and(|r| r.is_suspended())
}

fn enabled(cfg: &ClusterModelConfig, node: &Node) -> Vec<MigEvent> {
    let mut out = Vec::new();
    for (c, d) in node.driver.cs.iter().enumerate() {
        if d.closed {
            continue;
        }
        if !d.registered {
            // Registrations only happen while the cluster is whole: the
            // model studies death *after* admission, and keeping the
            // placement path off dead nodes bounds the universe.
            if node.driver.killed.is_none() {
                out.push(MigEvent::Register { c });
            }
            continue;
        }
        if !is_suspended(&node.sched, c) {
            if d.allocs_issued < cfg.max_allocs {
                for &size in &cfg.alloc_sizes {
                    out.push(MigEvent::Alloc { c, size });
                }
            }
            if !d.live.is_empty() {
                out.push(MigEvent::Free { c });
            }
        }
        out.push(MigEvent::Close { c });
    }
    if node.driver.killed.is_none() {
        for n in 0..node.sched.node_count() {
            let hosts_any =
                (0..node.driver.cs.len()).any(|c| node.sched.home_of(cid(c)) == Some(n));
            if hosts_any {
                out.push(MigEvent::Kill { n });
            }
        }
    }
    out
}

fn deliver(node: &mut Node, actions: Vec<ResumeAction>, now: SimTime) -> Result<(), Failure> {
    for a in actions {
        let (c, size) = match node.driver.outstanding.remove(&a.ticket) {
            Some(entry) => entry,
            None => return Err(Failure::PhantomWakeup { ticket: a.ticket }),
        };
        if a.container != cid(c) || a.pid != pid(c) {
            return Err(Failure::SchedError(format!(
                "resume for ticket {} addressed {}/pid {}, expected {}/pid {}",
                a.ticket,
                a.container,
                a.pid,
                cid(c),
                pid(c)
            )));
        }
        match a.decision {
            AllocDecision::Granted => {
                if node.driver.cs[c].closed {
                    // A drain can grant a co-tenant's parked request and
                    // then fail to re-home that same container: the
                    // grant's budget was released by its close.
                    continue;
                }
                let addr = node.driver.next_addr;
                node.driver.next_addr += 1;
                node.sched
                    .alloc_done(cid(c), pid(c), addr, size, now)
                    .map_err(|e| Failure::SchedError(format!("alloc_done after resume: {e:?}")))?;
                node.driver.cs[c].live.push_back((addr, size));
            }
            AllocDecision::Rejected => {}
        }
    }
    Ok(())
}

fn apply(
    node: &Node,
    ev: MigEvent,
    cfg: &ClusterModelConfig,
) -> Result<Node, (Failure, Vec<MigEvent>)> {
    let mut n = node.clone();
    n.trace.push(ev);
    let now = SimTime::from_nanos(n.trace.len() as u64);
    let res: Result<(), Failure> = (|| {
        match ev {
            MigEvent::Register { c } => {
                n.sched
                    .register(cid(c), cfg.limits[c], now)
                    .map_err(|e| Failure::SchedError(format!("register: {e:?}")))?;
                n.driver.cs[c].registered = true;
            }
            MigEvent::Alloc { c, size } => {
                n.driver.cs[c].allocs_issued += 1;
                let (outcome, actions) = n
                    .sched
                    .alloc_request(cid(c), pid(c), size, ApiKind::Malloc, now)
                    .map_err(|e| Failure::SchedError(format!("alloc_request: {e:?}")))?;
                match outcome {
                    AllocOutcome::Granted => {
                        let addr = n.driver.next_addr;
                        n.driver.next_addr += 1;
                        n.sched
                            .alloc_done(cid(c), pid(c), addr, size, now)
                            .map_err(|e| Failure::SchedError(format!("alloc_done: {e:?}")))?;
                        n.driver.cs[c].live.push_back((addr, size));
                    }
                    AllocOutcome::Rejected => {}
                    AllocOutcome::Suspended { ticket } => {
                        n.driver.outstanding.insert(ticket, (c, size));
                    }
                }
                deliver(&mut n, actions, now)?;
            }
            MigEvent::Free { c } => {
                let (addr, size) = n.driver.cs[c]
                    .live
                    .pop_front()
                    .expect("Free only enabled with live allocations");
                let (freed, actions) = n
                    .sched
                    .free(cid(c), pid(c), addr, now)
                    .map_err(|e| Failure::SchedError(format!("free: {e:?}")))?;
                if freed != size {
                    return Err(Failure::SchedError(format!(
                        "free(0x{addr:x}) returned {freed}, driver recorded {size}"
                    )));
                }
                deliver(&mut n, actions, now)?;
            }
            MigEvent::Close { c } => {
                n.driver.cs[c].closed = true;
                n.driver.cs[c].live.clear();
                let actions = n
                    .sched
                    .container_close(cid(c), now)
                    .map_err(|e| Failure::SchedError(format!("container_close: {e:?}")))?;
                deliver(&mut n, actions, now)?;
            }
            MigEvent::Kill { n: dead } => {
                n.driver.killed = Some(dead);
                // Quiescent checkpoint: at the kill instant every
                // container's committed bytes are exactly what the
                // driver holds live, and its parked budget is the sum of
                // its outstanding tickets. During the drain a co-tenant's
                // close may grant a parked request *before* that
                // container's own checkpoint is captured, so the carried
                // `used` is bounded by, not equal to, the live bytes.
                let cs_len = n.driver.cs.len();
                let mut live_at_kill = vec![Bytes::ZERO; cs_len];
                let mut parked_at_kill = vec![Bytes::ZERO; cs_len];
                for (c, dc) in n.driver.cs.iter().enumerate() {
                    live_at_kill[c] = dc.live.iter().fold(Bytes::ZERO, |acc, &(_, s)| acc + s);
                }
                for &(c, size) in n.driver.outstanding.values() {
                    parked_at_kill[c] += size;
                }
                let (moves, actions) = n.sched.migrate_node(dead, now);
                for m in &moves {
                    let c = (m.container.as_u64() - 1) as usize;
                    // Property 3: budget conservation across the
                    // hand-off. Nothing lost: the carried `used` covers
                    // every byte the driver had live. Nothing invented:
                    // it exceeds them by at most the budget the drain
                    // itself granted from the container's parked
                    // tickets.
                    if m.used < live_at_kill[c] || m.used > live_at_kill[c] + parked_at_kill[c] {
                        return Err(Failure::SchedError(format!(
                            "migration of C{} carried used={} outside the conserved \
                             range [{}, {}]",
                            c + 1,
                            m.used,
                            live_at_kill[c],
                            live_at_kill[c] + parked_at_kill[c]
                        )));
                    }
                    match m.to {
                        Some(to) => {
                            // Re-homed: device addresses died with the
                            // source, the budget travelled. Conservation
                            // must hold in the adoptive node's *books*
                            // too, not just in the record: the adopted
                            // container shows exactly the carried `used`
                            // before any post-drain grant lands.
                            let gpus = &n.sched.node(to).gpus;
                            let adopted_used = gpus
                                .home_of(m.container)
                                .map(|d| gpus.device(d))
                                .and_then(|s| s.container(m.container))
                                .map(|r| r.used);
                            if adopted_used != Some(m.used) {
                                return Err(Failure::SchedError(format!(
                                    "C{} adopted on node {to} with used={adopted_used:?}, \
                                     but the migration record carried {}",
                                    c + 1,
                                    m.used
                                )));
                            }
                            n.driver.cs[c].live.clear();
                            n.driver.cs[c].migrated = true;
                        }
                        None => {
                            // No survivor could adopt: a clean
                            // rejection, the container ends closed.
                            n.driver.cs[c].live.clear();
                            n.driver.cs[c].closed = true;
                        }
                    }
                }
                deliver(&mut n, actions, now)?;
            }
        }
        check_state(&n)
    })();
    match res {
        Ok(()) => Ok(n),
        Err(f) => Err((f, n.trace.clone())),
    }
}

/// The per-state property suite (numbering from the module docs).
fn check_state(n: &Node) -> Result<(), Failure> {
    // 1. Whole-cluster invariants, adopted budgets included.
    n.sched.check_invariants().map_err(Failure::SchedError)?;
    // 2. No double-home: a container's *cluster-visible* record lives
    //    only on its home node. (A drained node may retain the closed
    //    tombstone of a migrated container; closed records hold no
    //    budget and are invisible to the home map.)
    for c in 0..n.driver.cs.len() {
        let home = n.sched.home_of(cid(c));
        for nn in 0..n.sched.node_count() {
            let gpus = &n.sched.node(nn).gpus;
            let open = gpus
                .home_of(cid(c))
                .map(|d| gpus.device(d))
                .and_then(|s| s.container(cid(c)))
                .is_some_and(|r| r.state != ContainerState::Closed);
            let is_home = home == Some(nn);
            if open && !is_home {
                return Err(Failure::SchedError(format!(
                    "C{} has an open record on node {nn} but its home is {home:?}",
                    c + 1
                )));
            }
        }
    }
    // 4. §III-E deadlock-freedom on every device, mid-migration included.
    for nn in 0..n.sched.node_count() {
        let gpus = &n.sched.node(nn).gpus;
        for d in 0..gpus.device_count() {
            if let ProgressState::Stalled { waiting } = deadlock::assess(gpus.device(d)) {
                return Err(Failure::Stalled { waiting });
            }
        }
    }
    // 5a. Wakeup consistency under two-level ticket tagging.
    let mut parked: BTreeMap<u64, ()> = BTreeMap::new();
    for nn in 0..n.sched.node_count() {
        let gpus = &n.sched.node(nn).gpus;
        let node_tag = (nn as u64) << NODE_TICKET_SHIFT;
        for d in 0..gpus.device_count() {
            let tag = node_tag | ((d as u64) << DEVICE_TICKET_SHIFT);
            for r in gpus.device(d).containers() {
                for p in r.pending.iter() {
                    parked.insert(tag | p.ticket, ());
                }
            }
        }
    }
    let lost: Vec<u64> = n
        .driver
        .outstanding
        .keys()
        .filter(|t| !parked.contains_key(t))
        .copied()
        .collect();
    if !lost.is_empty() {
        return Err(Failure::LostWakeup { tickets: lost });
    }
    if let Some((&ticket, _)) = parked
        .iter()
        .find(|(t, _)| !n.driver.outstanding.contains_key(t))
    {
        return Err(Failure::PhantomWakeup { ticket });
    }
    // 5b. Node-tag canonicality: an outstanding ticket's top byte names
    //     its container's *current* home — post-move tickets included.
    for (&ticket, &(c, _)) in &n.driver.outstanding {
        let tag = ticket >> NODE_TICKET_SHIFT;
        let home = n.sched.home_of(cid(c));
        if home != Some(tag as usize) {
            return Err(Failure::SchedError(format!(
                "ticket {ticket} carries node tag {tag} but C{}'s home is {home:?}",
                c + 1
            )));
        }
    }
    Ok(())
}

fn check_terminal(n: &Node) -> Result<(), Failure> {
    for nn in 0..n.sched.node_count() {
        let gpus = &n.sched.node(nn).gpus;
        for d in 0..gpus.device_count() {
            let assigned = gpus.device(d).total_assigned();
            if !assigned.is_zero() {
                return Err(Failure::TerminalResidue { assigned });
            }
        }
    }
    if let Some((&ticket, _)) = n.driver.outstanding.iter().next() {
        return Err(Failure::LostWakeup {
            tickets: vec![ticket],
        });
    }
    Ok(())
}

/// Canonical encoding: the cluster encoding plus the kill marker and the
/// per-container migration flags.
fn canonical(n: &Node) -> (u64, u64) {
    let mut words: Vec<u64> = Vec::with_capacity(64 + n.driver.cs.len() * 16);
    words.push(n.driver.killed.map_or(u64::MAX, |k| k as u64));
    for (c, d) in n.driver.cs.iter().enumerate() {
        words.push(
            u64::from(d.registered) | (u64::from(d.closed) << 1) | (u64::from(d.migrated) << 2),
        );
        words.push(u64::from(d.allocs_issued));
        words.push(d.live.len() as u64);
        words.extend(d.live.iter().map(|&(_, s)| s.0));
        words.push(n.sched.home_of(cid(c)).map_or(u64::MAX, |h| h as u64));
    }
    for nn in 0..n.sched.node_count() {
        let gpus = &n.sched.node(nn).gpus;
        for (c, _) in n.driver.cs.iter().enumerate() {
            words.push(gpus.home_of(cid(c)).map_or(u64::MAX, |h| h as u64));
        }
        for dev in 0..gpus.device_count() {
            let s = gpus.device(dev);
            let mut reg: Vec<(SimTime, usize)> = Vec::new();
            let mut susp: Vec<(SimTime, usize)> = Vec::new();
            for (c, _) in n.driver.cs.iter().enumerate() {
                if let Some(r) = s.container(cid(c)) {
                    if r.state != ContainerState::Closed {
                        reg.push((r.registered_at, c));
                        if let Some(t) = r.suspended_since {
                            susp.push((t, c));
                        }
                    }
                }
            }
            reg.sort();
            susp.sort();
            let rank = |list: &[(SimTime, usize)], c: usize| -> u64 {
                list.iter()
                    .position(|&(_, i)| i == c)
                    .map_or(u64::MAX, |p| p as u64)
            };
            for (c, _) in n.driver.cs.iter().enumerate() {
                match s.container(cid(c)) {
                    None => words.push(u64::MAX),
                    Some(r) => {
                        words.push(match r.state {
                            ContainerState::Active => 1,
                            ContainerState::Suspended => 2,
                            ContainerState::Closed => 3,
                        });
                        words.push(r.assigned.0);
                        words.push(r.used.0);
                        words.push(rank(&reg, c));
                        words.push(rank(&susp, c));
                        words.push(u64::from(r.charged_pids.contains(&pid(c))));
                        words.push(r.pending.len() as u64);
                        words.extend(r.pending.iter().map(|p| p.size.0));
                    }
                }
            }
            words.push(s.total_assigned().0);
            words.push(s.sticky_target().map_or(u64::MAX, |t| t.as_u64()));
        }
        words.push(gpus.rr_cursor() as u64);
    }
    words.push(n.sched.fingerprint());
    digest(&words)
}

/// Exhaustively explore `cfg`'s lifecycle state space crossed with every
/// node-death point, checking every transition.
pub fn explore(cfg: &ClusterModelConfig) -> MigrationOutcome {
    let root = Node {
        sched: scheduler(cfg),
        driver: Driver::new(cfg.limits.len()),
        trace: Vec::new(),
    };
    let mut stats = ExploreStats::default();
    let mut seen: HashSet<(u64, u64)> = HashSet::new();
    seen.insert(canonical(&root));
    stats.states = 1;
    let mut work: VecDeque<Node> = VecDeque::new();
    work.push_back(root);
    while let Some(node) = match cfg.mode {
        SearchMode::Dfs => work.pop_back(),
        SearchMode::Bfs => work.pop_front(),
    } {
        let events = enabled(cfg, &node);
        if events.is_empty() {
            stats.terminals += 1;
            if let Err(failure) = check_terminal(&node) {
                return MigrationOutcome::Fail {
                    failure,
                    trace: node.trace,
                    stats,
                };
            }
            continue;
        }
        for ev in events {
            stats.transitions += 1;
            let next = match apply(&node, ev, cfg) {
                Ok(n) => n,
                Err((failure, trace)) => {
                    return MigrationOutcome::Fail {
                        failure,
                        trace,
                        stats,
                    }
                }
            };
            stats.max_depth = stats.max_depth.max(next.trace.len() as u64);
            if (0..next.driver.cs.len()).any(|c| is_suspended(&next.sched, c)) {
                stats.suspended_states += 1;
            }
            if seen.insert(canonical(&next)) {
                stats.states += 1;
                if stats.states > cfg.max_states {
                    return MigrationOutcome::Fail {
                        failure: Failure::BoundExceeded {
                            states: cfg.max_states,
                        },
                        trace: next.trace,
                        stats,
                    };
                }
                work.push_back(next);
            }
        }
    }
    MigrationOutcome::Pass(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use convgpu_scheduler::cluster::SwarmStrategy;
    use convgpu_scheduler::{PolicyKind, ResumeRule};

    fn tiny(policy: PolicyKind, strategy: SwarmStrategy) -> ClusterModelConfig {
        let u = Bytes::mib(256);
        ClusterModelConfig {
            node_capacities: vec![vec![Bytes::new(u.0 * 2)], vec![Bytes::new(u.0 * 2)]],
            ctx_overhead: Bytes::ZERO,
            charge_ctx: false,
            resume_rule: ResumeRule::FullGuarantee,
            limits: vec![Bytes::new(u.0), Bytes::new(u.0)],
            alloc_sizes: vec![u],
            max_allocs: 2,
            policy,
            strategy,
            seed: 7,
            max_states: 1_000_000,
            mode: SearchMode::Dfs,
        }
    }

    #[test]
    fn tiny_universe_survives_every_death_point() {
        for strategy in [
            SwarmStrategy::Spread,
            SwarmStrategy::BinPack,
            SwarmStrategy::Random,
        ] {
            match explore(&tiny(PolicyKind::Fifo, strategy)) {
                MigrationOutcome::Pass(stats) => {
                    assert!(stats.states > 10, "trivially small: {stats:?}");
                    assert!(stats.terminals > 0);
                }
                MigrationOutcome::Fail { failure, trace, .. } => {
                    panic!("{strategy:?} failed: {failure} after {trace:?}")
                }
            }
        }
    }

    #[test]
    fn contended_universe_migrates_and_suspends() {
        let cfg =
            ClusterModelConfig::two_nodes_three_containers(PolicyKind::Fifo, SwarmStrategy::Spread);
        match explore(&cfg) {
            MigrationOutcome::Pass(stats) => {
                assert!(
                    stats.suspended_states > 0,
                    "universe never suspends — checks nothing: {stats:?}"
                );
            }
            MigrationOutcome::Fail { failure, trace, .. } => {
                panic!("migration universe failed: {failure} after {trace:?}")
            }
        }
    }
}
