//! Bounded model checker for the ConVGPU scheduler (§III-D/E).
//!
//! The checker drives a real [`Scheduler`] — not a re-implementation —
//! through **every** interleaving of container lifecycle events for a
//! small, quantized configuration, and checks the full invariant oracle
//! ([`Scheduler::check_invariants`]) plus the paper's §III-E
//! deadlock-freedom claim ([`deadlock::assess`] never `Stalled`) after
//! every transition.
//!
//! # The model
//!
//! Each container is driven by a model of its wrapper + one process:
//!
//! * `Register` — nvidia-docker declares the container (fixed limit);
//! * `Alloc(size)` — the process calls `cudaMalloc(size)`; a granted
//!   request immediately reports `alloc_done` at a fresh address, a
//!   suspended one records the outstanding ticket;
//! * `Free` — the process frees its oldest live allocation;
//! * `Exit` — the process dies (`__cudaUnregisterFatBinary`), possibly
//!   while suspended or while holding memory (leak reclaim path);
//! * `Close` — the container stops (volume-unmount plugin event),
//!   allowed at any point after registration.
//!
//! A suspended container issues no new requests (its thread is blocked in
//! the CUDA call, exactly as in the live wrapper) but can still `Exit` or
//! `Close` — those are exactly the paths where wakeups get lost in buggy
//! schedulers.
//!
//! # State-space soundness
//!
//! Explored states are deduplicated under a *canonical* encoding that
//! replaces absolute times with relative ranks (registration order,
//! suspension order) and device addresses with allocation-size sequences.
//! Every scheduler decision — FIFO / Recent-Use comparisons, the
//! redistribution sort, Best-Fit deficits, the sticky target — depends
//! only on those orders and on quantities that the encoding keeps
//! verbatim, so two states with equal encodings are bisimilar and merging
//! them is sound. The Random policy's RNG state is folded in via
//! [`Scheduler::policy_fingerprint`], so states are only merged when
//! their future random draws coincide as well.
//!
//! Keys are stored as 128-bit FNV-style digests of the canonical vector
//! (two independent folds); at the ≤ 10⁷ states this checker is meant
//! for, a collision is beyond negligible (≈ 10⁻²⁴).
//!
//! # What is checked, per transition
//!
//! 1. the shared invariant oracle (`check_invariants`);
//! 2. `deadlock::assess` never returns `Stalled` (§III-E);
//! 3. **wakeup consistency** — the set of tickets parked inside the
//!    scheduler equals the set of tickets the driver is still owed, so a
//!    wakeup can neither be lost nor invented;
//! 4. at every *terminal* state (all containers closed): no memory is
//!    still assigned and no ticket is still outstanding. Terminal states
//!    are reachable from every state (any registered container may always
//!    close), so these terminal checks imply the "every suspended
//!    container is eventually resumed or rejected" liveness claim.

use convgpu_ipc::message::{AllocDecision, ApiKind};
use convgpu_scheduler::deadlock::{self, ProgressState};
use convgpu_scheduler::{
    AllocOutcome, ContainerState, InvariantViolation, PolicyKind, ResumeAction, ResumeRule,
    Scheduler, SchedulerConfig,
};
use convgpu_sim_core::ids::ContainerId;
use convgpu_sim_core::time::SimTime;
use convgpu_sim_core::units::Bytes;
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::fmt;

/// One event of the lifecycle model. `c` is the container *index*
/// (0-based); the scheduler sees [`ContainerId`]`(c + 1)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// nvidia-docker registers container `c` with its configured limit.
    Register {
        /// Container index.
        c: usize,
    },
    /// Container `c`'s process requests `size` of device memory.
    Alloc {
        /// Container index.
        c: usize,
        /// Requested size.
        size: Bytes,
    },
    /// Container `c`'s process frees its oldest live allocation.
    Free {
        /// Container index.
        c: usize,
    },
    /// Container `c`'s process exits (leak-reclaim path).
    Exit {
        /// Container index.
        c: usize,
    },
    /// Container `c` stops.
    Close {
        /// Container index.
        c: usize,
    },
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Register { c } => write!(f, "register(C{})", c + 1),
            Event::Alloc { c, size } => write!(f, "alloc(C{}, {size})", c + 1),
            Event::Free { c } => write!(f, "free(C{}, oldest)", c + 1),
            Event::Exit { c } => write!(f, "exit(C{})", c + 1),
            Event::Close { c } => write!(f, "close(C{})", c + 1),
        }
    }
}

/// Search order. Depth-first needs memory proportional to the path
/// length only; breadth-first additionally keeps the frontier but finds
/// *minimal* counterexample traces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SearchMode {
    /// Depth-first (default; constant memory beyond the visited set).
    Dfs,
    /// Breadth-first (minimal traces; use on small configurations).
    Bfs,
}

/// A bounded-model-checking configuration: the quantized universe the
/// checker explores exhaustively.
#[derive(Clone, Debug)]
pub struct ModelConfig {
    /// Device capacity.
    pub capacity: Bytes,
    /// Per-pid context overhead (only charged if `charge_ctx`).
    pub ctx_overhead: Bytes,
    /// Whether to charge the context overhead.
    pub charge_ctx: bool,
    /// Resume discipline under test.
    pub resume_rule: ResumeRule,
    /// Declared limit per container (the vector length is the container
    /// count).
    pub limits: Vec<Bytes>,
    /// The quantized allocation-size menu.
    pub alloc_sizes: Vec<Bytes>,
    /// Maximum allocation requests *issued* per container (granted,
    /// rejected or parked all count).
    pub max_allocs: u32,
    /// Policy under test.
    pub policy: PolicyKind,
    /// Seed for the Random policy.
    pub seed: u64,
    /// Abort if the visited set exceeds this bound.
    pub max_states: usize,
    /// Search order.
    pub mode: SearchMode,
}

impl ModelConfig {
    /// The default exhaustive sweep: 3 containers on a 1 GiB device,
    /// 256 MiB quanta, no context overhead, full guarantee.
    pub fn three_containers(policy: PolicyKind) -> Self {
        let u = Bytes::mib(256);
        ModelConfig {
            capacity: Bytes::new(u.0 * 4),
            ctx_overhead: Bytes::ZERO,
            charge_ctx: false,
            resume_rule: ResumeRule::FullGuarantee,
            limits: vec![
                Bytes::new(u.0 * 2),
                Bytes::new(u.0 * 2),
                Bytes::new(u.0 * 3),
            ],
            alloc_sizes: vec![u, Bytes::new(u.0 * 2)],
            max_allocs: 2,
            policy,
            seed: 0xC0DE,
            max_states: 10_000_000,
            mode: SearchMode::Dfs,
        }
    }

    /// A 2-container sweep with the paper's 66 MiB per-pid context
    /// overhead charged, to exercise the overhead accounting paths.
    pub fn two_containers_with_ctx(policy: PolicyKind) -> Self {
        ModelConfig {
            capacity: Bytes::gib(1),
            ctx_overhead: Bytes::mib(66),
            charge_ctx: true,
            resume_rule: ResumeRule::FullGuarantee,
            limits: vec![Bytes::mib(512), Bytes::mib(512)],
            alloc_sizes: vec![Bytes::mib(128), Bytes::mib(256)],
            max_allocs: 2,
            policy,
            seed: 0xC0DE,
            max_states: 10_000_000,
            mode: SearchMode::Dfs,
        }
    }

    fn scheduler(&self) -> Scheduler {
        let cfg = SchedulerConfig {
            capacity: self.capacity,
            ctx_overhead: self.ctx_overhead,
            charge_ctx_overhead: self.charge_ctx,
            resume_rule: self.resume_rule,
            default_limit: self.limits[0],
        };
        Scheduler::new(cfg, self.policy.build(self.seed))
    }
}

/// Why a run failed, if it did.
#[derive(Clone, Debug)]
pub enum Failure {
    /// The shared invariant oracle tripped.
    Invariant(InvariantViolation),
    /// §III-E violated: a reachable state where every open container is
    /// suspended and none can be completed from the pool.
    Stalled {
        /// The deadlocked containers.
        waiting: Vec<ContainerId>,
    },
    /// The scheduler parked a request and the ticket vanished without a
    /// resume — the classic lost wakeup.
    LostWakeup {
        /// Tickets the driver is owed that the scheduler no longer holds.
        tickets: Vec<u64>,
    },
    /// The scheduler emitted a resume for a ticket that was never
    /// outstanding (double wakeup / invented wakeup).
    PhantomWakeup {
        /// The offending ticket.
        ticket: u64,
    },
    /// A model-legal call was refused (protocol regression).
    SchedError(String),
    /// All containers closed but memory is still assigned.
    TerminalResidue {
        /// Memory still assigned at the terminal state.
        assigned: Bytes,
    },
    /// The visited set outgrew `max_states`; the result is inconclusive.
    BoundExceeded {
        /// The configured bound.
        states: usize,
    },
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Failure::Invariant(v) => write!(f, "invariant violated: {v}"),
            Failure::Stalled { waiting } => {
                write!(f, "deadlock (Stalled) reached; waiting: {waiting:?}")
            }
            Failure::LostWakeup { tickets } => {
                write!(
                    f,
                    "lost wakeup: tickets {tickets:?} vanished without a resume"
                )
            }
            Failure::PhantomWakeup { ticket } => {
                write!(f, "phantom wakeup: resume for unknown ticket {ticket}")
            }
            Failure::SchedError(e) => write!(f, "scheduler refused a model-legal call: {e}"),
            Failure::TerminalResidue { assigned } => {
                write!(f, "terminal state still has {assigned} assigned")
            }
            Failure::BoundExceeded { states } => {
                write!(f, "state bound exceeded ({states} states); inconclusive")
            }
        }
    }
}

/// Exploration statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExploreStats {
    /// Distinct canonical states visited.
    pub states: usize,
    /// Transitions applied (including ones leading to known states).
    pub transitions: u64,
    /// Longest event path explored.
    pub max_depth: u64,
    /// Terminal (all-closed) states reached.
    pub terminals: u64,
    /// Transitions that left at least one container suspended — sanity
    /// signal that the configuration actually exercises contention.
    pub suspended_states: u64,
}

/// Result of one exhaustive run.
#[derive(Clone, Debug)]
pub enum CheckOutcome {
    /// Every reachable state satisfied every check.
    Pass(ExploreStats),
    /// A reachable state failed; `trace` replays it from the empty
    /// system (minimal under [`SearchMode::Bfs`]).
    Fail {
        /// What went wrong.
        failure: Failure,
        /// Event path from the initial state to the failure.
        trace: Vec<Event>,
        /// Statistics up to the failure.
        stats: ExploreStats,
    },
}

impl CheckOutcome {
    /// True for [`CheckOutcome::Pass`].
    pub fn passed(&self) -> bool {
        matches!(self, CheckOutcome::Pass(_))
    }
}

/// Driver-side state for one container's wrapper + process.
#[derive(Clone, Debug)]
struct DriverContainer {
    registered: bool,
    exited: bool,
    closed: bool,
    allocs_issued: u32,
    /// Live device allocations in issue order (`free` pops the front).
    live: VecDeque<(u64, Bytes)>,
}

/// Driver-side state for the whole system.
#[derive(Clone, Debug)]
struct Driver {
    cs: Vec<DriverContainer>,
    /// Parked tickets the driver is owed: ticket → (container, size).
    outstanding: BTreeMap<u64, (usize, Bytes)>,
    next_addr: u64,
}

impl Driver {
    fn new(n: usize) -> Self {
        Driver {
            cs: (0..n)
                .map(|_| DriverContainer {
                    registered: false,
                    exited: false,
                    closed: false,
                    allocs_issued: 0,
                    live: VecDeque::new(),
                })
                .collect(),
            outstanding: BTreeMap::new(),
            next_addr: 0x1000,
        }
    }
}

/// One node of the search: a full system state plus the path that
/// produced it.
#[derive(Clone)]
struct Node {
    sched: Scheduler,
    driver: Driver,
    trace: Vec<Event>,
}

fn cid(c: usize) -> ContainerId {
    ContainerId(c as u64 + 1)
}

fn pid(c: usize) -> u64 {
    100 + c as u64
}

/// Enumerate the events enabled in `node`, in a fixed deterministic
/// order (container index, then event kind, then size menu order).
fn enabled(cfg: &ModelConfig, node: &Node) -> Vec<Event> {
    let mut out = Vec::new();
    for (c, d) in node.driver.cs.iter().enumerate() {
        if d.closed {
            continue;
        }
        if !d.registered {
            out.push(Event::Register { c });
            continue;
        }
        if !d.exited {
            let suspended = node
                .sched
                .container(cid(c))
                .is_some_and(|r| r.is_suspended());
            if !suspended {
                if d.allocs_issued < cfg.max_allocs {
                    for &size in &cfg.alloc_sizes {
                        out.push(Event::Alloc { c, size });
                    }
                }
                if !d.live.is_empty() {
                    out.push(Event::Free { c });
                }
            }
            out.push(Event::Exit { c });
        }
        out.push(Event::Close { c });
    }
    out
}

/// Deliver the scheduler's resume actions to the driver, performing the
/// follow-up `alloc_done` for granted resumes.
fn deliver(node: &mut Node, actions: Vec<ResumeAction>, now: SimTime) -> Result<(), Failure> {
    for a in actions {
        let (c, size) = match node.driver.outstanding.remove(&a.ticket) {
            Some(entry) => entry,
            None => return Err(Failure::PhantomWakeup { ticket: a.ticket }),
        };
        if a.container != cid(c) || a.pid != pid(c) {
            return Err(Failure::SchedError(format!(
                "resume for ticket {} addressed {}/pid {}, expected {}/pid {}",
                a.ticket,
                a.container,
                a.pid,
                cid(c),
                pid(c)
            )));
        }
        match a.decision {
            AllocDecision::Granted => {
                let d = &node.driver.cs[c];
                if d.exited || d.closed {
                    return Err(Failure::SchedError(format!(
                        "granted resume (ticket {}) for a dead process of C{}",
                        a.ticket,
                        c + 1
                    )));
                }
                let addr = node.driver.next_addr;
                node.driver.next_addr += 1;
                node.sched
                    .alloc_done(cid(c), pid(c), addr, size, now)
                    .map_err(|e| Failure::SchedError(format!("alloc_done after resume: {e:?}")))?;
                node.driver.cs[c].live.push_back((addr, size));
            }
            AllocDecision::Rejected => {}
        }
    }
    Ok(())
}

/// Apply `ev` to a clone of `node`, returning the successor.
fn apply(node: &Node, ev: Event, cfg: &ModelConfig) -> Result<Node, (Failure, Vec<Event>)> {
    let mut n = node.clone();
    n.trace.push(ev);
    // Times only need to be distinct and increasing along the path; the
    // path length provides exactly that.
    let now = SimTime::from_nanos(n.trace.len() as u64);
    let fail = |f: Failure, n: &Node| (f, n.trace.clone());
    let res: Result<(), Failure> = (|| {
        match ev {
            Event::Register { c } => {
                n.sched
                    .register(cid(c), cfg.limits[c], now)
                    .map_err(|e| Failure::SchedError(format!("register: {e:?}")))?;
                n.driver.cs[c].registered = true;
            }
            Event::Alloc { c, size } => {
                n.driver.cs[c].allocs_issued += 1;
                let (outcome, actions) = n
                    .sched
                    .alloc_request(cid(c), pid(c), size, ApiKind::Malloc, now)
                    .map_err(|e| Failure::SchedError(format!("alloc_request: {e:?}")))?;
                match outcome {
                    AllocOutcome::Granted => {
                        let addr = n.driver.next_addr;
                        n.driver.next_addr += 1;
                        n.sched
                            .alloc_done(cid(c), pid(c), addr, size, now)
                            .map_err(|e| Failure::SchedError(format!("alloc_done: {e:?}")))?;
                        n.driver.cs[c].live.push_back((addr, size));
                    }
                    AllocOutcome::Rejected => {}
                    AllocOutcome::Suspended { ticket } => {
                        n.driver.outstanding.insert(ticket, (c, size));
                    }
                }
                deliver(&mut n, actions, now)?;
            }
            Event::Free { c } => {
                let (addr, size) = n.driver.cs[c]
                    .live
                    .pop_front()
                    .expect("Free only enabled with live allocations");
                let (freed, actions) = n
                    .sched
                    .free(cid(c), pid(c), addr, now)
                    .map_err(|e| Failure::SchedError(format!("free: {e:?}")))?;
                if freed != size {
                    return Err(Failure::SchedError(format!(
                        "free(0x{addr:x}) returned {freed}, driver recorded {size}"
                    )));
                }
                deliver(&mut n, actions, now)?;
            }
            Event::Exit { c } => {
                n.driver.cs[c].exited = true;
                n.driver.cs[c].live.clear();
                let actions = n
                    .sched
                    .process_exit(cid(c), pid(c), now)
                    .map_err(|e| Failure::SchedError(format!("process_exit: {e:?}")))?;
                deliver(&mut n, actions, now)?;
            }
            Event::Close { c } => {
                n.driver.cs[c].closed = true;
                n.driver.cs[c].live.clear();
                let actions = n
                    .sched
                    .container_close(cid(c), now)
                    .map_err(|e| Failure::SchedError(format!("container_close: {e:?}")))?;
                deliver(&mut n, actions, now)?;
            }
        }
        check_state(cfg, &n)
    })();
    match res {
        Ok(()) => Ok(n),
        Err(f) => Err(fail(f, &n)),
    }
}

/// The per-state property suite (run after every transition).
fn check_state(cfg: &ModelConfig, n: &Node) -> Result<(), Failure> {
    n.sched.check_invariants().map_err(Failure::Invariant)?;
    if cfg.resume_rule == ResumeRule::FullGuarantee {
        if let ProgressState::Stalled { waiting } = deadlock::assess(&n.sched) {
            return Err(Failure::Stalled { waiting });
        }
    }
    // Wakeup consistency: scheduler-parked tickets == driver-owed tickets.
    let parked: BTreeMap<u64, ()> = n
        .sched
        .containers()
        .flat_map(|r| r.pending.iter().map(|p| (p.ticket, ())))
        .collect();
    let lost: Vec<u64> = n
        .driver
        .outstanding
        .keys()
        .filter(|t| !parked.contains_key(t))
        .copied()
        .collect();
    if !lost.is_empty() {
        return Err(Failure::LostWakeup { tickets: lost });
    }
    if let Some((&ticket, _)) = parked
        .iter()
        .find(|(t, _)| !n.driver.outstanding.contains_key(t))
    {
        // The scheduler holds a parked request the driver never issued —
        // from the driver's viewpoint that resume will arrive out of thin
        // air.
        return Err(Failure::PhantomWakeup { ticket });
    }
    Ok(())
}

/// Checks that apply only at terminal (no-event-enabled) states.
fn check_terminal(n: &Node) -> Result<(), Failure> {
    let assigned = n.sched.total_assigned();
    if !assigned.is_zero() {
        return Err(Failure::TerminalResidue { assigned });
    }
    if let Some((&ticket, _)) = n.driver.outstanding.iter().next() {
        return Err(Failure::LostWakeup {
            tickets: vec![ticket],
        });
    }
    debug_assert!(n
        .sched
        .containers()
        .all(|r| r.state == ContainerState::Closed));
    Ok(())
}

/// 128-bit digest of the canonical state vector (two independent
/// FNV-1a-style folds over the same words). Shared with the multi-GPU
/// checker ([`crate::multi`]).
pub(crate) fn digest(words: &[u64]) -> (u64, u64) {
    let mut a: u64 = 0xcbf29ce484222325;
    let mut b: u64 = 0x9e3779b97f4a7c15;
    for &w in words {
        a = (a ^ w).wrapping_mul(0x100000001b3);
        b = (b ^ w.rotate_left(17)).wrapping_mul(0xff51afd7ed558ccd);
        b ^= b >> 29;
    }
    (a, b)
}

/// Canonical encoding of a system state; see the module docs for the
/// bisimulation argument.
fn canonical(n: &Node) -> (u64, u64) {
    let mut words: Vec<u64> = Vec::with_capacity(16 + n.driver.cs.len() * 16);
    // Relative ranks for the time-valued fields every policy compares.
    let mut reg: Vec<(SimTime, usize)> = Vec::new();
    let mut susp: Vec<(SimTime, usize)> = Vec::new();
    for (c, _) in n.driver.cs.iter().enumerate() {
        if let Some(r) = n.sched.container(cid(c)) {
            if r.state != ContainerState::Closed {
                reg.push((r.registered_at, c));
                if let Some(s) = r.suspended_since {
                    susp.push((s, c));
                }
            }
        }
    }
    reg.sort();
    susp.sort();
    let rank = |list: &[(SimTime, usize)], c: usize| -> u64 {
        list.iter()
            .position(|&(_, i)| i == c)
            .map_or(u64::MAX, |p| p as u64)
    };
    for (c, d) in n.driver.cs.iter().enumerate() {
        words.push(
            u64::from(d.registered) | (u64::from(d.exited) << 1) | (u64::from(d.closed) << 2),
        );
        words.push(u64::from(d.allocs_issued));
        words.push(d.live.len() as u64);
        words.extend(d.live.iter().map(|&(_, s)| s.0));
        match n.sched.container(cid(c)) {
            None => words.push(u64::MAX),
            Some(r) => {
                words.push(match r.state {
                    ContainerState::Active => 1,
                    ContainerState::Suspended => 2,
                    ContainerState::Closed => 3,
                });
                words.push(r.assigned.0);
                words.push(r.used.0);
                words.push(rank(&reg, c));
                words.push(rank(&susp, c));
                words.push(u64::from(r.charged_pids.contains(&pid(c))));
                words.push(r.pending.len() as u64);
                words.extend(r.pending.iter().map(|p| p.size.0));
            }
        }
    }
    words.push(n.sched.total_assigned().0);
    words.push(n.sched.sticky_target().map_or(u64::MAX, |t| t.as_u64()));
    words.push(n.sched.policy_fingerprint());
    digest(&words)
}

/// Exhaustively explore `cfg`'s state space, checking every transition.
pub fn explore(cfg: &ModelConfig) -> CheckOutcome {
    let root = Node {
        sched: cfg.scheduler(),
        driver: Driver::new(cfg.limits.len()),
        trace: Vec::new(),
    };
    let mut stats = ExploreStats::default();
    let mut seen: HashSet<(u64, u64)> = HashSet::new();
    seen.insert(canonical(&root));
    stats.states = 1;
    // A VecDeque serves both orders: DFS pops the back, BFS the front.
    let mut work: VecDeque<Node> = VecDeque::new();
    work.push_back(root);
    while let Some(node) = match cfg.mode {
        SearchMode::Dfs => work.pop_back(),
        SearchMode::Bfs => work.pop_front(),
    } {
        let events = enabled(cfg, &node);
        if events.is_empty() {
            stats.terminals += 1;
            if let Err(failure) = check_terminal(&node) {
                return CheckOutcome::Fail {
                    failure,
                    trace: node.trace,
                    stats,
                };
            }
            continue;
        }
        for ev in events {
            stats.transitions += 1;
            let next = match apply(&node, ev, cfg) {
                Ok(n) => n,
                Err((failure, trace)) => {
                    return CheckOutcome::Fail {
                        failure,
                        trace,
                        stats,
                    }
                }
            };
            stats.max_depth = stats.max_depth.max(next.trace.len() as u64);
            if next.sched.containers().any(|r| r.is_suspended()) {
                stats.suspended_states += 1;
            }
            if seen.insert(canonical(&next)) {
                stats.states += 1;
                if stats.states > cfg.max_states {
                    return CheckOutcome::Fail {
                        failure: Failure::BoundExceeded {
                            states: cfg.max_states,
                        },
                        trace: next.trace,
                        stats,
                    };
                }
                work.push_back(next);
            }
        }
    }
    CheckOutcome::Pass(stats)
}

/// Replay an event trace against a fresh scheduler for `cfg`, re-running
/// the full per-state check suite at every step. Used by the
/// counterexample-replay tests; returns the final node state on success.
pub fn replay(cfg: &ModelConfig, trace: &[Event]) -> Result<(), (usize, Failure)> {
    let mut node = Node {
        sched: cfg.scheduler(),
        driver: Driver::new(cfg.limits.len()),
        trace: Vec::new(),
    };
    for (i, &ev) in trace.iter().enumerate() {
        node = apply(&node, ev, cfg).map_err(|(f, _)| (i, f))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(policy: PolicyKind, mode: SearchMode) -> ModelConfig {
        let u = Bytes::mib(256);
        ModelConfig {
            capacity: Bytes::new(u.0 * 2),
            ctx_overhead: Bytes::ZERO,
            charge_ctx: false,
            resume_rule: ResumeRule::FullGuarantee,
            limits: vec![Bytes::new(u.0 * 2), u],
            alloc_sizes: vec![u],
            max_allocs: 2,
            policy,
            seed: 7,
            max_states: 1_000_000,
            mode,
        }
    }

    #[test]
    fn tiny_config_passes_under_both_orders() {
        for mode in [SearchMode::Dfs, SearchMode::Bfs] {
            let out = explore(&tiny(PolicyKind::Fifo, mode));
            match out {
                CheckOutcome::Pass(stats) => {
                    assert!(stats.states > 10, "state space trivially small: {stats:?}");
                    assert!(stats.terminals > 0);
                    assert!(
                        stats.suspended_states > 0,
                        "configuration never suspends — checks nothing: {stats:?}"
                    );
                }
                CheckOutcome::Fail { failure, trace, .. } => {
                    panic!("tiny config failed: {failure} after {trace:?}")
                }
            }
        }
    }

    #[test]
    fn dfs_and_bfs_agree_on_state_count() {
        let a = explore(&tiny(PolicyKind::BestFit, SearchMode::Dfs));
        let b = explore(&tiny(PolicyKind::BestFit, SearchMode::Bfs));
        match (a, b) {
            (CheckOutcome::Pass(sa), CheckOutcome::Pass(sb)) => {
                assert_eq!(sa.states, sb.states);
                assert_eq!(sa.transitions, sb.transitions);
            }
            other => panic!("expected both to pass: {other:?}"),
        }
    }

    #[test]
    fn replay_of_legal_trace_passes() {
        let cfg = tiny(PolicyKind::Fifo, SearchMode::Bfs);
        let u = Bytes::mib(256);
        let trace = vec![
            Event::Register { c: 0 },
            Event::Register { c: 1 },
            Event::Alloc { c: 0, size: u },
            Event::Alloc { c: 0, size: u }, // fills device; C1 not yet asking
            Event::Alloc { c: 1, size: u }, // parked
            Event::Close { c: 0 },          // redistribution resumes C1
            Event::Close { c: 1 },
        ];
        replay(&cfg, &trace).expect("legal trace must replay cleanly");
    }

    #[test]
    fn random_policy_states_include_rng() {
        // Sanity: the Random policy explores at least as many canonical
        // states as FIFO on the same config (RNG state splits states).
        let f = explore(&tiny(PolicyKind::Fifo, SearchMode::Dfs));
        let r = explore(&tiny(PolicyKind::Random, SearchMode::Dfs));
        match (f, r) {
            (CheckOutcome::Pass(sf), CheckOutcome::Pass(sr)) => {
                assert!(sr.states >= sf.states);
            }
            other => panic!("expected both to pass: {other:?}"),
        }
    }
}
