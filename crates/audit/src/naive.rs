//! The **naive** GPU-sharing baseline and its deadlock witness.
//!
//! The paper's motivation (§I, and the authors' SC'16 poster it cites):
//! containers that acquire GPU memory *incrementally* while holding what
//! they already have can reach a state where every container waits for
//! memory held by another — hold-and-wait deadlock. ConVGPU's
//! full-guarantee discipline avoids it; this module demonstrates that the
//! baseline really does deadlock, by exhaustive search for a **minimal**
//! counterexample trace.
//!
//! [`NaiveScheduler`] is the obvious uncoordinated allocator: grant a
//! chunk if it fits the free pool, otherwise block the caller until
//! memory frees up. Each modeled container runs one task that allocates
//! its plan of chunks in order, then (run-to-completion) releases
//! everything at once — precisely the workload shape of the motivating
//! example. [`find_deadlock`] breadth-first-searches all interleavings
//! and returns the shortest trace reaching a state where every unfinished
//! task is blocked — which BFS guarantees is minimal.
//!
//! The `convgpu-audit` binary prints that witness next to the model
//! checker's proof that the real scheduler never stalls on any
//! interleaving, and the counterexample-replay test feeds the same
//! workload through the real [`Scheduler`] to show it completes.
//!
//! [`Scheduler`]: convgpu_scheduler::Scheduler

use convgpu_sim_core::units::Bytes;
use std::collections::{HashSet, VecDeque};
use std::fmt;

/// Configuration of the naive baseline model.
#[derive(Clone, Debug)]
pub struct NaiveConfig {
    /// Device capacity.
    pub capacity: Bytes,
    /// Per-container allocation plan: the chunks each task acquires, in
    /// order, before completing and releasing everything.
    pub plans: Vec<Vec<Bytes>>,
}

impl NaiveConfig {
    /// The classic two-task example: a 1 GiB device and two tasks that
    /// each grab 512 MiB twice. Either completes alone; interleaved they
    /// deadlock.
    pub fn classic() -> Self {
        let half = Bytes::mib(512);
        NaiveConfig {
            capacity: Bytes::gib(1),
            plans: vec![vec![half, half], vec![half, half]],
        }
    }
}

/// One scheduling step of the naive model: "let task `c` run next".
/// Running means requesting its next chunk, or completing (releasing
/// everything) once the plan is exhausted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NaiveStep(pub usize);

/// The uncoordinated allocator: grant if it fits, else block.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct NaiveScheduler {
    capacity: Bytes,
    /// Memory currently held per task.
    held: Vec<Bytes>,
    /// Next chunk index per task.
    next_chunk: Vec<usize>,
    /// A blocked task's pending chunk.
    blocked: Vec<Option<Bytes>>,
    /// Completed tasks.
    done: Vec<bool>,
}

impl NaiveScheduler {
    /// Fresh system for `cfg`.
    pub fn new(cfg: &NaiveConfig) -> Self {
        let n = cfg.plans.len();
        NaiveScheduler {
            capacity: cfg.capacity,
            held: vec![Bytes::ZERO; n],
            next_chunk: vec![0; n],
            blocked: vec![None; n],
            done: vec![false; n],
        }
    }

    /// Unheld device memory.
    pub fn free_pool(&self) -> Bytes {
        let held: u64 = self.held.iter().map(|b| b.0).sum();
        self.capacity.saturating_sub(Bytes::new(held))
    }

    /// Tasks that are neither done nor blocked (can take a step).
    fn runnable(&self, cfg: &NaiveConfig) -> Vec<usize> {
        (0..cfg.plans.len())
            .filter(|&c| !self.done[c] && self.blocked[c].is_none())
            .collect()
    }

    /// Every unfinished task is blocked on a chunk larger than the free
    /// pool — the hold-and-wait deadlock.
    pub fn is_deadlocked(&self) -> bool {
        let unfinished: Vec<usize> = (0..self.done.len()).filter(|&c| !self.done[c]).collect();
        !unfinished.is_empty() && unfinished.iter().all(|&c| self.blocked[c].is_some())
    }

    /// Let task `c` run: request its next chunk, or complete. Wakes any
    /// blocked task whose chunk now fits (in index order, greedily) —
    /// the baseline *does* hand freed memory to waiters; what it lacks
    /// is any guarantee discipline.
    pub fn step(&mut self, cfg: &NaiveConfig, c: usize) {
        debug_assert!(!self.done[c] && self.blocked[c].is_none());
        let plan = &cfg.plans[c];
        if self.next_chunk[c] == plan.len() {
            self.held[c] = Bytes::ZERO;
            self.done[c] = true;
            self.wake_fitting();
        } else {
            let chunk = plan[self.next_chunk[c]];
            if chunk <= self.free_pool() {
                self.held[c] += chunk;
                self.next_chunk[c] += 1;
            } else {
                self.blocked[c] = Some(chunk);
            }
        }
    }

    fn wake_fitting(&mut self) {
        loop {
            let mut woke = false;
            for c in 0..self.blocked.len() {
                if let Some(chunk) = self.blocked[c] {
                    if chunk <= self.free_pool() {
                        self.blocked[c] = None;
                        self.held[c] += chunk;
                        self.next_chunk[c] += 1;
                        woke = true;
                    }
                }
            }
            if !woke {
                break;
            }
        }
    }
}

/// A minimal deadlock witness: the trace, plus a human-readable
/// narrative of each step for printing.
#[derive(Clone, Debug)]
pub struct NaiveWitness {
    /// The shortest interleaving reaching deadlock.
    pub trace: Vec<NaiveStep>,
    /// One line per step: what happened and the state after.
    pub narrative: Vec<String>,
    /// The deadlocked end state.
    pub end: NaiveScheduler,
    /// States explored to find it.
    pub states: usize,
}

impl fmt::Display for NaiveWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for line in &self.narrative {
            writeln!(f, "{line}")?;
        }
        let waiting: Vec<String> = (0..self.end.done.len())
            .filter_map(|c| {
                self.end.blocked[c].map(|chunk| {
                    format!("T{} holds {}, waits for {}", c + 1, self.end.held[c], chunk)
                })
            })
            .collect();
        write!(
            f,
            "DEADLOCK: free pool {} — {}",
            self.end.free_pool(),
            waiting.join("; ")
        )
    }
}

/// BFS over all interleavings of `cfg` for the shortest deadlock trace.
/// Returns `None` if the baseline cannot deadlock under `cfg` (e.g. a
/// single task, or chunks that always fit).
pub fn find_deadlock(cfg: &NaiveConfig) -> Option<NaiveWitness> {
    let root = NaiveScheduler::new(cfg);
    let mut seen: HashSet<NaiveScheduler> = HashSet::new();
    seen.insert(root.clone());
    let mut queue: VecDeque<(NaiveScheduler, Vec<NaiveStep>)> = VecDeque::new();
    queue.push_back((root, Vec::new()));
    while let Some((state, trace)) = queue.pop_front() {
        for c in state.runnable(cfg) {
            let mut next = state.clone();
            next.step(cfg, c);
            let mut t = trace.clone();
            t.push(NaiveStep(c));
            if next.is_deadlocked() {
                return Some(witness(cfg, t, seen.len()));
            }
            if seen.insert(next.clone()) {
                queue.push_back((next, t));
            }
        }
    }
    None
}

/// Re-run `trace` from scratch, narrating each step.
fn witness(cfg: &NaiveConfig, trace: Vec<NaiveStep>, states: usize) -> NaiveWitness {
    let mut s = NaiveScheduler::new(cfg);
    let mut narrative = Vec::new();
    for (i, &NaiveStep(c)) in trace.iter().enumerate() {
        let before_chunk = cfg.plans[c].get(s.next_chunk[c]).copied();
        s.step(cfg, c);
        let what = match before_chunk {
            None => "completes, releases everything".to_string(),
            Some(chunk) if s.blocked[c].is_some() => {
                format!("requests {chunk} -> BLOCKS (free {})", s.free_pool())
            }
            Some(chunk) => format!("acquires {chunk} (free {})", s.free_pool()),
        };
        narrative.push(format!("  {}. T{} {}", i + 1, c + 1, what));
    }
    NaiveWitness {
        trace,
        narrative,
        end: s,
        states,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_config_deadlocks_minimally() {
        let w = find_deadlock(&NaiveConfig::classic()).expect("classic config must deadlock");
        // Minimal: T1 takes 512, T2 takes 512, one of them blocks, the
        // other blocks — four steps, and BFS can do no better.
        assert_eq!(w.trace.len(), 4, "witness not minimal: {:?}", w.trace);
        assert!(w.end.is_deadlocked());
        assert!(w.end.free_pool().is_zero());
    }

    #[test]
    fn single_task_never_deadlocks() {
        let cfg = NaiveConfig {
            capacity: Bytes::gib(1),
            plans: vec![vec![Bytes::mib(512), Bytes::mib(512)]],
        };
        assert!(find_deadlock(&cfg).is_none());
    }

    #[test]
    fn fitting_chunks_never_deadlock() {
        let cfg = NaiveConfig {
            capacity: Bytes::gib(1),
            plans: vec![vec![Bytes::mib(256)], vec![Bytes::mib(256)]],
        };
        assert!(find_deadlock(&cfg).is_none());
    }
}
