//! A tiny deterministic property-testing harness.
//!
//! The sealed build environment has no `proptest`, so randomized tests
//! run on this harness instead: a [`DetRng`] per case, derived from a
//! master seed so runs are reproducible, with the failing case's seed
//! printed for one-case replay.
//!
//! ```no_run
//! use convgpu_audit::prop;
//!
//! prop::cases("example").run(|rng| {
//!     let x = rng.range_inclusive(0, 100);
//!     if x + 1 <= x {
//!         return Err(format!("overflow at {x}"));
//!     }
//!     Ok(())
//! });
//! ```
//!
//! Environment overrides:
//!
//! * `CONVGPU_PROP_CASES` — cases per property (default 128);
//! * `CONVGPU_PROP_SEED` — master seed. To replay one failing case, set
//!   this to the *case seed* from the failure message together with
//!   `CONVGPU_PROP_CASES=1`.

use convgpu_sim_core::rng::DetRng;

/// Default number of cases per property.
pub const DEFAULT_CASES: u32 = 128;
/// Default master seed.
pub const DEFAULT_SEED: u64 = 0xC0FF_EE00;

/// A configured property run; see [`cases`].
#[derive(Clone, Debug)]
pub struct Runner {
    name: String,
    cases: u32,
    seed: u64,
}

/// Start a property named `name` with the environment-configured case
/// count and seed.
pub fn cases(name: &str) -> Runner {
    Runner {
        name: name.to_string(),
        cases: env_u64("CONVGPU_PROP_CASES").map_or(DEFAULT_CASES, |v| v as u32),
        seed: env_u64("CONVGPU_PROP_SEED").unwrap_or(DEFAULT_SEED),
    }
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok()?.trim().parse().ok()
}

impl Runner {
    /// Override the case count (tests that need more or fewer).
    pub fn count(mut self, cases: u32) -> Self {
        self.cases = cases;
        self
    }

    /// The seed for case `i`: spaced by a golden-ratio stride so case
    /// seeds never collide for realistic case counts, and case 0 of a
    /// replay run reproduces any reported case seed exactly.
    fn case_seed(&self, i: u32) -> u64 {
        self.seed
            .wrapping_add(u64::from(i).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Run the property over every case; panics (test failure) on the
    /// first `Err`, printing the case seed needed to replay it alone.
    pub fn run<F>(self, mut property: F)
    where
        F: FnMut(&mut DetRng) -> Result<(), String>,
    {
        for i in 0..self.cases {
            let case_seed = self.case_seed(i);
            let mut rng = DetRng::seed_from_u64(case_seed);
            if let Err(msg) = property(&mut rng) {
                panic!(
                    "property '{}' failed on case {i}/{}: {msg}\n  replay: \
                     CONVGPU_PROP_SEED={case_seed} CONVGPU_PROP_CASES=1",
                    self.name, self.cases
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut n = 0;
        cases("count").count(17).run(|_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 17);
    }

    #[test]
    #[should_panic(expected = "property 'fails' failed on case 0")]
    fn failing_property_panics_with_seed() {
        cases("fails").count(4).run(|_| Err("nope".into()));
    }

    #[test]
    fn case_zero_replays_reported_seed() {
        let r = cases("replay").count(8);
        let target = r.case_seed(5);
        let replay = Runner {
            name: "replay".into(),
            cases: 1,
            seed: target,
        };
        assert_eq!(replay.case_seed(0), target);
    }
}
