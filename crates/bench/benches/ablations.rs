//! Ablation benches for the design choices called out in DESIGN.md §6:
//!
//! * `resume_rule` — the paper's full-guarantee resume vs resuming as
//!   soon as the pending allocation fits;
//! * `ctx_overhead` — charging the 66 MiB per-pid context overhead vs
//!   ignoring it;
//! * `transport` — real UNIX-socket IPC vs direct in-process calls;
//! * `allocator` — paged (CUDA-realistic) vs contiguity-constrained
//!   first-fit device allocator;
//! * `multi_gpu_placement` — the §V extension's placement policies.
//!
//! Run: `cargo bench -p convgpu-bench --bench ablations`

use convgpu_bench::micro::{BenchmarkId, Criterion};
use convgpu_bench::policies::PolicyExperiment;
use convgpu_core::handler::ServiceHandler;
use convgpu_core::service::{InProcEndpoint, SchedulerService};
use convgpu_gpu_sim::api::CudaApi;
use convgpu_gpu_sim::device::{DeviceConfig, GpuDevice};
use convgpu_gpu_sim::latency::LatencyModel;
use convgpu_gpu_sim::memory::AllocatorKind;
use convgpu_gpu_sim::runtime::RawCudaRuntime;
use convgpu_ipc::client::SchedulerClient;
use convgpu_ipc::endpoint::SchedulerEndpoint;
use convgpu_ipc::server::SocketServer;
use convgpu_scheduler::core::{Scheduler, SchedulerConfig};
use convgpu_scheduler::multi_gpu::{MultiGpuScheduler, PlacementPolicy};
use convgpu_scheduler::policy::PolicyKind;
use convgpu_scheduler::state::ResumeRule;
use convgpu_sim_core::clock::RealClock;
use convgpu_sim_core::ids::ContainerId;
use convgpu_sim_core::time::SimTime;
use convgpu_sim_core::units::Bytes;
use convgpu_wrapper::module::WrapperModule;
use std::sync::Arc;

fn bench_resume_rule(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_resume_rule");
    for (label, rule) in [
        ("full_guarantee", ResumeRule::FullGuarantee),
        ("pending_fits", ResumeRule::PendingFits),
    ] {
        group.bench_with_input(BenchmarkId::new("n30", label), &rule, |b, &rule| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                let mut exp = PolicyExperiment::paper(30, PolicyKind::BestFit, seed);
                exp.resume_rule = rule;
                exp.run()
            })
        });
    }
    group.finish();
}

fn bench_ctx_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_ctx_overhead");
    for (label, charge) in [("charged_66mib", true), ("ignored", false)] {
        group.bench_with_input(BenchmarkId::new("n30", label), &charge, |b, &charge| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                let mut exp = PolicyExperiment::paper(30, PolicyKind::Fifo, seed);
                exp.charge_ctx_overhead = charge;
                exp.run()
            })
        });
    }
    group.finish();
}

fn bench_transport(c: &mut Criterion) {
    let clock = RealClock::handle();
    let device = Arc::new(GpuDevice::tesla_k20m());
    let raw = Arc::new(RawCudaRuntime::new(
        Arc::clone(&device),
        LatencyModel::zero(),
        clock.clone(),
    ));
    let dir = std::env::temp_dir().join(format!("convgpu-bench-abl-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let service = Arc::new(SchedulerService::new(
        Scheduler::new(SchedulerConfig::paper(), PolicyKind::BestFit.build(0)),
        clock,
        dir.clone(),
    ));
    let server = SocketServer::bind(
        &dir.join("sched.sock"),
        Arc::new(ServiceHandler::new(Arc::clone(&service))),
    )
    .unwrap();
    let client = SchedulerClient::connect(server.path()).unwrap();
    client.register(ContainerId(1), Bytes::gib(1)).unwrap();
    let socket_wrapper =
        WrapperModule::new(ContainerId(1), Arc::clone(&raw) as _, Arc::new(client));
    service.register(ContainerId(2), Bytes::gib(1)).unwrap();
    let inproc_wrapper = WrapperModule::new(
        ContainerId(2),
        Arc::clone(&raw) as _,
        Arc::new(InProcEndpoint::new(Arc::clone(&service))),
    );

    let mut group = c.benchmark_group("ablation_transport");
    group.bench_function("gated_malloc_unix_socket", |b| {
        b.iter(|| {
            let p = socket_wrapper.cuda_malloc(1, Bytes::mib(1)).unwrap();
            socket_wrapper.cuda_free(1, p).unwrap();
        })
    });
    group.bench_function("gated_malloc_in_proc", |b| {
        b.iter(|| {
            let p = inproc_wrapper.cuda_malloc(2, Bytes::mib(1)).unwrap();
            inproc_wrapper.cuda_free(2, p).unwrap();
        })
    });
    group.finish();
    server.shutdown();
}

fn bench_allocator(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_allocator");
    for (label, kind) in [
        ("paged", AllocatorKind::Paged),
        ("first_fit", AllocatorKind::FirstFit),
    ] {
        group.bench_with_input(BenchmarkId::new("churn", label), &kind, |b, &kind| {
            let device = GpuDevice::new(DeviceConfig {
                allocator: kind,
                ..DeviceConfig::default()
            });
            b.iter(|| {
                // 64 interleaved alloc/free pairs of mixed sizes.
                let mut ptrs = Vec::new();
                for i in 0..64u64 {
                    let size = Bytes::mib(1 + (i % 7) * 3);
                    ptrs.push(device.alloc(1, size).unwrap().0);
                    if i % 3 == 0 {
                        let p = ptrs.swap_remove((i as usize * 7) % ptrs.len());
                        device.free(1, p).unwrap();
                    }
                }
                for p in ptrs {
                    device.free(1, p).unwrap();
                }
            })
        });
    }
    group.finish();
}

fn bench_multi_gpu_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_multi_gpu_placement");
    for (label, placement) in [
        ("round_robin", PlacementPolicy::RoundRobin),
        ("most_free", PlacementPolicy::MostFree),
        ("best_fit_device", PlacementPolicy::BestFitDevice),
    ] {
        group.bench_with_input(
            BenchmarkId::new("register_30", label),
            &placement,
            |b, &placement| {
                b.iter(|| {
                    let mut m = MultiGpuScheduler::new(
                        &[Bytes::gib(5), Bytes::gib(16)],
                        PolicyKind::BestFit,
                        placement,
                        1,
                    );
                    for i in 1..=30u64 {
                        m.register(
                            ContainerId(i),
                            Bytes::mib(128 << (i % 6)),
                            SimTime::from_secs(i),
                        )
                        .unwrap();
                    }
                    m
                })
            },
        );
    }
    group.finish();
}

fn main() {
    let mut c = Criterion::default();
    bench_resume_rule(&mut c);
    bench_ctx_overhead(&mut c);
    bench_transport(&mut c);
    bench_allocator(&mut c);
    bench_multi_gpu_placement(&mut c);
}
