//! Criterion bench behind paper Fig. 4: per-call response time of the
//! hooked CUDA APIs, raw vs wrapped (real UNIX-socket IPC).
//!
//! Run: `cargo bench -p convgpu-bench --bench api_response`

use convgpu_bench::micro::Criterion;
use convgpu_core::handler::ServiceHandler;
use convgpu_core::service::SchedulerService;
use convgpu_gpu_sim::api::CudaApi;
use convgpu_gpu_sim::device::GpuDevice;
use convgpu_gpu_sim::latency::LatencyModel;
use convgpu_gpu_sim::runtime::RawCudaRuntime;
use convgpu_ipc::client::SchedulerClient;
use convgpu_ipc::endpoint::SchedulerEndpoint;
use convgpu_ipc::server::SocketServer;
use convgpu_scheduler::core::{Scheduler, SchedulerConfig};
use convgpu_scheduler::policy::PolicyKind;
use convgpu_sim_core::clock::RealClock;
use convgpu_sim_core::ids::ContainerId;
use convgpu_sim_core::units::Bytes;
use convgpu_wrapper::module::WrapperModule;
use std::sync::Arc;

struct Stack {
    raw: Arc<RawCudaRuntime>,
    wrapper: WrapperModule,
    _server: SocketServer,
}

fn stack() -> Stack {
    let clock = RealClock::handle();
    let device = Arc::new(GpuDevice::tesla_k20m());
    // Zero device latency: the bench isolates the *wrapper/IPC* cost.
    let raw = Arc::new(RawCudaRuntime::new(
        Arc::clone(&device),
        LatencyModel::zero(),
        clock.clone(),
    ));
    let dir = std::env::temp_dir().join(format!("convgpu-bench-api-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let service = Arc::new(SchedulerService::new(
        Scheduler::new(SchedulerConfig::paper(), PolicyKind::BestFit.build(0)),
        clock,
        dir.clone(),
    ));
    let server = SocketServer::bind(
        &dir.join("sched.sock"),
        Arc::new(ServiceHandler::new(Arc::clone(&service))),
    )
    .unwrap();
    let client = SchedulerClient::connect(server.path()).unwrap();
    client.register(ContainerId(1), Bytes::gib(4)).unwrap();
    let wrapper = WrapperModule::new(ContainerId(1), Arc::clone(&raw) as _, Arc::new(client));
    Stack {
        raw,
        wrapper,
        _server: server,
    }
}

fn bench_api_response(c: &mut Criterion) {
    let stack = stack();
    let mut group = c.benchmark_group("fig4_api_response");

    group.bench_function("cudaMalloc_without_convgpu", |b| {
        b.iter(|| {
            let p = stack.raw.cuda_malloc(1, Bytes::mib(1)).unwrap();
            stack.raw.cuda_free(1, p).unwrap();
        })
    });
    group.bench_function("cudaMalloc_with_convgpu", |b| {
        b.iter(|| {
            let p = stack.wrapper.cuda_malloc(2, Bytes::mib(1)).unwrap();
            stack.wrapper.cuda_free(2, p).unwrap();
        })
    });
    group.bench_function("cudaMemGetInfo_without_convgpu", |b| {
        b.iter(|| stack.raw.cuda_mem_get_info(1).unwrap())
    });
    group.bench_function("cudaMemGetInfo_with_convgpu", |b| {
        b.iter(|| stack.wrapper.cuda_mem_get_info(2).unwrap())
    });
    group.bench_function("cudaMallocManaged_with_convgpu", |b| {
        b.iter(|| {
            let p = stack.wrapper.cuda_malloc_managed(2, Bytes::mib(1)).unwrap();
            stack.wrapper.cuda_free(2, p).unwrap();
        })
    });
    group.finish();
}

fn main() {
    let mut c = Criterion::default();
    bench_api_response(&mut c);
}
