//! Criterion bench behind paper Fig. 5: container creation cost, with vs
//! without ConVGPU. The engine cost model is compressed 100× so each
//! sample is fast; the *ratio* is the result.
//!
//! Run: `cargo bench -p convgpu-bench --bench creation_time`

use convgpu_bench::micro::Criterion;
use convgpu_core::middleware::{ConVGpu, ConVGpuConfig, TransportMode};
use convgpu_core::nvidia_docker::RunCommand;
use std::time::Duration;

fn bench_creation(c: &mut Criterion) {
    let convgpu = ConVGpu::start(ConVGpuConfig {
        time_scale: 0.01,
        transport: TransportMode::UnixSocket,
        ..ConVGpuConfig::default()
    })
    .expect("start middleware");

    let mut group = c.benchmark_group("fig5_creation_time");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(8));

    group.bench_function("create_without_convgpu", |b| {
        b.iter(|| {
            let id = convgpu
                .nvidia_docker()
                .run_unmanaged(&RunCommand::new("cuda-app"))
                .unwrap();
            convgpu.engine().stop(id, 0).unwrap();
        })
    });
    group.bench_function("create_with_convgpu", |b| {
        b.iter(|| {
            let prepared = convgpu
                .nvidia_docker()
                .run(&RunCommand::new("cuda-app").nvidia_memory("256m"))
                .unwrap();
            convgpu.engine().stop(prepared.id, 0).unwrap();
            convgpu.wait_closed(prepared.id, Duration::from_secs(5));
        })
    });
    group.finish();
}

fn main() {
    let mut c = Criterion::default();
    bench_creation(&mut c);
}
