//! Criterion bench behind paper Fig. 6: MNIST training-run cost model in
//! virtual time, baseline vs ConVGPU-wrapped. Virtual time makes each
//! sample milliseconds of wall time.
//!
//! Run: `cargo bench -p convgpu-bench --bench mnist_runtime`

use convgpu_bench::fig6::run_fig6;
use convgpu_bench::micro::Criterion;
use convgpu_sim_core::time::SimDuration;

fn bench_mnist(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_mnist_runtime");
    group.sample_size(10);
    group.bench_function("virtual_run_200_steps_both_setups", |b| {
        b.iter(|| run_fig6(200, Some(SimDuration::from_micros(47))))
    });
    group.finish();
}

fn main() {
    let mut c = Criterion::default();
    bench_mnist(&mut c);
}
