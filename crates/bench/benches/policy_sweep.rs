//! Criterion bench behind paper Figs. 7/8 (Tables IV/V): one full
//! discrete-event run per policy at the paper's heaviest point (N = 38).
//! Measures the experiment engine itself — a complete paper sweep is
//! 18 × 4 × 6 of these.
//!
//! Run: `cargo bench -p convgpu-bench --bench policy_sweep`

use convgpu_bench::micro::{BenchmarkId, Criterion};
use convgpu_bench::policies::PolicyExperiment;
use convgpu_scheduler::policy::PolicyKind;

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_fig8_policy_runs");
    for policy in PolicyKind::ALL {
        group.bench_with_input(
            BenchmarkId::new("n38", policy.label()),
            &policy,
            |b, &policy| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    PolicyExperiment::paper(38, policy, seed).run()
                })
            },
        );
    }
    group.finish();
}

fn main() {
    let mut c = Criterion::default();
    bench_policies(&mut c);
}
