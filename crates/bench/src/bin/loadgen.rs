//! `loadgen` — hot-path throughput campaign + CI perf gate.
//!
//! ```text
//! cargo run --release -p convgpu-bench --bin loadgen -- \
//!     [--sharded] [--devices=N] \
//!     [--cluster] [--nodes=N] [--codec=json|binary] \
//!     [--migration] [--kill-node-at=N] \
//!     [--transport-compare] \
//!     [--containers=N] [--workers=K] [--rounds=R] [--quick] \
//!     [--transport=inproc|socket-json|socket-binary|tcp-json|tcp-binary] \
//!     [--out=BENCH_3.json] [--baseline=ci/perf_baseline.json]
//! ```
//!
//! Runs the [`convgpu_bench::loadgen`] campaign for all four policies
//! (or, with `--sharded`, the multi-GPU campaign for all three
//! placement policies, writing the `BENCH_4.json` schema; or, with
//! `--cluster`, the routed multi-socket campaign for all three Swarm
//! strategies, writing the `BENCH_7.json` schema; or, with
//! `--migration`, the kill-node fault campaign — one node's server is
//! shut down `--kill-node-at` containers into the storm and the router
//! must migrate its containers to the survivor — writing the
//! `BENCH_8.json` schema with steady/recovery latency percentiles; or,
//! with `--transport-compare`, the same storm over a UNIX socket and a
//! TCP loopback socket back to back, writing the `BENCH_9.json` schema
//! whose `transport_tcp_vs_unix_ratio` the perf-trend step gates),
//! prints a summary table, writes the machine-readable report to
//! `--out`, and — when `--baseline` is given — exits non-zero if the
//! aggregate throughput regressed more than the allowed envelope
//! ([`convgpu_bench::loadgen::BASELINE_RETENTION`]). The sharded gate
//! reads the baseline's `sharded_total_decisions_per_sec` field and the
//! migration gate `migration_total_decisions_per_sec`. The cluster
//! campaign is artifact-only (routed throughput is too
//! machine-sensitive to gate) and rejects `--baseline`.

use convgpu_bench::loadgen::{
    check_baseline, check_migration_baseline, check_sharded_baseline, render_cluster_json,
    render_json, render_migration_json, render_sharded_json, render_transport_json, run_cluster,
    run_loadgen, run_migration, run_sharded, run_transport_compare, BaselineVerdict,
    ClusterLoadConfig, LoadgenConfig, MigrationLoadConfig, ShardedConfig, Transport,
    TransportCompareConfig,
};
use convgpu_bench::report::format_table;
use convgpu_ipc::binary::WireCodec;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: loadgen [--sharded] [--devices=N]\n\
         \x20              [--cluster] [--nodes=N] [--codec=json|binary]\n\
         \x20              [--migration] [--kill-node-at=N]\n\
         \x20              [--transport-compare]\n\
         \x20              [--containers=N] [--workers=K] [--rounds=R] [--quick]\n\
         \x20              [--transport=inproc|socket-json|socket-binary|tcp-json|tcp-binary]\n\
         \x20              [--out=FILE] [--baseline=FILE]"
    );
    ExitCode::from(2)
}

/// Report one transport-compare campaign (UNIX vs TCP loopback).
/// Artifact-only here; the ratio is gated by the unified perf-trend
/// step against its `transport_tcp_vs_unix_ratio` baseline.
fn run_transport_campaign(cfg: &TransportCompareConfig, out: Option<PathBuf>) -> ExitCode {
    println!(
        "loadgen (transport): {} containers x {} workers, {} rounds, policy {}, codec {}, \
         unix vs tcp-loopback",
        cfg.base.containers,
        cfg.base.workers,
        cfg.base.rounds,
        cfg.policy.label(),
        cfg.codec.label()
    );
    let report = run_transport_compare(cfg);

    let table = format_table(
        &[
            "transport".into(),
            "decisions".into(),
            "suspensions".into(),
            "decisions/s".into(),
            "p50 ms".into(),
            "p95 ms".into(),
            "p99 ms".into(),
        ],
        &[("unix", &report.unix), ("tcp", &report.tcp)]
            .iter()
            .map(|(scheme, r)| {
                vec![
                    (*scheme).into(),
                    r.decisions.to_string(),
                    r.suspensions.to_string(),
                    format!("{:.0}", r.decisions_per_sec),
                    format!("{:.4}", r.quantile_ms(0.50)),
                    format!("{:.4}", r.quantile_ms(0.95)),
                    format!("{:.4}", r.quantile_ms(0.99)),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    println!(
        "PERF loadgen transport_tcp_vs_unix_ratio={:.4} unix={:.0} tcp={:.0} codec={}",
        report.tcp_vs_unix_ratio(),
        report.unix_decisions_per_sec(),
        report.tcp_decisions_per_sec(),
        cfg.codec.label()
    );

    if let Some(path) = out {
        let text = render_transport_json(&report);
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("loadgen: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {} ({} bytes)", path.display(), text.len());
    }
    ExitCode::SUCCESS
}

/// Report one routed cluster campaign (artifact-only, never gated).
fn run_cluster_campaign(cfg: &ClusterLoadConfig, out: Option<PathBuf>) -> ExitCode {
    println!(
        "loadgen (cluster): {} containers x {} workers, {} nodes x {} device(s) x {} MiB, \
         policy {}, codec {}",
        cfg.base.containers,
        cfg.base.workers,
        cfg.nodes,
        cfg.devices_per_node,
        cfg.base.capacity.as_mib(),
        cfg.policy.label(),
        cfg.codec.label()
    );
    let report = run_cluster(cfg);

    let table = format_table(
        &[
            "strategy".into(),
            "decisions".into(),
            "suspensions".into(),
            "homes/node".into(),
            "retries".into(),
            "decisions/s".into(),
            "p50 ms".into(),
            "p95 ms".into(),
            "p99 ms".into(),
        ],
        &report
            .runs
            .iter()
            .map(|r| {
                vec![
                    r.strategy.label().into(),
                    r.decisions.to_string(),
                    r.suspensions.to_string(),
                    r.containers_per_node
                        .iter()
                        .map(u64::to_string)
                        .collect::<Vec<_>>()
                        .join("/"),
                    r.retries.to_string(),
                    format!("{:.0}", r.decisions_per_sec),
                    format!("{:.4}", r.quantile_ms(0.50)),
                    format!("{:.4}", r.quantile_ms(0.95)),
                    format!("{:.4}", r.quantile_ms(0.99)),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    println!(
        "PERF loadgen cluster_total_decisions_per_sec={:.0} nodes={} codec={}",
        report.cluster_total_decisions_per_sec(),
        cfg.nodes,
        cfg.codec.label()
    );

    if let Some(path) = out {
        let text = render_cluster_json(&report);
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("loadgen: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {} ({} bytes)", path.display(), text.len());
    }
    ExitCode::SUCCESS
}

/// Report and gate one kill-node fault campaign.
fn run_migration_campaign(
    cfg: &MigrationLoadConfig,
    out: Option<PathBuf>,
    baseline: Option<PathBuf>,
) -> ExitCode {
    println!(
        "loadgen (migration): {} containers x {} workers, {} nodes x {} device(s) x {} MiB, \
         policy {}, strategy {}, kill n{} at container {}",
        cfg.base.containers,
        cfg.base.workers,
        cfg.nodes,
        cfg.devices_per_node,
        cfg.base.capacity.as_mib(),
        cfg.policy.label(),
        cfg.strategy.label(),
        cfg.kill_node,
        cfg.kill_at
    );
    let report = run_migration(cfg);

    let table = format_table(
        &[
            "phase".into(),
            "decisions".into(),
            "p50 ms".into(),
            "p95 ms".into(),
            "p99 ms".into(),
        ],
        &[&report.steady, &report.recovery]
            .iter()
            .zip(["steady", "recovery"])
            .map(|(h, phase)| {
                let q = |q: f64| format!("{:.4}", h.quantile_ns(q).unwrap_or(0.0) / 1e6);
                vec![
                    phase.into(),
                    h.count().to_string(),
                    q(0.50),
                    q(0.95),
                    q(0.99),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    println!(
        "migrations: {} completed, {} rejected; {} tolerated errors in the death window",
        report.migrations_completed, report.migrations_rejected, report.errors
    );
    println!(
        "PERF loadgen migration_total_decisions_per_sec={:.0} nodes={} strategy={}",
        report.decisions_per_sec,
        cfg.nodes,
        cfg.strategy.label()
    );

    if let Some(path) = out {
        let text = render_migration_json(&report);
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("loadgen: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {} ({} bytes)", path.display(), text.len());
    }

    if let Some(path) = baseline {
        match check_migration_baseline(&report, &path) {
            Ok(BaselineVerdict::Pass { measured, baseline }) => {
                println!("perf gate: PASS — {measured:.0} decisions/s vs baseline {baseline:.0}");
            }
            Ok(BaselineVerdict::Regressed {
                measured,
                baseline,
                floor,
            }) => {
                eprintln!(
                    "perf gate: FAIL — {measured:.0} decisions/s is below the floor \
                     {floor:.0} (baseline {baseline:.0}, >20% regression)"
                );
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("perf gate: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Report and gate one sharded campaign.
fn run_sharded_campaign(
    cfg: &ShardedConfig,
    out: Option<PathBuf>,
    baseline: Option<PathBuf>,
) -> ExitCode {
    println!(
        "loadgen (sharded): {} containers x {} workers, {} devices x {} MiB, \
         policy {}, transport {}",
        cfg.base.containers,
        cfg.base.workers,
        cfg.devices,
        cfg.base.capacity.as_mib(),
        cfg.policy.label(),
        cfg.base.transport.label()
    );
    let report = run_sharded(cfg);

    let table = format_table(
        &[
            "placement".into(),
            "decisions".into(),
            "suspensions".into(),
            "homes/device".into(),
            "decisions/s".into(),
            "p50 ms".into(),
            "p95 ms".into(),
            "p99 ms".into(),
        ],
        &report
            .runs
            .iter()
            .map(|r| {
                vec![
                    r.placement.label().into(),
                    r.decisions.to_string(),
                    r.suspensions.to_string(),
                    r.containers_per_device
                        .iter()
                        .map(u64::to_string)
                        .collect::<Vec<_>>()
                        .join("/"),
                    format!("{:.0}", r.decisions_per_sec),
                    format!("{:.4}", r.quantile_ms(0.50)),
                    format!("{:.4}", r.quantile_ms(0.95)),
                    format!("{:.4}", r.quantile_ms(0.99)),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    println!(
        "PERF loadgen sharded_total_decisions_per_sec={:.0} devices={} transport={}",
        report.sharded_total_decisions_per_sec(),
        cfg.devices,
        cfg.base.transport.label()
    );

    if let Some(path) = out {
        let text = render_sharded_json(&report);
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("loadgen: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {} ({} bytes)", path.display(), text.len());
    }

    if let Some(path) = baseline {
        match check_sharded_baseline(&report, &path) {
            Ok(BaselineVerdict::Pass { measured, baseline }) => {
                println!("perf gate: PASS — {measured:.0} decisions/s vs baseline {baseline:.0}");
            }
            Ok(BaselineVerdict::Regressed {
                measured,
                baseline,
                floor,
            }) => {
                eprintln!(
                    "perf gate: FAIL — {measured:.0} decisions/s is below the floor \
                     {floor:.0} (baseline {baseline:.0}, >20% regression)"
                );
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("perf gate: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut cfg = LoadgenConfig::standard();
    let mut sharded = false;
    let mut cluster = false;
    let mut migration = false;
    let mut transport_compare = false;
    let mut kill_at: Option<u32> = None;
    let mut devices: u32 = ShardedConfig::standard().devices;
    let mut nodes: u32 = ClusterLoadConfig::standard().nodes;
    let mut codec: WireCodec = ClusterLoadConfig::standard().codec;
    // The cluster template's container count differs from the
    // single-stack default, so remember which knobs were set explicitly.
    let mut containers_flag: Option<u32> = None;
    let mut workers_flag: Option<u32> = None;
    let mut rounds_flag: Option<u32> = None;
    let mut quick = false;
    let mut out: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    for a in std::env::args().skip(1) {
        if a == "--quick" {
            quick = true;
            cfg = LoadgenConfig {
                transport: cfg.transport,
                ..LoadgenConfig::smoke()
            };
        } else if a == "--sharded" {
            sharded = true;
        } else if a == "--cluster" {
            cluster = true;
        } else if a == "--migration" {
            migration = true;
        } else if a == "--transport-compare" {
            transport_compare = true;
        } else if let Some(v) = a.strip_prefix("--kill-node-at=") {
            match v.parse() {
                Ok(n) => kill_at = Some(n),
                Err(_) => return usage(),
            }
        } else if let Some(v) = a.strip_prefix("--devices=") {
            match v.parse() {
                Ok(n) if n > 0 => devices = n,
                _ => return usage(),
            }
        } else if let Some(v) = a.strip_prefix("--nodes=") {
            match v.parse() {
                Ok(n) if n > 0 => nodes = n,
                _ => return usage(),
            }
        } else if let Some(v) = a.strip_prefix("--codec=") {
            codec = match v {
                "json" => WireCodec::Json,
                "binary" => WireCodec::Binary,
                _ => return usage(),
            };
        } else if let Some(v) = a.strip_prefix("--containers=") {
            match v.parse() {
                Ok(n) => {
                    cfg.containers = n;
                    containers_flag = Some(n);
                }
                Err(_) => return usage(),
            }
        } else if let Some(v) = a.strip_prefix("--workers=") {
            match v.parse() {
                Ok(n) => {
                    cfg.workers = n;
                    workers_flag = Some(n);
                }
                Err(_) => return usage(),
            }
        } else if let Some(v) = a.strip_prefix("--rounds=") {
            match v.parse() {
                Ok(n) => {
                    cfg.rounds = n;
                    rounds_flag = Some(n);
                }
                Err(_) => return usage(),
            }
        } else if let Some(v) = a.strip_prefix("--transport=") {
            cfg.transport = match v {
                "inproc" => Transport::InProc,
                "socket-json" => Transport::Socket(WireCodec::Json),
                "socket-binary" => Transport::Socket(WireCodec::Binary),
                "tcp-json" => Transport::Tcp(WireCodec::Json),
                "tcp-binary" => Transport::Tcp(WireCodec::Binary),
                _ => return usage(),
            };
        } else if let Some(v) = a.strip_prefix("--out=") {
            out = Some(PathBuf::from(v));
        } else if let Some(v) = a.strip_prefix("--baseline=") {
            baseline = Some(PathBuf::from(v));
        } else {
            return usage();
        }
    }

    if migration {
        if sharded || cluster {
            // One campaign per invocation.
            return usage();
        }
        let template = if quick {
            MigrationLoadConfig::smoke()
        } else {
            MigrationLoadConfig::standard()
        };
        let containers = containers_flag.unwrap_or(template.base.containers);
        let kill_at = kill_at.unwrap_or_else(|| {
            // Default kill point scales with the storm: a third in.
            if containers_flag.is_some() {
                containers / 3
            } else {
                template.kill_at
            }
        });
        let mcfg = MigrationLoadConfig {
            base: LoadgenConfig {
                containers,
                workers: workers_flag.unwrap_or(template.base.workers),
                rounds: rounds_flag.unwrap_or(template.base.rounds),
                ..template.base
            },
            nodes,
            codec,
            kill_at,
            ..template
        };
        return run_migration_campaign(&mcfg, out, baseline);
    }
    if kill_at.is_some() {
        // --kill-node-at only makes sense for the migration campaign.
        return usage();
    }

    if transport_compare {
        if sharded || cluster || baseline.is_some() {
            // One campaign per invocation; the compare report is gated
            // by the unified perf-trend step, not `--baseline`.
            return usage();
        }
        let template = if quick {
            TransportCompareConfig::smoke()
        } else {
            TransportCompareConfig::standard()
        };
        let tcfg = TransportCompareConfig {
            base: LoadgenConfig {
                containers: containers_flag.unwrap_or(template.base.containers),
                workers: workers_flag.unwrap_or(template.base.workers),
                rounds: rounds_flag.unwrap_or(template.base.rounds),
                ..template.base
            },
            codec,
            ..template
        };
        return run_transport_campaign(&tcfg, out);
    }

    if cluster {
        if sharded || baseline.is_some() {
            // One campaign per invocation; the cluster report is never
            // gated (see the module docs).
            return usage();
        }
        let template = if quick {
            ClusterLoadConfig::smoke()
        } else {
            ClusterLoadConfig::standard()
        };
        let ccfg = ClusterLoadConfig {
            base: LoadgenConfig {
                containers: containers_flag.unwrap_or(template.base.containers),
                workers: workers_flag.unwrap_or(template.base.workers),
                rounds: rounds_flag.unwrap_or(template.base.rounds),
                ..template.base
            },
            nodes,
            codec,
            ..template
        };
        return run_cluster_campaign(&ccfg, out);
    }

    if sharded {
        let template = if quick {
            ShardedConfig::smoke()
        } else {
            ShardedConfig::standard()
        };
        let scfg = ShardedConfig {
            base: LoadgenConfig {
                containers: cfg.containers,
                workers: cfg.workers,
                rounds: cfg.rounds,
                transport: cfg.transport,
                ..template.base
            },
            devices,
            ..template
        };
        return run_sharded_campaign(&scfg, out, baseline);
    }

    println!(
        "loadgen: {} containers x {} workers, {} rounds, transport {}",
        cfg.containers,
        cfg.workers,
        cfg.rounds,
        cfg.transport.label()
    );
    let report = run_loadgen(&cfg);

    let table = format_table(
        &[
            "policy".into(),
            "decisions".into(),
            "granted".into(),
            "rejected".into(),
            "suspensions".into(),
            "decisions/s".into(),
            "p50 ms".into(),
            "p95 ms".into(),
            "p99 ms".into(),
        ],
        &report
            .runs
            .iter()
            .map(|r| {
                vec![
                    r.policy.label().into(),
                    r.decisions.to_string(),
                    r.granted.to_string(),
                    r.rejected.to_string(),
                    r.suspensions.to_string(),
                    format!("{:.0}", r.decisions_per_sec),
                    format!("{:.4}", r.quantile_ms(0.50)),
                    format!("{:.4}", r.quantile_ms(0.95)),
                    format!("{:.4}", r.quantile_ms(0.99)),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    // The one-line summary CI greps into the job log.
    println!(
        "PERF loadgen total_decisions_per_sec={:.0} transport={}",
        report.total_decisions_per_sec(),
        cfg.transport.label()
    );

    if let Some(path) = out {
        let text = render_json(&report);
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("loadgen: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {} ({} bytes)", path.display(), text.len());
    }

    if let Some(path) = baseline {
        match check_baseline(&report, &path) {
            Ok(BaselineVerdict::Pass { measured, baseline }) => {
                println!("perf gate: PASS — {measured:.0} decisions/s vs baseline {baseline:.0}");
            }
            Ok(BaselineVerdict::Regressed {
                measured,
                baseline,
                floor,
            }) => {
                eprintln!(
                    "perf gate: FAIL — {measured:.0} decisions/s is below the floor \
                     {floor:.0} (baseline {baseline:.0}, >20% regression)"
                );
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("perf gate: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
