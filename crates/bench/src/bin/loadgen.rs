//! `loadgen` — hot-path throughput campaign + CI perf gate.
//!
//! ```text
//! cargo run --release -p convgpu-bench --bin loadgen -- \
//!     [--containers=N] [--workers=K] [--rounds=R] [--quick] \
//!     [--transport=inproc|socket-json|socket-binary] \
//!     [--out=BENCH_3.json] [--baseline=ci/perf_baseline.json]
//! ```
//!
//! Runs the [`convgpu_bench::loadgen`] campaign for all four policies,
//! prints a summary table, writes the machine-readable report to
//! `--out`, and — when `--baseline` is given — exits non-zero if the
//! aggregate throughput regressed more than the allowed envelope
//! ([`convgpu_bench::loadgen::BASELINE_RETENTION`]).

use convgpu_bench::loadgen::{
    check_baseline, render_json, run_loadgen, BaselineVerdict, LoadgenConfig, Transport,
};
use convgpu_bench::report::format_table;
use convgpu_ipc::binary::WireCodec;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: loadgen [--containers=N] [--workers=K] [--rounds=R] [--quick]\n\
         \x20              [--transport=inproc|socket-json|socket-binary]\n\
         \x20              [--out=FILE] [--baseline=FILE]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut cfg = LoadgenConfig::standard();
    let mut out: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    for a in std::env::args().skip(1) {
        if a == "--quick" {
            cfg = LoadgenConfig {
                transport: cfg.transport,
                ..LoadgenConfig::smoke()
            };
        } else if let Some(v) = a.strip_prefix("--containers=") {
            match v.parse() {
                Ok(n) => cfg.containers = n,
                Err(_) => return usage(),
            }
        } else if let Some(v) = a.strip_prefix("--workers=") {
            match v.parse() {
                Ok(n) => cfg.workers = n,
                Err(_) => return usage(),
            }
        } else if let Some(v) = a.strip_prefix("--rounds=") {
            match v.parse() {
                Ok(n) => cfg.rounds = n,
                Err(_) => return usage(),
            }
        } else if let Some(v) = a.strip_prefix("--transport=") {
            cfg.transport = match v {
                "inproc" => Transport::InProc,
                "socket-json" => Transport::Socket(WireCodec::Json),
                "socket-binary" => Transport::Socket(WireCodec::Binary),
                _ => return usage(),
            };
        } else if let Some(v) = a.strip_prefix("--out=") {
            out = Some(PathBuf::from(v));
        } else if let Some(v) = a.strip_prefix("--baseline=") {
            baseline = Some(PathBuf::from(v));
        } else {
            return usage();
        }
    }

    println!(
        "loadgen: {} containers x {} workers, {} rounds, transport {}",
        cfg.containers,
        cfg.workers,
        cfg.rounds,
        cfg.transport.label()
    );
    let report = run_loadgen(&cfg);

    let table = format_table(
        &[
            "policy".into(),
            "decisions".into(),
            "granted".into(),
            "rejected".into(),
            "suspensions".into(),
            "decisions/s".into(),
            "p50 ms".into(),
            "p95 ms".into(),
            "p99 ms".into(),
        ],
        &report
            .runs
            .iter()
            .map(|r| {
                vec![
                    r.policy.label().into(),
                    r.decisions.to_string(),
                    r.granted.to_string(),
                    r.rejected.to_string(),
                    r.suspensions.to_string(),
                    format!("{:.0}", r.decisions_per_sec),
                    format!("{:.4}", r.quantile_ms(0.50)),
                    format!("{:.4}", r.quantile_ms(0.95)),
                    format!("{:.4}", r.quantile_ms(0.99)),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    // The one-line summary CI greps into the job log.
    println!(
        "PERF loadgen total_decisions_per_sec={:.0} transport={}",
        report.total_decisions_per_sec(),
        cfg.transport.label()
    );

    if let Some(path) = out {
        let text = render_json(&report);
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("loadgen: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {} ({} bytes)", path.display(), text.len());
    }

    if let Some(path) = baseline {
        match check_baseline(&report, &path) {
            Ok(BaselineVerdict::Pass { measured, baseline }) => {
                println!("perf gate: PASS — {measured:.0} decisions/s vs baseline {baseline:.0}");
            }
            Ok(BaselineVerdict::Regressed {
                measured,
                baseline,
                floor,
            }) => {
                eprintln!(
                    "perf gate: FAIL — {measured:.0} decisions/s is below the floor \
                     {floor:.0} (baseline {baseline:.0}, >20% regression)"
                );
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("perf gate: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
