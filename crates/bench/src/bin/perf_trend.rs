//! `perf-trend` — the one-shot CI perf gate over every benchmark
//! artifact.
//!
//! ```text
//! perf_trend --baseline=ci/perf_baseline.json BENCH_3.json BENCH_4.json ...
//! ```
//!
//! Compares each numeric metric in the baseline file against the first
//! supplied artifact that reports it, prints a per-metric markdown delta
//! table, appends the same table to `$GITHUB_STEP_SUMMARY` when that
//! variable is set (GitHub Actions job summaries), and exits non-zero if
//! any metric regressed below the retention floor
//! ([`convgpu_bench::loadgen::BASELINE_RETENTION`]) or went missing from
//! the artifact set.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use convgpu_bench::loadgen::BASELINE_RETENTION;
use convgpu_bench::trend::compare_trend;

fn usage() -> ExitCode {
    eprintln!(
        "usage: perf_trend --baseline=PATH [--retention=FRACTION] ARTIFACT.json [ARTIFACT.json ...]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut baseline: Option<PathBuf> = None;
    let mut retention = BASELINE_RETENTION;
    let mut artifacts: Vec<PathBuf> = Vec::new();
    for a in std::env::args().skip(1) {
        if let Some(v) = a.strip_prefix("--baseline=") {
            baseline = Some(PathBuf::from(v));
        } else if let Some(v) = a.strip_prefix("--retention=") {
            match v.parse::<f64>() {
                Ok(f) if f > 0.0 && f <= 1.0 => retention = f,
                _ => return usage(),
            }
        } else if a == "--help" || a == "-h" {
            return usage();
        } else if a.starts_with("--") {
            eprintln!("perf_trend: unknown flag {a}");
            return usage();
        } else {
            artifacts.push(PathBuf::from(a));
        }
    }
    let Some(baseline) = baseline else {
        return usage();
    };
    if artifacts.is_empty() {
        return usage();
    }

    let named: Vec<(String, &std::path::Path)> = artifacts
        .iter()
        .map(|p| {
            let name = p
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| p.display().to_string());
            (name, p.as_path())
        })
        .collect();

    let report = match compare_trend(&baseline, &named, retention) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("perf_trend: {e}");
            return ExitCode::FAILURE;
        }
    };

    let table = report.markdown();
    println!(
        "perf trend vs {} (retention floor {:.0}%):",
        baseline.display(),
        retention * 100.0
    );
    println!("{table}");

    if let Ok(summary) = std::env::var("GITHUB_STEP_SUMMARY") {
        if !summary.is_empty() {
            let block = format!(
                "## Perf trend (floor {:.0}% of baseline)\n\n{table}\n",
                retention * 100.0
            );
            match std::fs::OpenOptions::new().append(true).open(&summary) {
                Ok(mut f) => {
                    if let Err(e) = f.write_all(block.as_bytes()) {
                        eprintln!("perf_trend: cannot append to step summary: {e}");
                    }
                }
                Err(e) => eprintln!("perf_trend: cannot open step summary {summary}: {e}"),
            }
        }
    }

    if report.ok() {
        println!(
            "perf trend: all {} metric(s) within budget",
            report.rows.len()
        );
        ExitCode::SUCCESS
    } else {
        let regressed = report.rows.iter().filter(|r| !r.pass).count();
        eprintln!(
            "perf trend: FAIL ({regressed} regressed, {} missing)",
            report.missing.len()
        );
        ExitCode::FAILURE
    }
}
