//! Run every experiment of the paper's evaluation section in sequence,
//! printing paper-vs-measured for each. This is the binary behind
//! EXPERIMENTS.md.

use convgpu_bench::fig4::run_fig4;
use convgpu_bench::fig5::run_fig5;
use convgpu_bench::fig6::run_fig6;
use convgpu_bench::policies::sweep;
use convgpu_bench::report::{format_table, ms3, secs1};
use convgpu_scheduler::policy::PolicyKind;
use convgpu_workloads::trace::TraceSpec;

fn main() {
    println!("=====================================================================");
    println!(" ConVGPU (CLUSTER 2017) — full evaluation reproduction");
    println!("=====================================================================\n");

    // ---- Fig. 4 ----
    println!("---- Fig. 4: API response time (ms), 10 reps, real sockets ----");
    let rows = run_fig4(10);
    println!(
        "{}",
        format_table(
            &[
                "API".into(),
                "without".into(),
                "with".into(),
                "ratio".into()
            ],
            &rows
                .iter()
                .map(|r| vec![
                    r.api.clone(),
                    ms3(r.without_ms),
                    ms3(r.with_ms),
                    format!("{:.2}x", r.ratio()),
                ])
                .collect::<Vec<_>>(),
        )
    );

    // ---- Fig. 5 ----
    println!("---- Fig. 5: container creation time (s), 10 reps ----");
    let f5 = run_fig5(10, 1.0);
    println!(
        "without {:.4} s | with {:.4} s | overhead {:+.1}% (paper: +15%, +0.0618 s)\n",
        f5.baseline.mean,
        f5.convgpu.mean,
        f5.overhead_fraction() * 100.0
    );

    // ---- Fig. 6 ----
    println!("---- Fig. 6: TensorFlow MNIST runtime (s), virtual time ----");
    let f6 = run_fig6(2000, None);
    println!(
        "without {:.2} s | with {:.2} s | overhead {:+.3}% (paper: 404.93 s, +0.7%)\n",
        f6.baseline_secs,
        f6.convgpu_secs,
        f6.overhead_pct()
    );

    // ---- Figs. 7 & 8 / Tables IV & V ----
    let ns = TraceSpec::paper_sweep();
    let points = sweep(&ns, &PolicyKind::ALL, 6, 2017);
    for (title, pick) in [
        ("Fig. 7 / Table IV: finished time (s)", true),
        ("Fig. 8 / Table V: avg suspended time (s)", false),
    ] {
        println!("---- {title}, 6 reps averaged ----");
        let mut headers = vec!["policy".to_string()];
        headers.extend(ns.iter().map(|n| n.to_string()));
        let rows: Vec<Vec<String>> = PolicyKind::ALL
            .iter()
            .map(|&p| {
                let mut row = vec![p.label().to_string()];
                for &n in &ns {
                    let pt = points
                        .iter()
                        .find(|pt| pt.n == n && pt.policy == p)
                        .expect("sweep point");
                    row.push(secs1(if pick {
                        pt.finished.mean
                    } else {
                        pt.suspended.mean
                    }));
                }
                row
            })
            .collect();
        println!("{}", format_table(&headers, &rows));
    }
    println!("done.");
}
