//! Extension experiment: cluster scaling under Docker-Swarm placement
//! strategies (the paper's §V second future-work item).

use convgpu_bench::cluster_exp::cluster_sweep;
use convgpu_bench::report::{format_table, secs1};
use convgpu_scheduler::cluster::SwarmStrategy;

fn main() {
    println!("== ConVGPU extension: cluster scaling (Docker-Swarm strategies) ==");
    println!("(38-container paper trace, nodes = 1..4 x 5 GiB K20m, 6 reps, virtual time)\n");
    let strategies = [
        SwarmStrategy::Spread,
        SwarmStrategy::BinPack,
        SwarmStrategy::Random,
    ];
    let nodes = [1u32, 2, 3, 4];
    let points = cluster_sweep(&nodes, &strategies, 38, 6, 2017);

    for (title, pick_finished) in [
        ("finished time (s)", true),
        ("avg suspended time (s)", false),
    ] {
        println!("-- {title} --");
        let mut headers = vec!["strategy".to_string()];
        headers.extend(nodes.iter().map(|n| format!("{n} node(s)")));
        let rows: Vec<Vec<String>> = strategies
            .iter()
            .map(|&s| {
                let mut row = vec![format!("{s:?}")];
                for &n in &nodes {
                    let pt = points
                        .iter()
                        .find(|p| p.nodes == n && p.strategy == s)
                        .expect("sweep point");
                    row.push(secs1(if pick_finished {
                        pt.finished.mean
                    } else {
                        pt.suspended.mean
                    }));
                }
                row
            })
            .collect();
        println!("{}", format_table(&headers, &rows));
    }
    println!("observation: adding nodes collapses suspension; spread wins under");
    println!("uniform load, binpack keeps whole nodes free for large containers.");
}
