//! Reproduce paper Fig. 4: response time of the hooked CUDA APIs, with
//! vs without ConVGPU, over real UNIX sockets.

use convgpu_bench::fig4::run_fig4;
use convgpu_bench::report::{format_table, ms3};

fn main() {
    println!("== ConVGPU reproduction: Fig. 4 — API response time ==");
    println!("(10 repetitions per API, real UNIX-socket IPC; paper: Tesla K20m, Go scheduler)\n");
    let rows = run_fig4(10);
    let table = format_table(
        &[
            "API".into(),
            "without (ms)".into(),
            "with ConVGPU (ms)".into(),
            "ratio".into(),
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.api.clone(),
                    ms3(r.without_ms),
                    ms3(r.with_ms),
                    format!("{:.2}x", r.ratio()),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    println!("paper reference: allocation APIs 0.035 -> 0.082 ms (~2.3x);");
    println!(
        "cudaMallocManaged ~40x other allocations; cudaMallocPitch first call ~2x later calls;"
    );
    println!("cudaFree with ConVGPU 0.032 ms; cudaMemGetInfo ~0.01 ms FASTER with ConVGPU.");
}
