//! Reproduce paper Fig. 5: container creation time, with vs without
//! ConVGPU.

use convgpu_bench::fig5::run_fig5;
use convgpu_bench::report::{format_table, pct1};

fn main() {
    println!("== ConVGPU reproduction: Fig. 5 — container creation time ==");
    println!("(10 repetitions, live middleware stack; workload-time seconds)\n");
    let r = run_fig5(10, 1.0);
    let table = format_table(
        &[
            "setup".into(),
            "mean (s)".into(),
            "stddev".into(),
            "min".into(),
            "max".into(),
        ],
        &[
            vec![
                "without ConVGPU".into(),
                format!("{:.4}", r.baseline.mean),
                format!("{:.4}", r.baseline.stddev),
                format!("{:.4}", r.baseline.min),
                format!("{:.4}", r.baseline.max),
            ],
            vec![
                "with ConVGPU".into(),
                format!("{:.4}", r.convgpu.mean),
                format!("{:.4}", r.convgpu.stddev),
                format!("{:.4}", r.convgpu.min),
                format!("{:.4}", r.convgpu.max),
            ],
        ],
    );
    println!("{table}");
    println!(
        "measured overhead: {} ({:.4} s)",
        pct1(r.overhead_fraction() * 100.0),
        r.convgpu.mean - r.baseline.mean
    );
    println!("paper reference: +15% (+0.0618 s) over ~0.41 s baseline.");
}
