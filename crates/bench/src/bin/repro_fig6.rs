//! Reproduce paper Fig. 6: overall runtime of the TensorFlow MNIST CNN
//! program, with vs without ConVGPU (virtual time, modeled IPC delta).

use convgpu_bench::fig6::run_fig6;
use convgpu_bench::report::format_table;

fn main() {
    println!("== ConVGPU reproduction: Fig. 6 — TensorFlow MNIST runtime ==");
    println!("(2000 training steps, batch 100, virtual time on the simulated K20m)\n");
    let r = run_fig6(2000, None);
    let table = format_table(
        &["setup".into(), "runtime (s)".into()],
        &[
            vec!["without ConVGPU".into(), format!("{:.2}", r.baseline_secs)],
            vec!["with ConVGPU".into(), format!("{:.2}", r.convgpu_secs)],
        ],
    );
    println!("{table}");
    println!("measured overhead: {:+.3}%", r.overhead_pct());
    println!("paper reference: 404.93 s with ConVGPU, +0.7% over the baseline —");
    println!("the conclusion is the overhead is marginal because kernel/copy time dominates.");
}
