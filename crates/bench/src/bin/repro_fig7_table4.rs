//! Reproduce paper Fig. 7 / Table IV: finished time of N containers
//! (N = 4..38 step 2) under the four scheduling algorithms, 6
//! repetitions averaged, in virtual time.

use convgpu_bench::policies::sweep;
use convgpu_bench::report::{format_table, secs1};
use convgpu_scheduler::policy::PolicyKind;
use convgpu_workloads::trace::TraceSpec;

fn main() {
    println!("== ConVGPU reproduction: Fig. 7 / Table IV — finished time (s) ==");
    println!("(N = 4..38, 4 policies, 6 repetitions, virtual time, 5 GiB K20m)\n");
    let ns = TraceSpec::paper_sweep();
    let points = sweep(&ns, &PolicyKind::ALL, 6, 2017);

    let mut headers = vec!["policy".to_string()];
    headers.extend(ns.iter().map(|n| n.to_string()));
    let rows: Vec<Vec<String>> = PolicyKind::ALL
        .iter()
        .map(|&p| {
            let mut row = vec![format!("{} (sec)", p.label())];
            for &n in &ns {
                let point = points
                    .iter()
                    .find(|pt| pt.n == n && pt.policy == p)
                    .expect("sweep point");
                row.push(secs1(point.finished.mean));
            }
            row
        })
        .collect();
    println!("{}", format_table(&headers, &rows));
    println!("paper reference (Table IV): finished time roughly doubles with N;");
    println!("all policies similar below N=16; BF on average ~30 s faster beyond N=18;");
    println!("Rand mostly worst.");
}
