//! Reproduce paper Fig. 8 / Table V: average suspended time per container
//! (N = 4..38 step 2) under the four scheduling algorithms.

use convgpu_bench::policies::sweep;
use convgpu_bench::report::{format_table, secs1};
use convgpu_scheduler::policy::PolicyKind;
use convgpu_workloads::trace::TraceSpec;

fn main() {
    println!("== ConVGPU reproduction: Fig. 8 / Table V — avg suspended time (s) ==");
    println!("(N = 4..38, 4 policies, 6 repetitions, virtual time, 5 GiB K20m)\n");
    let ns = TraceSpec::paper_sweep();
    let points = sweep(&ns, &PolicyKind::ALL, 6, 2017);

    let mut headers = vec!["policy".to_string()];
    headers.extend(ns.iter().map(|n| n.to_string()));
    let rows: Vec<Vec<String>> = PolicyKind::ALL
        .iter()
        .map(|&p| {
            let mut row = vec![format!("{} (sec)", p.label())];
            for &n in &ns {
                let point = points
                    .iter()
                    .find(|pt| pt.n == n && pt.policy == p)
                    .expect("sweep point");
                row.push(secs1(point.suspended.mean));
            }
            row
        })
        .collect();
    println!("{}", format_table(&headers, &rows));
    // Starvation view: the worst-waiting container per run.
    let max_rows: Vec<Vec<String>> = PolicyKind::ALL
        .iter()
        .map(|&p| {
            let mut row = vec![format!("{} (max)", p.label())];
            for &n in &ns {
                let point = points
                    .iter()
                    .find(|pt| pt.n == n && pt.policy == p)
                    .expect("sweep point");
                row.push(secs1(point.suspended_max.mean));
            }
            row
        })
        .collect();
    println!("worst single container's suspended time (starvation view):");
    println!("{}", format_table(&headers, &max_rows));
    println!("paper reference (Table V): little difference below N=24; beyond N=26 BF");
    println!("waits ~15 s MORE per container on average (fast overall, slower individually).");
    println!("NOTE (deviation, see EXPERIMENTS.md): in this reproduction BF's MEAN wait is");
    println!("lower, but its WORST-CASE wait exceeds the other policies — the starvation");
    println!("mechanism the paper describes shows up in the tail rather than the mean.");
}
