//! Extension experiment: sensitivity of the Fig. 7 conclusion to the
//! substrate parameters the paper fixed.
//!
//! Two axes the paper never varies:
//! * **GPU capacity** — does Best-Fit still win on a 2 GiB consumer card
//!   or a 16 GiB datacenter card?
//! * **Arrival process** — does the fixed 5-second launcher matter, or
//!   does the ordering hold under Poisson arrivals of the same rate?

use convgpu_bench::policies::PolicyExperiment;
use convgpu_bench::report::{format_table, secs1};
use convgpu_scheduler::policy::PolicyKind;
use convgpu_sim_core::units::Bytes;
use convgpu_workloads::trace::ArrivalProcess;

fn mean_finished(capacity: Bytes, arrival: ArrivalProcess, policy: PolicyKind) -> f64 {
    let reps = 6;
    let mut total = 0.0;
    for rep in 0..reps {
        let mut exp = PolicyExperiment::paper(30, policy, 7000 + rep);
        exp.capacity = capacity;
        exp.arrival = arrival;
        total += exp.run().finished_time_secs;
    }
    total / reps as f64
}

fn main() {
    println!("== ConVGPU extension: sensitivity of the policy ranking ==");
    println!("(30 containers, 6 reps, virtual time)\n");

    println!("-- finished time (s) vs GPU capacity, fixed arrivals --");
    let caps = [Bytes::gib(2), Bytes::gib(5), Bytes::gib(16)];
    let mut headers = vec!["policy".to_string()];
    headers.extend(caps.iter().map(|c| c.to_string()));
    let rows: Vec<Vec<String>> = PolicyKind::ALL
        .iter()
        .map(|&p| {
            let mut row = vec![p.label().to_string()];
            for &cap in &caps {
                row.push(secs1(mean_finished(cap, ArrivalProcess::Fixed, p)));
            }
            row
        })
        .collect();
    println!("{}", format_table(&headers, &rows));
    println!("note: xlarge (4 GiB) containers cannot run on the 2 GiB card and are");
    println!("refused at registration; the sweep regenerates types per seed, so the");
    println!("2 GiB column covers the remaining mix.\n");

    println!("-- finished time (s) on the 5 GiB K20m: fixed vs Poisson arrivals --");
    let mut headers = vec![
        "policy".to_string(),
        "fixed 5s".to_string(),
        "poisson 5s mean".to_string(),
    ];
    headers.truncate(3);
    let rows: Vec<Vec<String>> = PolicyKind::ALL
        .iter()
        .map(|&p| {
            vec![
                p.label().to_string(),
                secs1(mean_finished(Bytes::gib(5), ArrivalProcess::Fixed, p)),
                secs1(mean_finished(Bytes::gib(5), ArrivalProcess::Poisson, p)),
            ]
        })
        .collect();
    println!("{}", format_table(&headers, &rows));
    println!("expectation: BF's lead persists across capacities and arrival models —");
    println!("the paper's conclusion is not an artifact of the 5 GiB K20m or the");
    println!("metronome launcher.");
}
