//! Extension experiment: GPU memory utilization by policy.
//!
//! The paper attributes Best-Fit's Fig. 7 win to "maximizing the GPU
//! memory throughput" but never measures it. This binary integrates the
//! scheduler's utilization timeline over the Fig. 7 sweep: time-weighted
//! mean of live GPU memory over capacity, per policy and container count.

use convgpu_bench::policies::PolicyExperiment;
use convgpu_bench::report::format_table;
use convgpu_scheduler::policy::PolicyKind;

fn main() {
    println!("== ConVGPU extension: mean GPU memory utilization (%) by policy ==");
    println!("(paper trace, 6 reps, virtual time, 5 GiB K20m)\n");
    let ns = [8u32, 16, 24, 32, 38];
    let mut headers = vec!["policy".to_string()];
    headers.extend(ns.iter().map(|n| n.to_string()));
    let rows: Vec<Vec<String>> = PolicyKind::ALL
        .iter()
        .map(|&policy| {
            let mut row = vec![policy.label().to_string()];
            for &n in &ns {
                let mut total = 0.0;
                let reps = 6;
                for rep in 0..reps {
                    let r = PolicyExperiment::paper(n, policy, 4000 + rep).run();
                    total += r.mean_utilization;
                }
                row.push(format!("{:.1}", 100.0 * total / reps as f64));
            }
            row
        })
        .collect();
    println!("{}", format_table(&headers, &rows));
    println!("expectation (paper §IV-C): BF sustains the highest utilization under");
    println!("load — the mechanism behind its Fig. 7 finished-time win.");
}
