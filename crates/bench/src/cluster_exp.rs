//! Cluster-scaling experiment (extension of the paper's §V future work).
//!
//! Replays heavier versions of the §IV-A trace against clusters of 1–4
//! ConVGPU nodes (each one 5 GiB K20m) under the Docker-Swarm placement
//! strategies, in virtual time. The question the paper left open: how
//! does finished time scale when the *cluster*, not the GPU, grows?

use convgpu_ipc::message::{AllocDecision, ApiKind};
use convgpu_scheduler::cluster::{ClusterNode, ClusterScheduler, SwarmStrategy};
use convgpu_scheduler::core::AllocOutcome;
use convgpu_scheduler::metrics;
use convgpu_scheduler::policy::PolicyKind;
use convgpu_sim_core::event::EventQueue;
use convgpu_sim_core::ids::ContainerId;
use convgpu_sim_core::stats::Summary;
use convgpu_sim_core::time::{SimDuration, SimTime};
use convgpu_sim_core::units::Bytes;
use convgpu_workloads::trace::TraceSpec;
use std::collections::HashMap;

/// One cluster experiment configuration.
#[derive(Clone, Copy, Debug)]
pub struct ClusterExperiment {
    /// Number of single-K20m nodes.
    pub nodes: u32,
    /// Containers in the trace.
    pub containers: u32,
    /// Placement strategy.
    pub strategy: SwarmStrategy,
    /// Workload seed.
    pub seed: u64,
}

/// Aggregated outcome.
#[derive(Clone, Debug)]
pub struct ClusterResult {
    /// Finished time (last close anywhere), seconds.
    pub finished_time_secs: f64,
    /// Mean suspended time per container, seconds.
    pub avg_suspended_secs: f64,
    /// Containers placed per node.
    pub per_node_containers: Vec<usize>,
}

#[derive(Debug)]
enum Ev {
    Launch(u32, Bytes, SimDuration),
    Finish(ContainerId),
}

impl ClusterExperiment {
    /// Execute in virtual time.
    pub fn run(&self) -> ClusterResult {
        let nodes = (0..self.nodes)
            .map(|i| {
                ClusterNode::new(
                    format!("node-{i}"),
                    &[Bytes::gib(5)],
                    PolicyKind::BestFit,
                    self.seed.wrapping_add(u64::from(i)),
                )
            })
            .collect();
        let mut cluster = ClusterScheduler::new(nodes, self.strategy, self.seed ^ 0x0Cu64);
        let mut queue: EventQueue<Ev> = EventQueue::new();
        let mut plans: HashMap<ContainerId, (Bytes, SimDuration)> = HashMap::new();
        let mut per_node = vec![0usize; self.nodes as usize];

        for a in TraceSpec::paper(self.containers, self.seed).generate() {
            queue.schedule(
                a.at,
                Ev::Launch(
                    a.index,
                    a.container_type.gpu_memory(),
                    a.container_type.sample_duration(),
                ),
            );
        }
        while let Some((now, ev)) = queue.pop() {
            match ev {
                Ev::Launch(index, limit, duration) => {
                    let id = ContainerId(u64::from(index) + 1);
                    let node = cluster.register(id, limit, now).expect("placement");
                    per_node[node] += 1;
                    plans.insert(id, (limit, duration));
                    let (outcome, actions) = cluster
                        .alloc_request(id, 1, limit, ApiKind::Malloc, now)
                        .expect("alloc");
                    if outcome == AllocOutcome::Granted {
                        cluster
                            .alloc_done(id, 1, 0xC000_0000 + id.as_u64(), limit, now)
                            .expect("done");
                        queue.schedule(now + duration, Ev::Finish(id));
                    }
                    Self::apply(&mut cluster, &mut queue, &plans, actions, now);
                }
                Ev::Finish(id) => {
                    let actions = cluster.container_close(id, now).expect("close");
                    Self::apply(&mut cluster, &mut queue, &plans, actions, now);
                }
            }
        }
        cluster.check_invariants().expect("cluster invariants");

        let mut finished = 0.0_f64;
        let mut susp_sum = 0.0;
        let mut count = 0usize;
        for n in 0..cluster.node_count() {
            for d in 0..cluster.node(n).gpus.device_count() {
                let ms = metrics::collect(cluster.node(n).gpus.device(d).containers());
                let agg = metrics::aggregate(&ms);
                if agg.containers > 0 {
                    finished = finished.max(agg.finished_time_secs);
                    susp_sum += agg.avg_suspended_secs * agg.containers as f64;
                    count += agg.containers;
                    assert_eq!(agg.closed, agg.containers, "node {n} stranded containers");
                }
            }
        }
        assert_eq!(count as u32, self.containers, "every container accounted");
        ClusterResult {
            finished_time_secs: finished,
            avg_suspended_secs: susp_sum / count.max(1) as f64,
            per_node_containers: per_node,
        }
    }

    fn apply(
        cluster: &mut ClusterScheduler,
        queue: &mut EventQueue<Ev>,
        plans: &HashMap<ContainerId, (Bytes, SimDuration)>,
        actions: Vec<convgpu_scheduler::core::ResumeAction>,
        now: SimTime,
    ) {
        for act in actions {
            if act.decision == AllocDecision::Granted {
                let (limit, duration) = plans[&act.container];
                cluster
                    .alloc_done(
                        act.container,
                        act.pid,
                        0xC000_0000 + act.container.as_u64(),
                        limit,
                        now,
                    )
                    .expect("done after resume");
                queue.schedule(now + duration, Ev::Finish(act.container));
            }
        }
    }
}

/// Averaged sweep cell.
#[derive(Clone, Debug)]
pub struct ClusterSweepPoint {
    /// Node count.
    pub nodes: u32,
    /// Strategy.
    pub strategy: SwarmStrategy,
    /// Finished time over reps.
    pub finished: Summary,
    /// Average suspended time over reps.
    pub suspended: Summary,
}

/// Sweep node counts × strategies with `reps` repetitions on identical
/// workloads.
pub fn cluster_sweep(
    node_counts: &[u32],
    strategies: &[SwarmStrategy],
    containers: u32,
    reps: u32,
    base_seed: u64,
) -> Vec<ClusterSweepPoint> {
    let mut out = Vec::new();
    for &nodes in node_counts {
        for &strategy in strategies {
            let mut finished = Vec::new();
            let mut suspended = Vec::new();
            for rep in 0..reps {
                let r = ClusterExperiment {
                    nodes,
                    containers,
                    strategy,
                    seed: base_seed.wrapping_add(u64::from(rep) * 7919),
                }
                .run();
                finished.push(r.finished_time_secs);
                suspended.push(r.avg_suspended_secs);
            }
            out.push(ClusterSweepPoint {
                nodes,
                strategy,
                finished: Summary::of(&finished),
                suspended: Summary::of(&suspended),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_cluster_matches_single_gpu_shape() {
        let r = ClusterExperiment {
            nodes: 1,
            containers: 20,
            strategy: SwarmStrategy::Spread,
            seed: 3,
        }
        .run();
        assert!(r.finished_time_secs > 0.0);
        assert_eq!(r.per_node_containers, vec![20]);
    }

    #[test]
    fn more_nodes_finish_sooner_under_load() {
        let time_with = |nodes: u32| {
            let mut total = 0.0;
            for seed in 0..4 {
                total += ClusterExperiment {
                    nodes,
                    containers: 30,
                    strategy: SwarmStrategy::Spread,
                    seed,
                }
                .run()
                .finished_time_secs;
            }
            total / 4.0
        };
        let one = time_with(1);
        let four = time_with(4);
        assert!(
            four < one * 0.9,
            "4 nodes must beat 1 under load: {one:.1}s vs {four:.1}s"
        );
    }

    #[test]
    fn spread_distributes_binpack_concentrates() {
        let run = |strategy| {
            ClusterExperiment {
                nodes: 4,
                containers: 16,
                strategy,
                seed: 5,
            }
            .run()
            .per_node_containers
        };
        let spread = run(SwarmStrategy::Spread);
        let binpack = run(SwarmStrategy::BinPack);
        let spread_max = *spread.iter().max().unwrap();
        let binpack_max = *binpack.iter().max().unwrap();
        assert!(
            binpack_max >= spread_max,
            "binpack concentrates: {binpack:?} vs spread {spread:?}"
        );
        let spread_used = spread.iter().filter(|&&c| c > 0).count();
        assert!(spread_used >= 3, "spread uses most nodes: {spread:?}");
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = cluster_sweep(&[2], &[SwarmStrategy::Random], 20, 3, 11);
        let b = cluster_sweep(&[2], &[SwarmStrategy::Random], 20, 3, 11);
        assert_eq!(a[0].finished.samples, b[0].finished.samples);
    }
}
