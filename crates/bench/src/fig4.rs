//! Fig. 4: response time of the hooked CUDA APIs, with vs without
//! ConVGPU — over **real UNIX sockets**, so the "with" column contains the
//! genuine IPC cost of this machine, exactly as the paper's numbers
//! contain the cost of theirs.

use convgpu_core::handler::ServiceHandler;
use convgpu_core::service::SchedulerService;
use convgpu_gpu_sim::device::GpuDevice;
use convgpu_gpu_sim::latency::LatencyModel;
use convgpu_gpu_sim::runtime::RawCudaRuntime;
use convgpu_ipc::client::SchedulerClient;
use convgpu_ipc::endpoint::SchedulerEndpoint;
use convgpu_ipc::server::SocketServer;
use convgpu_scheduler::core::{Scheduler, SchedulerConfig};
use convgpu_scheduler::policy::PolicyKind;
use convgpu_sim_core::clock::RealClock;
use convgpu_sim_core::ids::ContainerId;
use convgpu_sim_core::units::Bytes;
use convgpu_workloads::apibench::measure_api_response;
use convgpu_wrapper::module::WrapperModule;
use std::sync::Arc;

/// One Fig. 4 pair.
#[derive(Clone, Debug)]
pub struct Fig4Row {
    /// API label.
    pub api: String,
    /// Mean response time without ConVGPU, milliseconds.
    pub without_ms: f64,
    /// Mean response time with ConVGPU, milliseconds.
    pub with_ms: f64,
}

impl Fig4Row {
    /// `with / without` ratio.
    pub fn ratio(&self) -> f64 {
        self.with_ms / self.without_ms
    }
}

/// Run the Fig. 4 experiment with `reps` repetitions per API (paper: 10).
pub fn run_fig4(reps: usize) -> Vec<Fig4Row> {
    let clock = RealClock::handle();
    let device = Arc::new(GpuDevice::tesla_k20m());
    let raw = Arc::new(RawCudaRuntime::new(
        Arc::clone(&device),
        LatencyModel::tesla_k20m(),
        Arc::clone(&clock),
    ));

    // Live scheduler behind a real socket.
    let dir = std::env::temp_dir().join(format!("convgpu-fig4-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create fig4 dir");
    let service = Arc::new(SchedulerService::new(
        Scheduler::new(SchedulerConfig::paper(), PolicyKind::BestFit.build(0)),
        clock,
        dir.clone(),
    ));
    let server = SocketServer::bind(
        &dir.join("sched.sock"),
        Arc::new(ServiceHandler::new(Arc::clone(&service))),
    )
    .expect("bind fig4 socket");
    let client = SchedulerClient::connect(server.path()).expect("connect fig4 socket");
    let container = ContainerId(1);
    client
        .register(container, Bytes::gib(2))
        .expect("register fig4 container");
    let wrapper = WrapperModule::new(container, Arc::clone(&raw) as _, Arc::new(client));

    // "Without the solution": straight to the runtime.
    let without = measure_api_response(&*raw, 1, reps).expect("baseline probe");
    // "With the solution": through the wrapper and the socket.
    let with = measure_api_response(&wrapper, 2, reps).expect("wrapped probe");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    without
        .into_iter()
        .zip(with)
        .map(|(w0, w1)| {
            assert_eq!(w0.api, w1.api, "row order must match");
            let (without_ms, with_ms) = (w0.mean_ms(), w1.mean_ms());
            Fig4Row {
                api: w0.api,
                without_ms,
                with_ms,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_shape_holds() {
        let rows = run_fig4(10);
        assert_eq!(rows.len(), 6);
        let get = |n: &str| rows.iter().find(|r| r.api == n).expect(n).clone();

        // Allocation APIs cost more with ConVGPU (IPC round trips).
        let malloc = get("cudaMalloc");
        assert!(
            malloc.with_ms > malloc.without_ms,
            "wrapped malloc must pay IPC: {malloc:?}"
        );
        // Managed dwarfs everything (mapped-memory setup dominates IPC).
        let managed = get("cudaMallocManaged");
        assert!(managed.without_ms > malloc.without_ms * 10.0);
        // cudaMemGetInfo is FASTER with ConVGPU: the scheduler answers
        // from its books instead of querying the device. The strict
        // comparison needs an optimized codec build (a debug-build
        // socket round trip costs about as much as the modeled device
        // query), so the debug-build assertion only requires parity; `repro_fig4`
        // (release) demonstrates the real speedup.
        let meminfo = get("cudaMemGetInfo");
        if cfg!(debug_assertions) {
            assert!(
                meminfo.with_ms < meminfo.without_ms * 1.5,
                "ConVGPU meminfo should not be much slower: {meminfo:?}"
            );
        } else {
            assert!(
                meminfo.with_ms < meminfo.without_ms,
                "paper's counter-intuitive result must reproduce: {meminfo:?}"
            );
        }
        // First pitch call costs more than steady-state pitch calls with
        // ConVGPU (property fetch). A single first-call sample is noisy
        // under an unoptimized build, so the strict ordering is asserted
        // in release only.
        let pitch_first = get("cudaMallocPitch (first)");
        let pitch = get("cudaMallocPitch");
        if cfg!(debug_assertions) {
            assert!(
                pitch_first.with_ms > pitch.with_ms * 0.5,
                "{pitch_first:?} vs {pitch:?}"
            );
        } else {
            assert!(
                pitch_first.with_ms > pitch.with_ms,
                "{pitch_first:?} vs {pitch:?}"
            );
        }
    }
}
