//! Fig. 5: container creation time, with vs without ConVGPU.
//!
//! The paper reports ≈ 0.41 s without and ≈ 0.47 s with (+15 %,
//! +0.0618 s): the customized nvidia-docker's scheduler registration,
//! directory/socket setup and two extra volume mounts. The measurement
//! here spans the same window — from issuing the (rewritten) run command
//! until the container is started — on the session clock.

use convgpu_core::middleware::{ConVGpu, ConVGpuConfig, TransportMode};
use convgpu_core::nvidia_docker::RunCommand;
use convgpu_sim_core::stats::Summary;
use std::time::Duration;

/// Fig. 5 outcome.
#[derive(Clone, Debug)]
pub struct Fig5Result {
    /// Creation time without ConVGPU, seconds (workload time).
    pub baseline: Summary,
    /// Creation time with ConVGPU, seconds.
    pub convgpu: Summary,
}

impl Fig5Result {
    /// Overhead fraction (mean over mean − 1).
    pub fn overhead_fraction(&self) -> f64 {
        self.convgpu.mean / self.baseline.mean - 1.0
    }
}

/// Run the Fig. 5 experiment with `reps` repetitions (paper: 10).
///
/// `time_scale` compresses the Docker-side cost model; 1.0 reproduces the
/// paper's absolute numbers but takes `reps × ~0.9 s`, while 0.1 keeps
/// the ratio with a 10× faster run (the real ConVGPU work — registration,
/// directory and socket setup — is microseconds either way and therefore
/// does not distort a 0.1 scale measurably).
pub fn run_fig5(reps: usize, time_scale: f64) -> Fig5Result {
    let convgpu = ConVGpu::start(ConVGpuConfig {
        time_scale,
        transport: TransportMode::UnixSocket,
        ..ConVGpuConfig::default()
    })
    .expect("start middleware");
    let clock = convgpu.clock().clone();

    let mut baseline = Vec::with_capacity(reps);
    let mut with = Vec::with_capacity(reps);
    for _ in 0..reps {
        // Without: plain nvidia-docker (GPU devices + driver volume, no
        // ConVGPU pieces).
        let t0 = clock.now();
        let id = convgpu
            .nvidia_docker()
            .run_unmanaged(&RunCommand::new("cuda-app"))
            .expect("baseline run");
        baseline.push((clock.now() - t0).as_secs_f64());
        convgpu.engine().stop(id, 0).expect("stop baseline");

        // With: the customized nvidia-docker.
        let t0 = clock.now();
        let prepared = convgpu
            .nvidia_docker()
            .run(&RunCommand::new("cuda-app").nvidia_memory("512m"))
            .expect("convgpu run");
        with.push((clock.now() - t0).as_secs_f64());
        convgpu.engine().stop(prepared.id, 0).expect("stop convgpu");
        // Let the plugin release the registration before the next rep.
        convgpu.wait_closed(prepared.id, Duration::from_secs(5));
    }
    convgpu.shutdown();
    Fig5Result {
        baseline: Summary::of(&baseline),
        convgpu: Summary::of(&with),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creation_overhead_is_positive_and_moderate() {
        let r = run_fig5(4, 0.05);
        let overhead = r.overhead_fraction();
        assert!(
            overhead > 0.02,
            "ConVGPU must cost something: {overhead:.3} ({r:?})"
        );
        assert!(
            overhead < 0.60,
            "overhead should stay moderate: {overhead:.3} ({r:?})"
        );
    }
}
