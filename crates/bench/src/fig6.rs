//! Fig. 6: overall runtime of the TensorFlow MNIST program, with vs
//! without ConVGPU.
//!
//! Paper: 404.93 s with ConVGPU, "only increased 0.7 % more than that of
//! without", because "the user program most spends its time copying data
//! from/to the CPU memory and running GPU kernel code".
//!
//! This experiment runs the MNIST cost model in **virtual time** twice:
//! once against the raw runtime and once through the wrapper module with
//! a *modeled* IPC round-trip cost (defaulting to the paper's measured
//! per-call delta; pass the value measured by your own Fig. 4 run for a
//! machine-calibrated number). Virtual time makes the ratio exact and
//! deterministic.

use convgpu_core::service::{InProcEndpoint, SchedulerService};
use convgpu_gpu_sim::api::CudaApi;
use convgpu_gpu_sim::device::GpuDevice;
use convgpu_gpu_sim::latency::LatencyModel;
use convgpu_gpu_sim::program::GpuProgram;
use convgpu_gpu_sim::runtime::RawCudaRuntime;
use convgpu_scheduler::core::{Scheduler, SchedulerConfig};
use convgpu_scheduler::policy::PolicyKind;
use convgpu_sim_core::clock::{Clock, VirtualClock};
use convgpu_sim_core::ids::ContainerId;
use convgpu_sim_core::time::SimDuration;
use convgpu_sim_core::units::Bytes;
use convgpu_workloads::mnist::MnistCnnProgram;
use convgpu_wrapper::module::WrapperModule;
use std::sync::Arc;

/// Fig. 6 outcome.
#[derive(Clone, Copy, Debug)]
pub struct Fig6Result {
    /// Runtime without ConVGPU, seconds (virtual).
    pub baseline_secs: f64,
    /// Runtime with ConVGPU, seconds (virtual).
    pub convgpu_secs: f64,
}

impl Fig6Result {
    /// Overhead percentage.
    pub fn overhead_pct(&self) -> f64 {
        (self.convgpu_secs / self.baseline_secs - 1.0) * 100.0
    }
}

fn run_once(steps: u32, wrapped: Option<SimDuration>) -> f64 {
    let clock = VirtualClock::new();
    let device = Arc::new(GpuDevice::tesla_k20m());
    let raw = Arc::new(RawCudaRuntime::new(
        Arc::clone(&device),
        LatencyModel::tesla_k20m(),
        clock.handle(),
    ));
    let mut program = MnistCnnProgram::with_steps(steps);
    let pid = 1;
    let t0 = clock.now();
    match wrapped {
        None => {
            let handle = clock.handle();
            program.run(&*raw, pid, &handle).expect("baseline mnist");
            raw.cuda_unregister_fat_binary(pid).expect("cleanup");
        }
        Some(ipc_cost) => {
            let container = ContainerId(1);
            let service = Arc::new(SchedulerService::new(
                Scheduler::new(SchedulerConfig::paper(), PolicyKind::BestFit.build(0)),
                clock.handle(),
                std::env::temp_dir().join(format!("convgpu-fig6-{}", std::process::id())),
            ));
            service
                .register(container, Bytes::mib(4096))
                .expect("register");
            let wrapper = WrapperModule::new(
                container,
                Arc::clone(&raw) as Arc<dyn CudaApi>,
                Arc::new(InProcEndpoint::new(Arc::clone(&service))),
            )
            .with_modeled_ipc(clock.handle(), ipc_cost);
            let handle = clock.handle();
            program.run(&wrapper, pid, &handle).expect("wrapped mnist");
            wrapper.cuda_unregister_fat_binary(pid).expect("cleanup");
            service.container_close(container).expect("close");
        }
    }
    (clock.now() - t0).as_secs_f64()
}

/// Run the Fig. 6 experiment. `ipc_round_trip` is the per-round-trip
/// wrapper↔scheduler cost to charge (the paper's Fig. 4 delta ≈ 47 µs
/// when `None`).
pub fn run_fig6(steps: u32, ipc_round_trip: Option<SimDuration>) -> Fig6Result {
    let ipc = ipc_round_trip.unwrap_or(SimDuration::from_micros(47));
    Fig6Result {
        baseline_secs: run_once(steps, None),
        convgpu_secs: run_once(steps, Some(ipc)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_small_and_positive() {
        let r = run_fig6(2000, None);
        assert!(
            (300.0..520.0).contains(&r.baseline_secs),
            "baseline scale: {r:?}"
        );
        let pct = r.overhead_pct();
        assert!(pct > 0.0, "ConVGPU costs something: {r:?}");
        assert!(
            pct < 2.0,
            "paper's headline: overhead is marginal (<1-2 %): {pct:.3}% ({r:?})"
        );
    }

    #[test]
    fn overhead_scales_with_ipc_cost() {
        let cheap = run_fig6(200, Some(SimDuration::from_micros(10)));
        let pricey = run_fig6(200, Some(SimDuration::from_millis(5)));
        assert!(pricey.overhead_pct() > cheap.overhead_pct() * 5.0);
        assert_eq!(cheap.baseline_secs, pricey.baseline_secs, "same baseline");
    }
}
