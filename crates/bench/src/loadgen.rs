//! `loadgen` — the hot-path throughput harness behind `BENCH_3.json`.
//!
//! Where [`crate::fig4`] measures one wrapped CUDA call and
//! [`crate::policies`] replays the paper's workload in a single-threaded
//! DES, this module stress-tests the **real service stack**: worker
//! threads drive thousands of containers through the full lifecycle
//! (register → allocation storm → pid churn → close) against a live
//! [`SchedulerService`], contending on its lock exactly like concurrent
//! wrapper processes do. The scheduler runs on the **sim clock**
//! ([`VirtualClock`], advanced one tick per operation so policy
//! timestamps stay meaningful), while throughput and admission latency
//! are measured in wall time with [`Instant`] — the thing a perf gate
//! must catch is a real-time regression, not a virtual one.
//!
//! Transports: in-process ([`InProcEndpoint`], isolating scheduler-core
//! cost) or a real UNIX socket in either wire codec (adding genuine IPC
//! cost; the binary codec is the hot-path option).
//!
//! ## Liveness
//!
//! The storm is deadlock-free by construction:
//!
//! * a worker **frees its held chunk before every admission request**, so
//!   a parked worker never sits on chunk memory;
//! * assignments are released wholesale at `process_exit` /
//!   `container_close`, and every container's op sequence is finite, so
//!   the scheduler's full-guarantee redistribution always finds released
//!   memory to cover parked deficits;
//! * `chunk + ctx_overhead ≤ limit` keeps storm requests from ever being
//!   rejected for exceeding the container limit (the only rejections are
//!   the deliberate over-limit probes), which makes the expected decision
//!   counts exact — and testable.

use convgpu_core::handler::ServiceHandler;
use convgpu_core::router::{ClusterRouter, NodeServer, RouterConfig};
use convgpu_core::service::{InProcEndpoint, SchedulerService};
use convgpu_ipc::binary::WireCodec;
use convgpu_ipc::client::SchedulerClient;
use convgpu_ipc::endpoint::SchedulerEndpoint;
use convgpu_ipc::message::{AllocDecision, ApiKind};
use convgpu_ipc::server::SocketServer;
use convgpu_ipc::transport::EndpointAddr;
use convgpu_obs::metrics::Histogram;
use convgpu_scheduler::backend::TopologyBackend;
use convgpu_scheduler::cluster::SwarmStrategy;
use convgpu_scheduler::core::{Scheduler, SchedulerConfig};
use convgpu_scheduler::metrics as sched_metrics;
use convgpu_scheduler::multi_gpu::{MultiGpuScheduler, PlacementPolicy};
use convgpu_scheduler::policy::PolicyKind;
use convgpu_scheduler::state::ResumeRule;
use convgpu_sim_core::clock::{RealClock, VirtualClock};
use convgpu_sim_core::ids::ContainerId;
use convgpu_sim_core::sync::Mutex;
use convgpu_sim_core::time::{SimDuration, SimTime};
use convgpu_sim_core::units::Bytes;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Which stack the workers drive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transport {
    /// Straight into the service (no socket): scheduler-core cost only.
    InProc,
    /// Through a real UNIX socket speaking `codec`.
    Socket(WireCodec),
    /// Through a TCP loopback socket speaking `codec` — the multi-host
    /// transport, measured against the UNIX path by the `BENCH_9.json`
    /// compare campaign.
    Tcp(WireCodec),
}

impl Transport {
    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Transport::InProc => "inproc",
            Transport::Socket(WireCodec::Json) => "socket-json",
            Transport::Socket(WireCodec::Binary) => "socket-binary",
            Transport::Tcp(WireCodec::Json) => "tcp-json",
            Transport::Tcp(WireCodec::Binary) => "tcp-binary",
        }
    }
}

/// One load-generation campaign (applied to each policy in turn).
#[derive(Clone, Copy, Debug)]
pub struct LoadgenConfig {
    /// Containers driven through the full lifecycle.
    pub containers: u32,
    /// Concurrent worker threads (each owns one container at a time).
    pub workers: u32,
    /// Admission requests in the storm phase, per container.
    pub rounds: u32,
    /// Storm allocation size.
    pub chunk: Bytes,
    /// Per-container registration limit.
    pub limit: Bytes,
    /// GPU capacity under management.
    pub capacity: Bytes,
    /// Every Nth storm round issues a deliberately over-limit request
    /// that the scheduler must reject instantly (0 = never).
    pub reject_every: u32,
    /// Wall microseconds each granted chunk is held before the next
    /// round frees it (0 = release immediately). A non-zero hold makes
    /// the hold window dominate the round, so workers *provably* overlap
    /// — even a fully serializing scheduler cannot run a worker's
    /// alloc while the others' sleeps release the CPU but keep their
    /// memory — which makes contention deterministic rather than a
    /// race-timing accident. Throughput campaigns keep it 0.
    pub hold_us: u64,
    /// In-process or socket transport.
    pub transport: Transport,
}

/// The paper's 66 MiB per-pid context overhead, charged by the harness
/// configuration so admission math matches the live stack.
const CTX_OVERHEAD: Bytes = Bytes::mib(66);

impl LoadgenConfig {
    /// The standard campaign: thousands of containers, contended enough
    /// that suspensions and redistribution run on the hot path. The
    /// capacity is deliberately smaller than the paper's 5 GiB card:
    /// a worker only holds its chunk for part of each round, so ~1/3 of
    /// the workers hold concurrently, and 2 GiB keeps that steady state
    /// over capacity — every policy's suspend/redistribute machinery is
    /// exercised, not just the grant fast path.
    pub fn standard() -> Self {
        LoadgenConfig {
            containers: 2000,
            workers: 16,
            rounds: 8,
            chunk: Bytes::mib(384),
            limit: Bytes::mib(512),
            capacity: Bytes::gib(2),
            reject_every: 4,
            hold_us: 0,
            transport: Transport::InProc,
        }
    }

    /// A seconds-scale smoke campaign for CI and debug builds.
    pub fn smoke() -> Self {
        LoadgenConfig {
            containers: 200,
            ..LoadgenConfig::standard()
        }
    }

    /// Admission decisions one container produces: the storm rounds plus
    /// the churn-phase allocation by the second pid.
    pub fn decisions_per_container(&self) -> u64 {
        u64::from(self.rounds) + 1
    }

    /// Deliberate over-limit probes per container.
    pub fn probes_per_container(&self) -> u64 {
        u64::from(self.rounds.checked_div(self.reject_every).unwrap_or(0))
    }
}

/// Measured outcome of one policy's campaign.
#[derive(Clone, Debug)]
pub struct PolicyRun {
    /// Policy under test.
    pub policy: PolicyKind,
    /// Admission decisions delivered (granted + rejected).
    pub decisions: u64,
    /// Granted decisions.
    pub granted: u64,
    /// Rejected decisions.
    pub rejected: u64,
    /// Suspend episodes recorded on the scheduler's books.
    pub suspensions: u64,
    /// Wall-clock duration of the campaign, seconds.
    pub elapsed_secs: f64,
    /// `decisions / elapsed_secs` — the headline throughput number.
    pub decisions_per_sec: f64,
    /// Wall-clock admission latency (request → decision), one
    /// observation per decision, including time parked while suspended.
    pub admission: Histogram,
}

impl PolicyRun {
    /// Admission-latency quantile in milliseconds (0 when empty).
    pub fn quantile_ms(&self, q: f64) -> f64 {
        self.admission.quantile_ns(q).unwrap_or(0.0) / 1e6
    }

    /// Mean admission latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        if self.admission.count() == 0 {
            0.0
        } else {
            self.admission.sum_ns() as f64 / self.admission.count() as f64 / 1e6
        }
    }
}

/// A full campaign: one [`PolicyRun`] per policy.
#[derive(Clone, Debug)]
pub struct LoadgenReport {
    /// The configuration every policy ran under.
    pub config: LoadgenConfig,
    /// Per-policy results, in [`PolicyKind::ALL`] order.
    pub runs: Vec<PolicyRun>,
}

impl LoadgenReport {
    /// Aggregate throughput across policies: total decisions over total
    /// wall time. This is the number the CI perf gate compares against
    /// the committed baseline.
    pub fn total_decisions_per_sec(&self) -> f64 {
        let decisions: u64 = self.runs.iter().map(|r| r.decisions).sum();
        let elapsed: f64 = self.runs.iter().map(|r| r.elapsed_secs).sum();
        if elapsed > 0.0 {
            decisions as f64 / elapsed
        } else {
            0.0
        }
    }
}

/// Run the campaign for every policy in [`PolicyKind::ALL`].
pub fn run_loadgen(cfg: &LoadgenConfig) -> LoadgenReport {
    let runs = PolicyKind::ALL
        .into_iter()
        .map(|policy| run_policy(cfg, policy))
        .collect();
    LoadgenReport { config: *cfg, runs }
}

/// Validate the liveness preconditions from the module docs.
fn check_config(cfg: &LoadgenConfig) {
    assert!(cfg.containers > 0 && cfg.workers > 0 && cfg.rounds > 0);
    assert!(
        cfg.chunk + CTX_OVERHEAD <= cfg.limit,
        "storm chunk + ctx overhead must fit the limit (else storms reject)"
    );
    assert!(
        cfg.limit <= cfg.capacity,
        "limit must fit capacity (else registration refuses)"
    );
}

/// The scheduler configuration every campaign device runs under.
fn sched_config(cfg: &LoadgenConfig) -> SchedulerConfig {
    SchedulerConfig {
        capacity: cfg.capacity,
        ctx_overhead: CTX_OVERHEAD,
        charge_ctx_overhead: true,
        resume_rule: ResumeRule::FullGuarantee,
        default_limit: cfg.limit,
    }
}

/// Bind the socket server when the transport needs one.
fn bind_server(
    cfg: &LoadgenConfig,
    dir: &Path,
    service: &Arc<SchedulerService>,
) -> Option<SocketServer> {
    let endpoint = match cfg.transport {
        Transport::InProc => return None,
        Transport::Socket(_) => EndpointAddr::from(dir.join("sched.sock")),
        Transport::Tcp(_) => EndpointAddr::Tcp("127.0.0.1:0".to_string()),
    };
    Some(
        SocketServer::bind_endpoint(
            &endpoint,
            Arc::new(ServiceHandler::new(Arc::clone(service))),
        )
        .expect("bind loadgen socket"),
    )
}

/// Run one policy's campaign.
///
/// # Panics
/// Panics on scheduler protocol violations or on configurations that
/// would break the liveness argument in the module docs — a hung or
/// invalid campaign must fail loudly, not publish numbers.
pub fn run_policy(cfg: &LoadgenConfig, policy: PolicyKind) -> PolicyRun {
    check_config(cfg);

    let vclock = VirtualClock::new();
    let dir = std::env::temp_dir().join(format!(
        "convgpu-loadgen-{}-{}",
        std::process::id(),
        policy.label()
    ));
    std::fs::create_dir_all(&dir).expect("create loadgen dir");
    let service = Arc::new(SchedulerService::new(
        Scheduler::new(sched_config(cfg), policy.build(0xC0DE)),
        vclock.handle(),
        dir.clone(),
    ));
    let server = bind_server(cfg, &dir, &service);

    let (merged, elapsed_secs) = storm(cfg, &service, &server, &vclock);

    if let Some(server) = server {
        server.shutdown();
    }
    let (suspensions, open) = service.with_scheduler(|s| {
        let per = sched_metrics::collect(s.containers());
        let open = per.iter().filter(|m| m.closed_at.is_none()).count();
        (per.iter().map(|m| m.suspend_episodes).sum::<u64>(), open)
    });
    assert_eq!(open, 0, "every loadgen container must close");
    let _ = std::fs::remove_dir_all(&dir);

    let decisions = merged.granted + merged.rejected;
    let expected = u64::from(cfg.containers) * cfg.decisions_per_container();
    assert_eq!(
        decisions, expected,
        "decision count must be exact (liveness or protocol bug otherwise)"
    );
    PolicyRun {
        policy,
        decisions,
        granted: merged.granted,
        rejected: merged.rejected,
        suspensions,
        elapsed_secs,
        decisions_per_sec: if elapsed_secs > 0.0 {
            decisions as f64 / elapsed_secs
        } else {
            0.0
        },
        admission: merged.admission,
    }
}

/// The worker storm: every container's full lifecycle, spread over
/// `cfg.workers` threads contending on the live service. Returns the
/// merged per-worker stats and the wall-clock duration in seconds.
fn storm(
    cfg: &LoadgenConfig,
    service: &Arc<SchedulerService>,
    server: &Option<SocketServer>,
    vclock: &VirtualClock,
) -> (WorkerStats, f64) {
    let factory = || -> Arc<dyn SchedulerEndpoint> {
        match cfg.transport {
            Transport::InProc => Arc::new(InProcEndpoint::new(Arc::clone(service))),
            Transport::Socket(codec) | Transport::Tcp(codec) => Arc::new(
                SchedulerClient::connect_endpoint_with_codec(
                    server
                        .as_ref()
                        .expect("socket transport has a server")
                        .endpoint(),
                    codec,
                    None,
                )
                .expect("connect loadgen client"),
            ),
        }
    };
    storm_with(cfg, &factory, vclock)
}

/// [`storm`] over an arbitrary per-worker endpoint factory (the cluster
/// campaign hands every worker the shared router instead of a service).
fn storm_with(
    cfg: &LoadgenConfig,
    endpoint_factory: &(dyn Fn() -> Arc<dyn SchedulerEndpoint> + Sync),
    vclock: &VirtualClock,
) -> (WorkerStats, f64) {
    let next = AtomicU64::new(0);
    let ticks = AtomicU64::new(1);
    let started = Instant::now();
    let mut merged = WorkerStats::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.workers)
            .map(|_| {
                let next = &next;
                let ticks = &ticks;
                scope.spawn(move || {
                    let endpoint = endpoint_factory();
                    let mut stats = WorkerStats::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= u64::from(cfg.containers) {
                            break;
                        }
                        drive_container(
                            &*endpoint,
                            cfg,
                            ContainerId(idx + 1),
                            vclock,
                            ticks,
                            &mut stats,
                        );
                    }
                    stats
                })
            })
            .collect();
        for h in handles {
            merged.merge(h.join().expect("loadgen worker panicked"));
        }
    });
    (merged, started.elapsed().as_secs_f64())
}

struct WorkerStats {
    admission: Histogram,
    granted: u64,
    rejected: u64,
}

impl WorkerStats {
    fn new() -> Self {
        WorkerStats {
            admission: Histogram::new(),
            granted: 0,
            rejected: 0,
        }
    }

    fn merge(&mut self, other: WorkerStats) {
        self.admission.merge(&other.admission);
        self.granted += other.granted;
        self.rejected += other.rejected;
    }

    fn observe(&mut self, started: Instant, decision: AllocDecision) {
        let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.admission.observe_ns(ns);
        match decision {
            AllocDecision::Granted => self.granted += 1,
            AllocDecision::Rejected => self.rejected += 1,
        }
    }
}

/// Advance the shared sim clock by one tick so scheduler timestamps
/// (registration order, suspension age, recent use) stay distinct.
fn tick(vclock: &VirtualClock, ticks: &AtomicU64) {
    let n = ticks.fetch_add(1, Ordering::Relaxed);
    vclock.advance_to(SimTime::ZERO + SimDuration::from_micros(n));
}

/// One container's full lifecycle, as the module docs describe.
fn drive_container(
    endpoint: &dyn SchedulerEndpoint,
    cfg: &LoadgenConfig,
    id: ContainerId,
    vclock: &VirtualClock,
    ticks: &AtomicU64,
    stats: &mut WorkerStats,
) {
    tick(vclock, ticks);
    endpoint.register(id, cfg.limit).expect("loadgen register");
    let pid = 100_000 + id.as_u64();
    let mut next_addr = id.as_u64() << 20;
    let mut held: Option<u64> = None;

    for round in 0..cfg.rounds {
        // Free the previous hold before a request that could suspend:
        // see the liveness argument in the module docs.
        if let Some(addr) = held.take() {
            tick(vclock, ticks);
            endpoint.free(id, pid, addr).expect("loadgen free");
        }
        let probe = cfg.reject_every != 0 && round % cfg.reject_every == cfg.reject_every - 1;
        let size = if probe {
            cfg.limit + Bytes::new(1)
        } else {
            cfg.chunk
        };
        tick(vclock, ticks);
        let t0 = Instant::now();
        let decision = endpoint
            .request_alloc(id, pid, size, ApiKind::Malloc)
            .expect("loadgen alloc request");
        stats.observe(t0, decision);
        match decision {
            AllocDecision::Granted => {
                assert!(!probe, "an over-limit probe can never be granted");
                let addr = next_addr;
                next_addr += 1;
                endpoint
                    .alloc_done(id, pid, addr, cfg.chunk)
                    .expect("loadgen alloc_done");
                held = Some(addr);
                if cfg.hold_us > 0 {
                    std::thread::sleep(std::time::Duration::from_micros(cfg.hold_us));
                }
            }
            AllocDecision::Rejected => {
                assert!(probe, "an in-limit storm request can never be rejected");
            }
        }
    }

    // Churn: the storm pid dies (releasing its chunk and ctx overhead),
    // a fresh pid performs one more admission, then the container closes.
    tick(vclock, ticks);
    endpoint
        .process_exit(id, pid)
        .expect("loadgen process_exit");
    let pid2 = pid + 1_000_000;
    tick(vclock, ticks);
    let t0 = Instant::now();
    let decision = endpoint
        .request_alloc(id, pid2, cfg.chunk, ApiKind::Malloc)
        .expect("loadgen churn alloc");
    stats.observe(t0, decision);
    if decision == AllocDecision::Granted {
        endpoint
            .alloc_done(id, pid2, next_addr, cfg.chunk)
            .expect("loadgen churn alloc_done");
    }
    tick(vclock, ticks);
    endpoint
        .container_close(id)
        .expect("loadgen container_close");
}

/// Render the machine-readable report (the `BENCH_3.json` schema).
pub fn render_json(report: &LoadgenReport) -> String {
    let cfg = &report.config;
    let mut out = String::with_capacity(2048);
    out.push_str("{\n");
    out.push_str("  \"bench\": \"loadgen\",\n  \"version\": 1,\n");
    out.push_str(&format!(
        "  \"config\": {{\"containers\": {}, \"workers\": {}, \"rounds\": {}, \
         \"chunk_mib\": {}, \"limit_mib\": {}, \"capacity_mib\": {}, \
         \"reject_every\": {}, \"hold_us\": {}, \"transport\": \"{}\"}},\n",
        cfg.containers,
        cfg.workers,
        cfg.rounds,
        cfg.chunk.as_mib(),
        cfg.limit.as_mib(),
        cfg.capacity.as_mib(),
        cfg.reject_every,
        cfg.hold_us,
        cfg.transport.label(),
    ));
    out.push_str("  \"policies\": [\n");
    for (i, run) in report.runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"policy\": \"{}\", \"decisions\": {}, \"granted\": {}, \
             \"rejected\": {}, \"suspensions\": {}, \"elapsed_secs\": {:.6}, \
             \"decisions_per_sec\": {:.1}, \"admission_ms\": \
             {{\"p50\": {:.6}, \"p95\": {:.6}, \"p99\": {:.6}, \"mean\": {:.6}, \"count\": {}}}}}{}\n",
            run.policy.label(),
            run.decisions,
            run.granted,
            run.rejected,
            run.suspensions,
            run.elapsed_secs,
            run.decisions_per_sec,
            run.quantile_ms(0.50),
            run.quantile_ms(0.95),
            run.quantile_ms(0.99),
            run.mean_ms(),
            run.admission.count(),
            if i + 1 == report.runs.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"total_decisions_per_sec\": {:.1}\n}}\n",
        report.total_decisions_per_sec()
    ));
    out
}

/// The transport-compare campaign behind `BENCH_9.json`: the same
/// single-policy storm driven twice over a real socket — once UNIX,
/// once TCP loopback — in the same wire codec. The headline number is
/// the TCP/UNIX throughput ratio: the perf-trend gate pins it at a
/// `1.0` baseline, so TCP admission throughput must stay within the
/// retention floor (80%) of the UNIX path.
#[derive(Clone, Copy, Debug)]
pub struct TransportCompareConfig {
    /// Campaign parameters shared by both legs (`transport` is
    /// overridden per leg and ignored here).
    pub base: LoadgenConfig,
    /// The one policy both legs run under.
    pub policy: PolicyKind,
    /// Wire codec both legs speak.
    pub codec: WireCodec,
}

impl TransportCompareConfig {
    /// The standard compare: the full storm, hot-path binary codec.
    pub fn standard() -> Self {
        TransportCompareConfig {
            base: LoadgenConfig::standard(),
            policy: PolicyKind::BestFit,
            codec: WireCodec::Binary,
        }
    }

    /// A seconds-scale smoke compare for CI and debug builds.
    pub fn smoke() -> Self {
        TransportCompareConfig {
            base: LoadgenConfig::smoke(),
            ..TransportCompareConfig::standard()
        }
    }
}

/// Measured outcome of the two-leg transport compare.
#[derive(Clone, Debug)]
pub struct TransportCompareReport {
    /// The configuration both legs ran under.
    pub config: TransportCompareConfig,
    /// The UNIX-socket leg.
    pub unix: PolicyRun,
    /// The TCP-loopback leg.
    pub tcp: PolicyRun,
}

impl TransportCompareReport {
    /// UNIX-socket admission throughput (decisions/s).
    pub fn unix_decisions_per_sec(&self) -> f64 {
        self.unix.decisions_per_sec
    }

    /// TCP-loopback admission throughput (decisions/s).
    pub fn tcp_decisions_per_sec(&self) -> f64 {
        self.tcp.decisions_per_sec
    }

    /// TCP throughput as a fraction of UNIX throughput — the gated
    /// number (baseline `1.0`, floor [`BASELINE_RETENTION`]).
    pub fn tcp_vs_unix_ratio(&self) -> f64 {
        if self.unix.decisions_per_sec > 0.0 {
            self.tcp.decisions_per_sec / self.unix.decisions_per_sec
        } else {
            0.0
        }
    }
}

/// Run the two-leg transport compare: UNIX first, then TCP loopback,
/// identical storm parameters.
pub fn run_transport_compare(cfg: &TransportCompareConfig) -> TransportCompareReport {
    let unix = run_policy(
        &LoadgenConfig {
            transport: Transport::Socket(cfg.codec),
            ..cfg.base
        },
        cfg.policy,
    );
    let tcp = run_policy(
        &LoadgenConfig {
            transport: Transport::Tcp(cfg.codec),
            ..cfg.base
        },
        cfg.policy,
    );
    TransportCompareReport {
        config: *cfg,
        unix,
        tcp,
    }
}

/// Render the machine-readable transport compare (the `BENCH_9.json`
/// schema).
pub fn render_transport_json(report: &TransportCompareReport) -> String {
    let cfg = &report.config;
    let mut out = String::with_capacity(2048);
    out.push_str("{\n");
    out.push_str("  \"bench\": \"loadgen-transport\",\n  \"version\": 1,\n");
    out.push_str(&format!(
        "  \"config\": {{\"containers\": {}, \"workers\": {}, \"rounds\": {}, \
         \"chunk_mib\": {}, \"limit_mib\": {}, \"capacity_mib\": {}, \
         \"policy\": \"{}\", \"codec\": \"{}\"}},\n",
        cfg.base.containers,
        cfg.base.workers,
        cfg.base.rounds,
        cfg.base.chunk.as_mib(),
        cfg.base.limit.as_mib(),
        cfg.base.capacity.as_mib(),
        cfg.policy.label(),
        cfg.codec.label(),
    ));
    out.push_str("  \"transports\": [\n");
    let legs = [("unix", &report.unix), ("tcp", &report.tcp)];
    for (i, (scheme, run)) in legs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"transport\": \"{}\", \"decisions\": {}, \"granted\": {}, \
             \"rejected\": {}, \"suspensions\": {}, \"elapsed_secs\": {:.6}, \
             \"decisions_per_sec\": {:.1}, \"admission_ms\": \
             {{\"p50\": {:.6}, \"p95\": {:.6}, \"p99\": {:.6}, \"mean\": {:.6}, \"count\": {}}}}}{}\n",
            scheme,
            run.decisions,
            run.granted,
            run.rejected,
            run.suspensions,
            run.elapsed_secs,
            run.decisions_per_sec,
            run.quantile_ms(0.50),
            run.quantile_ms(0.95),
            run.quantile_ms(0.99),
            run.mean_ms(),
            run.admission.count(),
            if i + 1 == legs.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"transport_unix_decisions_per_sec\": {:.1},\n\
         \x20 \"transport_tcp_decisions_per_sec\": {:.1},\n\
         \x20 \"transport_tcp_vs_unix_ratio\": {:.4}\n}}\n",
        report.unix_decisions_per_sec(),
        report.tcp_decisions_per_sec(),
        report.tcp_vs_unix_ratio(),
    ));
    out
}

/// The sharded (multi-GPU) campaign: the same container storm driven
/// against a [`MultiGpuScheduler`] behind the live service, once per
/// placement policy. `base.capacity` is **per device**.
#[derive(Clone, Copy, Debug)]
pub struct ShardedConfig {
    /// Per-device campaign parameters (`capacity` applies to each
    /// device, not the aggregate).
    pub base: LoadgenConfig,
    /// GPU devices under management.
    pub devices: u32,
    /// Redistribution policy every device scheduler runs.
    pub policy: PolicyKind,
}

impl ShardedConfig {
    /// The standard sharded campaign: two 1 GiB devices so the per-device
    /// pressure matches the single-GPU standard campaign (2 GiB split in
    /// half), under the paper's default best-fit redistribution.
    pub fn standard() -> Self {
        ShardedConfig {
            base: LoadgenConfig {
                capacity: Bytes::gib(1),
                ..LoadgenConfig::standard()
            },
            devices: 2,
            policy: PolicyKind::BestFit,
        }
    }

    /// A seconds-scale smoke campaign for CI and debug builds.
    pub fn smoke() -> Self {
        let std_cfg = Self::standard();
        ShardedConfig {
            base: LoadgenConfig {
                containers: 200,
                ..std_cfg.base
            },
            ..std_cfg
        }
    }
}

/// Measured outcome of one placement policy's sharded campaign.
#[derive(Clone, Debug)]
pub struct PlacementRun {
    /// Placement policy under test.
    pub placement: PlacementPolicy,
    /// Admission decisions delivered (granted + rejected).
    pub decisions: u64,
    /// Granted decisions.
    pub granted: u64,
    /// Rejected decisions.
    pub rejected: u64,
    /// Suspend episodes summed over every device's books.
    pub suspensions: u64,
    /// Containers the placement policy homed on each device (lifetime
    /// total, index = device).
    pub containers_per_device: Vec<u64>,
    /// Wall-clock duration of the campaign, seconds.
    pub elapsed_secs: f64,
    /// `decisions / elapsed_secs`.
    pub decisions_per_sec: f64,
    /// Wall-clock admission latency (request → decision).
    pub admission: Histogram,
}

impl PlacementRun {
    /// Admission-latency quantile in milliseconds (0 when empty).
    pub fn quantile_ms(&self, q: f64) -> f64 {
        self.admission.quantile_ns(q).unwrap_or(0.0) / 1e6
    }

    /// Mean admission latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        if self.admission.count() == 0 {
            0.0
        } else {
            self.admission.sum_ns() as f64 / self.admission.count() as f64 / 1e6
        }
    }
}

/// A full sharded campaign: one [`PlacementRun`] per placement policy.
#[derive(Clone, Debug)]
pub struct ShardedReport {
    /// The configuration every placement ran under.
    pub config: ShardedConfig,
    /// Per-placement results: round-robin, most-free, best-fit-device.
    pub runs: Vec<PlacementRun>,
}

impl ShardedReport {
    /// Aggregate throughput across placements — the number the CI perf
    /// gate compares against `sharded_total_decisions_per_sec` in the
    /// committed baseline.
    pub fn sharded_total_decisions_per_sec(&self) -> f64 {
        let decisions: u64 = self.runs.iter().map(|r| r.decisions).sum();
        let elapsed: f64 = self.runs.iter().map(|r| r.elapsed_secs).sum();
        if elapsed > 0.0 {
            decisions as f64 / elapsed
        } else {
            0.0
        }
    }
}

/// The placement policies the sharded campaign sweeps, in report order.
pub const PLACEMENTS: [PlacementPolicy; 3] = [
    PlacementPolicy::RoundRobin,
    PlacementPolicy::MostFree,
    PlacementPolicy::BestFitDevice,
];

/// Run the sharded campaign for every placement policy in [`PLACEMENTS`].
pub fn run_sharded(cfg: &ShardedConfig) -> ShardedReport {
    let runs = PLACEMENTS
        .into_iter()
        .map(|placement| run_sharded_placement(cfg, placement))
        .collect();
    ShardedReport { config: *cfg, runs }
}

/// Run one placement policy's sharded campaign.
///
/// The liveness argument from the module docs carries over unchanged:
/// a container lives its whole life on the device the placement chose
/// at registration, so each device is an independent single-GPU storm
/// with a (placement-dependent) share of the containers.
///
/// # Panics
/// As [`run_policy`]: protocol violations and liveness-breaking
/// configurations abort the campaign rather than publish numbers.
pub fn run_sharded_placement(cfg: &ShardedConfig, placement: PlacementPolicy) -> PlacementRun {
    check_config(&cfg.base);
    assert!(cfg.devices > 0, "need at least one device");

    let vclock = VirtualClock::new();
    let dir = std::env::temp_dir().join(format!(
        "convgpu-loadgen-sharded-{}-{}",
        std::process::id(),
        placement.label()
    ));
    std::fs::create_dir_all(&dir).expect("create loadgen dir");
    let capacities = vec![cfg.base.capacity; cfg.devices as usize];
    let backend = TopologyBackend::MultiGpu(MultiGpuScheduler::with_config(
        sched_config(&cfg.base),
        &capacities,
        cfg.policy,
        placement,
        0xC0DE,
    ));
    let service = Arc::new(SchedulerService::new_with_backend(
        backend,
        vclock.handle(),
        dir.clone(),
    ));
    let server = bind_server(&cfg.base, &dir, &service);

    let (merged, elapsed_secs) = storm(&cfg.base, &service, &server, &vclock);

    if let Some(server) = server {
        server.shutdown();
    }
    let (suspensions, open, containers_per_device) = service.with_backend(|b| match b {
        TopologyBackend::MultiGpu(m) => {
            let mut suspensions = 0u64;
            let mut open = 0usize;
            let mut per_device = Vec::with_capacity(m.device_count());
            for d in 0..m.device_count() {
                let per = sched_metrics::collect(m.device(d).containers());
                suspensions += per.iter().map(|c| c.suspend_episodes).sum::<u64>();
                open += per.iter().filter(|c| c.closed_at.is_none()).count();
                per_device.push(per.len() as u64);
            }
            (suspensions, open, per_device)
        }
        _ => unreachable!("sharded campaign always runs on a MultiGpu backend"),
    });
    assert_eq!(open, 0, "every loadgen container must close");
    let _ = std::fs::remove_dir_all(&dir);

    let decisions = merged.granted + merged.rejected;
    let expected = u64::from(cfg.base.containers) * cfg.base.decisions_per_container();
    assert_eq!(
        decisions, expected,
        "decision count must be exact (liveness or protocol bug otherwise)"
    );
    assert_eq!(
        containers_per_device.iter().sum::<u64>(),
        u64::from(cfg.base.containers),
        "every container must have been homed on exactly one device"
    );
    PlacementRun {
        placement,
        decisions,
        granted: merged.granted,
        rejected: merged.rejected,
        suspensions,
        containers_per_device,
        elapsed_secs,
        decisions_per_sec: if elapsed_secs > 0.0 {
            decisions as f64 / elapsed_secs
        } else {
            0.0
        },
        admission: merged.admission,
    }
}

/// Render the machine-readable sharded report (the `BENCH_4.json`
/// schema).
pub fn render_sharded_json(report: &ShardedReport) -> String {
    let cfg = &report.config;
    let base = &cfg.base;
    let mut out = String::with_capacity(2048);
    out.push_str("{\n");
    out.push_str("  \"bench\": \"loadgen-sharded\",\n  \"version\": 1,\n");
    out.push_str(&format!(
        "  \"config\": {{\"containers\": {}, \"workers\": {}, \"rounds\": {}, \
         \"chunk_mib\": {}, \"limit_mib\": {}, \"device_capacity_mib\": {}, \
         \"devices\": {}, \"policy\": \"{}\", \"reject_every\": {}, \
         \"hold_us\": {}, \"transport\": \"{}\"}},\n",
        base.containers,
        base.workers,
        base.rounds,
        base.chunk.as_mib(),
        base.limit.as_mib(),
        base.capacity.as_mib(),
        cfg.devices,
        cfg.policy.label(),
        base.reject_every,
        base.hold_us,
        base.transport.label(),
    ));
    out.push_str("  \"placements\": [\n");
    for (i, run) in report.runs.iter().enumerate() {
        let homes = run
            .containers_per_device
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{\"placement\": \"{}\", \"decisions\": {}, \"granted\": {}, \
             \"rejected\": {}, \"suspensions\": {}, \"containers_per_device\": [{homes}], \
             \"elapsed_secs\": {:.6}, \"decisions_per_sec\": {:.1}, \"admission_ms\": \
             {{\"p50\": {:.6}, \"p95\": {:.6}, \"p99\": {:.6}, \"mean\": {:.6}, \"count\": {}}}}}{}\n",
            run.placement.label(),
            run.decisions,
            run.granted,
            run.rejected,
            run.suspensions,
            run.elapsed_secs,
            run.decisions_per_sec,
            run.quantile_ms(0.50),
            run.quantile_ms(0.95),
            run.quantile_ms(0.99),
            run.mean_ms(),
            run.admission.count(),
            if i + 1 == report.runs.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"sharded_total_decisions_per_sec\": {:.1}\n}}\n",
        report.sharded_total_decisions_per_sec()
    ));
    out
}

/// Outcome of a baseline comparison.
#[derive(Clone, Debug, PartialEq)]
pub enum BaselineVerdict {
    /// Throughput is within the allowed envelope of the baseline.
    Pass {
        /// Measured aggregate decisions/sec.
        measured: f64,
        /// Committed baseline decisions/sec.
        baseline: f64,
    },
    /// Throughput regressed past the threshold.
    Regressed {
        /// Measured aggregate decisions/sec.
        measured: f64,
        /// Committed baseline decisions/sec.
        baseline: f64,
        /// The floor the measurement had to clear.
        floor: f64,
    },
}

/// Fraction of the baseline the measured throughput must retain (the CI
/// gate fails on a >20 % regression).
pub const BASELINE_RETENTION: f64 = 0.80;

/// Read one numeric field out of the committed baseline file.
fn read_baseline_value(baseline_path: &Path, key: &str) -> Result<f64, String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {}: {e}", baseline_path.display()))?;
    let json = convgpu_ipc::json::parse(&text).map_err(|e| {
        format!(
            "baseline {} is not valid JSON: {e}",
            baseline_path.display()
        )
    })?;
    match json.get(key) {
        Some(convgpu_ipc::json::Json::U64(n)) => Ok(*n as f64),
        Some(convgpu_ipc::json::Json::F64(f)) => Ok(*f),
        _ => Err(format!(
            "baseline {} lacks a numeric {key}",
            baseline_path.display()
        )),
    }
}

/// Apply the retention envelope to a measured throughput.
fn apply_baseline(measured: f64, baseline: f64) -> BaselineVerdict {
    let floor = baseline * BASELINE_RETENTION;
    if measured >= floor {
        BaselineVerdict::Pass { measured, baseline }
    } else {
        BaselineVerdict::Regressed {
            measured,
            baseline,
            floor,
        }
    }
}

/// Compare `report` against the committed baseline file
/// (`{"total_decisions_per_sec": N}` plus free-form context fields).
pub fn check_baseline(
    report: &LoadgenReport,
    baseline_path: &Path,
) -> Result<BaselineVerdict, String> {
    let baseline = read_baseline_value(baseline_path, "total_decisions_per_sec")?;
    Ok(apply_baseline(report.total_decisions_per_sec(), baseline))
}

/// Compare a sharded report against the committed baseline file's
/// `sharded_total_decisions_per_sec` field.
pub fn check_sharded_baseline(
    report: &ShardedReport,
    baseline_path: &Path,
) -> Result<BaselineVerdict, String> {
    let baseline = read_baseline_value(baseline_path, "sharded_total_decisions_per_sec")?;
    Ok(apply_baseline(
        report.sharded_total_decisions_per_sec(),
        baseline,
    ))
}

/// One cluster campaign (applied to each Swarm strategy in turn): every
/// node is a real [`NodeServer`] process image — its own
/// `SchedulerService` behind its own UNIX socket — and the workers drive
/// a [`ClusterRouter`] fronting those sockets, so every admission pays
/// the genuine route-and-forward cost the distributed deployment pays.
#[derive(Clone, Copy, Debug)]
pub struct ClusterLoadConfig {
    /// Per-node-device campaign parameters (`capacity` applies to each
    /// device of each node; `transport` is ignored — workers hold the
    /// router in process and the router speaks [`ClusterLoadConfig::codec`]
    /// to the node sockets).
    pub base: LoadgenConfig,
    /// Nodes in the cluster, each with its own socket server.
    pub nodes: u32,
    /// GPU devices each node manages.
    pub devices_per_node: u32,
    /// Redistribution policy every node's device schedulers run.
    pub policy: PolicyKind,
    /// Wire codec on the router → node hop.
    pub codec: WireCodec,
}

impl ClusterLoadConfig {
    /// The standard cluster campaign: two single-device 1 GiB nodes (the
    /// sharded campaign's split, but over real sockets), binary codec on
    /// the routed hop. Half the single-stack container count — every
    /// operation crosses a socket here, and the campaign runs once per
    /// strategy.
    pub fn standard() -> Self {
        ClusterLoadConfig {
            base: LoadgenConfig {
                containers: 1000,
                capacity: Bytes::gib(1),
                ..LoadgenConfig::standard()
            },
            nodes: 2,
            devices_per_node: 1,
            policy: PolicyKind::BestFit,
            codec: WireCodec::Binary,
        }
    }

    /// A seconds-scale smoke campaign for CI and debug builds.
    pub fn smoke() -> Self {
        let std_cfg = Self::standard();
        ClusterLoadConfig {
            base: LoadgenConfig {
                containers: 200,
                ..std_cfg.base
            },
            ..std_cfg
        }
    }
}

/// Measured outcome of one Swarm strategy's cluster campaign.
#[derive(Clone, Debug)]
pub struct ClusterRun {
    /// Placement strategy the router ran.
    pub strategy: SwarmStrategy,
    /// Admission decisions delivered (granted + rejected).
    pub decisions: u64,
    /// Granted decisions.
    pub granted: u64,
    /// Rejected decisions.
    pub rejected: u64,
    /// Suspend episodes summed over every node's device books.
    pub suspensions: u64,
    /// Containers the strategy homed on each node (lifetime total,
    /// index = node).
    pub containers_per_node: Vec<u64>,
    /// Router retries summed over nodes (0 in a healthy run).
    pub retries: u64,
    /// Router deadline hits summed over nodes (0 in a healthy run).
    pub timeouts: u64,
    /// Router degradation failovers summed over nodes (0 in a healthy
    /// run).
    pub failovers: u64,
    /// Wall-clock duration of the campaign, seconds.
    pub elapsed_secs: f64,
    /// `decisions / elapsed_secs`.
    pub decisions_per_sec: f64,
    /// Wall-clock admission latency (request → routed decision).
    pub admission: Histogram,
}

impl ClusterRun {
    /// Admission-latency quantile in milliseconds (0 when empty).
    pub fn quantile_ms(&self, q: f64) -> f64 {
        self.admission.quantile_ns(q).unwrap_or(0.0) / 1e6
    }

    /// Mean admission latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        if self.admission.count() == 0 {
            0.0
        } else {
            self.admission.sum_ns() as f64 / self.admission.count() as f64 / 1e6
        }
    }
}

/// A full cluster campaign: one [`ClusterRun`] per Swarm strategy.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// The configuration every strategy ran under.
    pub config: ClusterLoadConfig,
    /// Per-strategy results: spread, binpack, random.
    pub runs: Vec<ClusterRun>,
}

impl ClusterReport {
    /// Aggregate routed throughput across strategies — the headline
    /// number in `BENCH_7.json` (published as a CI artifact, not gated:
    /// routed throughput is dominated by socket round trips, which CI
    /// machines vary on too much for a retention floor to be meaningful).
    pub fn cluster_total_decisions_per_sec(&self) -> f64 {
        let decisions: u64 = self.runs.iter().map(|r| r.decisions).sum();
        let elapsed: f64 = self.runs.iter().map(|r| r.elapsed_secs).sum();
        if elapsed > 0.0 {
            decisions as f64 / elapsed
        } else {
            0.0
        }
    }
}

/// The Swarm strategies the cluster campaign sweeps, in report order.
pub const STRATEGIES: [SwarmStrategy; 3] = [
    SwarmStrategy::Spread,
    SwarmStrategy::BinPack,
    SwarmStrategy::Random,
];

/// Run the cluster campaign for every strategy in [`STRATEGIES`].
pub fn run_cluster(cfg: &ClusterLoadConfig) -> ClusterReport {
    let runs = STRATEGIES
        .into_iter()
        .map(|strategy| run_cluster_strategy(cfg, strategy))
        .collect();
    ClusterReport { config: *cfg, runs }
}

/// Run one Swarm strategy's cluster campaign.
///
/// The liveness argument from the module docs carries over through the
/// router: a container lives its whole life on the node the strategy
/// chose at registration, so each node is an independent storm with a
/// (strategy-dependent) share of the containers, and the router adds
/// forwarding but no admission policy of its own.
///
/// # Panics
/// As [`run_policy`], plus: any routed run that needed the robustness
/// layer (a retry deadline hit or a degradation failover) aborts the
/// campaign — against healthy local nodes those counters must be zero,
/// so a non-zero reading is a harness or transport bug, not a number
/// worth publishing.
pub fn run_cluster_strategy(cfg: &ClusterLoadConfig, strategy: SwarmStrategy) -> ClusterRun {
    check_config(&cfg.base);
    assert!(cfg.nodes > 0, "need at least one node");
    assert!(
        cfg.devices_per_node > 0,
        "need at least one device per node"
    );

    let vclock = VirtualClock::new();
    let dir = std::env::temp_dir().join(format!(
        "convgpu-loadgen-cluster-{}-{}",
        std::process::id(),
        strategy.label()
    ));
    let capacities = vec![cfg.base.capacity; cfg.devices_per_node as usize];
    let mut node_servers = Vec::with_capacity(cfg.nodes as usize);
    let mut sockets = Vec::with_capacity(cfg.nodes as usize);
    for i in 0..cfg.nodes {
        let name = format!("n{i}");
        let node_dir = dir.join(&name);
        std::fs::create_dir_all(&node_dir).expect("create cluster node dir");
        let backend = TopologyBackend::MultiGpu(MultiGpuScheduler::with_config(
            sched_config(&cfg.base),
            &capacities,
            cfg.policy,
            PlacementPolicy::BestFitDevice,
            0xC0DE + u64::from(i),
        ));
        let socket = node_dir.join("node.sock");
        let node = NodeServer::serve(name.clone(), backend, vclock.handle(), node_dir, &socket)
            .expect("serve cluster node");
        sockets.push((name, socket));
        node_servers.push(node);
    }

    // The router runs on the real clock with a deadline far beyond any
    // healthy local round trip: timeouts never fire in a clean run, so
    // the campaign cannot trip the retry path's duplicate-delivery
    // caveat (docs/CLUSTER.md) and the fault counters must read zero.
    let router = Arc::new(ClusterRouter::attach(
        sockets,
        cfg.codec,
        RouterConfig {
            strategy,
            deadline: SimDuration::from_secs(30),
            ..RouterConfig::default()
        },
        RealClock::handle(),
    ));

    let factory = || -> Arc<dyn SchedulerEndpoint> { Arc::clone(&router) as _ };
    let (merged, elapsed_secs) = storm_with(&cfg.base, &factory, &vclock);

    let (_, status) = router.cluster_status();
    let mut suspensions = 0u64;
    let mut open = 0usize;
    let mut containers_per_node = Vec::with_capacity(node_servers.len());
    for node in &node_servers {
        let (node_susp, node_open, homed) = node.service().with_backend(|b| match b {
            TopologyBackend::MultiGpu(m) => {
                let mut susp = 0u64;
                let mut open = 0usize;
                let mut homed = 0u64;
                for d in 0..m.device_count() {
                    let per = sched_metrics::collect(m.device(d).containers());
                    susp += per.iter().map(|c| c.suspend_episodes).sum::<u64>();
                    open += per.iter().filter(|c| c.closed_at.is_none()).count();
                    homed += per.len() as u64;
                }
                (susp, open, homed)
            }
            _ => unreachable!("cluster nodes always run a MultiGpu backend"),
        });
        suspensions += node_susp;
        open += node_open;
        containers_per_node.push(homed);
    }
    for node in node_servers {
        node.shutdown();
    }
    assert_eq!(open, 0, "every loadgen container must close");
    let _ = std::fs::remove_dir_all(&dir);

    let retries: u64 = status.iter().map(|n| n.retries).sum();
    let timeouts: u64 = status.iter().map(|n| n.timeouts).sum();
    let failovers: u64 = status.iter().map(|n| n.failovers).sum();
    assert_eq!(timeouts, 0, "healthy cluster run must not hit deadlines");
    assert_eq!(failovers, 0, "healthy cluster run must not fail over");

    let decisions = merged.granted + merged.rejected;
    let expected = u64::from(cfg.base.containers) * cfg.base.decisions_per_container();
    assert_eq!(
        decisions, expected,
        "decision count must be exact (liveness or protocol bug otherwise)"
    );
    assert_eq!(
        containers_per_node.iter().sum::<u64>(),
        u64::from(cfg.base.containers),
        "every container must have been homed on exactly one node"
    );
    ClusterRun {
        strategy,
        decisions,
        granted: merged.granted,
        rejected: merged.rejected,
        suspensions,
        containers_per_node,
        retries,
        timeouts,
        failovers,
        elapsed_secs,
        decisions_per_sec: if elapsed_secs > 0.0 {
            decisions as f64 / elapsed_secs
        } else {
            0.0
        },
        admission: merged.admission,
    }
}

/// Render the machine-readable cluster report (the `BENCH_7.json`
/// schema).
pub fn render_cluster_json(report: &ClusterReport) -> String {
    let cfg = &report.config;
    let base = &cfg.base;
    let mut out = String::with_capacity(2048);
    out.push_str("{\n");
    out.push_str("  \"bench\": \"loadgen-cluster\",\n  \"version\": 1,\n");
    out.push_str(&format!(
        "  \"config\": {{\"containers\": {}, \"workers\": {}, \"rounds\": {}, \
         \"chunk_mib\": {}, \"limit_mib\": {}, \"device_capacity_mib\": {}, \
         \"nodes\": {}, \"devices_per_node\": {}, \"policy\": \"{}\", \
         \"codec\": \"{}\", \"reject_every\": {}, \"hold_us\": {}}},\n",
        base.containers,
        base.workers,
        base.rounds,
        base.chunk.as_mib(),
        base.limit.as_mib(),
        base.capacity.as_mib(),
        cfg.nodes,
        cfg.devices_per_node,
        cfg.policy.label(),
        cfg.codec.label(),
        base.reject_every,
        base.hold_us,
    ));
    out.push_str("  \"strategies\": [\n");
    for (i, run) in report.runs.iter().enumerate() {
        let homes = run
            .containers_per_node
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{\"strategy\": \"{}\", \"decisions\": {}, \"granted\": {}, \
             \"rejected\": {}, \"suspensions\": {}, \"containers_per_node\": [{homes}], \
             \"retries\": {}, \"timeouts\": {}, \"failovers\": {}, \
             \"elapsed_secs\": {:.6}, \"decisions_per_sec\": {:.1}, \"admission_ms\": \
             {{\"p50\": {:.6}, \"p95\": {:.6}, \"p99\": {:.6}, \"mean\": {:.6}, \"count\": {}}}}}{}\n",
            run.strategy.label(),
            run.decisions,
            run.granted,
            run.rejected,
            run.suspensions,
            run.retries,
            run.timeouts,
            run.failovers,
            run.elapsed_secs,
            run.decisions_per_sec,
            run.quantile_ms(0.50),
            run.quantile_ms(0.95),
            run.quantile_ms(0.99),
            run.mean_ms(),
            run.admission.count(),
            if i + 1 == report.runs.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"cluster_total_decisions_per_sec\": {:.1}\n}}\n",
        report.cluster_total_decisions_per_sec()
    ));
    out
}

/// The kill-node fault campaign behind `BENCH_8.json`: the routed
/// cluster storm, except one node's server is **shut down mid-run**
/// (`kill_at` containers in). The router must detect the death, drain
/// the dead node's homed containers onto the survivor via checkpointed
/// migration, and keep serving — so unlike the healthy campaigns the
/// driver here is *tolerant*: operations interrupted by the death window
/// may error or reject, and are counted rather than asserted. What the
/// campaign does assert: every worker finishes (zero hung clients),
/// every surviving node ends with zero open containers and clean
/// invariants (committed memory never exceeded capacity), the router
/// marked the victim down, and admissions kept flowing after the kill.
///
/// Admission latency is split into a **steady** histogram (decisions
/// before the kill) and a **recovery** histogram (decisions after) —
/// the recovery percentiles are the headline numbers of the report.
#[derive(Clone, Copy, Debug)]
pub struct MigrationLoadConfig {
    /// Per-node-device campaign parameters (as [`ClusterLoadConfig`]).
    pub base: LoadgenConfig,
    /// Nodes in the cluster, each with its own socket server.
    pub nodes: u32,
    /// GPU devices each node manages.
    pub devices_per_node: u32,
    /// Redistribution policy every node's device schedulers run.
    pub policy: PolicyKind,
    /// Wire codec on the router → node hop.
    pub codec: WireCodec,
    /// Swarm placement strategy the router runs.
    pub strategy: SwarmStrategy,
    /// Index of the node whose server the campaign kills.
    pub kill_node: u32,
    /// The worker that picks up this container index kills the node
    /// first — so the death lands mid-storm, with live allocations and
    /// suspensions in flight.
    pub kill_at: u32,
}

impl MigrationLoadConfig {
    /// The standard fault campaign: the cluster campaign's two-node
    /// shape, node 0 killed a third of the way in.
    pub fn standard() -> Self {
        MigrationLoadConfig {
            base: LoadgenConfig {
                containers: 600,
                capacity: Bytes::gib(1),
                ..LoadgenConfig::standard()
            },
            nodes: 2,
            devices_per_node: 1,
            policy: PolicyKind::BestFit,
            codec: WireCodec::Binary,
            strategy: SwarmStrategy::Spread,
            kill_node: 0,
            kill_at: 200,
        }
    }

    /// A seconds-scale smoke campaign for CI and debug builds.
    pub fn smoke() -> Self {
        let std_cfg = Self::standard();
        MigrationLoadConfig {
            base: LoadgenConfig {
                containers: 200,
                ..std_cfg.base
            },
            kill_at: 60,
            ..std_cfg
        }
    }
}

/// Measured outcome of one kill-node fault campaign.
#[derive(Clone, Debug)]
pub struct MigrationReport {
    /// The configuration the campaign ran under.
    pub config: MigrationLoadConfig,
    /// Admission decisions delivered (granted + rejected).
    pub decisions: u64,
    /// Granted decisions.
    pub granted: u64,
    /// Rejected decisions.
    pub rejected: u64,
    /// Operations that errored in the death window (tolerated, counted).
    pub errors: u64,
    /// Suspend episodes summed over the surviving nodes' books.
    pub suspensions: u64,
    /// Migrations the router completed onto a survivor.
    pub migrations_completed: u64,
    /// Migrations no survivor could admit (clean rejections).
    pub migrations_rejected: u64,
    /// Admission latency before the kill.
    pub steady: Histogram,
    /// Admission latency after the kill — the recovery percentiles.
    pub recovery: Histogram,
    /// Wall-clock duration of the campaign, seconds.
    pub elapsed_secs: f64,
    /// `decisions / elapsed_secs` across the whole campaign, death
    /// window included — the number the perf-trend gate tracks.
    pub decisions_per_sec: f64,
}

impl MigrationReport {
    /// Quantile of `h` in milliseconds (0 when empty).
    fn quantile_ms(h: &Histogram, q: f64) -> f64 {
        h.quantile_ns(q).unwrap_or(0.0) / 1e6
    }

    /// Mean of `h` in milliseconds (0 when empty).
    fn mean_ms(h: &Histogram) -> f64 {
        if h.count() == 0 {
            0.0
        } else {
            h.sum_ns() as f64 / h.count() as f64 / 1e6
        }
    }
}

struct MigStats {
    steady: Histogram,
    recovery: Histogram,
    granted: u64,
    rejected: u64,
    errors: u64,
}

impl MigStats {
    fn new() -> Self {
        MigStats {
            steady: Histogram::new(),
            recovery: Histogram::new(),
            granted: 0,
            rejected: 0,
            errors: 0,
        }
    }

    fn merge(&mut self, other: MigStats) {
        self.steady.merge(&other.steady);
        self.recovery.merge(&other.recovery);
        self.granted += other.granted;
        self.rejected += other.rejected;
        self.errors += other.errors;
    }

    fn observe(&mut self, started: Instant, decision: AllocDecision, killed: bool) {
        let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if killed {
            self.recovery.observe_ns(ns);
        } else {
            self.steady.observe_ns(ns);
        }
        match decision {
            AllocDecision::Granted => self.granted += 1,
            AllocDecision::Rejected => self.rejected += 1,
        }
    }
}

/// One container's lifecycle under fault tolerance: the same sequence as
/// [`drive_container`], but an operation caught in the death window may
/// error (counted) or see an unexpected rejection (counted), and the
/// lifecycle presses on to its close either way.
fn drive_container_tolerant(
    endpoint: &dyn SchedulerEndpoint,
    cfg: &LoadgenConfig,
    id: ContainerId,
    vclock: &VirtualClock,
    ticks: &AtomicU64,
    stats: &mut MigStats,
    killed: &AtomicBool,
) {
    tick(vclock, ticks);
    if endpoint.register(id, cfg.limit).is_err() {
        stats.errors += 1;
        return;
    }
    let pid = 100_000 + id.as_u64();
    let mut next_addr = id.as_u64() << 20;
    let mut held: Option<u64> = None;

    let admit = |stats: &mut MigStats, pid: u64, size: Bytes, next_addr: &mut u64| -> Option<u64> {
        tick(vclock, ticks);
        let t0 = Instant::now();
        match endpoint.request_alloc(id, pid, size, ApiKind::Malloc) {
            Ok(decision) => {
                stats.observe(t0, decision, killed.load(Ordering::Relaxed));
                if decision == AllocDecision::Granted {
                    let addr = *next_addr;
                    *next_addr += 1;
                    if endpoint.alloc_done(id, pid, addr, size).is_err() {
                        stats.errors += 1;
                        None
                    } else {
                        Some(addr)
                    }
                } else {
                    None
                }
            }
            Err(_) => {
                stats.errors += 1;
                None
            }
        }
    };

    for round in 0..cfg.rounds {
        if let Some(addr) = held.take() {
            tick(vclock, ticks);
            if endpoint.free(id, pid, addr).is_err() {
                // The held address died with the source node; its budget
                // travelled with the migration and is released at close.
                stats.errors += 1;
            }
        }
        let probe = cfg.reject_every != 0 && round % cfg.reject_every == cfg.reject_every - 1;
        let size = if probe {
            cfg.limit + Bytes::new(1)
        } else {
            cfg.chunk
        };
        if let Some(addr) = admit(&mut *stats, pid, size, &mut next_addr) {
            held = Some(addr);
            if cfg.hold_us > 0 {
                std::thread::sleep(std::time::Duration::from_micros(cfg.hold_us));
            }
        }
    }

    tick(vclock, ticks);
    if endpoint.process_exit(id, pid).is_err() {
        stats.errors += 1;
    }
    let pid2 = pid + 1_000_000;
    admit(&mut *stats, pid2, cfg.chunk, &mut next_addr);
    tick(vclock, ticks);
    if endpoint.container_close(id).is_err() {
        stats.errors += 1;
    }
}

/// Run the kill-node fault campaign.
///
/// # Panics
/// Panics when the campaign itself is broken — the kill never fired, a
/// worker hung, a surviving node ended with open containers or invalid
/// books, or no admission landed after the kill. Tolerated faults
/// (errors/rejections in the death window) are counted, not panicked.
pub fn run_migration(cfg: &MigrationLoadConfig) -> MigrationReport {
    check_config(&cfg.base);
    assert!(cfg.nodes > 1, "need a survivor to migrate onto");
    assert!(
        cfg.devices_per_node > 0,
        "need at least one device per node"
    );
    assert!((cfg.kill_node) < cfg.nodes, "kill_node out of range");
    assert!(
        cfg.kill_at < cfg.base.containers,
        "kill_at must land inside the storm"
    );

    let vclock = VirtualClock::new();
    let dir =
        std::env::temp_dir().join(format!("convgpu-loadgen-migration-{}", std::process::id()));
    let capacities = vec![cfg.base.capacity; cfg.devices_per_node as usize];
    let mut survivors = Vec::new();
    let mut victim = None;
    let mut sockets = Vec::with_capacity(cfg.nodes as usize);
    for i in 0..cfg.nodes {
        let name = format!("n{i}");
        let node_dir = dir.join(&name);
        std::fs::create_dir_all(&node_dir).expect("create cluster node dir");
        let backend = TopologyBackend::MultiGpu(MultiGpuScheduler::with_config(
            sched_config(&cfg.base),
            &capacities,
            cfg.policy,
            PlacementPolicy::BestFitDevice,
            0xC0DE + u64::from(i),
        ));
        let socket = node_dir.join("node.sock");
        let node = NodeServer::serve(name.clone(), backend, vclock.handle(), node_dir, &socket)
            .expect("serve cluster node");
        sockets.push((name, socket));
        if i == cfg.kill_node {
            victim = Some(node);
        } else {
            survivors.push(node);
        }
    }
    let victim = Mutex::new(victim);

    let router = Arc::new(ClusterRouter::attach(
        sockets,
        cfg.codec,
        RouterConfig {
            strategy: cfg.strategy,
            deadline: SimDuration::from_secs(30),
            ..RouterConfig::default()
        },
        RealClock::handle(),
    ));

    let killed = AtomicBool::new(false);
    let next = AtomicU64::new(0);
    let ticks = AtomicU64::new(1);
    let started = Instant::now();
    let mut merged = MigStats::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.base.workers)
            .map(|_| {
                let next = &next;
                let ticks = &ticks;
                let killed = &killed;
                let victim = &victim;
                let router = &router;
                let vclock = &vclock;
                scope.spawn(move || {
                    let mut stats = MigStats::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= u64::from(cfg.base.containers) {
                            break;
                        }
                        if idx == u64::from(cfg.kill_at) {
                            if let Some(node) = victim.lock().take() {
                                node.shutdown();
                            }
                            killed.store(true, Ordering::SeqCst);
                        }
                        drive_container_tolerant(
                            &**router,
                            &cfg.base,
                            ContainerId(idx + 1),
                            vclock,
                            ticks,
                            &mut stats,
                            killed,
                        );
                    }
                    stats
                })
            })
            .collect();
        for h in handles {
            merged.merge(h.join().expect("loadgen worker panicked"));
        }
    });
    let elapsed_secs = started.elapsed().as_secs_f64();

    assert!(killed.load(Ordering::SeqCst), "the kill never fired");
    let (_, status) = router.cluster_status();
    let victim_name = format!("n{}", cfg.kill_node);
    let victim_status = status
        .iter()
        .find(|n| n.node == victim_name)
        .expect("victim node is in the cluster status");
    assert_eq!(
        victim_status.health, "down",
        "the router must have marked the killed node down"
    );

    let records = router.migration_records();
    let migrations_completed = records.iter().filter(|r| r.status == "completed").count() as u64;
    let migrations_rejected = records.len() as u64 - migrations_completed;

    let mut suspensions = 0u64;
    for node in &survivors {
        let (node_susp, node_open) = node.service().with_backend(|b| match b {
            TopologyBackend::MultiGpu(m) => {
                m.check_invariants()
                    .expect("surviving node's books must stay valid");
                let mut susp = 0u64;
                let mut open = 0usize;
                for d in 0..m.device_count() {
                    let per = sched_metrics::collect(m.device(d).containers());
                    susp += per.iter().map(|c| c.suspend_episodes).sum::<u64>();
                    open += per.iter().filter(|c| c.closed_at.is_none()).count();
                }
                (susp, open)
            }
            _ => unreachable!("cluster nodes always run a MultiGpu backend"),
        });
        suspensions += node_susp;
        assert_eq!(
            node_open, 0,
            "every container on a surviving node must close"
        );
    }
    for node in survivors {
        node.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);

    let decisions = merged.granted + merged.rejected;
    assert!(
        merged.recovery.count() > 0,
        "no admission landed after the kill — the cluster never recovered"
    );
    MigrationReport {
        config: *cfg,
        decisions,
        granted: merged.granted,
        rejected: merged.rejected,
        errors: merged.errors,
        suspensions,
        migrations_completed,
        migrations_rejected,
        steady: merged.steady,
        recovery: merged.recovery,
        elapsed_secs,
        decisions_per_sec: if elapsed_secs > 0.0 {
            decisions as f64 / elapsed_secs
        } else {
            0.0
        },
    }
}

/// Render the machine-readable fault-campaign report (the `BENCH_8.json`
/// schema).
pub fn render_migration_json(report: &MigrationReport) -> String {
    let cfg = &report.config;
    let base = &cfg.base;
    let mut out = String::with_capacity(2048);
    out.push_str("{\n");
    out.push_str("  \"bench\": \"loadgen-migration\",\n  \"version\": 1,\n");
    out.push_str(&format!(
        "  \"config\": {{\"containers\": {}, \"workers\": {}, \"rounds\": {}, \
         \"chunk_mib\": {}, \"limit_mib\": {}, \"device_capacity_mib\": {}, \
         \"nodes\": {}, \"devices_per_node\": {}, \"policy\": \"{}\", \
         \"codec\": \"{}\", \"strategy\": \"{}\", \"kill_node\": {}, \
         \"kill_at\": {}, \"reject_every\": {}, \"hold_us\": {}}},\n",
        base.containers,
        base.workers,
        base.rounds,
        base.chunk.as_mib(),
        base.limit.as_mib(),
        base.capacity.as_mib(),
        cfg.nodes,
        cfg.devices_per_node,
        cfg.policy.label(),
        cfg.codec.label(),
        cfg.strategy.label(),
        cfg.kill_node,
        cfg.kill_at,
        base.reject_every,
        base.hold_us,
    ));
    out.push_str(&format!(
        "  \"decisions\": {}, \"granted\": {}, \"rejected\": {}, \"errors\": {},\n",
        report.decisions, report.granted, report.rejected, report.errors
    ));
    out.push_str(&format!(
        "  \"suspensions\": {}, \"migrations_completed\": {}, \"migrations_rejected\": {},\n",
        report.suspensions, report.migrations_completed, report.migrations_rejected
    ));
    for (key, h) in [
        ("steady_admission_ms", &report.steady),
        ("recovery_admission_ms", &report.recovery),
    ] {
        out.push_str(&format!(
            "  \"{key}\": {{\"p50\": {:.6}, \"p95\": {:.6}, \"p99\": {:.6}, \
             \"mean\": {:.6}, \"count\": {}}},\n",
            MigrationReport::quantile_ms(h, 0.50),
            MigrationReport::quantile_ms(h, 0.95),
            MigrationReport::quantile_ms(h, 0.99),
            MigrationReport::mean_ms(h),
            h.count(),
        ));
    }
    out.push_str(&format!(
        "  \"elapsed_secs\": {:.6},\n  \"migration_total_decisions_per_sec\": {:.1}\n}}\n",
        report.elapsed_secs, report.decisions_per_sec
    ));
    out
}

/// Compare a fault-campaign report against the committed baseline file's
/// `migration_total_decisions_per_sec` field.
pub fn check_migration_baseline(
    report: &MigrationReport,
    baseline_path: &Path,
) -> Result<BaselineVerdict, String> {
    let baseline = read_baseline_value(baseline_path, "migration_total_decisions_per_sec")?;
    Ok(apply_baseline(report.decisions_per_sec, baseline))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(transport: Transport) -> LoadgenConfig {
        LoadgenConfig {
            containers: 48,
            workers: 4,
            rounds: 4,
            chunk: Bytes::mib(384),
            limit: Bytes::mib(512),
            capacity: Bytes::gib(5),
            reject_every: 4,
            hold_us: 0,
            transport,
        }
    }

    #[test]
    fn decision_counts_are_exact_inproc() {
        let cfg = tiny(Transport::InProc);
        let run = run_policy(&cfg, PolicyKind::Fifo);
        assert_eq!(run.decisions, 48 * 5);
        // One over-limit probe per container (rounds/reject_every = 1).
        assert_eq!(run.rejected, 48);
        assert_eq!(run.granted, 48 * 4);
        assert_eq!(run.admission.count(), run.decisions);
        assert!(run.elapsed_secs > 0.0);
        assert!(run.decisions_per_sec > 0.0);
    }

    #[test]
    fn contended_storm_suspends_and_still_completes() {
        // 4 workers × (384 MiB chunk + 66 MiB ctx) cannot fit 1200 MiB,
        // and the 200 µs hold keeps chunks resident across the other
        // workers' requests, so suspensions must happen — and the storm
        // must still finish.
        let cfg = LoadgenConfig {
            capacity: Bytes::mib(1200),
            hold_us: 200,
            ..tiny(Transport::InProc)
        };
        for policy in PolicyKind::ALL {
            let run = run_policy(&cfg, policy);
            assert!(
                run.suspensions > 0,
                "{policy:?}: no contention at 1200 MiB is implausible"
            );
            assert_eq!(run.decisions, 48 * 5, "{policy:?}");
        }
    }

    #[test]
    fn socket_transport_matches_inproc_counts() {
        for codec in [WireCodec::Json, WireCodec::Binary] {
            let cfg = LoadgenConfig {
                containers: 24,
                workers: 3,
                ..tiny(Transport::Socket(codec))
            };
            let run = run_policy(&cfg, PolicyKind::BestFit);
            assert_eq!(run.decisions, 24 * 5, "{codec:?}");
            assert_eq!(run.rejected, 24, "{codec:?}");
        }
    }

    #[test]
    fn tcp_transport_matches_inproc_counts() {
        for codec in [WireCodec::Json, WireCodec::Binary] {
            let cfg = LoadgenConfig {
                containers: 24,
                workers: 3,
                ..tiny(Transport::Tcp(codec))
            };
            let run = run_policy(&cfg, PolicyKind::BestFit);
            assert_eq!(run.decisions, 24 * 5, "{codec:?}");
            assert_eq!(run.rejected, 24, "{codec:?}");
        }
    }

    #[test]
    fn transport_compare_json_is_valid_and_complete() {
        let cfg = TransportCompareConfig {
            base: LoadgenConfig {
                containers: 24,
                workers: 3,
                ..tiny(Transport::InProc)
            },
            ..TransportCompareConfig::standard()
        };
        let report = run_transport_compare(&cfg);
        assert_eq!(report.unix.decisions, 24 * 5);
        assert_eq!(report.tcp.decisions, 24 * 5);
        assert!(report.tcp_vs_unix_ratio() > 0.0);
        let text = render_transport_json(&report);
        let json = convgpu_ipc::json::parse(&text).expect("BENCH_9.json must parse");
        let legs = match json.get("transports") {
            Some(convgpu_ipc::json::Json::Arr(a)) => a,
            other => panic!("transports must be an array, got {other:?}"),
        };
        assert_eq!(legs.len(), 2);
        for leg in legs {
            assert!(leg.get("decisions_per_sec").is_some());
            let adm = leg.get("admission_ms").expect("admission_ms object");
            for q in ["p50", "p95", "p99", "mean", "count"] {
                assert!(adm.get(q).is_some(), "missing {q}");
            }
        }
        // The perf-trend gate reads exactly these keys.
        for key in [
            "transport_unix_decisions_per_sec",
            "transport_tcp_decisions_per_sec",
            "transport_tcp_vs_unix_ratio",
        ] {
            assert!(json.get(key).is_some(), "missing {key}");
        }
    }

    #[test]
    fn report_json_is_valid_and_complete() {
        let cfg = LoadgenConfig {
            containers: 12,
            workers: 2,
            ..tiny(Transport::InProc)
        };
        let report = run_loadgen(&cfg);
        assert_eq!(report.runs.len(), PolicyKind::ALL.len());
        let text = render_json(&report);
        let json = convgpu_ipc::json::parse(&text).expect("BENCH_3.json must parse");
        let policies = match json.get("policies") {
            Some(convgpu_ipc::json::Json::Arr(a)) => a,
            other => panic!("policies must be an array, got {other:?}"),
        };
        assert_eq!(policies.len(), 4);
        for p in policies {
            assert!(p.get("decisions_per_sec").is_some());
            let adm = p.get("admission_ms").expect("admission_ms object");
            for q in ["p50", "p95", "p99", "mean", "count"] {
                assert!(adm.get(q).is_some(), "missing {q}");
            }
        }
        assert!(json.get("total_decisions_per_sec").is_some());
    }

    fn tiny_sharded(transport: Transport) -> ShardedConfig {
        ShardedConfig {
            base: LoadgenConfig {
                capacity: Bytes::gib(1),
                ..tiny(transport)
            },
            devices: 2,
            policy: PolicyKind::BestFit,
        }
    }

    #[test]
    fn sharded_decision_counts_are_exact_for_every_placement() {
        let cfg = tiny_sharded(Transport::InProc);
        for placement in PLACEMENTS {
            let run = run_sharded_placement(&cfg, placement);
            assert_eq!(run.decisions, 48 * 5, "{placement:?}");
            assert_eq!(run.rejected, 48, "{placement:?}");
            assert_eq!(run.admission.count(), run.decisions, "{placement:?}");
            assert_eq!(run.containers_per_device.len(), 2, "{placement:?}");
            assert_eq!(
                run.containers_per_device.iter().sum::<u64>(),
                48,
                "{placement:?}"
            );
        }
    }

    #[test]
    fn sharded_round_robin_spreads_containers_evenly() {
        let run = run_sharded_placement(
            &tiny_sharded(Transport::InProc),
            PlacementPolicy::RoundRobin,
        );
        assert_eq!(run.containers_per_device, vec![24, 24]);
    }

    #[test]
    fn sharded_socket_transport_matches_inproc_counts() {
        for codec in [WireCodec::Json, WireCodec::Binary] {
            let cfg = ShardedConfig {
                base: LoadgenConfig {
                    containers: 24,
                    workers: 3,
                    capacity: Bytes::gib(1),
                    ..tiny(Transport::Socket(codec))
                },
                ..tiny_sharded(Transport::InProc)
            };
            let run = run_sharded_placement(&cfg, PlacementPolicy::MostFree);
            assert_eq!(run.decisions, 24 * 5, "{codec:?}");
            assert_eq!(run.rejected, 24, "{codec:?}");
        }
    }

    #[test]
    fn sharded_contended_storm_suspends_and_still_completes() {
        // Two 700 MiB devices, 4 workers × (384 MiB chunk + 66 MiB ctx)
        // held 200 µs: whichever device hosts ≥2 concurrent containers
        // (all three placements do at 4 workers × 2 devices) must
        // suspend — and the storm must still finish.
        let cfg = ShardedConfig {
            base: LoadgenConfig {
                capacity: Bytes::mib(700),
                hold_us: 200,
                ..tiny(Transport::InProc)
            },
            devices: 2,
            policy: PolicyKind::BestFit,
        };
        for placement in PLACEMENTS {
            let run = run_sharded_placement(&cfg, placement);
            assert!(
                run.suspensions > 0,
                "{placement:?}: no contention at 700 MiB/device is implausible"
            );
            assert_eq!(run.decisions, 48 * 5, "{placement:?}");
        }
    }

    #[test]
    fn sharded_report_json_is_valid_and_complete() {
        let cfg = ShardedConfig {
            base: LoadgenConfig {
                containers: 12,
                workers: 2,
                capacity: Bytes::gib(1),
                ..tiny(Transport::InProc)
            },
            ..tiny_sharded(Transport::InProc)
        };
        let report = run_sharded(&cfg);
        assert_eq!(report.runs.len(), PLACEMENTS.len());
        let text = render_sharded_json(&report);
        let json = convgpu_ipc::json::parse(&text).expect("BENCH_4.json must parse");
        let placements = match json.get("placements") {
            Some(convgpu_ipc::json::Json::Arr(a)) => a,
            other => panic!("placements must be an array, got {other:?}"),
        };
        assert_eq!(placements.len(), 3);
        for p in placements {
            assert!(p.get("decisions_per_sec").is_some());
            assert!(p.get("containers_per_device").is_some());
            let adm = p.get("admission_ms").expect("admission_ms object");
            for q in ["p50", "p95", "p99", "mean", "count"] {
                assert!(adm.get(q).is_some(), "missing {q}");
            }
        }
        assert!(json.get("sharded_total_decisions_per_sec").is_some());
    }

    #[test]
    fn sharded_baseline_gate_reads_its_own_key() {
        let cfg = ShardedConfig {
            base: LoadgenConfig {
                containers: 12,
                workers: 2,
                capacity: Bytes::gib(1),
                ..tiny(Transport::InProc)
            },
            ..tiny_sharded(Transport::InProc)
        };
        let report = run_sharded(&cfg);
        let dir =
            std::env::temp_dir().join(format!("convgpu-sharded-baseline-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");

        std::fs::write(
            &path,
            "{\"total_decisions_per_sec\": 100000000000, \"sharded_total_decisions_per_sec\": 1}",
        )
        .unwrap();
        assert!(matches!(
            check_sharded_baseline(&report, &path).unwrap(),
            BaselineVerdict::Pass { .. }
        ));

        std::fs::write(&path, "{\"sharded_total_decisions_per_sec\": 100000000000}").unwrap();
        assert!(matches!(
            check_sharded_baseline(&report, &path).unwrap(),
            BaselineVerdict::Regressed { .. }
        ));

        // The single-GPU key alone is not enough for the sharded gate.
        std::fs::write(&path, "{\"total_decisions_per_sec\": 1}").unwrap();
        assert!(check_sharded_baseline(&report, &path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn tiny_cluster(codec: WireCodec) -> ClusterLoadConfig {
        ClusterLoadConfig {
            base: LoadgenConfig {
                capacity: Bytes::gib(1),
                ..tiny(Transport::InProc)
            },
            nodes: 2,
            devices_per_node: 1,
            policy: PolicyKind::BestFit,
            codec,
        }
    }

    #[test]
    fn cluster_decision_counts_are_exact_for_every_strategy() {
        let cfg = tiny_cluster(WireCodec::Binary);
        for strategy in STRATEGIES {
            let run = run_cluster_strategy(&cfg, strategy);
            assert_eq!(run.decisions, 48 * 5, "{strategy:?}");
            assert_eq!(run.rejected, 48, "{strategy:?}");
            assert_eq!(run.admission.count(), run.decisions, "{strategy:?}");
            assert_eq!(run.containers_per_node.len(), 2, "{strategy:?}");
            assert_eq!(
                run.containers_per_node.iter().sum::<u64>(),
                48,
                "{strategy:?}"
            );
            assert_eq!(run.timeouts, 0, "{strategy:?}");
            assert_eq!(run.failovers, 0, "{strategy:?}");
        }
    }

    #[test]
    fn cluster_json_codec_matches_binary_counts() {
        let cfg = ClusterLoadConfig {
            base: LoadgenConfig {
                containers: 24,
                workers: 3,
                capacity: Bytes::gib(1),
                ..tiny(Transport::InProc)
            },
            ..tiny_cluster(WireCodec::Json)
        };
        let run = run_cluster_strategy(&cfg, SwarmStrategy::Spread);
        assert_eq!(run.decisions, 24 * 5);
        assert_eq!(run.rejected, 24);
        // Spread balances the *live* population (homes leave the count at
        // close), so lifetime totals are near-even, not an exact split.
        assert_eq!(run.containers_per_node.iter().sum::<u64>(), 24);
        assert!(
            run.containers_per_node.iter().all(|&n| n > 0),
            "spread must use both nodes, got {:?}",
            run.containers_per_node
        );
    }

    #[test]
    fn cluster_contended_storm_suspends_and_still_completes() {
        // Two 700 MiB single-device nodes, 4 workers × (384 MiB chunk +
        // 66 MiB ctx) held 200 µs: by pigeonhole some node hosts ≥2
        // concurrent containers under every strategy, and 2 × 450 MiB
        // exceeds 700 MiB — so suspensions must happen, routed over real
        // node sockets, and the storm must still finish.
        let cfg = ClusterLoadConfig {
            base: LoadgenConfig {
                capacity: Bytes::mib(700),
                hold_us: 200,
                ..tiny(Transport::InProc)
            },
            ..tiny_cluster(WireCodec::Binary)
        };
        for strategy in STRATEGIES {
            let run = run_cluster_strategy(&cfg, strategy);
            assert!(
                run.suspensions > 0,
                "{strategy:?}: no contention at 700 MiB/node is implausible"
            );
            assert_eq!(run.decisions, 48 * 5, "{strategy:?}");
        }
    }

    #[test]
    fn cluster_report_json_is_valid_and_complete() {
        let cfg = ClusterLoadConfig {
            base: LoadgenConfig {
                containers: 12,
                workers: 2,
                capacity: Bytes::gib(1),
                ..tiny(Transport::InProc)
            },
            ..tiny_cluster(WireCodec::Binary)
        };
        let report = run_cluster(&cfg);
        assert_eq!(report.runs.len(), STRATEGIES.len());
        let text = render_cluster_json(&report);
        let json = convgpu_ipc::json::parse(&text).expect("BENCH_7.json must parse");
        let strategies = match json.get("strategies") {
            Some(convgpu_ipc::json::Json::Arr(a)) => a,
            other => panic!("strategies must be an array, got {other:?}"),
        };
        assert_eq!(strategies.len(), 3);
        for s in strategies {
            assert!(s.get("decisions_per_sec").is_some());
            assert!(s.get("containers_per_node").is_some());
            for counter in ["retries", "timeouts", "failovers"] {
                assert!(s.get(counter).is_some(), "missing {counter}");
            }
            let adm = s.get("admission_ms").expect("admission_ms object");
            for q in ["p50", "p95", "p99", "mean", "count"] {
                assert!(adm.get(q).is_some(), "missing {q}");
            }
        }
        assert!(json.get("cluster_total_decisions_per_sec").is_some());
    }

    #[test]
    fn migration_campaign_survives_a_mid_storm_kill() {
        let cfg = MigrationLoadConfig {
            base: LoadgenConfig {
                containers: 48,
                workers: 4,
                capacity: Bytes::gib(1),
                hold_us: 100,
                ..tiny(Transport::InProc)
            },
            kill_at: 12,
            ..MigrationLoadConfig::standard()
        };
        // run_migration itself asserts the hard properties: the kill
        // fired, the router marked the victim down, surviving nodes end
        // with zero open containers and clean invariants, and admissions
        // kept landing after the kill.
        let report = run_migration(&cfg);
        assert!(report.decisions > 0);
        assert_eq!(
            report.steady.count() + report.recovery.count(),
            report.decisions
        );
        assert!(report.recovery.count() > 0);

        let text = render_migration_json(&report);
        let json = convgpu_ipc::json::parse(&text).expect("BENCH_8.json must parse");
        for key in [
            "decisions",
            "granted",
            "rejected",
            "errors",
            "migrations_completed",
            "migrations_rejected",
            "migration_total_decisions_per_sec",
        ] {
            assert!(json.get(key).is_some(), "missing {key}");
        }
        for hist in ["steady_admission_ms", "recovery_admission_ms"] {
            let h = json.get(hist).expect("histogram object");
            for q in ["p50", "p95", "p99", "mean", "count"] {
                assert!(h.get(q).is_some(), "missing {hist}.{q}");
            }
        }

        // The baseline hook reads its own key.
        let dir =
            std::env::temp_dir().join(format!("convgpu-migration-baseline-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        std::fs::write(&path, "{\"migration_total_decisions_per_sec\": 1}").unwrap();
        assert!(matches!(
            check_migration_baseline(&report, &path).unwrap(),
            BaselineVerdict::Pass { .. }
        ));
        std::fs::write(&path, "{\"total_decisions_per_sec\": 1}").unwrap();
        assert!(check_migration_baseline(&report, &path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn baseline_gate_passes_and_fails_correctly() {
        let cfg = LoadgenConfig {
            containers: 12,
            workers: 2,
            ..tiny(Transport::InProc)
        };
        let report = run_loadgen(&cfg);
        let dir = std::env::temp_dir().join(format!("convgpu-baseline-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");

        std::fs::write(&path, "{\"total_decisions_per_sec\": 1}").unwrap();
        assert!(matches!(
            check_baseline(&report, &path).unwrap(),
            BaselineVerdict::Pass { .. }
        ));

        std::fs::write(&path, "{\"total_decisions_per_sec\": 100000000000}").unwrap();
        assert!(matches!(
            check_baseline(&report, &path).unwrap(),
            BaselineVerdict::Regressed { .. }
        ));

        std::fs::write(&path, "not json").unwrap();
        assert!(check_baseline(&report, &path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
