//! A minimal micro-benchmark harness with a Criterion-shaped API.
//!
//! The sealed build environment has no `criterion`, so the `benches/`
//! files run on this instead: same `benchmark_group` /
//! `bench_function` / `Bencher::iter` surface, `std::time` underneath.
//! Each benchmark is calibrated so one batch runs ≳ 5 ms, then sampled
//! repeatedly inside the measurement window; the report prints
//! min / mean / p50 / p95 per-iteration times.
//!
//! Not a statistics engine — no outlier rejection, no regression
//! analysis. It exists so `cargo bench` keeps working and the paper's
//! response-time comparisons (Fig. 4/5/6) stay runnable offline.
//!
//! ```no_run
//! use convgpu_bench::micro::Criterion;
//!
//! fn bench(c: &mut Criterion) {
//!     let mut g = c.benchmark_group("group");
//!     g.bench_function("op", |b| b.iter(|| 2 + 2));
//!     g.finish();
//! }
//!
//! fn main() {
//!     let mut c = Criterion::default();
//!     bench(&mut c);
//! }
//! ```

use convgpu_obs::Histogram;
use std::time::{Duration, Instant};

/// Re-export for benchmark bodies that need to defeat the optimizer.
pub use std::hint::black_box;

/// Top-level harness handle (mirrors `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> Group {
        println!("\n{name}");
        println!("{}", "-".repeat(name.len()));
        Group {
            sample_size: 40,
            measurement_time: Duration::from_secs(2),
        }
    }
}

/// A named benchmark id with an input label (mirrors
/// `criterion::BenchmarkId`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`, as Criterion prints it.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{parameter}", name.into()),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// A group of benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct Group {
    sample_size: usize,
    measurement_time: Duration,
}

impl Group {
    /// Target number of samples (each sample is a calibrated batch).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(5);
        self
    }

    /// Soft cap on the per-benchmark measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            samples_ns: Vec::new(),
            hist: Histogram::new(),
        };
        f(&mut b);
        b.report(&id.to_string());
    }

    /// Run one benchmark parameterized by `input` (mirrors Criterion's
    /// `bench_with_input`).
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input));
    }

    /// End the group (printing happens per benchmark).
    pub fn finish(self) {}
}

/// Passed to each benchmark body; `iter` does the timing.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    /// Per-iteration nanoseconds, one entry per sample batch.
    samples_ns: Vec<f64>,
    /// The same samples in the observability layer's fixed-bucket
    /// latency histogram — the reported p50/p95 come from its quantile
    /// estimator, so the report exercises the exact math the daemon's
    /// exposition endpoint serves.
    hist: Histogram,
}

impl Bencher {
    /// Measure `f`: calibrate a batch size so one batch runs ≳ 5 ms,
    /// then time `sample_size` batches (bounded by the measurement
    /// window) and record per-iteration times.
    pub fn iter<R, F>(&mut self, mut f: F)
    where
        F: FnMut() -> R,
    {
        // Warm-up + calibration: grow the batch until it takes ≥ 5 ms.
        let mut batch: u64 = 1;
        let batch_target = Duration::from_millis(5);
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let took = t0.elapsed();
            if took >= batch_target || batch >= 1 << 24 {
                break;
            }
            // Aim directly for the target based on the observed rate.
            let scale = (batch_target.as_secs_f64() / took.as_secs_f64().max(1e-9)).ceil();
            batch = (batch.saturating_mul(scale as u64)).clamp(batch + 1, 1 << 24);
        }
        // Measurement.
        let window = Instant::now();
        for _ in 0..self.sample_size {
            if window.elapsed() > self.measurement_time {
                break;
            }
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = t0.elapsed().as_nanos() as f64 / batch as f64;
            self.samples_ns.push(ns);
            self.hist.observe_ns(ns as u64);
        }
    }

    /// The histogram snapshot accumulated so far (one observation per
    /// sample batch).
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }

    fn report(&self, name: &str) {
        if self.samples_ns.is_empty() {
            println!("  {name:<44} (no samples — body never called iter)");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
        let min = sorted[0];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        // Bucketed quantile estimates; exact sorted-sample fallback only
        // if the histogram is somehow empty.
        let p50 = self
            .hist
            .quantile_ns(0.5)
            .unwrap_or(sorted[sorted.len() / 2]);
        let p95 = self
            .hist
            .quantile_ns(0.95)
            .unwrap_or(sorted[(sorted.len() * 95 / 100).min(sorted.len() - 1)]);
        println!(
            "  {name:<44} min {:>10}  mean {:>10}  p50 {:>10}  p95 {:>10}  ({} samples)",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(p50),
            fmt_ns(p95),
            sorted.len()
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            sample_size: 5,
            measurement_time: Duration::from_millis(200),
            samples_ns: Vec::new(),
            hist: Histogram::new(),
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert!(!b.samples_ns.is_empty());
        assert!(b.samples_ns.iter().all(|&ns| ns.is_finite() && ns >= 0.0));
        // Every sample also landed in the histogram snapshot.
        assert_eq!(b.histogram().count(), b.samples_ns.len() as u64);
        assert!(b.histogram().quantile_ns(0.5).is_some());
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("n38", "FIFO").to_string(), "n38/FIFO");
    }

    #[test]
    fn format_scales_units() {
        assert_eq!(fmt_ns(12.3), "12.3 ns");
        assert_eq!(fmt_ns(12_300.0), "12.30 µs");
        assert_eq!(fmt_ns(12_300_000.0), "12.30 ms");
    }
}
