//! The Figs. 7/8 (Tables IV/V) experiment engine.
//!
//! Paper §IV-A: "We emulated the cloud usage by choosing the type of the
//! containers randomly and running it every five seconds. Each container
//! runs "the" sample program, which allocates maximum GPU memory … The
//! time consumed by the sample program varies by the size, from 5 seconds
//! to 45 seconds. We changed the number of the containers from 4 to 38
//! and measured the finished time of all containers and suspended time of
//! each container. All tests are repeated 6 times and the average value
//! is used."
//!
//! The engine replays this in virtual time against the *same*
//! [`Scheduler`] state machine the live stack uses: a container arrives,
//! registers its limit, starts after a fixed creation delay, requests its
//! full limit in one allocation (suspending when memory is short), runs
//! for its type's duration once granted, and closes — releasing its
//! reservation for policy-driven redistribution.

use convgpu_ipc::message::{AllocDecision, ApiKind};
use convgpu_scheduler::core::{AllocOutcome, ResumeAction, SchedError, Scheduler, SchedulerConfig};
use convgpu_scheduler::metrics::{self, AggregateMetrics, ContainerMetrics};
use convgpu_scheduler::policy::PolicyKind;
use convgpu_scheduler::state::ResumeRule;
use convgpu_sim_core::event::EventQueue;
use convgpu_sim_core::ids::ContainerId;
use convgpu_sim_core::stats::Summary;
use convgpu_sim_core::time::{SimDuration, SimTime};
use convgpu_sim_core::units::Bytes;
use convgpu_workloads::trace::{Arrival, ArrivalProcess, TraceSpec};
use std::collections::HashMap;

/// One experiment configuration (one cell of Table IV/V before
/// averaging).
#[derive(Clone, Copy, Debug)]
pub struct PolicyExperiment {
    /// Number of containers (4 … 38).
    pub containers: u32,
    /// Redistribution policy under test.
    pub policy: PolicyKind,
    /// Workload seed (same seed ⇒ same arrival trace for every policy,
    /// so policies are compared on identical workloads).
    pub workload_seed: u64,
    /// GPU capacity (paper: 5 GiB K20m).
    pub capacity: Bytes,
    /// Resume rule (paper: full guarantee; the `resume_rule` ablation
    /// flips this).
    pub resume_rule: ResumeRule,
    /// Charge the 66 MiB context overhead (the `ctx_overhead` ablation
    /// flips this).
    pub charge_ctx_overhead: bool,
    /// Container creation delay before the program's first allocation.
    pub create_delay: SimDuration,
    /// Arrival process (paper: fixed 5 s gaps).
    pub arrival: ArrivalProcess,
}

impl PolicyExperiment {
    /// The paper's configuration.
    pub fn paper(containers: u32, policy: PolicyKind, workload_seed: u64) -> Self {
        PolicyExperiment {
            containers,
            policy,
            workload_seed,
            capacity: Bytes::gib(5),
            resume_rule: ResumeRule::FullGuarantee,
            charge_ctx_overhead: true,
            create_delay: SimDuration::from_millis(450),
            arrival: ArrivalProcess::Fixed,
        }
    }
}

/// Outcome of one run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Finished time of all containers, seconds (Fig. 7 metric).
    pub finished_time_secs: f64,
    /// Mean suspended time per container, seconds (Fig. 8 metric).
    pub avg_suspended_secs: f64,
    /// Containers refused at registration because their limit exceeds
    /// the GPU capacity (only nonzero in the capacity-sensitivity
    /// extension, where e.g. xlarge cannot fit a 2 GiB card).
    pub refused: u32,
    /// Time-weighted mean of used GPU memory / capacity over the run
    /// (extension metric: what Best-Fit optimizes).
    pub mean_utilization: f64,
    /// Peak live GPU memory usage.
    pub peak_used: Bytes,
    /// Full aggregate.
    pub aggregate: AggregateMetrics,
    /// Per-container detail.
    pub per_container: Vec<ContainerMetrics>,
}

#[derive(Debug)]
enum Ev {
    Launch(Arrival),
    Start(ContainerId),
    Finish(ContainerId),
}

struct ContainerPlan {
    limit: Bytes,
    duration: SimDuration,
}

/// Synthetic device addresses for the DES (the scheduler only needs
/// uniqueness per container).
fn addr_for(id: ContainerId) -> u64 {
    0x7000_0000_0000 + id.as_u64() * 0x1_0000_0000
}

fn pid_for(id: ContainerId) -> u64 {
    10_000 + id.as_u64()
}

impl PolicyExperiment {
    /// Execute the experiment in virtual time.
    ///
    /// # Panics
    /// Panics on scheduler protocol violations or broken invariants —
    /// these would invalidate the experiment, so they are not recoverable.
    pub fn run(&self) -> RunResult {
        let cfg = SchedulerConfig {
            capacity: self.capacity,
            ctx_overhead: Bytes::mib(66),
            charge_ctx_overhead: self.charge_ctx_overhead,
            resume_rule: self.resume_rule,
            default_limit: Bytes::gib(1),
        };
        // The policy seed is fixed relative to the workload seed so the
        // Random policy is reproducible but independent of the draw that
        // produced the trace.
        let mut sched = Scheduler::new(cfg, self.policy.build(self.workload_seed ^ 0xA5A5_A5A5));
        let mut queue: EventQueue<Ev> = EventQueue::new();
        let mut plans: HashMap<ContainerId, ContainerPlan> = HashMap::new();
        let mut refused: u32 = 0;

        let trace = TraceSpec {
            process: self.arrival,
            ..TraceSpec::paper(self.containers, self.workload_seed)
        }
        .generate();
        for arrival in trace {
            queue.schedule(arrival.at, Ev::Launch(arrival));
        }

        while let Some((now, ev)) = queue.pop() {
            match ev {
                Ev::Launch(arrival) => {
                    let id = ContainerId(u64::from(arrival.index) + 1);
                    let limit = arrival.container_type.gpu_memory();
                    // On small-capacity ablations a type can be
                    // physically impossible; registration refuses it
                    // (the user would see `nvidia-docker run` fail).
                    if let Err(SchedError::LimitExceedsCapacity { .. }) =
                        sched.register(id, limit, now)
                    {
                        refused += 1;
                        continue;
                    }
                    plans.insert(
                        id,
                        ContainerPlan {
                            limit,
                            duration: arrival.container_type.sample_duration(),
                        },
                    );
                    queue.schedule(now + self.create_delay, Ev::Start(id));
                }
                Ev::Start(id) => {
                    let plan = &plans[&id];
                    let (outcome, actions) = sched
                        .alloc_request(id, pid_for(id), plan.limit, ApiKind::Malloc, now)
                        .expect("alloc_request on a live container");
                    match outcome {
                        AllocOutcome::Granted => {
                            sched
                                .alloc_done(id, pid_for(id), addr_for(id), plan.limit, now)
                                .expect("alloc_done after grant");
                            queue.schedule(now + plan.duration, Ev::Finish(id));
                        }
                        AllocOutcome::Suspended { .. } => {
                            // Resumed (or not) by a later Finish.
                        }
                        AllocOutcome::Rejected => {
                            unreachable!("limit-sized request cannot exceed the limit")
                        }
                    }
                    // The give-back of this container's unused
                    // reservation may have completed someone else.
                    self.apply_resumes(&mut sched, &mut queue, &plans, actions, now);
                }
                Ev::Finish(id) => {
                    let actions = sched
                        .container_close(id, now)
                        .expect("close on a live container");
                    self.apply_resumes(&mut sched, &mut queue, &plans, actions, now);
                }
            }
            debug_assert!(sched.check_invariants().is_ok());
        }

        sched
            .check_invariants()
            .expect("scheduler invariants after the run");
        assert!(
            metrics::all_closed(sched.containers()),
            "{} containers failed to finish under {:?}",
            self.containers,
            self.policy
        );
        assert_eq!(
            sched.containers().count() as u32 + refused,
            self.containers,
            "every container either ran or was refused"
        );
        let per_container = metrics::collect(sched.containers());
        let aggregate = metrics::aggregate(&per_container);
        let end = SimTime::ZERO + SimDuration::from_secs_f64(aggregate.finished_time_secs);
        let mean_utilization = sched.timeline().mean_used_fraction(self.capacity, end);
        let peak_used = sched.timeline().peak_used();
        RunResult {
            finished_time_secs: aggregate.finished_time_secs,
            avg_suspended_secs: aggregate.avg_suspended_secs,
            refused,
            mean_utilization,
            peak_used,
            aggregate,
            per_container,
        }
    }

    fn apply_resumes(
        &self,
        sched: &mut Scheduler,
        queue: &mut EventQueue<Ev>,
        plans: &HashMap<ContainerId, ContainerPlan>,
        actions: Vec<ResumeAction>,
        now: SimTime,
    ) {
        for action in actions {
            match action.decision {
                AllocDecision::Granted => {
                    let plan = &plans[&action.container];
                    sched
                        .alloc_done(
                            action.container,
                            action.pid,
                            addr_for(action.container),
                            plan.limit,
                            now,
                        )
                        .expect("alloc_done after resume");
                    queue.schedule(now + plan.duration, Ev::Finish(action.container));
                }
                AllocDecision::Rejected => {
                    // The program fails; the container exits immediately.
                    queue.schedule(now, Ev::Finish(action.container));
                }
            }
        }
    }
}

/// One averaged sweep cell: `(N, policy)` over `reps` repetitions.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Container count.
    pub n: u32,
    /// Policy.
    pub policy: PolicyKind,
    /// Finished-time summary over repetitions (seconds).
    pub finished: Summary,
    /// Average-suspended-time summary over repetitions (seconds).
    pub suspended: Summary,
    /// Worst single container's suspended time per repetition (seconds)
    /// — where Best-Fit's starvation shows up.
    pub suspended_max: Summary,
}

/// Run the paper's full sweep: for every `n`, every policy, `reps`
/// repetitions with rep-indexed workload seeds (identical workloads
/// across policies).
pub fn sweep(ns: &[u32], policies: &[PolicyKind], reps: u32, base_seed: u64) -> Vec<SweepPoint> {
    let mut out = Vec::with_capacity(ns.len() * policies.len());
    for &n in ns {
        for &policy in policies {
            let mut finished = Vec::with_capacity(reps as usize);
            let mut suspended = Vec::with_capacity(reps as usize);
            let mut suspended_max = Vec::with_capacity(reps as usize);
            for rep in 0..reps {
                let seed = base_seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(u64::from(n) * 1000 + u64::from(rep));
                let result = PolicyExperiment::paper(n, policy, seed).run();
                finished.push(result.finished_time_secs);
                suspended.push(result.avg_suspended_secs);
                suspended_max.push(result.aggregate.max_suspended_secs);
            }
            out.push(SweepPoint {
                n,
                policy,
                finished: Summary::of(&finished),
                suspended: Summary::of(&suspended),
                suspended_max: Summary::of(&suspended_max),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_completes_and_accounts() {
        let r = PolicyExperiment::paper(4, PolicyKind::Fifo, 42).run();
        assert_eq!(r.aggregate.containers, 4);
        assert_eq!(r.aggregate.closed, 4);
        assert!(r.finished_time_secs > 0.0);
        // 4 containers, launch interval 5 s, runtimes ≤ 45 s: the whole
        // batch must end within a couple of minutes of virtual time.
        assert!(r.finished_time_secs < 200.0, "{}", r.finished_time_secs);
    }

    #[test]
    fn identical_seeds_are_bit_reproducible() {
        let a = PolicyExperiment::paper(20, PolicyKind::Random, 7).run();
        let b = PolicyExperiment::paper(20, PolicyKind::Random, 7).run();
        assert_eq!(a.finished_time_secs, b.finished_time_secs);
        assert_eq!(a.avg_suspended_secs, b.avg_suspended_secs);
        assert_eq!(a.per_container, b.per_container);
    }

    #[test]
    fn heavy_load_produces_suspensions() {
        // 38 containers on 5 GiB with up-to-4-GiB limits must contend.
        let r = PolicyExperiment::paper(38, PolicyKind::Fifo, 3).run();
        assert!(
            r.aggregate.ever_suspended > 0,
            "no contention at N=38 is implausible"
        );
        assert!(r.avg_suspended_secs > 0.0);
    }

    #[test]
    fn all_policies_complete_every_container() {
        for policy in PolicyKind::ALL {
            for seed in [1, 2] {
                let r = PolicyExperiment::paper(26, policy, seed).run();
                assert_eq!(r.aggregate.closed, 26, "{policy:?} seed {seed}");
            }
        }
    }

    #[test]
    fn finished_time_grows_roughly_with_n() {
        // Paper: "as the number of the containers is doubled, finished
        // time is also roughly increased to double".
        let avg = |n: u32| {
            let mut total = 0.0;
            for seed in 0..4 {
                total += PolicyExperiment::paper(n, PolicyKind::Fifo, seed)
                    .run()
                    .finished_time_secs;
            }
            total / 4.0
        };
        let t8 = avg(8);
        let t16 = avg(16);
        let t32 = avg(32);
        assert!(t16 > t8 * 1.3, "t8={t8} t16={t16}");
        assert!(t32 > t16 * 1.3, "t16={t16} t32={t32}");
    }

    #[test]
    fn sweep_shapes_match_inputs() {
        let points = sweep(&[4, 8], &[PolicyKind::Fifo, PolicyKind::BestFit], 3, 11);
        assert_eq!(points.len(), 4);
        assert!(points.iter().all(|p| p.finished.samples.len() == 3));
        // Same workload seeds across policies at the same N: identical
        // traces mean the *light-load* points (N=4, rarely contended)
        // should be near-identical across policies.
        let fifo4 = &points[0];
        let bf4 = &points[1];
        assert_eq!(fifo4.n, 4);
        assert_eq!(bf4.n, 4);
        assert!((fifo4.finished.mean - bf4.finished.mean).abs() < 5.0);
    }
}
