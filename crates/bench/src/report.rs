//! Table rendering for the `repro_*` binaries.
//!
//! Plain aligned-pipe tables so the output drops straight into
//! EXPERIMENTS.md next to the paper's numbers.

/// Render an aligned markdown-style table.
pub fn format_table(headers: &[String], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {cell:<w$} |"));
        }
        line.push('\n');
        line
    };
    out.push_str(&render_row(headers, &widths));
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&format!("{:-<1$}|", "", w + 2));
    }
    sep.push('\n');
    out.push_str(&sep);
    for row in rows {
        out.push_str(&render_row(row, &widths));
    }
    out
}

/// Format seconds with one decimal, paper-table style.
pub fn secs1(v: f64) -> String {
    format!("{v:.1}")
}

/// Format milliseconds with three decimals (Fig. 4 scale).
pub fn ms3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a percentage with one decimal.
pub fn pct1(v: f64) -> String {
    format!("{v:+.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = format_table(
            &["Policy".into(), "4".into(), "38".into()],
            &[
                vec!["FIFO".into(), "67.6".into(), "593.8".into()],
                vec!["BF".into(), "68.2".into(), "588.7".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        let len = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == len), "{t}");
        assert!(lines[0].contains("Policy"));
        assert!(lines[2].contains("FIFO"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_panic() {
        format_table(&["a".into()], &[vec!["x".into(), "y".into()]]);
    }

    #[test]
    fn formatters() {
        assert_eq!(secs1(67.64), "67.6");
        assert_eq!(ms3(0.0823), "0.082");
        assert_eq!(pct1(0.72), "+0.7%");
        assert_eq!(pct1(-1.25), "-1.2%");
    }
}
