//! The unified perf-trend gate: one comparison of **every** benchmark
//! artifact's headline throughput metric against the committed baseline
//! (`ci/perf_baseline.json`).
//!
//! The loadgen campaigns (`BENCH_3/4/7/8.json`) each carry exactly one
//! headline metric — `total_decisions_per_sec`,
//! `sharded_total_decisions_per_sec`, `cluster_total_decisions_per_sec`
//! and `migration_total_decisions_per_sec` respectively. Instead of each
//! campaign invocation gating itself (`--baseline`), CI runs all the
//! campaigns with `--out` only and then invokes the `perf-trend` binary
//! once over the whole artifact set. That yields a single per-metric
//! delta table (also appended to `$GITHUB_STEP_SUMMARY` on Actions) and
//! one place where the retention threshold
//! ([`crate::loadgen::BASELINE_RETENTION`]) is enforced — for the
//! cluster and migration metrics too, not just the original two.
//!
//! A baseline metric that no supplied artifact reports is itself a gate
//! failure: it means a campaign silently stopped producing its artifact,
//! which is exactly the kind of rot the trend gate exists to catch.

use std::path::Path;

use convgpu_ipc::json::{self, Json};

use crate::loadgen::BASELINE_RETENTION;

/// One metric's baseline-vs-measured comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct TrendRow {
    /// Metric key, e.g. `migration_total_decisions_per_sec`.
    pub metric: String,
    /// Artifact file the measurement came from (display name).
    pub artifact: String,
    /// Committed baseline value.
    pub baseline: f64,
    /// Measured value from the artifact.
    pub measured: f64,
    /// `measured / baseline`.
    pub ratio: f64,
    /// Whether the measurement cleared `baseline * retention`.
    pub pass: bool,
}

/// The full trend comparison across every supplied artifact.
#[derive(Clone, Debug, PartialEq)]
pub struct TrendReport {
    /// One row per baseline metric found in an artifact.
    pub rows: Vec<TrendRow>,
    /// Baseline metrics no supplied artifact reported — a gate failure.
    pub missing: Vec<String>,
    /// The retention fraction the rows were judged against.
    pub retention: f64,
}

impl TrendReport {
    /// True when every metric passed and none went missing.
    pub fn ok(&self) -> bool {
        self.missing.is_empty() && self.rows.iter().all(|r| r.pass)
    }

    /// GitHub-flavoured markdown delta table (used both on stdout and in
    /// the Actions step summary).
    pub fn markdown(&self) -> String {
        // Throughput metrics are large integers; ratio-style metrics
        // (e.g. `transport_tcp_vs_unix_ratio`) live below 10 and would
        // all round to the same value without decimals.
        fn value(v: f64) -> String {
            if v.abs() < 10.0 {
                format!("{v:.4}")
            } else {
                format!("{v:.0}")
            }
        }
        let mut out = String::new();
        out.push_str("| metric | artifact | baseline | measured | ratio | status |\n");
        out.push_str("|--------|----------|----------|----------|-------|--------|\n");
        for r in &self.rows {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {:.2}x | {} |\n",
                r.metric,
                r.artifact,
                value(r.baseline),
                value(r.measured),
                r.ratio,
                if r.pass { "pass" } else { "REGRESSED" },
            ));
        }
        for m in &self.missing {
            out.push_str(&format!("| {m} | (no artifact) | — | — | — | MISSING |\n"));
        }
        out
    }
}

fn numeric(value: &Json) -> Option<f64> {
    match value {
        Json::U64(n) => Some(*n as f64),
        Json::I64(n) => Some(*n as f64),
        Json::F64(f) => Some(*f),
        _ => None,
    }
}

/// Compare every numeric metric in the baseline file against the first
/// supplied artifact that reports it. `retention` is the fraction of the
/// baseline the measurement must retain (CI uses
/// [`BASELINE_RETENTION`]). Errors on unreadable/unparsable files; a
/// *missing* metric is not an error but lands in
/// [`TrendReport::missing`] and fails [`TrendReport::ok`].
pub fn compare_trend(
    baseline_path: &Path,
    artifacts: &[(String, &Path)],
    retention: f64,
) -> Result<TrendReport, String> {
    let read = |p: &Path| -> Result<Json, String> {
        let text =
            std::fs::read_to_string(p).map_err(|e| format!("cannot read {}: {e}", p.display()))?;
        json::parse(&text).map_err(|e| format!("{} is not valid JSON: {e}", p.display()))
    };
    let baseline = read(baseline_path)?;
    let Json::Obj(fields) = &baseline else {
        return Err(format!(
            "baseline {} is not a JSON object",
            baseline_path.display()
        ));
    };
    let parsed: Vec<(String, Json)> = artifacts
        .iter()
        .map(|(name, p)| read(p).map(|j| (name.clone(), j)))
        .collect::<Result<_, _>>()?;

    let mut rows = Vec::new();
    let mut missing = Vec::new();
    for (key, value) in fields {
        // String-valued keys are the baseline file's own commentary.
        let Some(base) = numeric(value) else { continue };
        match parsed
            .iter()
            .find_map(|(name, j)| j.get(key).and_then(numeric).map(|m| (name, m)))
        {
            Some((name, measured)) => {
                let ratio = if base > 0.0 {
                    measured / base
                } else {
                    f64::INFINITY
                };
                rows.push(TrendRow {
                    metric: key.clone(),
                    artifact: name.clone(),
                    baseline: base,
                    measured,
                    ratio,
                    pass: measured >= base * retention,
                });
            }
            None => missing.push(key.clone()),
        }
    }
    Ok(TrendReport {
        rows,
        missing,
        retention,
    })
}

/// [`compare_trend`] at the CI retention threshold.
pub fn compare_trend_ci(
    baseline_path: &Path,
    artifacts: &[(String, &Path)],
) -> Result<TrendReport, String> {
    compare_trend(baseline_path, artifacts, BASELINE_RETENTION)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("convgpu-trend-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn trend_compares_every_metric_and_flags_missing() {
        let dir = scratch("basic");
        let baseline = dir.join("baseline.json");
        std::fs::write(
            &baseline,
            r#"{"comment": "x", "a_per_sec": 100, "b_per_sec": 200, "c_per_sec": 300}"#,
        )
        .unwrap();
        let f1 = dir.join("one.json");
        std::fs::write(&f1, r#"{"a_per_sec": 95.0, "noise": "y"}"#).unwrap();
        let f2 = dir.join("two.json");
        std::fs::write(&f2, r#"{"b_per_sec": 120}"#).unwrap();

        let report = compare_trend(
            &baseline,
            &[
                ("one.json".to_string(), f1.as_path()),
                ("two.json".to_string(), f2.as_path()),
            ],
            0.8,
        )
        .unwrap();

        assert_eq!(report.rows.len(), 2);
        let a = &report.rows[0];
        assert_eq!(a.metric, "a_per_sec");
        assert_eq!(a.artifact, "one.json");
        assert!(a.pass, "95 >= 80% of 100");
        let b = &report.rows[1];
        assert_eq!(b.metric, "b_per_sec");
        assert!(!b.pass, "120 < 80% of 200");
        assert_eq!(report.missing, vec!["c_per_sec".to_string()]);
        assert!(!report.ok());

        let md = report.markdown();
        assert!(md.contains("REGRESSED"));
        assert!(md.contains("MISSING"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trend_passes_a_clean_artifact_set() {
        let dir = scratch("clean");
        let baseline = dir.join("baseline.json");
        std::fs::write(&baseline, r#"{"a_per_sec": 100}"#).unwrap();
        let f1 = dir.join("one.json");
        std::fs::write(&f1, r#"{"a_per_sec": 100}"#).unwrap();
        let report =
            compare_trend_ci(&baseline, &[("one.json".to_string(), f1.as_path())]).unwrap();
        assert!(report.ok());
        assert!(report
            .markdown()
            .contains("| a_per_sec | one.json | 100 | 100 | 1.00x | pass |"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trend_errors_on_broken_inputs() {
        let dir = scratch("broken");
        let baseline = dir.join("baseline.json");
        std::fs::write(&baseline, "not json").unwrap();
        let f1 = dir.join("one.json");
        std::fs::write(&f1, "{}").unwrap();
        assert!(compare_trend_ci(&baseline, &[("one.json".to_string(), f1.as_path())]).is_err());

        std::fs::write(&baseline, r#"{"a_per_sec": 100}"#).unwrap();
        assert!(compare_trend_ci(
            &baseline,
            &[("gone.json".to_string(), dir.join("gone.json").as_path())]
        )
        .is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
