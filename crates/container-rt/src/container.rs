//! Container records and lifecycle states.

use crate::spec::CreateOptions;
use convgpu_sim_core::ids::ContainerId;
use convgpu_sim_core::time::SimTime;

/// Docker-style lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ContainerStatus {
    /// Created but not started.
    Created,
    /// Running.
    Running,
    /// Frozen by `docker pause` (cgroup freezer): processes exist but
    /// make no progress; GPU reservations stay held.
    Paused,
    /// Exited with a code.
    Exited,
    /// Removed (record retained for inspection in tests).
    Removed,
}

/// One container as the engine tracks it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Container {
    /// Engine-assigned ID.
    pub id: ContainerId,
    /// Optional user name.
    pub name: Option<String>,
    /// Image reference resolved at creation.
    pub image: String,
    /// Creation options as received.
    pub options: CreateOptions,
    /// Current status.
    pub status: ContainerStatus,
    /// Creation time.
    pub created_at: SimTime,
    /// Start time, once started.
    pub started_at: Option<SimTime>,
    /// Exit time, once exited.
    pub exited_at: Option<SimTime>,
    /// Exit code, once exited.
    pub exit_code: Option<i32>,
}

impl Container {
    /// True for states in which processes may run.
    pub fn is_running(&self) -> bool {
        self.status == ContainerStatus::Running
    }

    /// True once the container has exited or been removed.
    pub fn is_finished(&self) -> bool {
        matches!(
            self.status,
            ContainerStatus::Exited | ContainerStatus::Removed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_predicates() {
        let mut c = Container {
            id: ContainerId(1),
            name: None,
            image: "a:latest".into(),
            options: CreateOptions::new("a"),
            status: ContainerStatus::Created,
            created_at: SimTime::ZERO,
            started_at: None,
            exited_at: None,
            exit_code: None,
        };
        assert!(!c.is_running());
        assert!(!c.is_finished());
        c.status = ContainerStatus::Running;
        assert!(c.is_running());
        c.status = ContainerStatus::Exited;
        assert!(c.is_finished());
        c.status = ContainerStatus::Removed;
        assert!(c.is_finished());
    }
}
