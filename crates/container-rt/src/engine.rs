//! The container engine (the `dockerd` analog).
//!
//! Thread-safe: the ConVGPU orchestrator creates/starts containers from the
//! submission thread while per-container program threads stop them. The
//! engine charges a configurable creation cost on the session clock so the
//! Fig. 5 experiment has its baseline (~0.4 s for Docker 1.12 on the
//! paper's testbed).

use crate::container::{Container, ContainerStatus};
use crate::events::{EngineEvent, EventBus, EventKind};
use crate::image::{Image, ImageRegistry};
use crate::spec::CreateOptions;
use convgpu_sim_core::clock::ClockHandle;
use convgpu_sim_core::idgen::IdGen;
use convgpu_sim_core::ids::ContainerId;
use convgpu_sim_core::sync::Mutex;
use convgpu_sim_core::time::SimDuration;
use std::collections::HashMap;
use std::fmt;
use std::sync::mpsc::Receiver;

/// Engine construction parameters.
///
/// Creation cost is `creation_cost + per_volume_cost × |volumes| +
/// per_device_cost × |devices|`: Docker's sandbox setup plus mount work
/// per `--volume`/`--device`. The per-volume term is what makes ConVGPU's
/// two extra volumes show up as the paper's Fig. 5 ≈ 15 % creation
/// overhead.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Base cost charged on the clock by `create` (image/sandbox setup;
    /// calibrated to Docker 1.12 on the paper's testbed).
    pub creation_cost: SimDuration,
    /// Additional cost per volume mount.
    pub per_volume_cost: SimDuration,
    /// Additional cost per device node.
    pub per_device_cost: SimDuration,
    /// Cost charged by `start`.
    pub start_cost: SimDuration,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            creation_cost: SimDuration::from_millis(350),
            per_volume_cost: SimDuration::from_millis(25),
            per_device_cost: SimDuration::from_millis(5),
            start_cost: SimDuration::from_millis(50),
        }
    }
}

impl EngineConfig {
    /// A near-free engine for fast tests.
    pub fn instant() -> Self {
        EngineConfig {
            creation_cost: SimDuration::from_millis(1),
            per_volume_cost: SimDuration::ZERO,
            per_device_cost: SimDuration::ZERO,
            start_cost: SimDuration::ZERO,
        }
    }
}

/// Engine errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Image reference not found in the registry.
    UnknownImage(String),
    /// Container id not found.
    UnknownContainer(ContainerId),
    /// Operation invalid in the container's current state.
    InvalidState {
        /// The container.
        container: ContainerId,
        /// Its current status.
        status: ContainerStatus,
        /// The attempted operation.
        op: &'static str,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownImage(r) => write!(f, "no such image: {r}"),
            EngineError::UnknownContainer(c) => write!(f, "no such container: {c}"),
            EngineError::InvalidState {
                container,
                status,
                op,
            } => write!(f, "cannot {op} {container} in state {status:?}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// The engine.
pub struct Engine {
    config: EngineConfig,
    clock: ClockHandle,
    images: Mutex<ImageRegistry>,
    containers: Mutex<HashMap<ContainerId, Container>>,
    bus: EventBus,
    ids: IdGen,
    pids: IdGen,
}

impl Engine {
    /// Build an engine on `clock`.
    pub fn new(config: EngineConfig, clock: ClockHandle) -> Self {
        Engine {
            config,
            clock,
            images: Mutex::new(ImageRegistry::new()),
            containers: Mutex::new(HashMap::new()),
            bus: EventBus::new(),
            ids: IdGen::new(),
            pids: IdGen::starting_at(1000),
        }
    }

    /// Register an image (the `docker pull` analog).
    pub fn add_image(&self, image: Image) {
        self.images.lock().add(image);
    }

    /// Look up an image by reference.
    pub fn image(&self, reference: &str) -> Option<Image> {
        self.images.lock().get(reference).cloned()
    }

    /// Subscribe to lifecycle events.
    pub fn events(&self) -> Receiver<EngineEvent> {
        self.bus.subscribe()
    }

    /// The clock the engine charges costs on.
    pub fn clock(&self) -> &ClockHandle {
        &self.clock
    }

    /// Reserve a container ID before creation. The ConVGPU middleware
    /// needs the identity *before* `create` so it can register the
    /// container with the scheduler and mount the per-container directory
    /// (paper §III-B: "This limitation is sent to the scheduler … before
    /// the container is created").
    pub fn reserve_id(&self) -> ContainerId {
        ContainerId(self.ids.next())
    }

    /// Create a container. Charges the creation cost.
    pub fn create(&self, options: CreateOptions) -> Result<ContainerId, EngineError> {
        let id = self.reserve_id();
        self.create_with_id(id, options)?;
        Ok(id)
    }

    /// Create a container under a previously reserved ID.
    pub fn create_with_id(
        &self,
        id: ContainerId,
        options: CreateOptions,
    ) -> Result<(), EngineError> {
        let image = self
            .image(&options.image)
            .ok_or_else(|| EngineError::UnknownImage(options.image.clone()))?;
        let cost = self.config.creation_cost
            + self.config.per_volume_cost * options.volumes.len() as u64
            + self.config.per_device_cost * options.devices.len() as u64;
        self.clock.sleep(cost);
        let container = Container {
            id,
            name: options.name.clone(),
            image: image.reference(),
            options,
            status: ContainerStatus::Created,
            created_at: self.clock.now(),
            started_at: None,
            exited_at: None,
            exit_code: None,
        };
        self.containers.lock().insert(id, container);
        self.bus.publish(EngineEvent {
            at: self.clock.now(),
            container: id,
            kind: EventKind::Created,
        });
        Ok(())
    }

    /// Start a created container. Charges the start cost.
    pub fn start(&self, id: ContainerId) -> Result<(), EngineError> {
        self.clock.sleep(self.config.start_cost);
        {
            let mut containers = self.containers.lock();
            let c = containers
                .get_mut(&id)
                .ok_or(EngineError::UnknownContainer(id))?;
            if c.status != ContainerStatus::Created {
                return Err(EngineError::InvalidState {
                    container: id,
                    status: c.status,
                    op: "start",
                });
            }
            c.status = ContainerStatus::Running;
            c.started_at = Some(self.clock.now());
        }
        self.bus.publish(EngineEvent {
            at: self.clock.now(),
            container: id,
            kind: EventKind::Started,
        });
        Ok(())
    }

    /// Allocate a pid for a process inside a running container.
    pub fn spawn_pid(&self, id: ContainerId) -> Result<u64, EngineError> {
        let containers = self.containers.lock();
        let c = containers
            .get(&id)
            .ok_or(EngineError::UnknownContainer(id))?;
        if c.status != ContainerStatus::Running {
            return Err(EngineError::InvalidState {
                container: id,
                status: c.status,
                op: "spawn process in",
            });
        }
        Ok(self.pids.next())
    }

    /// Freeze a running container (`docker pause`). The container's
    /// processes stop making progress but keep every resource — which is
    /// why ConVGPU must NOT release a paused container's GPU reservation
    /// (only `stop` does).
    pub fn pause(&self, id: ContainerId) -> Result<(), EngineError> {
        {
            let mut containers = self.containers.lock();
            let c = containers
                .get_mut(&id)
                .ok_or(EngineError::UnknownContainer(id))?;
            if c.status != ContainerStatus::Running {
                return Err(EngineError::InvalidState {
                    container: id,
                    status: c.status,
                    op: "pause",
                });
            }
            c.status = ContainerStatus::Paused;
        }
        self.bus.publish(EngineEvent {
            at: self.clock.now(),
            container: id,
            kind: EventKind::Paused,
        });
        Ok(())
    }

    /// Thaw a paused container (`docker unpause`).
    pub fn unpause(&self, id: ContainerId) -> Result<(), EngineError> {
        {
            let mut containers = self.containers.lock();
            let c = containers
                .get_mut(&id)
                .ok_or(EngineError::UnknownContainer(id))?;
            if c.status != ContainerStatus::Paused {
                return Err(EngineError::InvalidState {
                    container: id,
                    status: c.status,
                    op: "unpause",
                });
            }
            c.status = ContainerStatus::Running;
        }
        self.bus.publish(EngineEvent {
            at: self.clock.now(),
            container: id,
            kind: EventKind::Unpaused,
        });
        Ok(())
    }

    /// Stop a running container: emits `Died` then one `VolumeUnmounted`
    /// per mounted volume (the plugin watches for its driver).
    pub fn stop(&self, id: ContainerId, exit_code: i32) -> Result<(), EngineError> {
        let volumes = {
            let mut containers = self.containers.lock();
            let c = containers
                .get_mut(&id)
                .ok_or(EngineError::UnknownContainer(id))?;
            if !matches!(c.status, ContainerStatus::Running | ContainerStatus::Paused) {
                return Err(EngineError::InvalidState {
                    container: id,
                    status: c.status,
                    op: "stop",
                });
            }
            c.status = ContainerStatus::Exited;
            c.exited_at = Some(self.clock.now());
            c.exit_code = Some(exit_code);
            c.options.volumes.clone()
        };
        let at = self.clock.now();
        self.bus.publish(EngineEvent {
            at,
            container: id,
            kind: EventKind::Died { exit_code },
        });
        for v in volumes {
            self.bus.publish(EngineEvent {
                at,
                container: id,
                kind: EventKind::VolumeUnmounted {
                    source: v.source,
                    driver: v.driver,
                },
            });
        }
        Ok(())
    }

    /// Remove an exited container.
    pub fn remove(&self, id: ContainerId) -> Result<(), EngineError> {
        {
            let mut containers = self.containers.lock();
            let c = containers
                .get_mut(&id)
                .ok_or(EngineError::UnknownContainer(id))?;
            if c.status != ContainerStatus::Exited {
                return Err(EngineError::InvalidState {
                    container: id,
                    status: c.status,
                    op: "remove",
                });
            }
            c.status = ContainerStatus::Removed;
        }
        self.bus.publish(EngineEvent {
            at: self.clock.now(),
            container: id,
            kind: EventKind::Removed,
        });
        Ok(())
    }

    /// Inspect a container (clone of its record).
    pub fn inspect(&self, id: ContainerId) -> Result<Container, EngineError> {
        self.containers
            .lock()
            .get(&id)
            .cloned()
            .ok_or(EngineError::UnknownContainer(id))
    }

    /// All container records, sorted by id.
    pub fn list(&self) -> Vec<Container> {
        let mut v: Vec<Container> = self.containers.lock().values().cloned().collect();
        v.sort_by_key(|c| c.id);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::VolumeMount;
    use convgpu_sim_core::clock::VirtualClock;

    fn engine() -> (Engine, VirtualClock) {
        let clock = VirtualClock::new();
        let e = Engine::new(EngineConfig::default(), clock.handle());
        e.add_image(Image::cuda("cuda-app", "latest", "8.0"));
        (e, clock)
    }

    #[test]
    fn lifecycle_happy_path() {
        let (e, _clock) = engine();
        let id = e.create(CreateOptions::new("cuda-app:latest")).unwrap();
        assert_eq!(e.inspect(id).unwrap().status, ContainerStatus::Created);
        e.start(id).unwrap();
        assert!(e.inspect(id).unwrap().is_running());
        let pid = e.spawn_pid(id).unwrap();
        assert!(pid >= 1000);
        e.stop(id, 0).unwrap();
        assert_eq!(e.inspect(id).unwrap().exit_code, Some(0));
        e.remove(id).unwrap();
        assert_eq!(e.inspect(id).unwrap().status, ContainerStatus::Removed);
    }

    #[test]
    fn create_charges_creation_cost_on_clock() {
        let (e, clock) = engine();
        use convgpu_sim_core::clock::Clock;
        let t0 = clock.now();
        e.create(CreateOptions::new("cuda-app")).unwrap();
        let elapsed = clock.now() - t0;
        assert_eq!(
            elapsed,
            SimDuration::from_millis(350),
            "base cost, no mounts"
        );
        let t1 = clock.now();
        e.create(
            CreateOptions::new("cuda-app")
                .with_volume(crate::spec::VolumeMount::bind("/a", "/a"))
                .with_volume(crate::spec::VolumeMount::bind("/b", "/b"))
                .with_device("/dev/nvidia0"),
        )
        .unwrap();
        assert_eq!(
            clock.now() - t1,
            SimDuration::from_millis(350 + 2 * 25 + 5),
            "per-volume and per-device mount costs"
        );
    }

    #[test]
    fn unknown_image_fails_create() {
        let (e, _clock) = engine();
        assert_eq!(
            e.create(CreateOptions::new("nope:latest")).unwrap_err(),
            EngineError::UnknownImage("nope:latest".into())
        );
    }

    #[test]
    fn bare_image_name_resolves_latest() {
        let (e, _clock) = engine();
        let id = e.create(CreateOptions::new("cuda-app")).unwrap();
        assert_eq!(e.inspect(id).unwrap().image, "cuda-app:latest");
    }

    #[test]
    fn invalid_transitions_rejected() {
        let (e, _clock) = engine();
        let id = e.create(CreateOptions::new("cuda-app")).unwrap();
        assert!(matches!(
            e.stop(id, 0).unwrap_err(),
            EngineError::InvalidState { op: "stop", .. }
        ));
        e.start(id).unwrap();
        assert!(matches!(
            e.start(id).unwrap_err(),
            EngineError::InvalidState { op: "start", .. }
        ));
        assert!(matches!(
            e.remove(id).unwrap_err(),
            EngineError::InvalidState { op: "remove", .. }
        ));
        assert!(e.spawn_pid(ContainerId(999)).is_err());
    }

    #[test]
    fn stop_emits_died_then_volume_unmounts() {
        let (e, _clock) = engine();
        let rx = e.events();
        let id = e
            .create(
                CreateOptions::new("cuda-app")
                    .with_volume(VolumeMount::bind("/data", "/data"))
                    .with_volume(VolumeMount::plugin("convgpu-cnt", "/convgpu", "convgpu")),
            )
            .unwrap();
        e.start(id).unwrap();
        e.stop(id, 137).unwrap();
        let kinds: Vec<EventKind> = rx.try_iter().map(|ev| ev.kind).collect();
        assert_eq!(kinds[0], EventKind::Created);
        assert_eq!(kinds[1], EventKind::Started);
        assert_eq!(kinds[2], EventKind::Died { exit_code: 137 });
        assert!(matches!(
            &kinds[3],
            EventKind::VolumeUnmounted { source, driver: None } if source == "/data"
        ));
        assert!(matches!(
            &kinds[4],
            EventKind::VolumeUnmounted { source, driver: Some(d) }
                if source == "convgpu-cnt" && d == "convgpu"
        ));
    }

    #[test]
    fn pause_unpause_lifecycle() {
        let (e, _clock) = engine();
        let rx = e.events();
        let id = e.create(CreateOptions::new("cuda-app")).unwrap();
        // Cannot pause before start.
        assert!(matches!(
            e.pause(id).unwrap_err(),
            EngineError::InvalidState { op: "pause", .. }
        ));
        e.start(id).unwrap();
        e.pause(id).unwrap();
        assert_eq!(e.inspect(id).unwrap().status, ContainerStatus::Paused);
        // No new processes while frozen.
        assert!(e.spawn_pid(id).is_err());
        // Double pause rejected; unpause restores Running.
        assert!(e.pause(id).is_err());
        e.unpause(id).unwrap();
        assert!(e.inspect(id).unwrap().is_running());
        assert!(e.unpause(id).is_err());
        // Stop works from Paused too (docker semantics).
        e.pause(id).unwrap();
        e.stop(id, 0).unwrap();
        let kinds: Vec<EventKind> = rx.try_iter().map(|ev| ev.kind).collect();
        assert!(kinds.contains(&EventKind::Paused));
        assert!(kinds.contains(&EventKind::Unpaused));
        assert!(kinds.contains(&EventKind::Died { exit_code: 0 }));
    }

    #[test]
    fn list_is_sorted_by_id() {
        let (e, _clock) = engine();
        let a = e.create(CreateOptions::new("cuda-app")).unwrap();
        let b = e.create(CreateOptions::new("cuda-app")).unwrap();
        let list = e.list();
        assert_eq!(list.len(), 2);
        assert_eq!(list[0].id, a);
        assert_eq!(list[1].id, b);
        assert!(a < b);
    }

    #[test]
    fn pids_are_unique_across_containers() {
        let (e, _clock) = engine();
        let a = e.create(CreateOptions::new("cuda-app")).unwrap();
        let b = e.create(CreateOptions::new("cuda-app")).unwrap();
        e.start(a).unwrap();
        e.start(b).unwrap();
        let p1 = e.spawn_pid(a).unwrap();
        let p2 = e.spawn_pid(b).unwrap();
        let p3 = e.spawn_pid(a).unwrap();
        assert_ne!(p1, p2);
        assert_ne!(p2, p3);
        assert_ne!(p1, p3);
    }
}
