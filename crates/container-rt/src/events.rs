//! The engine event bus.
//!
//! ConVGPU's plugin learns about container exits through volume-unmount
//! events ("when the container exits its execution by any reasons, docker
//! unmounts the volume; therefore, nvidia-docker-plugin can identify the
//! container is exited", §III-B). The bus broadcasts every lifecycle event
//! to all subscribers over `std::sync::mpsc` channels.

use convgpu_sim_core::ids::ContainerId;
use convgpu_sim_core::sync::Mutex;
use convgpu_sim_core::time::SimTime;
use std::sync::mpsc::{channel, Receiver, Sender};

/// What happened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// `docker create` completed.
    Created,
    /// `docker start` completed.
    Started,
    /// The container's main process exited.
    Died {
        /// Its exit code.
        exit_code: i32,
    },
    /// A volume was unmounted as part of container teardown. The plugin
    /// filters these by `driver`.
    VolumeUnmounted {
        /// Volume source (name or path).
        source: String,
        /// Driver that served the volume, if any.
        driver: Option<String>,
    },
    /// `docker pause` froze the container.
    Paused,
    /// `docker unpause` thawed it.
    Unpaused,
    /// `docker rm` completed.
    Removed,
}

/// One engine event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineEvent {
    /// When it happened (session clock).
    pub at: SimTime,
    /// The container concerned.
    pub container: ContainerId,
    /// What happened.
    pub kind: EventKind,
}

/// Broadcast bus: every subscriber receives every event.
#[derive(Default)]
pub struct EventBus {
    subscribers: Mutex<Vec<Sender<EngineEvent>>>,
}

impl EventBus {
    /// New bus with no subscribers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Subscribe; the receiver sees all events published after this call.
    pub fn subscribe(&self) -> Receiver<EngineEvent> {
        let (tx, rx) = channel();
        self.subscribers.lock().push(tx);
        rx
    }

    /// Publish to all live subscribers, pruning dropped ones.
    pub fn publish(&self, event: EngineEvent) {
        let mut subs = self.subscribers.lock();
        subs.retain(|tx| tx.send(event.clone()).is_ok());
    }

    /// Number of live subscribers (diagnostics).
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind) -> EngineEvent {
        EngineEvent {
            at: SimTime::ZERO,
            container: ContainerId(1),
            kind,
        }
    }

    #[test]
    fn all_subscribers_receive_all_events() {
        let bus = EventBus::new();
        let rx1 = bus.subscribe();
        let rx2 = bus.subscribe();
        bus.publish(ev(EventKind::Created));
        bus.publish(ev(EventKind::Started));
        for rx in [&rx1, &rx2] {
            assert_eq!(rx.try_recv().unwrap().kind, EventKind::Created);
            assert_eq!(rx.try_recv().unwrap().kind, EventKind::Started);
            assert!(rx.try_recv().is_err(), "no further events");
        }
    }

    #[test]
    fn dropped_subscribers_are_pruned() {
        let bus = EventBus::new();
        let rx = bus.subscribe();
        drop(bus.subscribe());
        assert_eq!(bus.subscriber_count(), 2);
        bus.publish(ev(EventKind::Created));
        assert_eq!(bus.subscriber_count(), 1);
        assert!(rx.try_recv().is_ok());
    }

    #[test]
    fn late_subscribers_miss_earlier_events() {
        let bus = EventBus::new();
        bus.publish(ev(EventKind::Created));
        let rx = bus.subscribe();
        bus.publish(ev(EventKind::Started));
        assert_eq!(rx.try_recv().unwrap().kind, EventKind::Started);
        assert!(rx.try_recv().is_err());
    }
}
