//! Images and their labels.
//!
//! nvidia-docker decides whether an image needs GPU plumbing by reading
//! its labels (`com.nvidia.volumes.needed`, `com.nvidia.cuda.version`);
//! ConVGPU adds `com.nvidia.memory.limit` as the fallback source of the
//! container's GPU memory limit (paper §III-B).

use std::collections::BTreeMap;
use std::collections::HashMap;

/// Well-known label keys.
pub mod labels {
    /// Set when the image requires the NVIDIA driver volume.
    pub const VOLUMES_NEEDED: &str = "com.nvidia.volumes.needed";
    /// CUDA version the image was built against.
    pub const CUDA_VERSION: &str = "com.nvidia.cuda.version";
    /// ConVGPU's GPU-memory-limit label (paper §III-B), e.g. `"512m"`.
    pub const MEMORY_LIMIT: &str = "com.nvidia.memory.limit";
}

/// A container image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Image {
    /// Repository name, e.g. `"cuda-app"`.
    pub name: String,
    /// Tag, e.g. `"latest"`.
    pub tag: String,
    /// Image labels.
    pub labels: BTreeMap<String, String>,
}

impl Image {
    /// A plain (non-CUDA) image.
    pub fn new(name: impl Into<String>, tag: impl Into<String>) -> Self {
        Image {
            name: name.into(),
            tag: tag.into(),
            labels: BTreeMap::new(),
        }
    }

    /// A CUDA image: carries the volumes-needed and CUDA-version labels
    /// that make nvidia-docker attach the GPU.
    pub fn cuda(name: impl Into<String>, tag: impl Into<String>, cuda_version: &str) -> Self {
        let mut img = Self::new(name, tag);
        img.labels
            .insert(labels::VOLUMES_NEEDED.into(), "nvidia_driver".into());
        img.labels
            .insert(labels::CUDA_VERSION.into(), cuda_version.into());
        img
    }

    /// Add/replace a label (builder style).
    pub fn with_label(mut self, key: &str, value: &str) -> Self {
        self.labels.insert(key.into(), value.into());
        self
    }

    /// The `name:tag` reference.
    pub fn reference(&self) -> String {
        format!("{}:{}", self.name, self.tag)
    }

    /// True when the image declares it needs the NVIDIA volume.
    pub fn needs_gpu(&self) -> bool {
        self.labels.contains_key(labels::VOLUMES_NEEDED)
    }

    /// The ConVGPU memory-limit label value, if present.
    pub fn memory_limit_label(&self) -> Option<&str> {
        self.labels.get(labels::MEMORY_LIMIT).map(String::as_str)
    }
}

/// The engine's local image store.
#[derive(Debug, Default)]
pub struct ImageRegistry {
    images: HashMap<String, Image>,
}

impl ImageRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store an image (like `docker pull` / `docker build`).
    pub fn add(&mut self, image: Image) {
        self.images.insert(image.reference(), image);
    }

    /// Look up by `name:tag` (a bare `name` implies `:latest`).
    pub fn get(&self, reference: &str) -> Option<&Image> {
        if self.images.contains_key(reference) {
            return self.images.get(reference);
        }
        if !reference.contains(':') {
            return self.images.get(&format!("{reference}:latest"));
        }
        None
    }

    /// Number of stored images.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cuda_image_has_gpu_labels() {
        let img = Image::cuda("tensorflow", "1.2", "8.0");
        assert!(img.needs_gpu());
        assert_eq!(img.labels.get(labels::CUDA_VERSION).unwrap(), "8.0");
        assert_eq!(img.reference(), "tensorflow:1.2");
        assert!(!Image::new("alpine", "3.6").needs_gpu());
    }

    #[test]
    fn memory_limit_label() {
        let img = Image::cuda("app", "latest", "8.0").with_label(labels::MEMORY_LIMIT, "512m");
        assert_eq!(img.memory_limit_label(), Some("512m"));
        assert_eq!(Image::new("a", "b").memory_limit_label(), None);
    }

    #[test]
    fn registry_resolves_bare_names_to_latest() {
        let mut reg = ImageRegistry::new();
        reg.add(Image::new("alpine", "latest"));
        reg.add(Image::new("alpine", "3.6"));
        assert_eq!(reg.get("alpine").unwrap().tag, "latest");
        assert_eq!(reg.get("alpine:3.6").unwrap().tag, "3.6");
        assert!(reg.get("alpine:9.9").is_none());
        assert!(reg.get("missing").is_none());
        assert_eq!(reg.len(), 2);
    }
}
