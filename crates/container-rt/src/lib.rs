//! A container-runtime simulator — the Docker analog.
//!
//! The paper builds on Docker 1.12 + NVIDIA Docker 1.0.0-rc3. ConVGPU
//! interacts with Docker through a narrow surface, and that surface is what
//! this crate reproduces (DESIGN.md §2):
//!
//! * **images with labels** — nvidia-docker reads
//!   `com.nvidia.volumes.needed`, `com.nvidia.cuda.version` and ConVGPU
//!   adds `com.nvidia.memory.limit`;
//! * **container creation options** — `--env` (ConVGPU injects
//!   `LD_PRELOAD`), `--volume` (the wrapper-module directory and the dummy
//!   plugin volume), `--device` (the GPU nodes);
//! * **lifecycle + events** — `create` / `start` / `die` / `destroy`, and
//!   the volume-unmount notification on stop, which is exactly how
//!   nvidia-docker-plugin learns that a container exited and tells the
//!   scheduler to release its memory.
//!
//! The engine charges a configurable creation cost on the session clock so
//! the Fig. 5 container-creation experiment has a realistic baseline.

#![forbid(unsafe_code)]

pub mod container;
pub mod engine;
pub mod events;
pub mod image;
pub mod spec;

pub use container::{Container, ContainerStatus};
pub use engine::{Engine, EngineConfig, EngineError};
pub use events::{EngineEvent, EventKind};
pub use image::{labels, Image, ImageRegistry};
pub use spec::{CreateOptions, ResourceSpec, VolumeMount};
