//! Container creation options — the subset of `docker create` ConVGPU's
//! customized nvidia-docker manipulates.

use convgpu_sim_core::units::Bytes;

/// cgroup-style resource caps (paper Table III columns "Number of vCPU"
/// and "Memory (GiB)").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResourceSpec {
    /// Virtual CPU count.
    pub vcpus: u32,
    /// Host memory cap.
    pub memory: Bytes,
}

impl Default for ResourceSpec {
    fn default() -> Self {
        ResourceSpec {
            vcpus: 1,
            memory: Bytes::gib(1),
        }
    }
}

/// A `--volume` mount.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VolumeMount {
    /// Host path or named volume.
    pub source: String,
    /// Path inside the container.
    pub target: String,
    /// Volume driver; `Some("nvidia-docker")` marks plugin volumes, whose
    /// unmount the plugin observes (paper §III-B: the "dummy volume" that
    /// signals container exit).
    pub driver: Option<String>,
}

impl VolumeMount {
    /// A plain bind mount.
    pub fn bind(source: impl Into<String>, target: impl Into<String>) -> Self {
        VolumeMount {
            source: source.into(),
            target: target.into(),
            driver: None,
        }
    }

    /// A plugin-managed volume.
    pub fn plugin(
        source: impl Into<String>,
        target: impl Into<String>,
        driver: impl Into<String>,
    ) -> Self {
        VolumeMount {
            source: source.into(),
            target: target.into(),
            driver: Some(driver.into()),
        }
    }
}

/// Options for creating a container (the output of nvidia-docker's
/// command-line rewriting).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CreateOptions {
    /// Image reference (`name` or `name:tag`).
    pub image: String,
    /// Optional container name.
    pub name: Option<String>,
    /// Environment variables (`--env`), e.g. `LD_PRELOAD`.
    pub env: Vec<(String, String)>,
    /// Volume mounts (`--volume`).
    pub volumes: Vec<VolumeMount>,
    /// Device nodes (`--device`), e.g. `/dev/nvidia0`.
    pub devices: Vec<String>,
    /// Resource caps.
    pub resources: ResourceSpec,
}

impl CreateOptions {
    /// Minimal options for `image`.
    pub fn new(image: impl Into<String>) -> Self {
        CreateOptions {
            image: image.into(),
            name: None,
            env: Vec::new(),
            volumes: Vec::new(),
            devices: Vec::new(),
            resources: ResourceSpec::default(),
        }
    }

    /// Add an environment variable (builder style).
    pub fn with_env(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.env.push((key.into(), value.into()));
        self
    }

    /// Add a volume mount.
    pub fn with_volume(mut self, v: VolumeMount) -> Self {
        self.volumes.push(v);
        self
    }

    /// Add a device node.
    pub fn with_device(mut self, dev: impl Into<String>) -> Self {
        self.devices.push(dev.into());
        self
    }

    /// Set resource caps.
    pub fn with_resources(mut self, r: ResourceSpec) -> Self {
        self.resources = r;
        self
    }

    /// Look up an env var (last writer wins, like the docker CLI).
    pub fn env_get(&self, key: &str) -> Option<&str> {
        self.env
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let opts = CreateOptions::new("cuda-app:latest")
            .with_env("LD_PRELOAD", "/convgpu/libgpushare.so")
            .with_volume(VolumeMount::bind("/var/lib/convgpu/cnt-1", "/convgpu"))
            .with_volume(VolumeMount::plugin(
                "nvidia_driver_375.51",
                "/usr/local/nvidia",
                "nvidia-docker",
            ))
            .with_device("/dev/nvidia0")
            .with_resources(ResourceSpec {
                vcpus: 2,
                memory: Bytes::gib(4),
            });
        assert_eq!(opts.env_get("LD_PRELOAD"), Some("/convgpu/libgpushare.so"));
        assert_eq!(opts.volumes.len(), 2);
        assert_eq!(opts.volumes[1].driver.as_deref(), Some("nvidia-docker"));
        assert_eq!(opts.devices, vec!["/dev/nvidia0"]);
        assert_eq!(opts.resources.vcpus, 2);
    }

    #[test]
    fn env_last_writer_wins() {
        let opts = CreateOptions::new("a")
            .with_env("X", "1")
            .with_env("X", "2");
        assert_eq!(opts.env_get("X"), Some("2"));
        assert_eq!(opts.env_get("Y"), None);
    }
}
