//! Socket request handler: adapts the wire protocol onto the service.

use crate::service::SchedulerService;
use convgpu_ipc::message::{Request, Response};
use convgpu_ipc::server::{ConnId, Reply, RequestHandler};
use std::sync::Arc;

/// The [`RequestHandler`] ConVGPU binds on its control and per-container
/// sockets.
pub struct ServiceHandler {
    service: Arc<SchedulerService>,
}

impl ServiceHandler {
    /// Wrap `service`.
    pub fn new(service: Arc<SchedulerService>) -> Self {
        ServiceHandler { service }
    }
}

fn ok_or_error<T>(
    reply: Reply,
    result: Result<T, impl std::fmt::Display>,
    f: impl FnOnce(T) -> Response,
) {
    match result {
        Ok(v) => reply.send(f(v)),
        Err(e) => reply.send(Response::Error {
            message: e.to_string(),
        }),
    }
}

impl RequestHandler for ServiceHandler {
    fn on_request(&self, _conn: ConnId, req: Request, reply: Reply) {
        match req {
            Request::Register { container, limit } => {
                ok_or_error(reply, self.service.register(container, limit), |_| {
                    Response::Ok
                });
            }
            Request::RequestDir { container } => {
                ok_or_error(reply, self.service.request_dir(container), |p| {
                    Response::Dir {
                        path: p.display().to_string(),
                    }
                });
            }
            Request::AllocRequest {
                container,
                pid,
                size,
                api,
            } => {
                // May park the reply — the suspension mechanism.
                self.service
                    .alloc_request_deferred(container, pid, size, api, reply);
            }
            Request::AllocDone {
                container,
                pid,
                addr,
                size,
            } => {
                ok_or_error(
                    reply,
                    self.service.alloc_done(container, pid, addr, size),
                    |_| Response::Ok,
                );
            }
            Request::AllocFailed {
                container,
                pid,
                size,
            } => {
                ok_or_error(
                    reply,
                    self.service.alloc_failed(container, pid, size),
                    |_| Response::Ok,
                );
            }
            Request::Free {
                container,
                pid,
                addr,
            } => {
                ok_or_error(reply, self.service.free(container, pid, addr), |size| {
                    Response::Freed { size }
                });
            }
            Request::MemInfo { container, pid } => {
                ok_or_error(
                    reply,
                    self.service.mem_info(container, pid),
                    |(free, total)| Response::MemInfo { free, total },
                );
            }
            Request::ProcessExit { container, pid } => {
                ok_or_error(reply, self.service.process_exit(container, pid), |_| {
                    Response::Ok
                });
            }
            Request::ContainerClose { container } => {
                ok_or_error(reply, self.service.container_close(container), |_| {
                    Response::Ok
                });
            }
            Request::Ping => reply.send(Response::Pong),
            Request::QueryMetrics => reply.send(Response::Metrics {
                text: self.service.metrics_text(),
            }),
            Request::QueryTopology => {
                let (kind, devices) = self.service.topology();
                reply.send(Response::Topology { kind, devices });
            }
            Request::QueryHome { container } => match self.service.query_home(container) {
                Some(p) => reply.send(Response::Home {
                    node: p.node.unwrap_or_default(),
                    device: p.device as u64,
                }),
                None => reply.send(Response::Error {
                    message: format!("container {container} is not registered"),
                }),
            },
            Request::QueryCluster => match self.service.cluster_status() {
                Some((strategy, nodes)) => reply.send(Response::Cluster { strategy, nodes }),
                None => reply.send(Response::Error {
                    message: "not a cluster daemon".to_string(),
                }),
            },
            Request::Migrate {
                container,
                node,
                limit,
                used,
            } => {
                ok_or_error(
                    reply,
                    self.service.migrate(container, &node, limit, used),
                    |_| Response::Ok,
                );
            }
            Request::QueryMigrations => reply.send(Response::Migrations {
                records: self.service.migration_records(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use convgpu_ipc::client::SchedulerClient;
    use convgpu_ipc::endpoint::SchedulerEndpoint;
    use convgpu_ipc::message::{AllocDecision, ApiKind};
    use convgpu_ipc::server::SocketServer;
    use convgpu_scheduler::core::{Scheduler, SchedulerConfig};
    use convgpu_scheduler::policy::PolicyKind;
    use convgpu_sim_core::clock::RealClock;
    use convgpu_sim_core::ids::ContainerId;
    use convgpu_sim_core::units::Bytes;
    use std::time::Duration;

    fn stack(
        name: &str,
        capacity_mib: u64,
    ) -> (SocketServer, SchedulerClient, Arc<SchedulerService>) {
        let dir = std::env::temp_dir().join(format!(
            "convgpu-handler-test-{}-{}",
            std::process::id(),
            name
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let svc = Arc::new(SchedulerService::new(
            Scheduler::new(
                SchedulerConfig::with_capacity(Bytes::mib(capacity_mib)),
                PolicyKind::Fifo.build(0),
            ),
            RealClock::handle(),
            dir.clone(),
        ));
        let server = SocketServer::bind(
            &dir.join("sched.sock"),
            Arc::new(ServiceHandler::new(Arc::clone(&svc))),
        )
        .unwrap();
        let client = SchedulerClient::connect(server.path()).unwrap();
        (server, client, svc)
    }

    #[test]
    fn full_protocol_over_real_socket() {
        let (server, client, svc) = stack("full", 5120);
        client.ping().unwrap();
        client.register(ContainerId(1), Bytes::mib(512)).unwrap();
        let dir = client.request_dir(ContainerId(1)).unwrap();
        assert!(dir.ends_with("cnt-0001"));
        assert_eq!(
            client
                .request_alloc(ContainerId(1), 5, Bytes::mib(256), ApiKind::Malloc)
                .unwrap(),
            AllocDecision::Granted
        );
        client
            .alloc_done(ContainerId(1), 5, 0xF00, Bytes::mib(256))
            .unwrap();
        // The container's view hides the 66 MiB context charge: free =
        // limit - its own allocations.
        assert_eq!(
            client.mem_info(ContainerId(1), 5).unwrap(),
            (Bytes::mib(512 - 256), Bytes::mib(512))
        );
        assert_eq!(
            client.free(ContainerId(1), 5, 0xF00).unwrap(),
            Bytes::mib(256)
        );
        client.process_exit(ContainerId(1), 5).unwrap();
        client.container_close(ContainerId(1)).unwrap();
        svc.with_scheduler(|s| s.check_invariants().unwrap());
        server.shutdown();
    }

    #[test]
    fn suspension_works_over_real_socket() {
        let (server, client, _svc) = stack("suspend", 1200);
        client.register(ContainerId(1), Bytes::mib(1000)).unwrap();
        client.register(ContainerId(2), Bytes::mib(1000)).unwrap();
        client
            .request_alloc(ContainerId(1), 1, Bytes::mib(1000), ApiKind::Malloc)
            .unwrap();
        let client = Arc::new(client);
        let c2 = Arc::clone(&client);
        let t0 = std::time::Instant::now();
        let waiter = std::thread::spawn(move || {
            c2.request_alloc(ContainerId(2), 2, Bytes::mib(1000), ApiKind::Malloc)
        });
        std::thread::sleep(Duration::from_millis(40));
        assert!(!waiter.is_finished(), "suspended request must be parked");
        client.container_close(ContainerId(1)).unwrap();
        assert_eq!(waiter.join().unwrap().unwrap(), AllocDecision::Granted);
        assert!(t0.elapsed() >= Duration::from_millis(40));
        server.shutdown();
    }

    #[test]
    fn errors_travel_the_wire() {
        let (server, client, _svc) = stack("errors", 1000);
        let err = client
            .request_alloc(ContainerId(77), 1, Bytes::mib(1), ApiKind::Malloc)
            .unwrap_err();
        assert!(err.to_string().contains("unknown container"), "{err}");
        server.shutdown();
    }
}
