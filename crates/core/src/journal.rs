//! Durable router state: the write-ahead home-map journal.
//!
//! The [`crate::router::ClusterRouter`]'s home map — which node owns
//! each container, the limit it registered with, the placement hint the
//! router committed, and the wire-observed per-pid `used` ledger — is
//! the checkpoint a migration replays onto an adopting node. Before
//! this module that map lived only in memory: a restarted router
//! re-learned homes lazily with **zero** checkpoints, so a post-restart
//! migration off a dead node replayed `limit = 0`, `used = 0` onto the
//! adopter and committed-memory placement ran blind.
//!
//! The journal fixes that with the classic WAL shape:
//!
//! * **Append-only log** (`wal.log`) — every home-map mutation is one
//!   line: `place`, `recover`, `close`, `migrate` (commit of a
//!   hand-off), and the ledger deltas `done` / `free` / `exit`. Each
//!   record carries a monotonic sequence number and an FNV-1a checksum,
//!   so replay can tell a torn tail from a valid record.
//! * **Compacted snapshots** (`snapshot.v1`) — the whole map, written
//!   to a temp file, fsynced, and atomically renamed. The snapshot
//!   records the last sequence number it covers; journal records at or
//!   below it are skipped on replay, which makes the
//!   snapshot-then-truncate crash window harmless.
//! * **Torn-tail tolerance** — replay stops at the first record that
//!   fails to parse or checksum (a crash mid-append tears at most the
//!   final record) and reports it; it never panics on hostile bytes.
//! * **Off the hot path** — appends go to a [`BufWriter`]; the *router*
//!   decides when to flush (sim-clock interval) and when to compact
//!   (record count), and never holds its home-map lock across journal
//!   I/O.
//!
//! Durability contract: a flushed record survives a router crash
//! (`kill -9`); records appended since the last flush are lost, which
//! recovery reads as "that tail of operations never happened" — exactly
//! the state an observer of the flushed prefix would reconstruct. The
//! replay-equivalence property (`tests/journal_recovery.rs`) pins this:
//! a journal truncated at *any* byte replays to the home map the live
//! router held after some prefix of its operations.

use convgpu_sim_core::ids::ContainerId;
use convgpu_sim_core::time::{SimDuration, SimTime};
use convgpu_sim_core::units::Bytes;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// File name of the append-only log inside the journal directory.
pub const WAL_FILE: &str = "wal.log";
/// File name of the compacted snapshot inside the journal directory.
pub const SNAPSHOT_FILE: &str = "snapshot.v1";

/// Journal knobs. All timing is sim time, so a virtual-clock test
/// drives the flush schedule deterministically.
#[derive(Clone, Debug)]
pub struct JournalConfig {
    /// Directory holding `wal.log` and `snapshot.v1` (created if
    /// missing).
    pub dir: PathBuf,
    /// Flush the append buffer to the OS when this much sim time has
    /// passed since the last flush. `ZERO` flushes on every append
    /// (maximum durability, one `write(2)` per mutation).
    pub flush_interval: SimDuration,
    /// Compact (snapshot + truncate the log) after this many appended
    /// records. `0` never compacts on count (only at open).
    pub snapshot_every: u64,
}

impl JournalConfig {
    /// Defaults tuned for the request hot path: 25 ms flush cadence,
    /// compaction every 4096 records.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        JournalConfig {
            dir: dir.into(),
            flush_interval: SimDuration::from_millis(25),
            snapshot_every: 4096,
        }
    }
}

/// One home-map mutation, as recorded in the log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalOp {
    /// A fresh placement: `register` committed on `node`.
    Place {
        container: ContainerId,
        node: String,
        limit: Bytes,
        hint: Bytes,
    },
    /// A home re-learned from a live node after a restart (zero
    /// checkpoint — the limit is node-side state the router never saw).
    Recover {
        container: ContainerId,
        node: String,
    },
    /// The home entry was dropped (container closed, or checkpointed
    /// out at the start of a migration).
    Close { container: ContainerId },
    /// A migration hand-off committed onto `node`, carrying the
    /// checkpointed budget. The carried `used` is re-seeded under the
    /// synthetic pid 0, mirroring the live router's books.
    Migrate {
        container: ContainerId,
        node: String,
        limit: Bytes,
        hint: Bytes,
        used: Bytes,
    },
    /// Wire-observed `alloc_done`: `size` confirmed live for `pid`.
    AllocDone {
        container: ContainerId,
        pid: u64,
        size: Bytes,
    },
    /// Wire-observed `free`: the node reported `size` freed for `pid`.
    Free {
        container: ContainerId,
        pid: u64,
        size: Bytes,
    },
    /// Wire-observed `process_exit`: `pid`'s ledger entry is dropped.
    ProcessExit { container: ContainerId, pid: u64 },
}

/// A recovered (or snapshotted) home entry, node identified by *name*
/// so recovery survives a reordered `--node` list.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveredHome {
    /// Name of the node the container was homed on.
    pub node: String,
    /// The limit the container registered with.
    pub limit: Bytes,
    /// Memory the router committed against the node at placement.
    pub hint: Bytes,
    /// The wire-observed live-bytes ledger, per pid.
    pub used_by_pid: BTreeMap<u64, Bytes>,
}

/// What `Journal::open` reconstructed, plus how it got there.
#[derive(Debug, Default)]
pub struct Recovery {
    /// The recovered home map.
    pub homes: BTreeMap<ContainerId, RecoveredHome>,
    /// Homes loaded from the snapshot (before journal replay).
    pub snapshot_homes: u64,
    /// Journal records applied on top of the snapshot.
    pub replayed: u64,
    /// Journal records skipped because the snapshot already covered
    /// their sequence number.
    pub skipped: u64,
    /// Replay stopped early at a torn or corrupt record.
    pub torn_tail: bool,
    /// The snapshot itself failed validation and was discarded.
    pub corrupt_snapshot: bool,
}

/// FNV-1a 64-bit over `bytes` — std-only, stable, good enough to tell
/// a torn record from a valid one (this is corruption *detection* for
/// crash recovery, not an integrity MAC).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Escape a node name for the space-separated record grammar: bytes
/// outside visible ASCII, spaces, and `%` itself become `%XX`.
fn escape(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for b in name.bytes() {
        if b.is_ascii_graphic() && b != b'%' {
            out.push(b as char);
        } else {
            out.push_str(&format!("%{b:02X}"));
        }
    }
    out
}

/// Inverse of [`escape`]; `None` on malformed escapes.
fn unescape(field: &str) -> Option<String> {
    let bytes = field.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3)?;
            let hex = std::str::from_utf8(hex).ok()?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

impl JournalOp {
    /// The record payload (everything after the seq + checksum header).
    fn payload(&self) -> String {
        match self {
            JournalOp::Place {
                container,
                node,
                limit,
                hint,
            } => format!(
                "place {} {} {} {}",
                container.as_u64(),
                escape(node),
                limit.as_u64(),
                hint.as_u64()
            ),
            JournalOp::Recover { container, node } => {
                format!("recover {} {}", container.as_u64(), escape(node))
            }
            JournalOp::Close { container } => format!("close {}", container.as_u64()),
            JournalOp::Migrate {
                container,
                node,
                limit,
                hint,
                used,
            } => format!(
                "migrate {} {} {} {} {}",
                container.as_u64(),
                escape(node),
                limit.as_u64(),
                hint.as_u64(),
                used.as_u64()
            ),
            JournalOp::AllocDone {
                container,
                pid,
                size,
            } => format!("done {} {pid} {}", container.as_u64(), size.as_u64()),
            JournalOp::Free {
                container,
                pid,
                size,
            } => format!("free {} {pid} {}", container.as_u64(), size.as_u64()),
            JournalOp::ProcessExit { container, pid } => {
                format!("exit {} {pid}", container.as_u64())
            }
        }
    }

    /// Parse a payload produced by [`JournalOp::payload`].
    fn parse(payload: &str) -> Option<JournalOp> {
        let mut parts = payload.split(' ');
        let kind = parts.next()?;
        let num =
            |parts: &mut std::str::Split<'_, char>| -> Option<u64> { parts.next()?.parse().ok() };
        let op = match kind {
            "place" => JournalOp::Place {
                container: ContainerId(num(&mut parts)?),
                node: unescape(parts.next()?)?,
                limit: Bytes::new(num(&mut parts)?),
                hint: Bytes::new(num(&mut parts)?),
            },
            "recover" => JournalOp::Recover {
                container: ContainerId(num(&mut parts)?),
                node: unescape(parts.next()?)?,
            },
            "close" => JournalOp::Close {
                container: ContainerId(num(&mut parts)?),
            },
            "migrate" => JournalOp::Migrate {
                container: ContainerId(num(&mut parts)?),
                node: unescape(parts.next()?)?,
                limit: Bytes::new(num(&mut parts)?),
                hint: Bytes::new(num(&mut parts)?),
                used: Bytes::new(num(&mut parts)?),
            },
            "done" => JournalOp::AllocDone {
                container: ContainerId(num(&mut parts)?),
                pid: num(&mut parts)?,
                size: Bytes::new(num(&mut parts)?),
            },
            "free" => JournalOp::Free {
                container: ContainerId(num(&mut parts)?),
                pid: num(&mut parts)?,
                size: Bytes::new(num(&mut parts)?),
            },
            "exit" => JournalOp::ProcessExit {
                container: ContainerId(num(&mut parts)?),
                pid: num(&mut parts)?,
            },
            _ => return None,
        };
        if parts.next().is_some() {
            return None; // trailing garbage is not a valid record
        }
        Some(op)
    }
}

/// Apply one op to a home map, exactly mirroring the live router's
/// mutations (the replay-equivalence property tests compare against
/// this). Ledger arithmetic is hostile-input safe: additions saturate
/// and subtractions clamp at zero, so an adversarial journal can skew
/// the books but never wrap or panic them.
pub fn apply(homes: &mut BTreeMap<ContainerId, RecoveredHome>, op: &JournalOp) {
    match op {
        JournalOp::Place {
            container,
            node,
            limit,
            hint,
        } => {
            homes.insert(
                *container,
                RecoveredHome {
                    node: node.clone(),
                    limit: *limit,
                    hint: *hint,
                    used_by_pid: BTreeMap::new(),
                },
            );
        }
        JournalOp::Recover { container, node } => {
            homes.insert(
                *container,
                RecoveredHome {
                    node: node.clone(),
                    ..RecoveredHome::default()
                },
            );
        }
        JournalOp::Close { container } => {
            homes.remove(container);
        }
        JournalOp::Migrate {
            container,
            node,
            limit,
            hint,
            used,
        } => {
            let mut used_by_pid = BTreeMap::new();
            if *used > Bytes::ZERO {
                used_by_pid.insert(0, *used);
            }
            homes.insert(
                *container,
                RecoveredHome {
                    node: node.clone(),
                    limit: *limit,
                    hint: *hint,
                    used_by_pid,
                },
            );
        }
        JournalOp::AllocDone {
            container,
            pid,
            size,
        } => {
            if let Some(home) = homes.get_mut(container) {
                let used = home.used_by_pid.entry(*pid).or_insert(Bytes::ZERO);
                *used = Bytes::new(used.as_u64().saturating_add(size.as_u64()));
            }
        }
        JournalOp::Free {
            container,
            pid,
            size,
        } => {
            if let Some(home) = homes.get_mut(container) {
                if let Some(used) = home.used_by_pid.get_mut(pid) {
                    *used = used.saturating_sub(*size);
                }
            }
        }
        JournalOp::ProcessExit { container, pid } => {
            if let Some(home) = homes.get_mut(container) {
                home.used_by_pid.remove(pid);
            }
        }
    }
}

/// Format one log line: `SEQ CRC PAYLOAD\n`, CRC over `SEQ PAYLOAD`.
fn encode_line(seq: u64, payload: &str) -> String {
    let body = format!("{seq:016x} {payload}");
    let crc = fnv1a64(body.as_bytes());
    format!("{seq:016x} {crc:016x} {payload}\n")
}

/// Decode one log line; `None` when torn/corrupt.
fn decode_line(line: &str) -> Option<(u64, &str)> {
    let (seq_hex, rest) = line.split_once(' ')?;
    let (crc_hex, payload) = rest.split_once(' ')?;
    let seq = u64::from_str_radix(seq_hex, 16).ok()?;
    let crc = u64::from_str_radix(crc_hex, 16).ok()?;
    let body = format!("{seq:016x} {payload}");
    if fnv1a64(body.as_bytes()) != crc {
        return None;
    }
    Some((seq, payload))
}

/// The write side of the journal (replay happens once, in
/// [`Journal::open`]). Owned by the router behind its own mutex; every
/// method that touches the filesystem is explicit about it so the
/// caller can keep hot-path locks out of I/O.
pub struct Journal {
    cfg: JournalConfig,
    wal: BufWriter<File>,
    /// Sequence number of the next record to append.
    next_seq: u64,
    /// Records appended since the last snapshot (compaction trigger).
    appended_since_snapshot: u64,
    /// Sim-clock instant of the last flush.
    last_flush: SimTime,
    /// Buffered records not yet handed to the OS.
    unflushed: u64,
}

impl Journal {
    /// Open (or create) the journal under `cfg.dir` and replay the
    /// snapshot plus log into a [`Recovery`]. Never panics on a torn or
    /// corrupt tail — replay stops at the first bad record and says so.
    pub fn open(cfg: JournalConfig) -> std::io::Result<(Journal, Recovery)> {
        std::fs::create_dir_all(&cfg.dir)?;
        let mut recovery = Recovery::default();
        let snapshot_seq = load_snapshot(&cfg.dir.join(SNAPSHOT_FILE), &mut recovery);
        let wal_path = cfg.dir.join(WAL_FILE);
        let mut max_seq = snapshot_seq;
        if wal_path.exists() {
            let data = std::fs::read(&wal_path)?;
            let mut pos = 0usize;
            while pos < data.len() {
                // A record is only trusted complete with its trailing
                // newline: a final line the crash cut short — even one
                // that happens to parse — is part of the torn tail.
                let parsed = data[pos..].iter().position(|&b| b == b'\n').and_then(|nl| {
                    let raw = std::str::from_utf8(&data[pos..pos + nl]).ok()?;
                    let (seq, payload) = decode_line(raw)?;
                    Some((nl, seq, JournalOp::parse(payload)?))
                });
                let Some((nl, seq, op)) = parsed else {
                    recovery.torn_tail = true;
                    break;
                };
                pos += nl + 1;
                if seq <= snapshot_seq {
                    // Covered by the snapshot (the compaction crash
                    // window leaves such records behind harmlessly).
                    recovery.skipped += 1;
                    continue;
                }
                apply(&mut recovery.homes, &op);
                recovery.replayed += 1;
                max_seq = max_seq.max(seq);
            }
            if pos != data.len() {
                // Drop the torn bytes so the next append starts a clean
                // record instead of concatenating onto half a line.
                OpenOptions::new()
                    .write(true)
                    .open(&wal_path)?
                    .set_len(pos as u64)?;
            }
        }
        let wal = BufWriter::new(
            OpenOptions::new()
                .create(true)
                .append(true)
                .open(&wal_path)?,
        );
        Ok((
            Journal {
                cfg,
                wal,
                next_seq: max_seq.saturating_add(1),
                appended_since_snapshot: 0,
                last_flush: SimTime::ZERO,
                unflushed: 0,
            },
            recovery,
        ))
    }

    /// Append one record to the in-memory buffer (no syscall unless the
    /// buffer spills). Call [`Journal::maybe_flush`] afterwards with
    /// the current sim time.
    pub fn append(&mut self, op: &JournalOp) -> std::io::Result<()> {
        let line = encode_line(self.next_seq, &op.payload());
        self.wal.write_all(line.as_bytes())?;
        self.next_seq = self.next_seq.saturating_add(1);
        self.appended_since_snapshot += 1;
        self.unflushed += 1;
        Ok(())
    }

    /// Flush buffered records to the OS when the configured sim-time
    /// interval has elapsed (or immediately with a zero interval).
    /// Returns whether a flush happened.
    pub fn maybe_flush(&mut self, now: SimTime) -> std::io::Result<bool> {
        if self.unflushed == 0 {
            return Ok(false);
        }
        if self.cfg.flush_interval.is_zero()
            || now.saturating_since(self.last_flush) >= self.cfg.flush_interval
        {
            self.flush(now)?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Unconditionally flush buffered records to the OS. Durability
    /// policy: `flush` is a `write(2)` (survives a router crash);
    /// `fsync` happens only at snapshot time (survives a host crash) —
    /// see docs/CLUSTER.md "Durability & restart".
    pub fn flush(&mut self, now: SimTime) -> std::io::Result<()> {
        self.wal.flush()?;
        self.last_flush = now;
        self.unflushed = 0;
        Ok(())
    }

    /// Whether enough records accumulated since the last snapshot that
    /// the owner should compact.
    pub fn wants_snapshot(&self) -> bool {
        self.cfg.snapshot_every > 0 && self.appended_since_snapshot >= self.cfg.snapshot_every
    }

    /// Compact: write the full map to `snapshot.v1` (temp file, fsync,
    /// atomic rename) and truncate the log. A crash between rename and
    /// truncate is safe — the snapshot's sequence number makes the
    /// leftover log records no-ops on replay.
    pub fn snapshot(
        &mut self,
        homes: &BTreeMap<ContainerId, RecoveredHome>,
    ) -> std::io::Result<()> {
        // Everything appended so far must be on disk before the
        // snapshot claims to cover its sequence range.
        self.wal.flush()?;
        self.unflushed = 0;
        let covered = self.next_seq.saturating_sub(1);
        let tmp = self.cfg.dir.join("snapshot.tmp");
        {
            let mut out = BufWriter::new(File::create(&tmp)?);
            let header = format!("snapshot-v1 {}", homes.len());
            out.write_all(encode_line(covered, &header).as_bytes())?;
            for (container, home) in homes {
                let ledger = if home.used_by_pid.is_empty() {
                    "-".to_string()
                } else {
                    home.used_by_pid
                        .iter()
                        .map(|(pid, b)| format!("{pid}:{}", b.as_u64()))
                        .collect::<Vec<_>>()
                        .join(",")
                };
                let payload = format!(
                    "home {} {} {} {} {ledger}",
                    container.as_u64(),
                    escape(&home.node),
                    home.limit.as_u64(),
                    home.hint.as_u64()
                );
                out.write_all(encode_line(covered, &payload).as_bytes())?;
            }
            out.flush()?;
            out.get_ref().sync_all()?;
        }
        std::fs::rename(&tmp, self.cfg.dir.join(SNAPSHOT_FILE))?;
        // Truncate the log: future appends start a fresh file.
        let wal_path = self.cfg.dir.join(WAL_FILE);
        self.wal = BufWriter::new(
            OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(&wal_path)?,
        );
        self.appended_since_snapshot = 0;
        Ok(())
    }
}

impl Drop for Journal {
    /// Graceful shutdown keeps the buffered tail; a crash (`kill -9`)
    /// skips this and loses at most one flush interval of records.
    fn drop(&mut self) {
        let _ = self.wal.flush();
    }
}

/// Load `snapshot.v1` into `recovery.homes`; returns the sequence
/// number it covers (0 when absent or discarded). Any malformed line
/// discards the whole snapshot — half a map would replay to a state
/// the live router never held.
fn load_snapshot(path: &Path, recovery: &mut Recovery) -> u64 {
    let Ok(file) = File::open(path) else {
        return 0;
    };
    let reader = BufReader::new(file);
    let mut lines = reader.split(b'\n');
    let parse_snapshot = |lines: &mut dyn Iterator<Item = std::io::Result<Vec<u8>>>| {
        let header = lines.next()?.ok()?;
        let header = String::from_utf8(header).ok()?;
        let (seq, payload) = decode_line(&header)?;
        let mut parts = payload.split(' ');
        if parts.next()? != "snapshot-v1" {
            return None;
        }
        let count: u64 = parts.next()?.parse().ok()?;
        let mut homes = BTreeMap::new();
        for _ in 0..count {
            let line = String::from_utf8(lines.next()?.ok()?).ok()?;
            let (line_seq, payload) = decode_line(&line)?;
            if line_seq != seq {
                return None;
            }
            let mut parts = payload.split(' ');
            if parts.next()? != "home" {
                return None;
            }
            let container = ContainerId(parts.next()?.parse().ok()?);
            let node = unescape(parts.next()?)?;
            let limit = Bytes::new(parts.next()?.parse().ok()?);
            let hint = Bytes::new(parts.next()?.parse().ok()?);
            let ledger = parts.next()?;
            let mut used_by_pid = BTreeMap::new();
            if ledger != "-" {
                for entry in ledger.split(',') {
                    let (pid, bytes) = entry.split_once(':')?;
                    used_by_pid.insert(pid.parse().ok()?, Bytes::new(bytes.parse().ok()?));
                }
            }
            homes.insert(
                container,
                RecoveredHome {
                    node,
                    limit,
                    hint,
                    used_by_pid,
                },
            );
        }
        Some((seq, homes))
    };
    match parse_snapshot(&mut lines) {
        Some((seq, homes)) => {
            recovery.snapshot_homes = homes.len() as u64;
            recovery.homes = homes;
            seq
        }
        None => {
            recovery.corrupt_snapshot = true;
            recovery.homes.clear();
            recovery.snapshot_homes = 0;
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("convgpu-journal-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn ops() -> Vec<JournalOp> {
        vec![
            JournalOp::Place {
                container: ContainerId(1),
                node: "n0".into(),
                limit: Bytes::mib(400),
                hint: Bytes::mib(466),
            },
            JournalOp::AllocDone {
                container: ContainerId(1),
                pid: 7,
                size: Bytes::mib(300),
            },
            JournalOp::Free {
                container: ContainerId(1),
                pid: 7,
                size: Bytes::mib(200),
            },
            JournalOp::Place {
                container: ContainerId(2),
                node: "n1".into(),
                limit: Bytes::mib(100),
                hint: Bytes::mib(166),
            },
            JournalOp::ProcessExit {
                container: ContainerId(2),
                pid: 9,
            },
            JournalOp::Migrate {
                container: ContainerId(2),
                node: "n0".into(),
                limit: Bytes::mib(100),
                hint: Bytes::mib(166),
                used: Bytes::mib(40),
            },
            JournalOp::Close {
                container: ContainerId(1),
            },
            JournalOp::Recover {
                container: ContainerId(3),
                node: "n1".into(),
            },
        ]
    }

    #[test]
    fn every_op_roundtrips_through_the_line_format() {
        for op in ops() {
            let line = encode_line(42, &op.payload());
            let (seq, payload) = decode_line(line.trim_end()).expect("decodes");
            assert_eq!(seq, 42);
            assert_eq!(JournalOp::parse(payload), Some(op));
        }
    }

    #[test]
    fn node_names_with_spaces_and_percents_roundtrip() {
        let op = JournalOp::Place {
            container: ContainerId(5),
            node: "rack 1/node%2 ü".into(),
            limit: Bytes::mib(1),
            hint: Bytes::mib(2),
        };
        let payload = op.payload();
        assert_eq!(JournalOp::parse(&payload), Some(op));
    }

    #[test]
    fn append_flush_reopen_recovers_the_map() {
        let dir = temp_dir("reopen");
        let mut expected = BTreeMap::new();
        {
            let (mut j, rec) = Journal::open(JournalConfig::new(&dir)).unwrap();
            assert!(rec.homes.is_empty());
            for op in ops() {
                j.append(&op).unwrap();
                apply(&mut expected, &op);
            }
            j.flush(SimTime::ZERO).unwrap();
        }
        let (_j, rec) = Journal::open(JournalConfig::new(&dir)).unwrap();
        assert_eq!(rec.homes, expected);
        assert_eq!(rec.replayed, ops().len() as u64);
        assert!(!rec.torn_tail);
        assert!(!rec.corrupt_snapshot);
    }

    #[test]
    fn snapshot_compacts_and_reopen_skips_covered_records() {
        let dir = temp_dir("snapshot");
        let mut expected = BTreeMap::new();
        {
            let (mut j, _) = Journal::open(JournalConfig::new(&dir)).unwrap();
            for op in ops() {
                j.append(&op).unwrap();
                apply(&mut expected, &op);
            }
            j.snapshot(&expected).unwrap();
            // Post-snapshot tail.
            let tail = JournalOp::AllocDone {
                container: ContainerId(2),
                pid: 3,
                size: Bytes::mib(5),
            };
            j.append(&tail).unwrap();
            apply(&mut expected, &tail);
            j.flush(SimTime::ZERO).unwrap();
        }
        let (_j, rec) = Journal::open(JournalConfig::new(&dir)).unwrap();
        assert_eq!(rec.homes, expected);
        assert_eq!(rec.snapshot_homes, 2);
        assert_eq!(rec.replayed, 1, "only the post-snapshot tail replays");
    }

    #[test]
    fn compaction_crash_window_leftover_records_are_skipped() {
        // Simulate a crash between snapshot rename and log truncation:
        // write the log, snapshot, then put the pre-snapshot log back.
        let dir = temp_dir("crashwindow");
        let mut state = BTreeMap::new();
        {
            let (mut j, _) = Journal::open(JournalConfig::new(&dir)).unwrap();
            for op in ops() {
                j.append(&op).unwrap();
                apply(&mut state, &op);
            }
            j.flush(SimTime::ZERO).unwrap();
            let stale_log = std::fs::read(dir.join(WAL_FILE)).unwrap();
            j.snapshot(&state).unwrap();
            drop(j);
            std::fs::write(dir.join(WAL_FILE), stale_log).unwrap();
        }
        let (_j, rec) = Journal::open(JournalConfig::new(&dir)).unwrap();
        assert_eq!(rec.homes, state, "double-apply would skew the ledger");
        assert_eq!(rec.replayed, 0);
        assert_eq!(rec.skipped, ops().len() as u64);
    }

    #[test]
    fn torn_tail_stops_replay_without_panicking() {
        let dir = temp_dir("torn");
        let mut states = vec![BTreeMap::new()];
        {
            let (mut j, _) = Journal::open(JournalConfig::new(&dir)).unwrap();
            for op in ops() {
                j.append(&op).unwrap();
                let mut next = states.last().unwrap().clone();
                apply(&mut next, &op);
                states.push(next);
            }
            j.flush(SimTime::ZERO).unwrap();
        }
        let full = std::fs::read(dir.join(WAL_FILE)).unwrap();
        // Truncate at every byte: recovery must always be a prefix
        // state and must flag the torn tail when a record is cut.
        for cut in 0..=full.len() {
            std::fs::write(dir.join(WAL_FILE), &full[..cut]).unwrap();
            let (_j, rec) = Journal::open(JournalConfig::new(&dir)).unwrap();
            assert!(
                states.contains(&rec.homes),
                "cut at byte {cut} recovered a state the live map never held"
            );
        }
    }

    #[test]
    fn corrupt_snapshot_is_discarded_not_panicked() {
        let dir = temp_dir("badsnap");
        let mut state = BTreeMap::new();
        {
            let (mut j, _) = Journal::open(JournalConfig::new(&dir)).unwrap();
            for op in ops() {
                j.append(&op).unwrap();
                apply(&mut state, &op);
            }
            j.snapshot(&state).unwrap();
        }
        // Flip one byte in the middle of the snapshot.
        let mut snap = std::fs::read(dir.join(SNAPSHOT_FILE)).unwrap();
        let mid = snap.len() / 2;
        snap[mid] ^= 0x40;
        std::fs::write(dir.join(SNAPSHOT_FILE), snap).unwrap();
        let (_j, rec) = Journal::open(JournalConfig::new(&dir)).unwrap();
        assert!(rec.corrupt_snapshot);
        // The log was truncated by the snapshot, so nothing replays:
        // recovery is empty rather than wrong.
        assert!(rec.homes.is_empty());
    }

    #[test]
    fn hostile_ledger_deltas_clamp_instead_of_wrapping() {
        let mut homes = BTreeMap::new();
        apply(
            &mut homes,
            &JournalOp::Place {
                container: ContainerId(1),
                node: "n0".into(),
                limit: Bytes::mib(10),
                hint: Bytes::mib(76),
            },
        );
        // Free more than was ever confirmed: clamps to zero.
        apply(
            &mut homes,
            &JournalOp::AllocDone {
                container: ContainerId(1),
                pid: 1,
                size: Bytes::mib(5),
            },
        );
        apply(
            &mut homes,
            &JournalOp::Free {
                container: ContainerId(1),
                pid: 1,
                size: Bytes::mib(500),
            },
        );
        assert_eq!(homes[&ContainerId(1)].used_by_pid[&1], Bytes::ZERO);
        // Saturating addition near u64::MAX: no wrap, no panic.
        apply(
            &mut homes,
            &JournalOp::AllocDone {
                container: ContainerId(1),
                pid: 2,
                size: Bytes::new(u64::MAX - 1),
            },
        );
        apply(
            &mut homes,
            &JournalOp::AllocDone {
                container: ContainerId(1),
                pid: 2,
                size: Bytes::new(u64::MAX - 1),
            },
        );
        assert_eq!(homes[&ContainerId(1)].used_by_pid[&2], Bytes::new(u64::MAX));
    }
}
