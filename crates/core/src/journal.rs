//! Durable router state: the write-ahead home-map journal.
//!
//! The [`crate::router::ClusterRouter`]'s home map — which node owns
//! each container, the limit it registered with, the placement hint the
//! router committed, and the wire-observed per-pid `used` ledger — is
//! the checkpoint a migration replays onto an adopting node. Before
//! this module that map lived only in memory: a restarted router
//! re-learned homes lazily with **zero** checkpoints, so a post-restart
//! migration off a dead node replayed `limit = 0`, `used = 0` onto the
//! adopter and committed-memory placement ran blind.
//!
//! The journal fixes that with the classic WAL shape, split into two
//! halves so the atomicity boundary is explicit:
//!
//! * **[`WalBuffer`] — the memory half.** The sequencer plus the
//!   append buffer, owned by the router *inside the same mutex as the
//!   home map itself*. A mutation and its journal record are therefore
//!   one critical section: the record's sequence number is assigned at
//!   the instant the map changes, so journal order always equals apply
//!   order, and a compaction can never stamp a `covered` sequence that
//!   includes a mutation its map capture missed. Appends are pure
//!   memory — no syscall ever happens under the home-map lock.
//! * **[`Journal`] — the file half.** Owns `wal.log` and
//!   `snapshot.v1`; every method does file I/O and is guarded by its
//!   own mutex in the router, taken *before* (never while holding) the
//!   home-map lock on the drain/compaction paths. Batches are drained
//!   from the buffer and written under one journal-lock critical
//!   section, so the file's record order is the buffer's append order.
//!
//! On-disk shapes:
//!
//! * **Append-only log** (`wal.log`) — every home-map mutation is one
//!   line: `place`, `recover`, `close`, `migrate` (commit of a
//!   hand-off), and the ledger deltas `done` / `free` / `exit`. Each
//!   record carries a monotonic sequence number and an FNV-1a checksum,
//!   so replay can tell a torn tail from a valid record.
//! * **Compacted snapshots** (`snapshot.v1`) — the whole map, written
//!   to a temp file, fsynced, and atomically renamed. The snapshot
//!   records the last sequence number it covers; journal records at or
//!   below it are skipped on replay, which makes the
//!   snapshot-then-truncate crash window harmless.
//! * **Torn-tail tolerance** — replay stops at the first record that
//!   fails to parse or checksum (a crash mid-append tears at most the
//!   final record) and reports it; it never panics on hostile bytes.
//!
//! Durability contract: a record *drained* to the log file survives a
//! router crash (`kill -9`); records still in the [`WalBuffer`] are
//! lost, which recovery reads as "that tail of operations never
//! happened" — exactly the state an observer of the drained prefix
//! would reconstruct. Drains happen on the sim-clock flush cadence as
//! requests arrive, and a background wall-clock ticker in the router
//! drains a quiescent buffer too, so a record's exposure is bounded by
//! roughly one tick even when traffic stops. The replay-equivalence
//! property (`tests/journal_recovery.rs`) pins the prefix semantics: a
//! journal truncated at *any* byte replays to the home map the live
//! router held after some prefix of its operations.

use convgpu_sim_core::ids::ContainerId;
use convgpu_sim_core::time::{SimDuration, SimTime};
use convgpu_sim_core::units::Bytes;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// File name of the append-only log inside the journal directory.
pub const WAL_FILE: &str = "wal.log";
/// File name of the compacted snapshot inside the journal directory.
pub const SNAPSHOT_FILE: &str = "snapshot.v1";

/// Journal knobs. Flush/compaction pacing is sim time, so a
/// virtual-clock test drives the schedule deterministically; the idle
/// ticker is wall time because its whole job is to put a real-time
/// bound on buffered records when no request (and hence no sim-clock
/// observation) arrives.
#[derive(Clone, Debug)]
pub struct JournalConfig {
    /// Directory holding `wal.log` and `snapshot.v1` (created if
    /// missing).
    pub dir: PathBuf,
    /// Drain the append buffer to the OS when this much sim time has
    /// passed since the last drain. `ZERO` drains on every append
    /// (maximum durability, one `write(2)` per mutation).
    pub flush_interval: SimDuration,
    /// Compact (snapshot + truncate the log) after this many appended
    /// records. `0` never compacts on count (only at open).
    pub snapshot_every: u64,
    /// Wall-clock cadence of the router's background safety-net
    /// flusher: a quiescent router drains its buffered records at
    /// least this often, so `kill -9` during an idle period loses at
    /// most about one tick of records.
    pub idle_flush: std::time::Duration,
}

impl JournalConfig {
    /// Defaults tuned for the request hot path: 25 ms flush cadence,
    /// compaction every 4096 records, 100 ms idle safety-net tick.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        JournalConfig {
            dir: dir.into(),
            flush_interval: SimDuration::from_millis(25),
            snapshot_every: 4096,
            idle_flush: std::time::Duration::from_millis(100),
        }
    }
}

/// One home-map mutation, as recorded in the log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalOp {
    /// A fresh placement: `register` committed on `node`.
    Place {
        container: ContainerId,
        node: String,
        limit: Bytes,
        hint: Bytes,
    },
    /// A home re-learned from a live node after a restart (zero
    /// checkpoint — the limit is node-side state the router never saw).
    Recover {
        container: ContainerId,
        node: String,
    },
    /// The home entry was dropped (container closed, or checkpointed
    /// out at the start of a migration).
    Close { container: ContainerId },
    /// A migration hand-off committed onto `node`, carrying the
    /// checkpointed budget. The carried `used` is re-seeded under the
    /// synthetic pid 0, mirroring the live router's books.
    Migrate {
        container: ContainerId,
        node: String,
        limit: Bytes,
        hint: Bytes,
        used: Bytes,
    },
    /// Wire-observed `alloc_done`: `size` confirmed live for `pid`.
    AllocDone {
        container: ContainerId,
        pid: u64,
        size: Bytes,
    },
    /// Wire-observed `free`: the node reported `size` freed for `pid`.
    Free {
        container: ContainerId,
        pid: u64,
        size: Bytes,
    },
    /// Wire-observed `process_exit`: `pid`'s ledger entry is dropped.
    ProcessExit { container: ContainerId, pid: u64 },
}

/// A recovered (or snapshotted) home entry, node identified by *name*
/// so recovery survives a reordered `--node` list.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveredHome {
    /// Name of the node the container was homed on.
    pub node: String,
    /// The limit the container registered with.
    pub limit: Bytes,
    /// Memory the router committed against the node at placement.
    pub hint: Bytes,
    /// The wire-observed live-bytes ledger, per pid.
    pub used_by_pid: BTreeMap<u64, Bytes>,
}

/// What `Journal::open` reconstructed, plus how it got there.
#[derive(Debug, Default)]
pub struct Recovery {
    /// The recovered home map.
    pub homes: BTreeMap<ContainerId, RecoveredHome>,
    /// Homes loaded from the snapshot (before journal replay).
    pub snapshot_homes: u64,
    /// Journal records applied on top of the snapshot.
    pub replayed: u64,
    /// Journal records skipped because the snapshot already covered
    /// their sequence number.
    pub skipped: u64,
    /// Replay stopped early at a torn or corrupt record.
    pub torn_tail: bool,
    /// The snapshot itself failed validation and was discarded.
    pub corrupt_snapshot: bool,
}

/// FNV-1a 64-bit over `bytes` — std-only, stable, good enough to tell
/// a torn record from a valid one (this is corruption *detection* for
/// crash recovery, not an integrity MAC).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Escape a node name for the space-separated record grammar: bytes
/// outside visible ASCII, spaces, and `%` itself become `%XX`.
fn escape(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for b in name.bytes() {
        if b.is_ascii_graphic() && b != b'%' {
            out.push(b as char);
        } else {
            out.push_str(&format!("%{b:02X}"));
        }
    }
    out
}

/// Inverse of [`escape`]; `None` on malformed escapes.
fn unescape(field: &str) -> Option<String> {
    let bytes = field.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3)?;
            let hex = std::str::from_utf8(hex).ok()?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

impl JournalOp {
    /// The container the op concerns. The router uses this to evict a
    /// preserved orphan checkpoint when its container id is reused by
    /// the live cluster.
    pub fn container(&self) -> ContainerId {
        match self {
            JournalOp::Place { container, .. }
            | JournalOp::Recover { container, .. }
            | JournalOp::Close { container }
            | JournalOp::Migrate { container, .. }
            | JournalOp::AllocDone { container, .. }
            | JournalOp::Free { container, .. }
            | JournalOp::ProcessExit { container, .. } => *container,
        }
    }

    /// The record payload (everything after the seq + checksum header).
    fn payload(&self) -> String {
        match self {
            JournalOp::Place {
                container,
                node,
                limit,
                hint,
            } => format!(
                "place {} {} {} {}",
                container.as_u64(),
                escape(node),
                limit.as_u64(),
                hint.as_u64()
            ),
            JournalOp::Recover { container, node } => {
                format!("recover {} {}", container.as_u64(), escape(node))
            }
            JournalOp::Close { container } => format!("close {}", container.as_u64()),
            JournalOp::Migrate {
                container,
                node,
                limit,
                hint,
                used,
            } => format!(
                "migrate {} {} {} {} {}",
                container.as_u64(),
                escape(node),
                limit.as_u64(),
                hint.as_u64(),
                used.as_u64()
            ),
            JournalOp::AllocDone {
                container,
                pid,
                size,
            } => format!("done {} {pid} {}", container.as_u64(), size.as_u64()),
            JournalOp::Free {
                container,
                pid,
                size,
            } => format!("free {} {pid} {}", container.as_u64(), size.as_u64()),
            JournalOp::ProcessExit { container, pid } => {
                format!("exit {} {pid}", container.as_u64())
            }
        }
    }

    /// Parse a payload produced by [`JournalOp::payload`].
    fn parse(payload: &str) -> Option<JournalOp> {
        let mut parts = payload.split(' ');
        let kind = parts.next()?;
        let num =
            |parts: &mut std::str::Split<'_, char>| -> Option<u64> { parts.next()?.parse().ok() };
        let op = match kind {
            "place" => JournalOp::Place {
                container: ContainerId(num(&mut parts)?),
                node: unescape(parts.next()?)?,
                limit: Bytes::new(num(&mut parts)?),
                hint: Bytes::new(num(&mut parts)?),
            },
            "recover" => JournalOp::Recover {
                container: ContainerId(num(&mut parts)?),
                node: unescape(parts.next()?)?,
            },
            "close" => JournalOp::Close {
                container: ContainerId(num(&mut parts)?),
            },
            "migrate" => JournalOp::Migrate {
                container: ContainerId(num(&mut parts)?),
                node: unescape(parts.next()?)?,
                limit: Bytes::new(num(&mut parts)?),
                hint: Bytes::new(num(&mut parts)?),
                used: Bytes::new(num(&mut parts)?),
            },
            "done" => JournalOp::AllocDone {
                container: ContainerId(num(&mut parts)?),
                pid: num(&mut parts)?,
                size: Bytes::new(num(&mut parts)?),
            },
            "free" => JournalOp::Free {
                container: ContainerId(num(&mut parts)?),
                pid: num(&mut parts)?,
                size: Bytes::new(num(&mut parts)?),
            },
            "exit" => JournalOp::ProcessExit {
                container: ContainerId(num(&mut parts)?),
                pid: num(&mut parts)?,
            },
            _ => return None,
        };
        if parts.next().is_some() {
            return None; // trailing garbage is not a valid record
        }
        Some(op)
    }
}

/// Apply one op to a home map, exactly mirroring the live router's
/// mutations (the replay-equivalence property tests compare against
/// this). Ledger arithmetic is hostile-input safe: additions saturate
/// and subtractions clamp at zero, so an adversarial journal can skew
/// the books but never wrap or panic them.
pub fn apply(homes: &mut BTreeMap<ContainerId, RecoveredHome>, op: &JournalOp) {
    match op {
        JournalOp::Place {
            container,
            node,
            limit,
            hint,
        } => {
            homes.insert(
                *container,
                RecoveredHome {
                    node: node.clone(),
                    limit: *limit,
                    hint: *hint,
                    used_by_pid: BTreeMap::new(),
                },
            );
        }
        JournalOp::Recover { container, node } => {
            homes.insert(
                *container,
                RecoveredHome {
                    node: node.clone(),
                    ..RecoveredHome::default()
                },
            );
        }
        JournalOp::Close { container } => {
            homes.remove(container);
        }
        JournalOp::Migrate {
            container,
            node,
            limit,
            hint,
            used,
        } => {
            let mut used_by_pid = BTreeMap::new();
            if *used > Bytes::ZERO {
                used_by_pid.insert(0, *used);
            }
            homes.insert(
                *container,
                RecoveredHome {
                    node: node.clone(),
                    limit: *limit,
                    hint: *hint,
                    used_by_pid,
                },
            );
        }
        JournalOp::AllocDone {
            container,
            pid,
            size,
        } => {
            if let Some(home) = homes.get_mut(container) {
                let used = home.used_by_pid.entry(*pid).or_insert(Bytes::ZERO);
                *used = Bytes::new(used.as_u64().saturating_add(size.as_u64()));
            }
        }
        JournalOp::Free {
            container,
            pid,
            size,
        } => {
            if let Some(home) = homes.get_mut(container) {
                if let Some(used) = home.used_by_pid.get_mut(pid) {
                    *used = used.saturating_sub(*size);
                }
            }
        }
        JournalOp::ProcessExit { container, pid } => {
            if let Some(home) = homes.get_mut(container) {
                home.used_by_pid.remove(pid);
            }
        }
    }
}

/// Format one log line: `SEQ CRC PAYLOAD\n`, CRC over `SEQ PAYLOAD`.
fn encode_line(seq: u64, payload: &str) -> String {
    let body = format!("{seq:016x} {payload}");
    let crc = fnv1a64(body.as_bytes());
    format!("{seq:016x} {crc:016x} {payload}\n")
}

/// Decode one log line; `None` when torn/corrupt.
fn decode_line(line: &str) -> Option<(u64, &str)> {
    let (seq_hex, rest) = line.split_once(' ')?;
    let (crc_hex, payload) = rest.split_once(' ')?;
    let seq = u64::from_str_radix(seq_hex, 16).ok()?;
    let crc = u64::from_str_radix(crc_hex, 16).ok()?;
    let body = format!("{seq:016x} {payload}");
    if fnv1a64(body.as_bytes()) != crc {
        return None;
    }
    Some((seq, payload))
}

/// The memory half of the journal: the sequence counter plus the
/// not-yet-drained record buffer. The router owns this **inside the
/// same mutex as the home map**, which is the whole point — a map
/// mutation and its record are sequenced in one critical section, so
/// no interleaving can journal mutations in an order the live map
/// never went through, and no compaction can cover a sequence number
/// whose mutation it did not capture. Every method is pure memory.
pub struct WalBuffer {
    /// Sequence number of the next record to append.
    next_seq: u64,
    /// Encoded records (newline-terminated lines) awaiting a drain.
    buf: String,
    /// Records currently in `buf`.
    buffered: u64,
    /// Records appended since the last snapshot (compaction trigger).
    appended_since_snapshot: u64,
    /// Sim-clock instant of the last drain (or snapshot).
    last_flush: SimTime,
    /// Copied from [`JournalConfig::flush_interval`].
    flush_interval: SimDuration,
    /// Copied from [`JournalConfig::snapshot_every`].
    snapshot_every: u64,
}

impl WalBuffer {
    /// Append one record — assigns the next sequence number. Pure
    /// memory; call while holding the lock that guards the map the op
    /// was just applied to.
    pub fn append(&mut self, op: &JournalOp) {
        self.buf
            .push_str(&encode_line(self.next_seq, &op.payload()));
        self.next_seq = self.next_seq.saturating_add(1);
        self.buffered += 1;
        self.appended_since_snapshot += 1;
    }

    /// Whether buffered records are due for a drain at sim time `now`
    /// (a zero interval drains on every append).
    pub fn flush_due(&self, now: SimTime) -> bool {
        self.buffered > 0
            && (self.flush_interval.is_zero()
                || now.saturating_since(self.last_flush) >= self.flush_interval)
    }

    /// Whether any records are buffered at all (the idle ticker's
    /// cheaper question — it drains regardless of the sim cadence).
    pub fn has_buffered(&self) -> bool {
        self.buffered > 0
    }

    /// Whether enough records accumulated since the last snapshot that
    /// the owner should compact.
    pub fn snapshot_due(&self) -> bool {
        self.snapshot_every > 0 && self.appended_since_snapshot >= self.snapshot_every
    }

    /// Take the buffered records for writing and stamp the drain time.
    /// The caller must hold the journal (file) lock across both this
    /// call and the write, so batches land in the file in extraction —
    /// i.e. sequence — order.
    pub fn take_batch(&mut self, now: SimTime) -> String {
        self.buffered = 0;
        self.last_flush = now;
        std::mem::take(&mut self.buf)
    }

    /// Start a compaction: returns the sequence number the snapshot
    /// covers and discards the buffer — every buffered record's
    /// sequence is `<= covered`, and its effect is in the map state
    /// captured in this same critical section, so the records need
    /// never reach the file. Resets the compaction trigger.
    pub fn begin_snapshot(&mut self, now: SimTime) -> u64 {
        let covered = self.next_seq.saturating_sub(1);
        self.buf.clear();
        self.buffered = 0;
        self.appended_since_snapshot = 0;
        self.last_flush = now;
        covered
    }
}

/// The file half of the journal: owns `wal.log` and `snapshot.v1`.
/// Every method performs file I/O; the router guards the instance with
/// its own mutex and never holds the home-map lock while calling in
/// (it extracts batches from the [`WalBuffer`] under the map lock,
/// releases it, and writes under the journal lock alone).
pub struct Journal {
    cfg: JournalConfig,
    wal: File,
}

impl Journal {
    /// Open (or create) the journal under `cfg.dir` and replay the
    /// snapshot plus log into a [`Recovery`]; the returned
    /// [`WalBuffer`] continues the recovered sequence. Never panics on
    /// a torn or corrupt tail — replay stops at the first bad record
    /// and says so.
    pub fn open(cfg: JournalConfig) -> std::io::Result<(Journal, WalBuffer, Recovery)> {
        std::fs::create_dir_all(&cfg.dir)?;
        let mut recovery = Recovery::default();
        let snapshot_seq = load_snapshot(&cfg.dir.join(SNAPSHOT_FILE), &mut recovery);
        let wal_path = cfg.dir.join(WAL_FILE);
        let mut max_seq = snapshot_seq;
        if wal_path.exists() {
            let data = std::fs::read(&wal_path)?;
            let mut pos = 0usize;
            while pos < data.len() {
                // A record is only trusted complete with its trailing
                // newline: a final line the crash cut short — even one
                // that happens to parse — is part of the torn tail.
                let parsed = data[pos..].iter().position(|&b| b == b'\n').and_then(|nl| {
                    let raw = std::str::from_utf8(&data[pos..pos + nl]).ok()?;
                    let (seq, payload) = decode_line(raw)?;
                    Some((nl, seq, JournalOp::parse(payload)?))
                });
                let Some((nl, seq, op)) = parsed else {
                    recovery.torn_tail = true;
                    break;
                };
                pos += nl + 1;
                if seq <= snapshot_seq {
                    // Covered by the snapshot (the compaction crash
                    // window leaves such records behind harmlessly).
                    recovery.skipped += 1;
                    continue;
                }
                apply(&mut recovery.homes, &op);
                recovery.replayed += 1;
                max_seq = max_seq.max(seq);
            }
            if pos != data.len() {
                // Drop the torn bytes so the next append starts a clean
                // record instead of concatenating onto half a line.
                OpenOptions::new()
                    .write(true)
                    .open(&wal_path)?
                    .set_len(pos as u64)?;
            }
        }
        let wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&wal_path)?;
        let buffer = WalBuffer {
            next_seq: max_seq.saturating_add(1),
            buf: String::new(),
            buffered: 0,
            appended_since_snapshot: 0,
            last_flush: SimTime::ZERO,
            flush_interval: cfg.flush_interval,
            snapshot_every: cfg.snapshot_every,
        };
        Ok((Journal { cfg, wal }, buffer, recovery))
    }

    /// The config this journal was opened with (the router reads the
    /// idle-flush cadence back out of it).
    pub fn config(&self) -> &JournalConfig {
        &self.cfg
    }

    /// Write one drained batch to the log. One `write(2)` per batch;
    /// a written batch survives a router crash (`kill -9`). Host-crash
    /// durability (`fsync`) happens only at snapshot time — see
    /// docs/CLUSTER.md "Durability & restart".
    pub fn write_batch(&mut self, batch: &str) -> std::io::Result<()> {
        self.wal.write_all(batch.as_bytes())
    }

    /// Compact: write the full map to `snapshot.v1` (temp file, fsync,
    /// atomic rename) and truncate the log. `covered` must be the
    /// sequence stamp captured by [`WalBuffer::begin_snapshot`] in the
    /// same critical section that cloned `homes`. A crash between
    /// rename and truncate is safe — the snapshot's sequence number
    /// makes the leftover log records no-ops on replay.
    pub fn snapshot(
        &mut self,
        covered: u64,
        homes: &BTreeMap<ContainerId, RecoveredHome>,
    ) -> std::io::Result<()> {
        let tmp = self.cfg.dir.join("snapshot.tmp");
        {
            let mut out = BufWriter::new(File::create(&tmp)?);
            let header = format!("snapshot-v1 {}", homes.len());
            out.write_all(encode_line(covered, &header).as_bytes())?;
            for (container, home) in homes {
                let ledger = if home.used_by_pid.is_empty() {
                    "-".to_string()
                } else {
                    home.used_by_pid
                        .iter()
                        .map(|(pid, b)| format!("{pid}:{}", b.as_u64()))
                        .collect::<Vec<_>>()
                        .join(",")
                };
                let payload = format!(
                    "home {} {} {} {} {ledger}",
                    container.as_u64(),
                    escape(&home.node),
                    home.limit.as_u64(),
                    home.hint.as_u64()
                );
                out.write_all(encode_line(covered, &payload).as_bytes())?;
            }
            out.flush()?;
            out.get_ref().sync_all()?;
        }
        std::fs::rename(&tmp, self.cfg.dir.join(SNAPSHOT_FILE))?;
        // Truncate the log: future batches start a fresh file. Records
        // with sequence > covered cannot be lost here — they are still
        // in the buffer, and their drain is blocked on the journal
        // lock the caller holds across this whole compaction.
        let wal_path = self.cfg.dir.join(WAL_FILE);
        self.wal = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&wal_path)?;
        Ok(())
    }
}

/// Load `snapshot.v1` into `recovery.homes`; returns the sequence
/// number it covers (0 when absent or discarded). Any malformed line
/// discards the whole snapshot — half a map would replay to a state
/// the live router never held.
fn load_snapshot(path: &Path, recovery: &mut Recovery) -> u64 {
    let Ok(file) = File::open(path) else {
        return 0;
    };
    let reader = BufReader::new(file);
    let mut lines = reader.split(b'\n');
    let parse_snapshot = |lines: &mut dyn Iterator<Item = std::io::Result<Vec<u8>>>| {
        let header = lines.next()?.ok()?;
        let header = String::from_utf8(header).ok()?;
        let (seq, payload) = decode_line(&header)?;
        let mut parts = payload.split(' ');
        if parts.next()? != "snapshot-v1" {
            return None;
        }
        let count: u64 = parts.next()?.parse().ok()?;
        let mut homes = BTreeMap::new();
        for _ in 0..count {
            let line = String::from_utf8(lines.next()?.ok()?).ok()?;
            let (line_seq, payload) = decode_line(&line)?;
            if line_seq != seq {
                return None;
            }
            let mut parts = payload.split(' ');
            if parts.next()? != "home" {
                return None;
            }
            let container = ContainerId(parts.next()?.parse().ok()?);
            let node = unescape(parts.next()?)?;
            let limit = Bytes::new(parts.next()?.parse().ok()?);
            let hint = Bytes::new(parts.next()?.parse().ok()?);
            let ledger = parts.next()?;
            let mut used_by_pid = BTreeMap::new();
            if ledger != "-" {
                for entry in ledger.split(',') {
                    let (pid, bytes) = entry.split_once(':')?;
                    used_by_pid.insert(pid.parse().ok()?, Bytes::new(bytes.parse().ok()?));
                }
            }
            homes.insert(
                container,
                RecoveredHome {
                    node,
                    limit,
                    hint,
                    used_by_pid,
                },
            );
        }
        Some((seq, homes))
    };
    match parse_snapshot(&mut lines) {
        Some((seq, homes)) => {
            recovery.snapshot_homes = homes.len() as u64;
            recovery.homes = homes;
            seq
        }
        None => {
            recovery.corrupt_snapshot = true;
            recovery.homes.clear();
            recovery.snapshot_homes = 0;
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("convgpu-journal-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Append `op` and drain it straight to the file — the unit tests'
    /// stand-in for the router's append-then-drain flow.
    fn append_now(j: &mut Journal, w: &mut WalBuffer, op: &JournalOp) {
        w.append(op);
        j.write_batch(&w.take_batch(SimTime::ZERO)).unwrap();
    }

    fn ops() -> Vec<JournalOp> {
        vec![
            JournalOp::Place {
                container: ContainerId(1),
                node: "n0".into(),
                limit: Bytes::mib(400),
                hint: Bytes::mib(466),
            },
            JournalOp::AllocDone {
                container: ContainerId(1),
                pid: 7,
                size: Bytes::mib(300),
            },
            JournalOp::Free {
                container: ContainerId(1),
                pid: 7,
                size: Bytes::mib(200),
            },
            JournalOp::Place {
                container: ContainerId(2),
                node: "n1".into(),
                limit: Bytes::mib(100),
                hint: Bytes::mib(166),
            },
            JournalOp::ProcessExit {
                container: ContainerId(2),
                pid: 9,
            },
            JournalOp::Migrate {
                container: ContainerId(2),
                node: "n0".into(),
                limit: Bytes::mib(100),
                hint: Bytes::mib(166),
                used: Bytes::mib(40),
            },
            JournalOp::Close {
                container: ContainerId(1),
            },
            JournalOp::Recover {
                container: ContainerId(3),
                node: "n1".into(),
            },
        ]
    }

    #[test]
    fn every_op_roundtrips_through_the_line_format() {
        for op in ops() {
            let line = encode_line(42, &op.payload());
            let (seq, payload) = decode_line(line.trim_end()).expect("decodes");
            assert_eq!(seq, 42);
            assert_eq!(JournalOp::parse(payload), Some(op));
        }
    }

    #[test]
    fn node_names_with_spaces_and_percents_roundtrip() {
        let op = JournalOp::Place {
            container: ContainerId(5),
            node: "rack 1/node%2 ü".into(),
            limit: Bytes::mib(1),
            hint: Bytes::mib(2),
        };
        let payload = op.payload();
        assert_eq!(JournalOp::parse(&payload), Some(op));
    }

    #[test]
    fn append_drain_reopen_recovers_the_map() {
        let dir = temp_dir("reopen");
        let mut expected = BTreeMap::new();
        {
            let (mut j, mut w, rec) = Journal::open(JournalConfig::new(&dir)).unwrap();
            assert!(rec.homes.is_empty());
            for op in ops() {
                append_now(&mut j, &mut w, &op);
                apply(&mut expected, &op);
            }
        }
        let (_j, _w, rec) = Journal::open(JournalConfig::new(&dir)).unwrap();
        assert_eq!(rec.homes, expected);
        assert_eq!(rec.replayed, ops().len() as u64);
        assert!(!rec.torn_tail);
        assert!(!rec.corrupt_snapshot);
    }

    #[test]
    fn buffered_records_drain_in_append_order_across_batches() {
        let dir = temp_dir("batches");
        let mut expected = BTreeMap::new();
        {
            let (mut j, mut w, _) = Journal::open(JournalConfig::new(&dir)).unwrap();
            let all = ops();
            // Two batches drained separately: file order must be the
            // append order, with contiguous sequence numbers.
            for op in &all[..3] {
                w.append(op);
                apply(&mut expected, op);
            }
            j.write_batch(&w.take_batch(SimTime::ZERO)).unwrap();
            for op in &all[3..] {
                w.append(op);
                apply(&mut expected, op);
            }
            j.write_batch(&w.take_batch(SimTime::ZERO)).unwrap();
        }
        let data = std::fs::read_to_string(dir.join(WAL_FILE)).unwrap();
        let seqs: Vec<u64> = data
            .lines()
            .map(|l| decode_line(l).expect("valid record").0)
            .collect();
        assert_eq!(seqs, (1..=ops().len() as u64).collect::<Vec<_>>());
        let (_j, _w, rec) = Journal::open(JournalConfig::new(&dir)).unwrap();
        assert_eq!(rec.homes, expected);
    }

    #[test]
    fn flush_due_follows_the_sim_cadence() {
        let dir = temp_dir("cadence");
        let cfg = JournalConfig {
            flush_interval: SimDuration::from_millis(25),
            ..JournalConfig::new(&dir)
        };
        let (_j, mut w, _) = Journal::open(cfg).unwrap();
        assert!(!w.flush_due(SimTime::ZERO), "empty buffer is never due");
        w.append(&ops()[0]);
        assert!(!w.flush_due(SimTime::ZERO + SimDuration::from_millis(10)));
        assert!(w.flush_due(SimTime::ZERO + SimDuration::from_millis(25)));
        assert!(w.has_buffered());
        let batch = w.take_batch(SimTime::ZERO + SimDuration::from_millis(25));
        assert!(!batch.is_empty());
        assert!(!w.has_buffered());
    }

    #[test]
    fn snapshot_compacts_and_reopen_skips_covered_records() {
        let dir = temp_dir("snapshot");
        let mut expected = BTreeMap::new();
        {
            let (mut j, mut w, _) = Journal::open(JournalConfig::new(&dir)).unwrap();
            for op in ops() {
                append_now(&mut j, &mut w, &op);
                apply(&mut expected, &op);
            }
            let covered = w.begin_snapshot(SimTime::ZERO);
            j.snapshot(covered, &expected).unwrap();
            // Post-snapshot tail.
            let tail = JournalOp::AllocDone {
                container: ContainerId(2),
                pid: 3,
                size: Bytes::mib(5),
            };
            append_now(&mut j, &mut w, &tail);
            apply(&mut expected, &tail);
        }
        let (_j, _w, rec) = Journal::open(JournalConfig::new(&dir)).unwrap();
        assert_eq!(rec.homes, expected);
        assert_eq!(rec.snapshot_homes, 2);
        assert_eq!(rec.replayed, 1, "only the post-snapshot tail replays");
    }

    #[test]
    fn begin_snapshot_discards_buffered_records_it_covers() {
        // Buffered (never-drained) records at snapshot time are part of
        // the captured map and must not reach the fresh WAL — replay
        // applying them on top of the snapshot would double-apply.
        let dir = temp_dir("discard");
        let mut state = BTreeMap::new();
        {
            let (mut j, mut w, _) = Journal::open(JournalConfig::new(&dir)).unwrap();
            for op in ops() {
                w.append(&op); // buffered only — never drained
                apply(&mut state, &op);
            }
            let covered = w.begin_snapshot(SimTime::ZERO);
            assert_eq!(covered, ops().len() as u64);
            assert!(!w.has_buffered(), "the covered tail is discarded");
            j.snapshot(covered, &state).unwrap();
            // The next record continues the sequence past `covered`.
            let tail = JournalOp::Close {
                container: ContainerId(2),
            };
            append_now(&mut j, &mut w, &tail);
            apply(&mut state, &tail);
        }
        let (_j, _w, rec) = Journal::open(JournalConfig::new(&dir)).unwrap();
        assert_eq!(rec.homes, state);
        assert_eq!(rec.skipped, 0, "nothing covered ever reached the WAL");
        assert_eq!(rec.replayed, 1);
    }

    #[test]
    fn compaction_crash_window_leftover_records_are_skipped() {
        // Simulate a crash between snapshot rename and log truncation:
        // write the log, snapshot, then put the pre-snapshot log back.
        let dir = temp_dir("crashwindow");
        let mut state = BTreeMap::new();
        {
            let (mut j, mut w, _) = Journal::open(JournalConfig::new(&dir)).unwrap();
            for op in ops() {
                append_now(&mut j, &mut w, &op);
                apply(&mut state, &op);
            }
            let stale_log = std::fs::read(dir.join(WAL_FILE)).unwrap();
            let covered = w.begin_snapshot(SimTime::ZERO);
            j.snapshot(covered, &state).unwrap();
            drop(j);
            std::fs::write(dir.join(WAL_FILE), stale_log).unwrap();
        }
        let (_j, _w, rec) = Journal::open(JournalConfig::new(&dir)).unwrap();
        assert_eq!(rec.homes, state, "double-apply would skew the ledger");
        assert_eq!(rec.replayed, 0);
        assert_eq!(rec.skipped, ops().len() as u64);
    }

    #[test]
    fn torn_tail_stops_replay_without_panicking() {
        let dir = temp_dir("torn");
        let mut states = vec![BTreeMap::new()];
        {
            let (mut j, mut w, _) = Journal::open(JournalConfig::new(&dir)).unwrap();
            for op in ops() {
                append_now(&mut j, &mut w, &op);
                let mut next = states.last().unwrap().clone();
                apply(&mut next, &op);
                states.push(next);
            }
        }
        let full = std::fs::read(dir.join(WAL_FILE)).unwrap();
        // Truncate at every byte: recovery must always be a prefix
        // state and must flag the torn tail when a record is cut.
        for cut in 0..=full.len() {
            std::fs::write(dir.join(WAL_FILE), &full[..cut]).unwrap();
            let (_j, _w, rec) = Journal::open(JournalConfig::new(&dir)).unwrap();
            assert!(
                states.contains(&rec.homes),
                "cut at byte {cut} recovered a state the live map never held"
            );
        }
    }

    #[test]
    fn corrupt_snapshot_is_discarded_not_panicked() {
        let dir = temp_dir("badsnap");
        let mut state = BTreeMap::new();
        {
            let (mut j, mut w, _) = Journal::open(JournalConfig::new(&dir)).unwrap();
            for op in ops() {
                append_now(&mut j, &mut w, &op);
                apply(&mut state, &op);
            }
            let covered = w.begin_snapshot(SimTime::ZERO);
            j.snapshot(covered, &state).unwrap();
        }
        // Flip one byte in the middle of the snapshot.
        let mut snap = std::fs::read(dir.join(SNAPSHOT_FILE)).unwrap();
        let mid = snap.len() / 2;
        snap[mid] ^= 0x40;
        std::fs::write(dir.join(SNAPSHOT_FILE), snap).unwrap();
        let (_j, _w, rec) = Journal::open(JournalConfig::new(&dir)).unwrap();
        assert!(rec.corrupt_snapshot);
        // The log was truncated by the snapshot, so nothing replays:
        // recovery is empty rather than wrong.
        assert!(rec.homes.is_empty());
    }

    #[test]
    fn hostile_ledger_deltas_clamp_instead_of_wrapping() {
        let mut homes = BTreeMap::new();
        apply(
            &mut homes,
            &JournalOp::Place {
                container: ContainerId(1),
                node: "n0".into(),
                limit: Bytes::mib(10),
                hint: Bytes::mib(76),
            },
        );
        // Free more than was ever confirmed: clamps to zero.
        apply(
            &mut homes,
            &JournalOp::AllocDone {
                container: ContainerId(1),
                pid: 1,
                size: Bytes::mib(5),
            },
        );
        apply(
            &mut homes,
            &JournalOp::Free {
                container: ContainerId(1),
                pid: 1,
                size: Bytes::mib(500),
            },
        );
        assert_eq!(homes[&ContainerId(1)].used_by_pid[&1], Bytes::ZERO);
        // Saturating addition near u64::MAX: no wrap, no panic.
        apply(
            &mut homes,
            &JournalOp::AllocDone {
                container: ContainerId(1),
                pid: 2,
                size: Bytes::new(u64::MAX - 1),
            },
        );
        apply(
            &mut homes,
            &JournalOp::AllocDone {
                container: ContainerId(1),
                pid: 2,
                size: Bytes::new(u64::MAX - 1),
            },
        );
        assert_eq!(homes[&ContainerId(1)].used_by_pid[&2], Bytes::new(u64::MAX));
    }
}
