//! The **ConVGPU middleware** — the glue the paper's Fig. 2 draws between
//! the user, the customized nvidia-docker, the docker engine, the
//! container, and the GPU memory scheduler.
//!
//! * [`service`] — the live scheduler service: the pure
//!   `convgpu-scheduler` state machine behind a mutex, with a waiter table
//!   that parks suspended allocation replies (in-process channels or
//!   socket [`convgpu_ipc::server::Reply`] handles) and fires them when the
//!   state machine emits resume actions.
//! * [`handler`] — the [`convgpu_ipc::server::RequestHandler`] that
//!   adapts socket messages onto the service (the Go daemon's connection
//!   handler in the original).
//! * [`nvidia_docker`] — the customized nvidia-docker (paper §III-B):
//!   `--nvidia-memory` parsing, label fallback, 1 GiB default, scheduler
//!   registration, volume/env injection (`LD_PRELOAD`), dummy plugin
//!   volume.
//! * [`plugin`] — the nvidia-docker-plugin analog: watches engine volume
//!   events and converts the dummy volume's unmount into the scheduler's
//!   *close* signal.
//! * [`middleware`] — [`middleware::ConVGpu`], the one-call orchestrator
//!   examples and benches use: device + engine + scheduler + sockets +
//!   per-container program threads.
//! * [`router`] — genuinely distributed cluster mode: per-node
//!   [`router::NodeServer`] socket harnesses fronted by the
//!   fault-tolerant [`router::ClusterRouter`] (Swarm placement,
//!   deadlines, bounded backoff, node health, failover).
//! * [`journal`] — the router's write-ahead home-map journal:
//!   append-only mutation log plus compacted snapshots, replayed on
//!   startup so a restarted router recovers full migration checkpoints
//!   (limit / hint / wire-observed `used`) instead of zeros.

#![forbid(unsafe_code)]

pub mod handler;
pub mod journal;
pub mod middleware;
pub mod nvidia_docker;
pub mod plugin;
pub mod router;
pub mod service;

pub use journal::{Journal, JournalConfig, JournalOp, RecoveredHome, Recovery};
pub use middleware::{ConVGpu, ConVGpuConfig, Session, TopologySpec, TransportMode};
pub use nvidia_docker::RunCommand;
pub use nvidia_docker::{resolve_memory_limit, NvidiaDocker, CONVGPU_VOLUME_DRIVER};
pub use plugin::NvidiaDockerPlugin;
pub use router::{ClusterRouter, NodeHealth, NodeServer, RouterConfig, RouterHandler};
pub use service::{InProcEndpoint, ObsHub, SchedulerService};
