//! [`ConVGpu`] — the assembled middleware.
//!
//! `ConVGpu::start` stands up the whole of the paper's Fig. 2 in one call:
//! the simulated GPU + raw CUDA runtime, the container engine, the GPU
//! memory scheduler service (with real UNIX sockets by default), the
//! customized nvidia-docker front end, and the plugin that converts
//! volume-unmount events into scheduler close signals.
//! `ConVGpu::run_container` then does what `nvidia-docker run image` did
//! on the paper's testbed: registers, creates, starts, and executes the
//! given [`GpuProgram`] inside the container on its own thread, with its
//! CUDA calls bound through the `LD_PRELOAD` resolution rules.

use crate::handler::ServiceHandler;
use crate::nvidia_docker::{NvidiaDocker, NvidiaDockerError, RunCommand};
use crate::plugin::NvidiaDockerPlugin;
use crate::service::{InProcEndpoint, SchedulerService};
use convgpu_container_rt::engine::{Engine, EngineConfig};
use convgpu_container_rt::image::Image;
use convgpu_gpu_sim::api::CudaApi;
use convgpu_gpu_sim::device::{DeviceConfig, GpuDevice};
use convgpu_gpu_sim::error::CudaResult;
use convgpu_gpu_sim::latency::LatencyModel;
use convgpu_gpu_sim::program::GpuProgram;
use convgpu_gpu_sim::runtime::RawCudaRuntime;
use convgpu_ipc::client::{ClientObs, SchedulerClient};
use convgpu_ipc::endpoint::SchedulerEndpoint;
use convgpu_ipc::server::{ServerObs, SocketServer};
use convgpu_scheduler::backend::{SchedulerBackend, TopologyBackend};
use convgpu_scheduler::cluster::{ClusterNode, ClusterScheduler, SwarmStrategy};
use convgpu_scheduler::core::{Scheduler, SchedulerConfig};
use convgpu_scheduler::metrics::{self, ContainerMetrics};
use convgpu_scheduler::multi_gpu::{MultiGpuScheduler, PlacementPolicy};
use convgpu_scheduler::policy::PolicyKind;
use convgpu_scheduler::state::{ContainerState, ResumeRule};
use convgpu_sim_core::clock::{ClockHandle, RealClock};
use convgpu_sim_core::ids::ContainerId;
use convgpu_sim_core::sync::Mutex;
use convgpu_sim_core::units::Bytes;
use convgpu_wrapper::module::{WrapperModule, WrapperObs};
use convgpu_wrapper::preload::{resolve_runtime, LinkSpec, ProcessEnv};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How wrapper modules reach the scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportMode {
    /// Real UNIX domain sockets with JSON framing — the paper's design
    /// and the default.
    UnixSocket,
    /// Direct in-process calls — the `transport` ablation and fast tests.
    InProc,
}

/// The GPU topology the scheduler service manages.
///
/// The wrapper/engine side of the middleware always executes against the
/// single simulated device; the *scheduler* side can model larger
/// deployments (the paper's §V future work), and the whole IPC stack —
/// sockets, codecs, suspension — serves them unchanged.
#[derive(Clone, Debug)]
pub enum TopologySpec {
    /// One GPU — the paper's deployment and the default. Capacity comes
    /// from [`ConVGpuConfig::device`].
    SingleGpu,
    /// One host, several GPUs behind a placement policy.
    MultiGpu {
        /// Per-device capacities (one scheduler per entry).
        capacities: Vec<Bytes>,
        /// Device placement policy.
        placement: PlacementPolicy,
    },
    /// Docker-Swarm-style cluster of named nodes.
    Cluster {
        /// `(node name, per-GPU capacities)` per node.
        nodes: Vec<(String, Vec<Bytes>)>,
        /// Swarm node-selection strategy.
        strategy: SwarmStrategy,
    },
}

/// Middleware configuration.
#[derive(Clone, Debug)]
pub struct ConVGpuConfig {
    /// Simulated GPU (default: the paper's Tesla K20m).
    pub device: DeviceConfig,
    /// Per-call device latency model (default: K20m calibration).
    pub latency: LatencyModel,
    /// Redistribution policy (default: Best-Fit, the paper's winner).
    pub policy: PolicyKind,
    /// Seed for the Random policy.
    pub policy_seed: u64,
    /// Resume discipline (default: the paper's full guarantee).
    pub resume_rule: ResumeRule,
    /// Charge the 66 MiB per-pid context overhead (default: true).
    pub charge_ctx_overhead: bool,
    /// Wall seconds per workload second (default 1.0; examples compress
    /// with 0.001 so a "45 s" container runs in 45 ms).
    pub time_scale: f64,
    /// Wrapper↔scheduler transport.
    pub transport: TransportMode,
    /// Directory for per-container volumes and sockets (default: a fresh
    /// directory under the system temp dir).
    pub base_dir: Option<PathBuf>,
    /// Container engine cost model.
    pub engine: EngineConfig,
    /// NVIDIA driver version string used in volume names.
    pub driver_version: String,
    /// Scheduler topology (default: the paper's single GPU).
    pub topology: TopologySpec,
}

impl Default for ConVGpuConfig {
    fn default() -> Self {
        ConVGpuConfig {
            device: DeviceConfig::default(),
            latency: LatencyModel::tesla_k20m(),
            policy: PolicyKind::BestFit,
            policy_seed: 0x5eed,
            resume_rule: ResumeRule::FullGuarantee,
            charge_ctx_overhead: true,
            time_scale: 1.0,
            transport: TransportMode::UnixSocket,
            base_dir: None,
            engine: EngineConfig::default(),
            driver_version: "375.51".into(),
            topology: TopologySpec::SingleGpu,
        }
    }
}

static INSTANCE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A running container session: join handle for the program thread.
pub struct Session {
    /// The container executing the program.
    pub container: ContainerId,
    handle: JoinHandle<CudaResult<()>>,
}

impl Session {
    /// Wait for the program to finish; returns its result. The container
    /// is stopped (and its memory released through the plugin) regardless
    /// of the outcome.
    pub fn wait(self) -> CudaResult<()> {
        self.handle
            .join()
            .unwrap_or(Err(convgpu_gpu_sim::error::CudaError::LaunchFailure))
    }

    /// True when the program thread has exited.
    pub fn is_finished(&self) -> bool {
        self.handle.is_finished()
    }
}

/// The assembled middleware.
pub struct ConVGpu {
    clock: ClockHandle,
    device: Arc<GpuDevice>,
    raw: Arc<RawCudaRuntime>,
    engine: Arc<Engine>,
    service: Arc<SchedulerService>,
    handler: Arc<ServiceHandler>,
    nvidia_docker: NvidiaDocker,
    plugin: Option<NvidiaDockerPlugin>,
    transport: TransportMode,
    /// Multi-device topologies answer `cudaGetDeviceProperties` from the
    /// container's home device.
    device_aware_props: bool,
    container_servers: Mutex<HashMap<ContainerId, SocketServer>>,
}

impl ConVGpu {
    /// Stand up the middleware.
    pub fn start(cfg: ConVGpuConfig) -> std::io::Result<ConVGpu> {
        let clock: ClockHandle = Arc::new(RealClock::scaled(cfg.time_scale));
        let device = Arc::new(GpuDevice::new(cfg.device.clone()));
        let raw = Arc::new(RawCudaRuntime::new(
            Arc::clone(&device),
            cfg.latency.clone(),
            Arc::clone(&clock),
        ));
        let engine = Arc::new(Engine::new(cfg.engine.clone(), Arc::clone(&clock)));
        // Stock images so examples work out of the box.
        engine.add_image(Image::cuda("cuda-app", "latest", "8.0"));
        engine.add_image(Image::cuda("tensorflow", "1.2", "8.0"));

        let base_dir = cfg.base_dir.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!(
                "convgpu-{}-{}",
                std::process::id(),
                INSTANCE_COUNTER.fetch_add(1, Ordering::Relaxed)
            ))
        });
        std::fs::create_dir_all(&base_dir)?;
        let sched_cfg = SchedulerConfig {
            capacity: device.capacity(),
            ctx_overhead: Bytes::mib(66),
            charge_ctx_overhead: cfg.charge_ctx_overhead,
            resume_rule: cfg.resume_rule,
            default_limit: Bytes::gib(1),
        };
        let backend = match &cfg.topology {
            TopologySpec::SingleGpu => TopologyBackend::Single(Scheduler::new(
                sched_cfg,
                cfg.policy.build(cfg.policy_seed),
            )),
            TopologySpec::MultiGpu {
                capacities,
                placement,
            } => TopologyBackend::MultiGpu(MultiGpuScheduler::with_config(
                sched_cfg,
                capacities,
                cfg.policy,
                *placement,
                cfg.policy_seed,
            )),
            TopologySpec::Cluster { nodes, strategy } => {
                TopologyBackend::Cluster(ClusterScheduler::new(
                    nodes
                        .iter()
                        .enumerate()
                        .map(|(i, (name, caps))| {
                            ClusterNode::with_config(
                                name.clone(),
                                sched_cfg.clone(),
                                caps,
                                cfg.policy,
                                cfg.policy_seed.wrapping_add(i as u64),
                            )
                        })
                        .collect(),
                    *strategy,
                    cfg.policy_seed,
                ))
            }
        };
        let service = Arc::new(SchedulerService::new_with_backend(
            backend,
            Arc::clone(&clock),
            base_dir,
        ));
        let handler = Arc::new(ServiceHandler::new(Arc::clone(&service)));
        let frontend_endpoint: Arc<dyn SchedulerEndpoint> =
            Arc::new(InProcEndpoint::new(Arc::clone(&service)));
        let nvidia_docker = NvidiaDocker::new(
            Arc::clone(&engine),
            Arc::clone(&frontend_endpoint),
            cfg.driver_version.clone(),
        );
        let plugin = NvidiaDockerPlugin::spawn(&engine, frontend_endpoint);
        Ok(ConVGpu {
            clock,
            device,
            raw,
            engine,
            service,
            handler,
            nvidia_docker,
            plugin: Some(plugin),
            transport: cfg.transport,
            device_aware_props: !matches!(cfg.topology, TopologySpec::SingleGpu),
            container_servers: Mutex::new(HashMap::new()),
        })
    }

    /// The session clock (workload time).
    pub fn clock(&self) -> &ClockHandle {
        &self.clock
    }

    /// The simulated GPU.
    pub fn device(&self) -> &Arc<GpuDevice> {
        &self.device
    }

    /// The container engine.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The scheduler service.
    pub fn service(&self) -> &Arc<SchedulerService> {
        &self.service
    }

    /// The customized nvidia-docker front end (for command rewriting
    /// without program execution, e.g. the Fig. 5 creation benchmark).
    pub fn nvidia_docker(&self) -> &NvidiaDocker {
        &self.nvidia_docker
    }

    /// Register an additional image.
    pub fn add_image(&self, image: Image) {
        self.engine.add_image(image);
    }

    /// Run `program` inside a ConVGPU-managed container (the
    /// `nvidia-docker run` path). Returns a [`Session`].
    pub fn run_container(
        &self,
        cmd: RunCommand,
        mut program: Box<dyn GpuProgram>,
    ) -> Result<Session, NvidiaDockerError> {
        let prepared = self.nvidia_docker.run(&cmd)?;
        let id = prepared.id;

        // Build the endpoint the wrapper will use.
        let registry = Arc::clone(&self.service.obs().registry);
        let endpoint: Arc<dyn SchedulerEndpoint> = match self.transport {
            TransportMode::UnixSocket => {
                let sock = self.service.socket_path(id);
                let server = SocketServer::bind_with_obs(
                    &sock,
                    Arc::clone(&self.handler) as _,
                    Some(ServerObs {
                        registry: Arc::clone(&registry),
                        clock: Arc::clone(&self.clock),
                    }),
                )
                .map_err(|e| NvidiaDockerError::Ipc(e.into()))?;
                let client = SchedulerClient::connect_with_obs(
                    &sock,
                    Some(ClientObs {
                        registry: Arc::clone(&registry),
                        clock: Arc::clone(&self.clock),
                    }),
                )
                .map_err(NvidiaDockerError::Ipc)?;
                self.container_servers.lock().insert(id, server);
                Arc::new(client)
            }
            TransportMode::InProc => Arc::new(InProcEndpoint::new(Arc::clone(&self.service))),
        };
        let mut module =
            WrapperModule::new(id, Arc::clone(&self.raw) as Arc<dyn CudaApi>, endpoint).with_obs(
                WrapperObs {
                    registry,
                    clock: Arc::clone(&self.clock),
                },
            );
        if self.device_aware_props {
            module = module.with_device_aware_props();
        }
        let wrapper: Arc<dyn CudaApi> = Arc::new(module);
        // Bind the program's CUDA symbols per the LD_PRELOAD rules.
        let container = self.engine.inspect(id).map_err(NvidiaDockerError::Engine)?;
        let env =
            ProcessEnv::from_ld_preload(container.options.env_get("LD_PRELOAD").unwrap_or(""));
        let link = LinkSpec {
            cudart_shared: program.link().cudart_shared,
        };
        let api = resolve_runtime(&env, link, wrapper, Arc::clone(&self.raw) as _);

        let engine = Arc::clone(&self.engine);
        let clock = Arc::clone(&self.clock);
        let handle = std::thread::Builder::new()
            .name(format!("convgpu-{id}"))
            .spawn(move || {
                let pid = match engine.spawn_pid(id) {
                    Ok(pid) => pid,
                    Err(_) => return Err(convgpu_gpu_sim::error::CudaError::LaunchFailure),
                };
                let _ = api.cuda_register_fat_binary(pid);
                let result = program.run(&*api, pid, &clock);
                // Implicit at process exit even when the program errored.
                let _ = api.cuda_unregister_fat_binary(pid);
                let exit_code = if result.is_ok() { 0 } else { 1 };
                let _ = engine.stop(id, exit_code);
                result
            })
            .expect("spawn container program thread");
        Ok(Session {
            container: id,
            handle,
        })
    }

    /// Run `program` in a container *without* ConVGPU management — the
    /// paper's baseline ("without the solution"). The program talks to
    /// the raw runtime; the scheduler never hears about it.
    pub fn run_container_unmanaged(
        &self,
        cmd: RunCommand,
        mut program: Box<dyn GpuProgram>,
    ) -> Result<Session, NvidiaDockerError> {
        let id = self.nvidia_docker.run_unmanaged(&cmd)?;
        let api: Arc<dyn CudaApi> = Arc::clone(&self.raw) as _;
        let engine = Arc::clone(&self.engine);
        let clock = Arc::clone(&self.clock);
        let handle = std::thread::Builder::new()
            .name(format!("convgpu-raw-{id}"))
            .spawn(move || {
                let pid = match engine.spawn_pid(id) {
                    Ok(pid) => pid,
                    Err(_) => return Err(convgpu_gpu_sim::error::CudaError::LaunchFailure),
                };
                let _ = api.cuda_register_fat_binary(pid);
                let result = program.run(&*api, pid, &clock);
                let _ = api.cuda_unregister_fat_binary(pid);
                let exit_code = if result.is_ok() { 0 } else { 1 };
                let _ = engine.stop(id, exit_code);
                result
            })
            .expect("spawn container program thread");
        Ok(Session {
            container: id,
            handle,
        })
    }

    /// Block until the scheduler has processed the close signal for `id`
    /// (the plugin delivers it asynchronously after the program thread
    /// stops the container). Returns `false` on timeout.
    pub fn wait_closed(&self, id: ContainerId, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            // Scan every device: placement may have homed the container
            // off the primary.
            let closed = self.service.with_backend(|b| {
                b.device_schedulers().iter().any(|s| {
                    s.container(id)
                        .map(|r| r.state == ContainerState::Closed)
                        .unwrap_or(false)
                })
            });
            if closed {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// The most recent scheduler decisions, rendered for humans (the
    /// operator's `journalctl` view; see
    /// `convgpu_scheduler::log::DecisionLog`).
    pub fn recent_decisions(&self, limit: usize) -> Vec<String> {
        self.service.with_scheduler(|s| {
            let len = s.log().len();
            s.log()
                .entries()
                .skip(len.saturating_sub(limit))
                .map(|e| e.to_string())
                .collect()
        })
    }

    /// Per-container scheduler metrics, sorted by container id — across
    /// every device in the topology.
    pub fn metrics(&self) -> Vec<ContainerMetrics> {
        self.service.with_backend(|b| {
            let mut all: Vec<ContainerMetrics> = b
                .device_schedulers()
                .into_iter()
                .flat_map(|s| metrics::collect(s.containers()))
                .collect();
            all.sort_by_key(|m| m.id);
            all
        })
    }

    /// All middleware metrics in Prometheus text exposition format (what
    /// `QueryMetrics` returns over the wire).
    pub fn metrics_text(&self) -> String {
        self.service.metrics_text()
    }

    /// Chrome-trace JSON (trace-event array) of the retained spans —
    /// load into `chrome://tracing` or Perfetto for a per-container
    /// timeline.
    pub fn chrome_trace(&self) -> String {
        self.service.chrome_trace()
    }

    /// Stop the plugin and every socket server.
    pub fn shutdown(mut self) {
        if let Some(p) = self.plugin.take() {
            p.shutdown();
        }
        for (_, server) in self.container_servers.lock().drain() {
            server.shutdown();
        }
    }
}

impl Drop for ConVGpu {
    fn drop(&mut self) {
        if let Some(p) = self.plugin.take() {
            p.shutdown();
        }
        for (_, server) in self.container_servers.lock().drain() {
            server.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use convgpu_gpu_sim::program::FnProgram;

    fn fast_cfg(transport: TransportMode) -> ConVGpuConfig {
        ConVGpuConfig {
            time_scale: 0.001,
            latency: LatencyModel::zero(),
            engine: EngineConfig::instant(),
            transport,
            ..ConVGpuConfig::default()
        }
    }

    fn alloc_program(mib: u64) -> Box<dyn GpuProgram> {
        Box::new(FnProgram::new("alloc", move |api, pid, _clock| {
            let p = api.cuda_malloc(pid, Bytes::mib(mib))?;
            api.cuda_free(pid, p)
        }))
    }

    #[test]
    fn managed_run_over_unix_sockets_completes() {
        let convgpu = ConVGpu::start(fast_cfg(TransportMode::UnixSocket)).unwrap();
        let session = convgpu
            .run_container(
                RunCommand::new("cuda-app").nvidia_memory("512m"),
                alloc_program(256),
            )
            .unwrap();
        let id = session.container;
        session.wait().unwrap();
        assert!(convgpu.wait_closed(id, Duration::from_secs(5)));
        let metrics = convgpu.metrics();
        assert_eq!(metrics.len(), 1);
        assert_eq!(metrics[0].granted_allocs, 1);
        // All GPU memory back.
        let (free, total) = convgpu.device().mem_info();
        assert_eq!(free, total);
        convgpu
            .service()
            .with_scheduler(|s| s.check_invariants().unwrap());
        convgpu.shutdown();
    }

    #[test]
    fn managed_run_in_proc_completes() {
        let convgpu = ConVGpu::start(fast_cfg(TransportMode::InProc)).unwrap();
        let session = convgpu
            .run_container(
                RunCommand::new("cuda-app").nvidia_memory("512m"),
                alloc_program(256),
            )
            .unwrap();
        session.wait().unwrap();
        convgpu.shutdown();
    }

    #[test]
    fn over_limit_program_fails_cleanly() {
        let convgpu = ConVGpu::start(fast_cfg(TransportMode::UnixSocket)).unwrap();
        let session = convgpu
            .run_container(
                RunCommand::new("cuda-app").nvidia_memory("128m"),
                alloc_program(512),
            )
            .unwrap();
        let id = session.container;
        let err = session.wait().unwrap_err();
        assert!(err.is_allocation_failure());
        assert!(convgpu.wait_closed(id, Duration::from_secs(5)));
        // Exit code reflects the failure.
        let c = convgpu.engine().inspect(id).unwrap();
        assert_eq!(c.exit_code, Some(1));
        convgpu.shutdown();
    }

    #[test]
    fn statically_linked_program_bypasses_convgpu() {
        let convgpu = ConVGpu::start(fast_cfg(TransportMode::UnixSocket)).unwrap();
        let program = Box::new(
            FnProgram::new("static-alloc", |api, pid, _clock| {
                let p = api.cuda_malloc(pid, Bytes::mib(256))?;
                api.cuda_free(pid, p)
            })
            .with_link(convgpu_gpu_sim::program::ProgramLink {
                cudart_shared: false,
            }),
        );
        let session = convgpu
            .run_container(RunCommand::new("cuda-app").nvidia_memory("128m"), program)
            .unwrap();
        let id = session.container;
        // The 256 MiB allocation exceeds the 128 MiB limit but SUCCEEDS:
        // static linking defeated the wrapper — the paper's pitfall.
        session.wait().unwrap();
        assert!(convgpu.wait_closed(id, Duration::from_secs(5)));
        let metrics = convgpu.metrics();
        assert_eq!(
            metrics[0].granted_allocs, 0,
            "scheduler never saw the allocation"
        );
        convgpu.shutdown();
    }

    #[test]
    fn contention_serializes_via_suspension() {
        // 5 GiB GPU; three containers of 2 GiB each cannot all hold
        // memory at once — ConVGPU suspends, everyone completes.
        let convgpu = ConVGpu::start(fast_cfg(TransportMode::UnixSocket)).unwrap();
        let mut sessions = Vec::new();
        for _ in 0..3 {
            // Hold long enough (20 ms wall at the 0.001 scale) that all
            // three program threads overlap even under parallel test
            // load; a 1 ms hold let early containers finish before the
            // last thread spawned, so no suspension was observed.
            let program = Box::new(FnProgram::new("hold", |api, pid, clock| {
                let p = api.cuda_malloc(pid, Bytes::mib(2048))?;
                clock.sleep(convgpu_sim_core::time::SimDuration::from_secs(20));
                api.cuda_free(pid, p)
            }));
            sessions.push(
                convgpu
                    .run_container(RunCommand::new("cuda-app").nvidia_memory("2048m"), program)
                    .unwrap(),
            );
        }
        let ids: Vec<ContainerId> = sessions.iter().map(|s| s.container).collect();
        for s in sessions {
            s.wait().unwrap();
        }
        for id in ids {
            assert!(convgpu.wait_closed(id, Duration::from_secs(5)));
        }
        let metrics = convgpu.metrics();
        assert_eq!(metrics.iter().filter(|m| m.granted_allocs > 0).count(), 3);
        assert!(
            metrics.iter().any(|m| m.suspend_episodes > 0),
            "at least one container must have been suspended: {metrics:?}"
        );
        let (free, total) = convgpu.device().mem_info();
        assert_eq!(free, total);
        convgpu.shutdown();
    }

    #[test]
    fn unmanaged_contention_can_fail() {
        // Without ConVGPU, two 3 GiB containers on a 5 GiB GPU race; the
        // loser gets cudaErrorMemoryAllocation — the paper's motivating
        // failure.
        let convgpu = ConVGpu::start(fast_cfg(TransportMode::UnixSocket)).unwrap();
        let mk = || {
            Box::new(FnProgram::new("hog", |api, pid, clock| {
                let p = api.cuda_malloc(pid, Bytes::mib(3072))?;
                clock.sleep(convgpu_sim_core::time::SimDuration::from_secs(1));
                api.cuda_free(pid, p)
            })) as Box<dyn GpuProgram>
        };
        let s1 = convgpu
            .run_container_unmanaged(RunCommand::new("cuda-app"), mk())
            .unwrap();
        let s2 = convgpu
            .run_container_unmanaged(RunCommand::new("cuda-app"), mk())
            .unwrap();
        let r1 = s1.wait();
        let r2 = s2.wait();
        assert!(
            r1.is_err() || r2.is_err(),
            "one container must have failed: {r1:?} {r2:?}"
        );
        convgpu.shutdown();
    }
}
