//! The customized nvidia-docker (paper §III-B).
//!
//! nvidia-docker is "a thin wrapper on top of docker" that rewrites `run`
//! and `create` commands. ConVGPU's customization adds, in order:
//!
//! 1. resolve the GPU memory limit: `--nvidia-memory=<size>` option, else
//!    the image's `com.nvidia.memory.limit` label, else **1 GiB**;
//! 2. send the limit to the scheduler *before* creating the container;
//! 3. ask the scheduler for the per-container directory and mount it
//!    (`--volume`), which carries the wrapper module and the UNIX socket;
//! 4. set `LD_PRELOAD` (`--env`) so the wrapper loads first;
//! 5. mount the usual NVIDIA driver volume and `--device` entries;
//! 6. add the dummy plugin volume whose unmount signals container exit.

use convgpu_container_rt::engine::{Engine, EngineError};
#[cfg(test)]
use convgpu_container_rt::image::labels;
use convgpu_container_rt::image::Image;
use convgpu_container_rt::spec::{CreateOptions, ResourceSpec, VolumeMount};
use convgpu_ipc::endpoint::{IpcError, SchedulerEndpoint};
use convgpu_scheduler::core::SchedError;
use convgpu_sim_core::ids::ContainerId;
use convgpu_sim_core::units::{Bytes, ParseBytesError};
use std::fmt;
use std::sync::Arc;

/// Driver name of the dummy volume the plugin watches.
pub const CONVGPU_VOLUME_DRIVER: &str = "convgpu";

/// The paper's default limit when neither option nor label is present.
pub const DEFAULT_MEMORY_LIMIT: Bytes = Bytes(1 << 30);

/// A user command, i.e. `nvidia-docker run [--nvidia-memory=<size>] image`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunCommand {
    /// Image reference.
    pub image: String,
    /// The `--nvidia-memory=<size>` option, verbatim.
    pub nvidia_memory: Option<String>,
    /// Optional container name.
    pub name: Option<String>,
    /// Resource caps (Table III columns).
    pub resources: ResourceSpec,
    /// Extra environment variables from the user command.
    pub env: Vec<(String, String)>,
}

impl RunCommand {
    /// A run command for `image` with defaults.
    pub fn new(image: impl Into<String>) -> Self {
        RunCommand {
            image: image.into(),
            nvidia_memory: None,
            name: None,
            resources: ResourceSpec::default(),
            env: Vec::new(),
        }
    }

    /// Set `--nvidia-memory=<size>` (builder style).
    pub fn nvidia_memory(mut self, size: impl Into<String>) -> Self {
        self.nvidia_memory = Some(size.into());
        self
    }

    /// Set the container name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Set resource caps.
    pub fn resources(mut self, r: ResourceSpec) -> Self {
        self.resources = r;
        self
    }

    /// Add a user environment variable.
    pub fn env(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.env.push((key.into(), value.into()));
        self
    }
}

/// nvidia-docker errors.
#[derive(Debug)]
pub enum NvidiaDockerError {
    /// The size string did not parse.
    BadMemorySize(ParseBytesError),
    /// Image missing from the engine.
    Engine(EngineError),
    /// Scheduler refused the registration.
    Scheduler(SchedError),
    /// IPC failure talking to the scheduler.
    Ipc(IpcError),
}

impl fmt::Display for NvidiaDockerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NvidiaDockerError::BadMemorySize(e) => write!(f, "--nvidia-memory: {e}"),
            NvidiaDockerError::Engine(e) => write!(f, "docker: {e}"),
            NvidiaDockerError::Scheduler(e) => write!(f, "scheduler: {e}"),
            NvidiaDockerError::Ipc(e) => write!(f, "scheduler ipc: {e}"),
        }
    }
}

impl std::error::Error for NvidiaDockerError {}

impl From<EngineError> for NvidiaDockerError {
    fn from(e: EngineError) -> Self {
        NvidiaDockerError::Engine(e)
    }
}

impl From<IpcError> for NvidiaDockerError {
    fn from(e: IpcError) -> Self {
        NvidiaDockerError::Ipc(e)
    }
}

/// Resolve the container's GPU memory limit per the paper's precedence:
/// option → image label → 1 GiB default.
pub fn resolve_memory_limit(option: Option<&str>, image: &Image) -> Result<Bytes, ParseBytesError> {
    if let Some(opt) = option {
        return opt.parse();
    }
    if let Some(label) = image.memory_limit_label() {
        return label.parse();
    }
    Ok(DEFAULT_MEMORY_LIMIT)
}

/// The customized nvidia-docker front end.
pub struct NvidiaDocker {
    engine: Arc<Engine>,
    scheduler: Arc<dyn SchedulerEndpoint>,
    /// NVIDIA driver version, used for the driver volume name like the
    /// real nvidia-docker-plugin serves (`nvidia_driver_375.51`).
    driver_version: String,
}

/// Everything `run` prepared: the created container and the pieces the
/// orchestrator needs to launch the program inside it.
#[derive(Clone, Debug)]
pub struct PreparedContainer {
    /// Engine container id (registered with the scheduler).
    pub id: ContainerId,
    /// Resolved GPU memory limit.
    pub limit: Bytes,
    /// Per-container directory served by the scheduler.
    pub convgpu_dir: String,
    /// The final creation options (for inspection/testing).
    pub options: CreateOptions,
}

impl NvidiaDocker {
    /// Build the front end.
    pub fn new(
        engine: Arc<Engine>,
        scheduler: Arc<dyn SchedulerEndpoint>,
        driver_version: impl Into<String>,
    ) -> Self {
        NvidiaDocker {
            engine,
            scheduler,
            driver_version: driver_version.into(),
        }
    }

    /// Rewrite and execute a `run` command: registers with the scheduler,
    /// injects the ConVGPU plumbing, creates **and starts** the container.
    pub fn run(&self, cmd: &RunCommand) -> Result<PreparedContainer, NvidiaDockerError> {
        let image = self
            .engine
            .image(&cmd.image)
            .ok_or_else(|| EngineError::UnknownImage(cmd.image.clone()))?;
        let limit = resolve_memory_limit(cmd.nvidia_memory.as_deref(), &image)
            .map_err(NvidiaDockerError::BadMemorySize)?;

        // Identity first: the limit must reach the scheduler before the
        // container exists (paper §III-B).
        let id = self.engine.reserve_id();
        self.scheduler
            .register(id, limit)
            .map_err(NvidiaDockerError::Ipc)?;
        let dir = self.scheduler.request_dir(id)?;

        let mut options = CreateOptions::new(cmd.image.clone())
            .with_volume(VolumeMount::bind(dir.clone(), "/convgpu"))
            .with_env("LD_PRELOAD", "/convgpu/libgpushare.so")
            .with_resources(cmd.resources);
        options.name = cmd.name.clone();
        for (k, v) in &cmd.env {
            options.env.push((k.clone(), v.clone()));
        }
        if image.needs_gpu() {
            options = options
                .with_device("/dev/nvidiactl")
                .with_device("/dev/nvidia-uvm")
                .with_device("/dev/nvidia0")
                .with_volume(VolumeMount::plugin(
                    format!("nvidia_driver_{}", self.driver_version),
                    "/usr/local/nvidia",
                    "nvidia-docker",
                ));
        }
        // The dummy volume whose unmount tells the plugin the container
        // exited.
        options = options.with_volume(VolumeMount::plugin(
            format!("convgpu-close-{id}"),
            "/convgpu-close",
            CONVGPU_VOLUME_DRIVER,
        ));

        self.engine.create_with_id(id, options.clone())?;
        self.engine.start(id)?;
        Ok(PreparedContainer {
            id,
            limit,
            convgpu_dir: dir,
            options,
        })
    }

    /// Plain docker passthrough: create and start *without* any ConVGPU
    /// plumbing — the "without the solution" baseline of §IV.
    pub fn run_unmanaged(&self, cmd: &RunCommand) -> Result<ContainerId, NvidiaDockerError> {
        let image = self
            .engine
            .image(&cmd.image)
            .ok_or_else(|| EngineError::UnknownImage(cmd.image.clone()))?;
        let mut options = CreateOptions::new(cmd.image.clone()).with_resources(cmd.resources);
        options.name = cmd.name.clone();
        for (k, v) in &cmd.env {
            options.env.push((k.clone(), v.clone()));
        }
        if image.needs_gpu() {
            options = options
                .with_device("/dev/nvidiactl")
                .with_device("/dev/nvidia-uvm")
                .with_device("/dev/nvidia0")
                .with_volume(VolumeMount::plugin(
                    format!("nvidia_driver_{}", self.driver_version),
                    "/usr/local/nvidia",
                    "nvidia-docker",
                ));
        }
        let id = self.engine.create(options)?;
        self.engine.start(id)?;
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{InProcEndpoint, SchedulerService};
    use convgpu_container_rt::engine::EngineConfig;
    use convgpu_scheduler::core::{Scheduler, SchedulerConfig};
    use convgpu_scheduler::policy::PolicyKind;
    use convgpu_sim_core::clock::VirtualClock;

    fn setup(name: &str) -> (Arc<Engine>, NvidiaDocker, Arc<SchedulerService>) {
        let clock = VirtualClock::new();
        let engine = Arc::new(Engine::new(EngineConfig::default(), clock.handle()));
        engine.add_image(Image::cuda("cuda-app", "latest", "8.0"));
        engine.add_image(
            Image::cuda("labeled-app", "latest", "8.0").with_label(labels::MEMORY_LIMIT, "256m"),
        );
        engine.add_image(Image::new("plain-app", "latest"));
        let dir = std::env::temp_dir().join(format!(
            "convgpu-nvdocker-test-{}-{}",
            std::process::id(),
            name
        ));
        let svc = Arc::new(SchedulerService::new(
            Scheduler::new(SchedulerConfig::paper(), PolicyKind::Fifo.build(0)),
            clock.handle(),
            dir,
        ));
        let nd = NvidiaDocker::new(
            Arc::clone(&engine),
            Arc::new(InProcEndpoint::new(Arc::clone(&svc))),
            "375.51",
        );
        (engine, nd, svc)
    }

    #[test]
    fn limit_precedence_option_label_default() {
        let img_plain = Image::cuda("a", "b", "8.0");
        let img_labeled = Image::cuda("a", "b", "8.0").with_label(labels::MEMORY_LIMIT, "256m");
        assert_eq!(
            resolve_memory_limit(Some("2g"), &img_labeled).unwrap(),
            Bytes::gib(2),
            "option beats label"
        );
        assert_eq!(
            resolve_memory_limit(None, &img_labeled).unwrap(),
            Bytes::mib(256),
            "label beats default"
        );
        assert_eq!(
            resolve_memory_limit(None, &img_plain).unwrap(),
            Bytes::gib(1),
            "paper's 1 GiB default"
        );
        assert!(resolve_memory_limit(Some("garbage"), &img_plain).is_err());
    }

    #[test]
    fn run_injects_convgpu_plumbing() {
        let (engine, nd, svc) = setup("plumbing");
        let prepared = nd
            .run(&RunCommand::new("cuda-app").nvidia_memory("512m"))
            .unwrap();
        assert_eq!(prepared.limit, Bytes::mib(512));
        // Scheduler knows the container with that limit.
        svc.with_scheduler(|s| {
            let rec = s.container(prepared.id).expect("registered");
            assert_eq!(rec.limit, Bytes::mib(512));
        });
        // LD_PRELOAD injected.
        let c = engine.inspect(prepared.id).unwrap();
        assert_eq!(
            c.options.env_get("LD_PRELOAD"),
            Some("/convgpu/libgpushare.so")
        );
        // ConVGPU dir mounted; driver volume and dummy close volume added.
        assert!(c.options.volumes.iter().any(|v| v.target == "/convgpu"));
        assert!(c
            .options
            .volumes
            .iter()
            .any(|v| v.source == "nvidia_driver_375.51"));
        assert!(c
            .options
            .volumes
            .iter()
            .any(|v| v.driver.as_deref() == Some(CONVGPU_VOLUME_DRIVER)));
        assert!(c.options.devices.contains(&"/dev/nvidia0".to_string()));
        assert!(c.is_running(), "run starts the container");
        // The served directory exists with the module inside.
        assert!(std::path::Path::new(&prepared.convgpu_dir)
            .join("libgpushare.so")
            .exists());
    }

    #[test]
    fn label_fallback_applies() {
        let (_engine, nd, svc) = setup("label");
        let prepared = nd.run(&RunCommand::new("labeled-app")).unwrap();
        assert_eq!(prepared.limit, Bytes::mib(256));
        svc.with_scheduler(|s| {
            assert_eq!(s.container(prepared.id).unwrap().limit, Bytes::mib(256));
        });
    }

    #[test]
    fn default_applies_without_option_or_label() {
        let (_engine, nd, _svc) = setup("default");
        let prepared = nd.run(&RunCommand::new("cuda-app")).unwrap();
        assert_eq!(prepared.limit, Bytes::gib(1));
    }

    #[test]
    fn bad_size_fails_before_any_side_effect() {
        let (engine, nd, _svc) = setup("badsize");
        let err = nd
            .run(&RunCommand::new("cuda-app").nvidia_memory("1.21gw"))
            .unwrap_err();
        assert!(matches!(err, NvidiaDockerError::BadMemorySize(_)));
        assert!(engine.list().is_empty(), "no container created");
    }

    #[test]
    fn non_gpu_image_gets_no_device_mounts() {
        let (engine, nd, _svc) = setup("plain");
        let prepared = nd.run(&RunCommand::new("plain-app")).unwrap();
        let c = engine.inspect(prepared.id).unwrap();
        assert!(c.options.devices.is_empty());
        // But ConVGPU still tracks it (it declared a default limit).
        assert!(c.options.env_get("LD_PRELOAD").is_some());
    }

    #[test]
    fn unmanaged_run_has_no_convgpu_traces() {
        let (engine, nd, svc) = setup("unmanaged");
        let id = nd.run_unmanaged(&RunCommand::new("cuda-app")).unwrap();
        let c = engine.inspect(id).unwrap();
        assert_eq!(c.options.env_get("LD_PRELOAD"), None);
        assert!(!c.options.volumes.iter().any(|v| v.target == "/convgpu"));
        svc.with_scheduler(|s| assert!(s.container(id).is_none()));
    }
}
