//! The nvidia-docker-plugin analog.
//!
//! Paper §III-B: nvidia-docker adds a dummy volume served by the plugin;
//! "when the container exits its execution by any reasons, docker unmounts
//! the volume; therefore, nvidia-docker-plugin can identify the container
//! is exited. Subsequently, nvidia-docker-plugin can send a *close* signal
//! to the scheduler for that container."
//!
//! [`NvidiaDockerPlugin`] subscribes to the engine's event bus on a
//! background thread and converts every unmount of a `convgpu`-driver
//! volume into [`SchedulerEndpoint::container_close`]. Because it reacts
//! to the *engine* event (not the program's own cleanup), it also covers
//! crashed or killed containers — the fault-tolerance path.

use crate::nvidia_docker::CONVGPU_VOLUME_DRIVER;
use convgpu_container_rt::engine::Engine;
use convgpu_container_rt::events::EventKind;
use convgpu_ipc::endpoint::SchedulerEndpoint;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The running plugin.
pub struct NvidiaDockerPlugin {
    thread: Option<JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
    closes_sent: Arc<AtomicU64>,
}

impl NvidiaDockerPlugin {
    /// Subscribe to `engine` events and forward close signals to
    /// `endpoint` on a background thread.
    pub fn spawn(engine: &Engine, endpoint: Arc<dyn SchedulerEndpoint>) -> Self {
        let rx = engine.events();
        let shutdown = Arc::new(AtomicBool::new(false));
        let closes_sent = Arc::new(AtomicU64::new(0));
        let flag = Arc::clone(&shutdown);
        let count = Arc::clone(&closes_sent);
        let thread = std::thread::Builder::new()
            .name("convgpu-plugin".into())
            .spawn(move || loop {
                match rx.recv_timeout(Duration::from_millis(20)) {
                    Ok(ev) => {
                        if let EventKind::VolumeUnmounted {
                            driver: Some(driver),
                            ..
                        } = &ev.kind
                        {
                            if driver == CONVGPU_VOLUME_DRIVER {
                                // A dead scheduler must not kill the
                                // plugin; closes are best-effort like the
                                // original's HTTP callbacks.
                                if endpoint.container_close(ev.container).is_ok() {
                                    count.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                    Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                        if flag.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                    Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
                }
            })
            .expect("spawn plugin thread");
        NvidiaDockerPlugin {
            thread: Some(thread),
            shutdown,
            closes_sent,
        }
    }

    /// Number of close signals successfully delivered (diagnostics).
    pub fn closes_sent(&self) -> u64 {
        self.closes_sent.load(Ordering::Relaxed)
    }

    /// Stop the watcher thread.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for NvidiaDockerPlugin {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{InProcEndpoint, SchedulerService};
    use convgpu_container_rt::engine::EngineConfig;
    use convgpu_container_rt::image::Image;
    use convgpu_container_rt::spec::{CreateOptions, VolumeMount};
    use convgpu_scheduler::core::{Scheduler, SchedulerConfig};
    use convgpu_scheduler::policy::PolicyKind;
    use convgpu_scheduler::state::ContainerState;
    use convgpu_sim_core::clock::RealClock;
    use convgpu_sim_core::units::Bytes;

    #[test]
    fn unmount_of_convgpu_volume_closes_container() {
        let clock = RealClock::handle();
        let engine = Engine::new(EngineConfig::default(), Arc::clone(&clock));
        engine.add_image(Image::cuda("app", "latest", "8.0"));
        let dir = std::env::temp_dir().join(format!("convgpu-plugin-test-{}", std::process::id()));
        let svc = Arc::new(SchedulerService::new(
            Scheduler::new(SchedulerConfig::paper(), PolicyKind::Fifo.build(0)),
            clock,
            dir,
        ));
        let plugin =
            NvidiaDockerPlugin::spawn(&engine, Arc::new(InProcEndpoint::new(Arc::clone(&svc))));

        // Simulate what nvidia-docker would have done.
        let id = engine.reserve_id();
        svc.register(id, Bytes::mib(128)).unwrap();
        engine
            .create_with_id(
                id,
                CreateOptions::new("app").with_volume(VolumeMount::plugin(
                    format!("convgpu-close-{id}"),
                    "/convgpu-close",
                    CONVGPU_VOLUME_DRIVER,
                )),
            )
            .unwrap();
        engine.start(id).unwrap();
        engine.stop(id, 0).unwrap();

        // The plugin thread should deliver the close signal shortly.
        for _ in 0..200 {
            let closed = svc.with_scheduler(|s| {
                s.container(id).map(|r| r.state) == Some(ContainerState::Closed)
            });
            if closed {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        svc.with_scheduler(|s| {
            assert_eq!(s.container(id).unwrap().state, ContainerState::Closed);
            assert_eq!(s.total_assigned(), Bytes::ZERO);
        });
        assert_eq!(plugin.closes_sent(), 1);
        plugin.shutdown();
    }

    #[test]
    fn foreign_volume_unmounts_are_ignored() {
        let clock = RealClock::handle();
        let engine = Engine::new(EngineConfig::default(), Arc::clone(&clock));
        engine.add_image(Image::new("app", "latest"));
        let dir = std::env::temp_dir().join(format!("convgpu-plugin-test2-{}", std::process::id()));
        let svc = Arc::new(SchedulerService::new(
            Scheduler::new(SchedulerConfig::paper(), PolicyKind::Fifo.build(0)),
            clock,
            dir,
        ));
        let plugin =
            NvidiaDockerPlugin::spawn(&engine, Arc::new(InProcEndpoint::new(Arc::clone(&svc))));
        let id = engine
            .create(CreateOptions::new("app").with_volume(VolumeMount::plugin(
                "other-vol",
                "/x",
                "nvidia-docker",
            )))
            .unwrap();
        engine.start(id).unwrap();
        engine.stop(id, 0).unwrap();
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(plugin.closes_sent(), 0);
        plugin.shutdown();
    }
}
