//! Genuinely distributed cluster mode: per-node server harness + the
//! fault-tolerant cluster router.
//!
//! PR 4's [`convgpu_scheduler::cluster::ClusterScheduler`] *simulates* a
//! Swarm cluster behind one process. This module splits it into real
//! processes: every node runs its own [`crate::service::SchedulerService`]
//! on its own UNIX socket (a [`NodeServer`]), and a [`ClusterRouter`]
//! fronts them — owning Swarm-style placement (Spread / BinPack / Random,
//! same strategies as the in-process backend) and forwarding gated calls
//! over the ordinary wire codecs.
//!
//! Distribution buys failure modes the single-process path never had, so
//! the router carries the robustness layer:
//!
//! * **per-request deadlines** — control-plane forwards are bounded by
//!   [`RouterConfig::deadline`] on the sim clock
//!   ([`convgpu_ipc::client::SchedulerClient::request_deadline`]);
//! * **bounded retry with exponential backoff + jitter** — transport
//!   failures retry up to [`RouterConfig::max_retries`] times, sleeping on
//!   the session clock so a virtual-clock test drives the whole schedule
//!   deterministically;
//! * **node health states** (`up` / `degraded` / `down`) — consecutive
//!   transport failures degrade and then down a node; requests to a down
//!   node are drained (answered immediately) instead of queued;
//! * **graceful degradation** — an allocation forwarded to a node that
//!   dies (even mid-suspension) fails over to an `AllocDecision`-correct
//!   *rejection*, so blocked clients unblock exactly like the paper's
//!   kill-handling path, and teardown calls (`free` / `process_exit` /
//!   `container_close`) degrade to harmless acknowledgements so lifecycle
//!   loops complete with zero hung clients.
//!
//! `alloc_request` itself is deliberately **not** deadline-bounded: a
//! suspended allocation blocking arbitrarily long *is* the paper's
//! mechanism. It unblocks through disconnect detection instead.
//!
//! **Live migration** (this PR's layer): when a node transitions to
//! `down` — or an operator issues `cluster rebalance` — the router
//! *drains* that node: every container homed there is closed on the
//! source (cancelling parked requests the way the paper's kill path
//! does), then replayed onto a surviving node through the `migrate`
//! wire message, which the receiving daemon services as an *adoption*
//! (register + pre-committed budget in one step). The placement budget
//! the router committed for the container (limit + context hint)
//! travels with it, so committed memory is conserved and never exceeds
//! any node's capacity. Live `used` bytes travel too: the router keeps
//! a wire-observed per-pid ledger (`alloc_done` adds, `free` subtracts
//! what the node reported, `process_exit` drops the pid), and a
//! migration off a *dead* node replays that checkpoint into the
//! adoption — a live source's acknowledged close genuinely freed the
//! memory, so only the dead-source path carries a non-zero `used`. Requests racing a migration park on a condvar
//! (bounded by the router deadline) and then route to the new home.
//! When no survivor can adopt a container the migration is recorded as
//! `rejected` and the container ends closed — a clean rejection, never
//! a hang. The full history is answered over `query_migrations`.
//!
//! Placement accounting is router-local: the router tracks the limits it
//! has committed per node (plus the 66 MiB context hint) rather than
//! querying live occupancy on every register, so `BinPack` packs by
//! *committed* memory where the in-process backend packs by live
//! unassigned memory.
//!
//! **Durable state** (this PR's layer): a router attached with
//! [`ClusterRouter::attach_with_journal`] records every home-map
//! mutation — placements, closes, migration commits, and the
//! wire-observed ledger deltas — in a write-ahead journal
//! ([`crate::journal`]), with periodic compacted snapshots. On restart
//! the journal replays, so recovered homes carry their full
//! `limit` / `hint` / `used_by_pid` checkpoints and a post-restart
//! migration hands the adopter the *pre-restart* books. A mutation and
//! its journal record are sequenced in **one critical section** (the
//! WAL's memory half lives inside the home-map mutex), so journal
//! order always equals apply order and a compaction can never cover a
//! mutation its map capture missed; the file I/O itself happens under
//! a separate journal lock with the home-map lock released, on the
//! sim-clock flush cadence plus a wall-clock idle ticker. Recovered
//! homes whose journaled node name is missing from the current node
//! list are preserved as *orphans* — carried through every snapshot —
//! so a restart with a corrected node list still recovers them.
//! Without a journal the pre-existing lazy
//! path still applies: homes re-learned through
//! [`ClusterRouter::recover_home`] carry a zero hint, zero limit, and
//! an empty ledger (pinned by the zero-checkpoint baseline tests).
//!
//! Everything is observable through the router's [`ObsHub`]: per-node
//! route latency histograms and retry / timeout / failover counters (see
//! `docs/OBSERVABILITY.md`), answered over the wire via `query_metrics`
//! and `query_cluster`.

use crate::handler::ServiceHandler;
use crate::journal::{Journal, JournalConfig, JournalOp, RecoveredHome, WalBuffer};
use crate::service::{ObsHub, SchedulerService};
use convgpu_ipc::binary::WireCodec;
use convgpu_ipc::client::SchedulerClient;
use convgpu_ipc::endpoint::{IpcError, IpcResult, SchedulerEndpoint};
use convgpu_ipc::message::{
    AllocDecision, ApiKind, ClusterNodeStatus, MigrationRecord, Request, Response, TopologyDevice,
};
use convgpu_ipc::server::{ConnId, Reply, RequestHandler, SocketServer};
use convgpu_ipc::transport::EndpointAddr;
use convgpu_obs::prometheus;
use convgpu_scheduler::backend::TopologyBackend;
use convgpu_scheduler::cluster::SwarmStrategy;
use convgpu_sim_core::clock::ClockHandle;
use convgpu_sim_core::ids::ContainerId;
use convgpu_sim_core::rng::DetRng;
use convgpu_sim_core::sync::{Condvar, Mutex};
use convgpu_sim_core::time::{SimDuration, SimTime};
use convgpu_sim_core::units::Bytes;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One node of a distributed cluster: a full scheduler service plus its
/// socket server, under the node's name. The router connects to
/// [`NodeServer::socket_path`] like any other client — in production each
/// harness runs in its own process (`convgpu-cli cluster serve-node`);
/// tests may host several in one process, which exercises the identical
/// socket path.
pub struct NodeServer {
    name: String,
    service: Arc<SchedulerService>,
    server: SocketServer,
}

impl NodeServer {
    /// Build the node's service around `backend` and serve it on the
    /// UNIX socket at `socket`.
    pub fn serve(
        name: impl Into<String>,
        backend: TopologyBackend,
        clock: ClockHandle,
        base_dir: PathBuf,
        socket: &Path,
    ) -> std::io::Result<NodeServer> {
        NodeServer::serve_endpoint(name, backend, clock, base_dir, &EndpointAddr::from(socket))
    }

    /// Like [`NodeServer::serve`], on any transport endpoint
    /// (`unix:/path` or `tcp:host:port` — the multi-host deployment
    /// shape; a TCP port of 0 is resolved by the kernel and read back
    /// via [`NodeServer::endpoint`]).
    pub fn serve_endpoint(
        name: impl Into<String>,
        backend: TopologyBackend,
        clock: ClockHandle,
        base_dir: PathBuf,
        endpoint: &EndpointAddr,
    ) -> std::io::Result<NodeServer> {
        let service = Arc::new(SchedulerService::new_with_backend(backend, clock, base_dir));
        let server = SocketServer::bind_endpoint(
            endpoint,
            Arc::new(ServiceHandler::new(Arc::clone(&service))),
        )?;
        Ok(NodeServer {
            name: name.into(),
            service,
            server,
        })
    }

    /// The node's name (the router's `node` label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node's scheduler service (introspection, invariant checks).
    pub fn service(&self) -> &Arc<SchedulerService> {
        &self.service
    }

    /// Socket path the node answers on (UNIX transport only).
    pub fn socket_path(&self) -> &Path {
        self.server.path()
    }

    /// Endpoint the node answers on, over any transport.
    pub fn endpoint(&self) -> &EndpointAddr {
        self.server.endpoint()
    }

    /// Stop accepting and close every connection.
    pub fn shutdown(self) {
        self.server.shutdown();
    }
}

/// Router-observed node health. Driven by consecutive transport failures
/// and reset by any successful exchange.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeHealth {
    /// Answering normally.
    Up,
    /// Recent transport failures; still being tried (with backoff).
    Degraded,
    /// Considered dead: requests drain immediately instead of retrying.
    Down,
}

impl NodeHealth {
    /// Wire/metric label.
    pub fn label(self) -> &'static str {
        match self {
            NodeHealth::Up => "up",
            NodeHealth::Degraded => "degraded",
            NodeHealth::Down => "down",
        }
    }

    fn gauge(self) -> f64 {
        match self {
            NodeHealth::Up => 0.0,
            NodeHealth::Degraded => 1.0,
            NodeHealth::Down => 2.0,
        }
    }
}

/// Fault-tolerance knobs of the [`ClusterRouter`]. All durations are sim
/// time: under a virtual clock the backoff/deadline schedule runs
/// deterministically (and instantly); under a real clock it is wall time.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Swarm placement strategy.
    pub strategy: SwarmStrategy,
    /// Deadline per forwarded control-plane request (not `alloc_request`).
    pub deadline: SimDuration,
    /// Transport-failure retries per forwarded call (0 = single attempt).
    pub max_retries: u32,
    /// First retry delay; doubles per retry.
    pub backoff_base: SimDuration,
    /// Upper bound for the exponential backoff (before jitter).
    pub backoff_cap: SimDuration,
    /// Consecutive failures after which a node counts as degraded.
    pub degraded_after: u32,
    /// Consecutive failures after which a node counts as down.
    pub down_after: u32,
    /// Seed for placement randomness and backoff jitter.
    pub seed: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            strategy: SwarmStrategy::Spread,
            deadline: SimDuration::from_millis(500),
            max_retries: 3,
            backoff_base: SimDuration::from_millis(10),
            backoff_cap: SimDuration::from_millis(200),
            degraded_after: 2,
            down_after: 4,
            seed: 0,
        }
    }
}

/// Mutable per-node connection state, all under one lock.
struct NodeState {
    client: Option<Arc<SchedulerClient>>,
    consecutive_failures: u32,
    health: NodeHealth,
    /// `(max device capacity, total capacity)` learned from the node's
    /// `query_topology`; `None` until the first successful probe.
    caps: Option<(Bytes, Bytes)>,
}

struct RouterNode {
    name: String,
    endpoint: EndpointAddr,
    state: Mutex<NodeState>,
    retries: AtomicU64,
    timeouts: AtomicU64,
    failovers: AtomicU64,
}

impl RouterNode {
    fn new(name: String, endpoint: EndpointAddr) -> Self {
        RouterNode {
            name,
            endpoint,
            state: Mutex::new(NodeState {
                client: None,
                consecutive_failures: 0,
                health: NodeHealth::Up,
                caps: None,
            }),
            retries: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
        }
    }

    fn health(&self) -> NodeHealth {
        self.state.lock().health
    }
}

/// Router-side record of a placed container.
struct Home {
    node: usize,
    /// Memory committed against the node at placement (limit + context
    /// hint); zero for homes re-learned after a router restart.
    hint: Bytes,
    /// The limit the container registered with — the checkpoint a
    /// migration replays onto the adopting node. Zero for recovered
    /// homes (the limit is node-side state the router never saw).
    limit: Bytes,
    /// Live bytes per pid as the router observed them on the wire
    /// (`alloc_done` adds, `free` subtracts what the node reported
    /// freed, `process_exit` drops the pid). This is the `used`
    /// checkpoint a migration off a *dead* node replays onto the
    /// adopter — the node-side books are unreachable then, and the
    /// wire-observed ledger is exactly what the container's processes
    /// believe they still hold. Empty for recovered homes.
    used_by_pid: BTreeMap<u64, Bytes>,
}

impl Home {
    /// Total wire-observed live bytes across the container's pids.
    fn used(&self) -> Bytes {
        self.used_by_pid
            .values()
            .fold(Bytes::ZERO, |acc, &b| acc + b)
    }
}

/// Everything guarded by the router's home-map lock. The journal's
/// memory half lives *here*, beside the map it records: one critical
/// section covers a map mutation and the buffering of its journal
/// record, so journal order always equals apply order and a compaction
/// can never stamp a `covered` sequence whose mutation its map capture
/// missed. Every operation under this lock is pure memory.
struct HomesState {
    /// The home map itself.
    map: BTreeMap<ContainerId, Home>,
    /// The journal's sequencer + append buffer (`None` without a
    /// journal — the volatile router, byte-for-byte unchanged). File
    /// I/O happens in [`drain_wal`] / [`ClusterRouter::snapshot_now`]
    /// under the journal lock, with this lock released.
    wal: Option<WalBuffer>,
    /// Recovered homes whose journaled node name is not in the current
    /// node list. Preserved — written back into every snapshot — so a
    /// restart with a corrected node list still recovers them; an
    /// entry is evicted when the live cluster journals any op reusing
    /// its container id.
    orphans: BTreeMap<ContainerId, RecoveredHome>,
}

/// The home map keyed by node *name* (the journal's shape).
fn named_homes(
    nodes: &[RouterNode],
    map: &BTreeMap<ContainerId, Home>,
) -> BTreeMap<ContainerId, RecoveredHome> {
    map.iter()
        .map(|(container, h)| {
            (
                *container,
                RecoveredHome {
                    node: nodes[h.node].name.clone(),
                    limit: h.limit,
                    hint: h.hint,
                    used_by_pid: h.used_by_pid.clone(),
                },
            )
        })
        .collect()
}

/// Drain the buffered journal records to the log file. Lock order is
/// journal → homes: the batch is extracted from the [`WalBuffer`]
/// while both are held (so batches hit the file in sequence order and
/// can never race a compaction's truncation), then the homes lock is
/// released before the write. Shared by the request path, the idle
/// flusher thread, and shutdown.
fn drain_wal(journal: &Mutex<Journal>, homes: &Mutex<HomesState>, now: SimTime, obs: &ObsHub) {
    let err = {
        let mut j = journal.lock();
        let batch = {
            let mut state = homes.lock();
            match state.wal.as_mut() {
                Some(wal) if wal.has_buffered() => wal.take_batch(now),
                _ => return,
            }
        };
        // The journal mutex guards exactly the file being written —
        // the sanctioned Reply::send shape, one call deeper than the
        // analyzer's guard-receiver exemption can see. The home-map
        // lock was released above, and no socket peer can wedge this.
        // lint:allow(lock-order)
        j.write_batch(&batch).is_err()
    };
    if err {
        obs.registry
            .inc("convgpu_router_journal_errors_total", &[], 1);
    }
}

/// The cluster's front door: places containers across per-node socket
/// servers and forwards the gated protocol with deadlines, bounded
/// backoff, health tracking, and failover (module docs have the full
/// story). One `ClusterRouter` is shared by every connection of its own
/// socket server (see [`ClusterRouter::serve_on`]) — all state is behind
/// its own locks, and no lock is ever held across socket I/O.
pub struct ClusterRouter {
    cfg: RouterConfig,
    clock: ClockHandle,
    codec: WireCodec,
    nodes: Vec<RouterNode>,
    /// The home map plus the journal's in-memory half (see
    /// [`HomesState`]); `Arc` so the idle flusher thread can reach it.
    /// Mutators take only this lock — never the journal lock.
    homes: Arc<Mutex<HomesState>>,
    rng: Mutex<DetRng>,
    obs: Arc<ObsHub>,
    /// Completed and rejected migrations, oldest first.
    migrations: Mutex<Vec<MigrationRecord>>,
    /// Containers mid-migration; requests for them park on the condvar.
    migrating: Mutex<BTreeSet<ContainerId>>,
    migration_done: Condvar,
    /// Nodes with a drain in flight — collapses the burst of failure
    /// notifications a dying node produces into one drain.
    draining: Mutex<BTreeSet<usize>>,
    /// The write-ahead journal's file half (`None` = the pre-journal
    /// volatile router, byte-for-byte unchanged behavior). Lock order:
    /// the drain and compaction paths acquire this *before* the homes
    /// lock, and the homes lock is released before any file I/O; the
    /// homes lock is never held first.
    journal: Option<Arc<Mutex<Journal>>>,
    /// Shutdown signal for the idle flusher: flag + wakeup condvar.
    flusher_stop: Arc<(Mutex<bool>, Condvar)>,
    /// The wall-clock idle flusher thread (journaled routers only): a
    /// quiescent router's buffered records still reach the file within
    /// about one [`JournalConfig::idle_flush`] tick.
    flusher: Option<std::thread::JoinHandle<()>>,
}

/// The context charge a node budgets on top of each limit; mirrored here
/// so the router's capability check agrees with the node's.
fn ctx_hint(limit: Bytes) -> Bytes {
    limit + Bytes::mib(66)
}

impl ClusterRouter {
    /// Front the given `(name, endpoint)` nodes — endpoints are anything
    /// convertible to an [`EndpointAddr`] (a `PathBuf` keeps meaning a
    /// UNIX socket; parse a `tcp:host:port` URI for multi-host nodes).
    /// Connections are opened lazily on first use (and reopened after
    /// failures), so the router may start before — or restart after —
    /// its nodes.
    ///
    /// # Panics
    /// With an empty node list (a cluster has at least one node).
    pub fn attach<E: Into<EndpointAddr>>(
        nodes: Vec<(String, E)>,
        codec: WireCodec,
        cfg: RouterConfig,
        clock: ClockHandle,
    ) -> ClusterRouter {
        assert!(!nodes.is_empty(), "a cluster needs at least one node");
        let seed = cfg.seed;
        let obs = Arc::new(ObsHub::new());
        let router = ClusterRouter {
            cfg,
            clock,
            codec,
            nodes: nodes
                .into_iter()
                .map(|(name, endpoint)| RouterNode::new(name, endpoint.into()))
                .collect(),
            homes: Arc::new(Mutex::new(HomesState {
                map: BTreeMap::new(),
                wal: None,
                orphans: BTreeMap::new(),
            })),
            rng: Mutex::new(DetRng::seed_from_u64(seed)),
            obs,
            migrations: Mutex::new(Vec::new()),
            migrating: Mutex::new(BTreeSet::new()),
            migration_done: Condvar::new(),
            draining: Mutex::new(BTreeSet::new()),
            journal: None,
            flusher_stop: Arc::new((Mutex::new(false), Condvar::new())),
            flusher: None,
        };
        for node in &router.nodes {
            router.publish_health(node, NodeHealth::Up);
        }
        router
    }

    /// [`ClusterRouter::attach`] with durable state: open (or create)
    /// the write-ahead journal under `journal.dir`, replay it, and seed
    /// the home map with the recovered `limit` / `hint` / `used`
    /// checkpoints — a restarted router migrates a dead node's
    /// containers with its *pre-restart* books instead of zeros.
    ///
    /// Recovery tolerates a torn or corrupt journal tail (replay stops
    /// at the first bad record; never panics) and a discarded corrupt
    /// snapshot. Homes journaled against a node name not in `nodes`
    /// are preserved as *orphans* (counted, carried through every
    /// snapshot, evicted only when the live cluster reuses their
    /// container id) so a restart with a corrected node list still
    /// recovers them. The replay outcome is published on the router's
    /// registry (`convgpu_router_journal_*`, see
    /// docs/OBSERVABILITY.md), the on-disk state is immediately
    /// recompacted into one fresh snapshot, and a background flusher
    /// thread drains buffered records on the
    /// [`JournalConfig::idle_flush`] wall-clock cadence.
    pub fn attach_with_journal<E: Into<EndpointAddr>>(
        nodes: Vec<(String, E)>,
        codec: WireCodec,
        cfg: RouterConfig,
        clock: ClockHandle,
        journal: JournalConfig,
    ) -> std::io::Result<ClusterRouter> {
        let mut router = ClusterRouter::attach(nodes, codec, cfg, clock);
        let (journal, wal, recovery) = Journal::open(journal)?;
        let idle_flush = journal.config().idle_flush;
        let mut recovered = 0u64;
        let mut orphaned = 0u64;
        {
            let mut state = router.homes.lock();
            for (container, rec) in recovery.homes {
                match router.nodes.iter().position(|n| n.name == rec.node) {
                    Some(idx) => {
                        state.map.insert(
                            container,
                            Home {
                                node: idx,
                                hint: rec.hint,
                                limit: rec.limit,
                                used_by_pid: rec.used_by_pid,
                            },
                        );
                        recovered += 1;
                    }
                    None => {
                        state.orphans.insert(container, rec);
                        orphaned += 1;
                    }
                }
            }
            state.wal = Some(wal);
        }
        let reg = &router.obs.registry;
        reg.inc(
            "convgpu_router_journal_replayed_records_total",
            &[],
            recovery.replayed,
        );
        reg.inc(
            "convgpu_router_journal_recovered_homes_total",
            &[],
            recovered,
        );
        reg.inc("convgpu_router_journal_orphan_homes_total", &[], orphaned);
        if recovery.torn_tail {
            reg.inc("convgpu_router_journal_torn_tail_total", &[], 1);
        }
        if recovery.corrupt_snapshot {
            reg.inc("convgpu_router_journal_corrupt_snapshot_total", &[], 1);
        }
        router.journal = Some(Arc::new(Mutex::new(journal)));
        // Compact immediately: recovery collapses to one fresh
        // snapshot (orphans included), so restart-after-restart never
        // replays a long log.
        router.snapshot_now();
        // The idle safety net: a quiescent router's buffered records
        // reach the file within about one tick even when no request
        // (and hence no sim-clock flush observation) ever arrives.
        // Condvar-timed on wall time — never the session clock, whose
        // virtual implementation would turn a sleep loop into a spin.
        let journal_arc = Arc::clone(router.journal.as_ref().expect("just set"));
        let homes = Arc::clone(&router.homes);
        let flusher_clock = router.clock.clone();
        let flusher_obs = Arc::clone(&router.obs);
        let stop = Arc::clone(&router.flusher_stop);
        router.flusher = Some(
            std::thread::Builder::new()
                .name("convgpu-journal-flush".into())
                .spawn(move || {
                    let (stopped, tick) = &*stop;
                    loop {
                        {
                            let mut guard = stopped.lock();
                            if !*guard {
                                tick.wait_for(&mut guard, idle_flush);
                            }
                            if *guard {
                                return;
                            }
                        }
                        drain_wal(&journal_arc, &homes, flusher_clock.now(), &flusher_obs);
                    }
                })?,
        );
        Ok(router)
    }

    /// Run one home-map mutation and (with a journal) buffer its
    /// record **in the same critical section** — the fix for the
    /// compaction race and the append/apply ordering divergence: the
    /// record's sequence number is assigned at the instant the map
    /// changes, so no interleaving can journal mutations in an order
    /// the map never went through, and no compaction can cover a
    /// sequence whose mutation its capture missed. The closure returns
    /// its result plus the op to journal (`None` = nothing changed).
    /// Everything under the lock is pure memory; the due drain or
    /// compaction happens after release.
    fn mutate<R>(
        &self,
        f: impl FnOnce(&mut BTreeMap<ContainerId, Home>) -> (R, Option<JournalOp>),
    ) -> R {
        let (result, journaled, flush_due, snapshot_due) = {
            let mut state = self.homes.lock();
            let state = &mut *state;
            let (result, op) = f(&mut state.map);
            let mut journaled = false;
            let mut flush_due = false;
            let mut snapshot_due = false;
            if let (Some(op), Some(wal)) = (&op, state.wal.as_mut()) {
                // Any journaled op on this container id supersedes a
                // preserved orphan checkpoint: the live cluster owns
                // the id now.
                state.orphans.remove(&op.container());
                wal.append(op);
                journaled = true;
                snapshot_due = wal.snapshot_due();
                flush_due = !snapshot_due && wal.flush_due(self.clock.now());
            }
            (result, journaled, flush_due, snapshot_due)
        };
        if journaled {
            self.obs
                .registry
                .inc("convgpu_router_journal_appends_total", &[], 1);
        }
        if snapshot_due {
            self.snapshot_now();
        } else if flush_due {
            if let Some(journal) = &self.journal {
                drain_wal(journal, &self.homes, self.clock.now(), &self.obs);
            }
        }
        result
    }

    /// Write a compacted snapshot of the current home map — preserved
    /// orphans included — and truncate the log (no-op without a
    /// journal). `covered` and the map state are captured under one
    /// journal → homes critical section, and the homes lock is
    /// released before any file I/O: buffered records the snapshot
    /// covers are discarded (their effects are in the capture), and a
    /// concurrent mutation either lands before the capture (included)
    /// or after (its drain queues behind the journal lock and lands in
    /// the fresh log with a sequence above `covered`).
    fn snapshot_now(&self) {
        let Some(journal) = &self.journal else { return };
        let t0 = self.clock.now();
        let err = {
            let mut j = journal.lock();
            let captured = {
                let mut state = self.homes.lock();
                let state = &mut *state;
                match state.wal.as_mut() {
                    Some(wal) => {
                        let covered = wal.begin_snapshot(t0);
                        let mut snap = state.orphans.clone();
                        // Live homes win over a stale orphan (mutate()
                        // evicts on id reuse, so overlap means a race
                        // this snapshot is about to settle).
                        snap.extend(named_homes(&self.nodes, &state.map));
                        Some((covered, snap))
                    }
                    None => None,
                }
            };
            match captured {
                // Guard-is-the-file shape, same as drain_wal; the
                // home-map lock was released with the capture.
                // lint:allow(lock-order)
                Some((covered, snap)) => j.snapshot(covered, &snap).is_err(),
                None => false,
            }
        };
        if err {
            self.obs
                .registry
                .inc("convgpu_router_journal_errors_total", &[], 1);
        }
        self.obs.registry.observe(
            "convgpu_router_snapshot_seconds",
            &[],
            self.clock.now().saturating_since(t0),
        );
    }

    /// The live home map as the journal (and its tests) see it: node
    /// *names* instead of indices, with the full checkpoint per home.
    /// Preserved orphans are not part of the live map.
    pub fn homes_snapshot(&self) -> BTreeMap<ContainerId, RecoveredHome> {
        let state = self.homes.lock();
        named_homes(&self.nodes, &state.map)
    }

    /// Drain any buffered journal records to the OS now, regardless of
    /// the flush cadence (no-op without a journal). Exposed for
    /// operator-driven shutdown paths and tests.
    pub fn journal_flush(&self) {
        if let Some(journal) = &self.journal {
            drain_wal(journal, &self.homes, self.clock.now(), &self.obs);
        }
    }

    /// The router's observability hub.
    pub fn obs(&self) -> &Arc<ObsHub> {
        &self.obs
    }

    /// The configured placement strategy.
    pub fn strategy(&self) -> SwarmStrategy {
        self.cfg.strategy
    }

    /// The session clock (drives deadlines and backoff).
    pub fn clock(&self) -> &ClockHandle {
        &self.clock
    }

    /// Router metrics in Prometheus text exposition format.
    pub fn metrics_text(&self) -> String {
        prometheus::render(&self.obs.registry.snapshot())
    }

    /// Current health of the named node, if it exists.
    pub fn node_health(&self, name: &str) -> Option<NodeHealth> {
        self.nodes
            .iter()
            .find(|n| n.name == name)
            .map(|n| n.health())
    }

    /// The `query_cluster` answer: strategy plus per-node status.
    pub fn cluster_status(&self) -> (String, Vec<ClusterNodeStatus>) {
        let mut per_node = vec![0u64; self.nodes.len()];
        {
            let state = self.homes.lock();
            for home in state.map.values() {
                per_node[home.node] += 1;
            }
        }
        let nodes = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| ClusterNodeStatus {
                node: n.name.clone(),
                health: n.health().label().to_string(),
                containers: per_node[i],
                retries: n.retries.load(Ordering::Relaxed),
                timeouts: n.timeouts.load(Ordering::Relaxed),
                failovers: n.failovers.load(Ordering::Relaxed),
            })
            .collect();
        (self.cfg.strategy.label().to_string(), nodes)
    }

    fn publish_health(&self, node: &RouterNode, health: NodeHealth) {
        self.obs.registry.set_gauge(
            "convgpu_router_node_health",
            &[("node", &node.name)],
            health.gauge(),
        );
    }

    /// A connected client for node `idx`, reusing the cached connection
    /// or dialing a fresh one.
    fn client_for(&self, idx: usize) -> IpcResult<Arc<SchedulerClient>> {
        let node = &self.nodes[idx];
        let mut state = node.state.lock();
        if let Some(c) = &state.client {
            return Ok(Arc::clone(c));
        }
        let client = Arc::new(SchedulerClient::connect_endpoint_with_codec(
            &node.endpoint,
            self.codec,
            None,
        )?);
        state.client = Some(Arc::clone(&client));
        Ok(client)
    }

    fn note_success(&self, idx: usize) {
        let node = &self.nodes[idx];
        let mut state = node.state.lock();
        state.consecutive_failures = 0;
        if state.health != NodeHealth::Up {
            if state.health == NodeHealth::Down {
                // A node coming back from the dead may be a different
                // process on different hardware: whatever capacity we
                // knew is stale until the next topology probe.
                state.caps = None;
            }
            state.health = NodeHealth::Up;
            drop(state);
            self.publish_health(node, NodeHealth::Up);
        }
    }

    /// Record a transport failure; returns the node's resulting health.
    fn note_failure(&self, idx: usize, err: &IpcError) -> NodeHealth {
        let node = &self.nodes[idx];
        let mut state = node.state.lock();
        // A timed-out request leaves the connection itself usable (the
        // late reply is discarded); a broken one must be redialed — and
        // the process behind the redial may have restarted with a
        // smaller GPU, so the cached capacity probe goes with it.
        if !matches!(err, IpcError::TimedOut) {
            state.client = None;
            state.caps = None;
        }
        state.consecutive_failures = state.consecutive_failures.saturating_add(1);
        let health = if state.consecutive_failures >= self.cfg.down_after {
            NodeHealth::Down
        } else if state.consecutive_failures >= self.cfg.degraded_after {
            NodeHealth::Degraded
        } else {
            state.health
        };
        let changed = state.health != health;
        state.health = health;
        drop(state);
        if changed {
            self.publish_health(node, health);
            if health == NodeHealth::Down {
                // The node just died under us: drain its homes onto
                // survivors so its containers live on. Runs after the
                // state lock is released; the drain guard collapses the
                // burst of failures a dying node produces.
                self.drain_node_idx(idx);
            }
        }
        health
    }

    /// Exponential backoff for retry number `attempt` (1-based), capped,
    /// plus deterministic jitter of up to one base interval.
    fn backoff(&self, attempt: u32) -> SimDuration {
        let shift = (attempt.saturating_sub(1)).min(16);
        // Every step saturates: an extreme configured base (up to
        // `SimDuration::MAX`) must land on the cap, never on an
        // overflow panic.
        let exp = SimDuration::from_nanos(
            self.cfg
                .backoff_base
                .as_nanos()
                .saturating_mul(1u64 << shift),
        );
        let capped = exp.min(self.cfg.backoff_cap);
        let jitter_ns = self
            .rng
            .lock()
            .next_below(self.cfg.backoff_base.as_nanos().max(1));
        capped.saturating_add(SimDuration::from_nanos(jitter_ns))
    }

    /// Forward a deadline-bounded request to node `idx`, retrying
    /// transport failures with backoff. A down node gets exactly one
    /// probe attempt (cheap when the socket is really gone, and the path
    /// back to `up` when the node returns) — its requests are otherwise
    /// drained by the callers' degradation rules.
    fn call_gated(&self, idx: usize, req: Request) -> IpcResult<Response> {
        let node = &self.nodes[idx];
        let retry_budget = if node.health() == NodeHealth::Down {
            0
        } else {
            self.cfg.max_retries
        };
        let mut attempt: u32 = 0;
        loop {
            let t0 = self.clock.now();
            let result = self
                .client_for(idx)
                .and_then(|c| c.request_deadline(req.clone(), &self.clock, self.cfg.deadline));
            self.obs.registry.observe(
                "convgpu_router_route_seconds",
                &[("node", &node.name)],
                self.clock.now().saturating_since(t0),
            );
            match result {
                Ok(resp) => {
                    self.note_success(idx);
                    return Ok(resp);
                }
                // The node answered: the transport is healthy and the
                // scheduler itself refused — never retried.
                Err(e @ (IpcError::Scheduler(_) | IpcError::UnexpectedResponse(_))) => {
                    self.note_success(idx);
                    return Err(e);
                }
                Err(e) => {
                    if matches!(e, IpcError::TimedOut) {
                        node.timeouts.fetch_add(1, Ordering::Relaxed);
                        self.obs.registry.inc(
                            "convgpu_router_timeouts_total",
                            &[("node", &node.name)],
                            1,
                        );
                    }
                    let health = self.note_failure(idx, &e);
                    attempt += 1;
                    if attempt > retry_budget || health == NodeHealth::Down {
                        return Err(e);
                    }
                    node.retries.fetch_add(1, Ordering::Relaxed);
                    self.obs.registry.inc(
                        "convgpu_router_retries_total",
                        &[("node", &node.name)],
                        1,
                    );
                    self.clock.sleep(self.backoff(attempt));
                }
            }
        }
    }

    /// Learn `(max device, total)` capacities for nodes that have never
    /// answered a topology probe (skipping down nodes).
    fn ensure_caps(&self) {
        for idx in 0..self.nodes.len() {
            let node = &self.nodes[idx];
            {
                let state = node.state.lock();
                if state.caps.is_some() || state.health == NodeHealth::Down {
                    continue;
                }
            }
            if let Ok(Response::Topology { devices, .. }) =
                self.call_gated(idx, Request::QueryTopology)
            {
                let max = devices
                    .iter()
                    .map(|d| d.capacity)
                    .max()
                    .unwrap_or(Bytes::ZERO);
                let total = devices.iter().fold(Bytes::ZERO, |acc, d| acc + d.capacity);
                node.state.lock().caps = Some((max, total));
            }
        }
    }

    /// Swarm placement over the router's committed-memory accounting.
    /// `excluded` marks nodes already tried (and failed) for this
    /// register.
    fn pick_node(&self, hint: Bytes, excluded: &[bool]) -> Option<usize> {
        // Committed bytes and container counts per node, from one pass
        // over the homes map.
        let mut committed = vec![Bytes::ZERO; self.nodes.len()];
        let mut placed = vec![0u64; self.nodes.len()];
        {
            let state = self.homes.lock();
            for home in state.map.values() {
                committed[home.node] += home.hint;
                placed[home.node] += 1;
            }
        }
        let capable: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| {
                if excluded[i] {
                    return false;
                }
                let state = self.nodes[i].state.lock();
                if state.health == NodeHealth::Down {
                    return false;
                }
                // Unknown capacity (node never probed) counts as capable;
                // the register forward will discover the truth.
                state.caps.is_none_or(|(max, _)| max >= hint)
            })
            .collect();
        if capable.is_empty() {
            return None;
        }
        let remaining = |i: usize| -> u64 {
            let caps = self.nodes[i].state.lock().caps;
            match caps {
                Some((_, total)) => total.as_u64().saturating_sub(committed[i].as_u64()),
                None => u64::MAX,
            }
        };
        let pick = match self.cfg.strategy {
            SwarmStrategy::Spread => capable.iter().copied().min_by_key(|&i| (placed[i], i))?,
            SwarmStrategy::BinPack => {
                let fitting: Vec<usize> = capable
                    .iter()
                    .copied()
                    .filter(|&i| remaining(i) >= hint.as_u64())
                    .collect();
                let pool = if fitting.is_empty() {
                    &capable
                } else {
                    &fitting
                };
                pool.iter().copied().min_by_key(|&i| (remaining(i), i))?
            }
            SwarmStrategy::Random => capable[self.rng.lock().index(capable.len())],
        };
        Some(pick)
    }

    /// Place and register a container; returns the chosen node's name.
    /// A node that fails at the transport level during placement is
    /// excluded and the next capable node is tried (placement failover).
    pub fn register(&self, container: ContainerId, limit: Bytes) -> IpcResult<String> {
        if self.homes.lock().map.contains_key(&container) {
            return Err(IpcError::Scheduler(format!(
                "container {container} is already registered"
            )));
        }
        self.ensure_caps();
        let hint = ctx_hint(limit);
        let mut excluded = vec![false; self.nodes.len()];
        loop {
            let Some(pick) = self.pick_node(hint, &excluded) else {
                return Err(IpcError::Scheduler(format!(
                    "no capable node for container {container} (requirement {hint})"
                )));
            };
            match self.call_gated(pick, Request::Register { container, limit }) {
                Ok(Response::Ok) => {
                    let node_name = self.nodes[pick].name.clone();
                    self.mutate(|map| {
                        map.insert(
                            container,
                            Home {
                                node: pick,
                                hint,
                                limit,
                                used_by_pid: BTreeMap::new(),
                            },
                        );
                        (
                            (),
                            Some(JournalOp::Place {
                                container,
                                node: node_name,
                                limit,
                                hint,
                            }),
                        )
                    });
                    self.obs.registry.inc(
                        "convgpu_router_placement_total",
                        &[
                            ("strategy", self.cfg.strategy.label()),
                            ("node", &self.nodes[pick].name),
                        ],
                        1,
                    );
                    return Ok(self.nodes[pick].name.clone());
                }
                Ok(other) => {
                    return Err(IpcError::UnexpectedResponse(format!("{other:?}")));
                }
                // The node itself refused (duplicate, over capacity, …):
                // a real answer, not a placement failure.
                Err(e @ IpcError::Scheduler(_)) => return Err(e),
                Err(_transport) => {
                    excluded[pick] = true;
                }
            }
        }
    }

    /// Home node index for a container the router knows.
    fn home_idx(&self, container: ContainerId) -> Option<usize> {
        self.homes.lock().map.get(&container).map(|h| h.node)
    }

    /// Re-learn the home of a container placed by a previous router
    /// incarnation: probe each live node's `query_home`. The recovered
    /// home carries a zero placement hint (the limit is node-side state).
    pub fn recover_home(&self, container: ContainerId) -> Option<usize> {
        for idx in 0..self.nodes.len() {
            if self.nodes[idx].health() == NodeHealth::Down {
                continue;
            }
            if let Ok(Response::Home { .. }) =
                self.call_gated(idx, Request::QueryHome { container })
            {
                let node_name = self.nodes[idx].name.clone();
                self.mutate(|map| {
                    map.insert(
                        container,
                        Home {
                            node: idx,
                            hint: Bytes::ZERO,
                            limit: Bytes::ZERO,
                            used_by_pid: BTreeMap::new(),
                        },
                    );
                    (
                        (),
                        Some(JournalOp::Recover {
                            container,
                            node: node_name,
                        }),
                    )
                });
                return Some(idx);
            }
        }
        None
    }

    fn route_idx(&self, container: ContainerId) -> IpcResult<usize> {
        self.await_migration(container);
        self.home_idx(container)
            .or_else(|| self.recover_home(container))
            .ok_or_else(|| IpcError::Scheduler(format!("unknown container {container}")))
    }

    /// Park the caller while `container` is mid-migration, bounded by
    /// the router deadline, so a request racing the hand-off routes to
    /// the new home instead of the dying one. The bound means a stuck
    /// migration can never wedge a client.
    fn await_migration(&self, container: ContainerId) {
        let bound = std::time::Duration::from_nanos(self.cfg.deadline.as_nanos());
        let mut migrating = self.migrating.lock();
        while migrating.contains(&container) {
            if self.migration_done.wait_for(&mut migrating, bound) {
                break;
            }
        }
    }

    /// Move one container off node `from`: checkpoint its committed
    /// budget — and its wire-observed live `used` bytes — from the
    /// router's own accounting, close it on the source (cancelling
    /// parked requests exactly like the paper's kill path; on a dead
    /// node this degrades to an ack), then replay it onto a surviving
    /// node via the `migrate` wire message, which the target daemon
    /// services as an adoption. A *live* source really frees the
    /// container's memory when it acknowledges the close, so the
    /// adoption starts from `used = 0`; only when the close degraded
    /// (the source is dead or unreachable) does the checkpointed `used`
    /// travel with the container, so the adopter pre-commits exactly
    /// the budget the container's processes still believe they hold.
    /// Candidates that refuse (full, unreachable) are excluded and the
    /// next is tried; with no survivor left the record says `rejected`
    /// and the container ends closed. Always returns the record it
    /// appended to the log.
    fn migrate_from(&self, container: ContainerId, from: usize) -> MigrationRecord {
        let t0 = self.clock.now();
        let from_name = self.nodes[from].name.clone();
        // Flag first, checkpoint second: a client call that loses the
        // race parks in `await_migration` before it touches the home
        // map, so a home that is already gone when read under the flag
        // is gone for good — the container closed, nothing to adopt.
        // (Checkpointing before flagging would let a concurrent close
        // remove the home mid-drain and still adopt the closed
        // container onto a survivor, orphaning an open copy there.)
        self.migrating.lock().insert(container);
        let checkpoint = {
            let state = self.homes.lock();
            state
                .map
                .get(&container)
                .filter(|h| h.node == from)
                .map(|h| (h.limit, h.hint, h.used()))
        };
        let Some((limit, hint, live_used)) = checkpoint else {
            // Raced away (closed or already re-homed): nothing to move.
            {
                let mut migrating = self.migrating.lock();
                migrating.remove(&container);
                self.migration_done.notify_all();
            }
            return MigrationRecord {
                container,
                from: from_name,
                to: String::new(),
                limit: Bytes::ZERO,
                used: Bytes::ZERO,
                status: "rejected".to_string(),
            };
        };
        let close = self.forward_or_degrade_flagged(
            from,
            Request::ContainerClose { container },
            Response::Ok,
        );
        // Capped at the placement hint (limit + context): the ledger can
        // never legitimately exceed what the adopter will reserve, and
        // the cap keeps a drifted ledger from poisoning the adoption.
        let used = match close {
            Ok((_, degraded)) if degraded => live_used.min(hint),
            _ => Bytes::ZERO,
        };
        self.mutate(|map| {
            map.remove(&container);
            ((), Some(JournalOp::Close { container }))
        });
        self.ensure_caps();
        let mut excluded = vec![false; self.nodes.len()];
        excluded[from] = true;
        let mut to = None;
        while let Some(pick) = self.pick_node(hint, &excluded) {
            let req = Request::Migrate {
                container,
                node: String::new(),
                limit,
                used,
            };
            match self.call_gated(pick, req) {
                Ok(Response::Ok) => {
                    // Per-pid attribution does not survive the wire (the
                    // adopter pre-commits one total), so the carried
                    // budget is re-seeded under the synthetic pid 0 —
                    // matching the node's books, where the adopted bytes
                    // have no addresses and no real pid can free them.
                    let mut used_by_pid = BTreeMap::new();
                    if used > Bytes::ZERO {
                        used_by_pid.insert(0, used);
                    }
                    let node_name = self.nodes[pick].name.clone();
                    self.mutate(|map| {
                        map.insert(
                            container,
                            Home {
                                node: pick,
                                hint,
                                limit,
                                used_by_pid,
                            },
                        );
                        (
                            (),
                            Some(JournalOp::Migrate {
                                container,
                                node: node_name,
                                limit,
                                hint,
                                used,
                            }),
                        )
                    });
                    to = Some(pick);
                    break;
                }
                // The candidate refused (full, duplicate) or its
                // transport failed: exclude it and try the next one.
                _ => excluded[pick] = true,
            }
        }
        {
            let mut migrating = self.migrating.lock();
            migrating.remove(&container);
            self.migration_done.notify_all();
        }
        let status = if to.is_some() {
            "completed"
        } else {
            "rejected"
        };
        self.obs.registry.inc(
            "convgpu_router_migrations_total",
            &[("from", from_name.as_str()), ("status", status)],
            1,
        );
        self.obs.registry.observe(
            "convgpu_router_migration_seconds",
            &[("node", &from_name)],
            self.clock.now().saturating_since(t0),
        );
        let record = MigrationRecord {
            container,
            from: from_name,
            to: to.map(|i| self.nodes[i].name.clone()).unwrap_or_default(),
            limit,
            used,
            status: status.to_string(),
        };
        self.migrations.lock().push(record.clone());
        record
    }

    /// Drain every container homed on node `idx` onto survivors.
    /// Concurrent triggers for the same node collapse into one drain.
    fn drain_node_idx(&self, idx: usize) -> Vec<MigrationRecord> {
        if !self.draining.lock().insert(idx) {
            return Vec::new();
        }
        let homed: Vec<ContainerId> = {
            let state = self.homes.lock();
            state
                .map
                .iter()
                .filter(|(_, h)| h.node == idx)
                .map(|(c, _)| *c)
                .collect()
        };
        let mut records = Vec::with_capacity(homed.len());
        for container in homed {
            records.push(self.migrate_from(container, idx));
        }
        self.draining.lock().remove(&idx);
        records
    }

    /// Operator-driven drain (`cluster rebalance` / the `migrate` wire
    /// sentinel): move every container off the named node.
    pub fn rebalance(&self, node: &str) -> IpcResult<Vec<MigrationRecord>> {
        let idx = self
            .nodes
            .iter()
            .position(|n| n.name == node)
            .ok_or_else(|| IpcError::Scheduler(format!("unknown node {node:?}")))?;
        Ok(self.drain_node_idx(idx))
    }

    /// Re-home a single container away from its current node.
    pub fn migrate_container(&self, container: ContainerId) -> IpcResult<MigrationRecord> {
        let idx = self.route_idx(container)?;
        Ok(self.migrate_from(container, idx))
    }

    /// Every migration this router has performed, oldest first.
    pub fn migration_records(&self) -> Vec<MigrationRecord> {
        self.migrations.lock().clone()
    }

    fn failover_reject(&self, idx: usize) -> AllocDecision {
        let node = &self.nodes[idx];
        node.failovers.fetch_add(1, Ordering::Relaxed);
        self.obs
            .registry
            .inc("convgpu_router_failovers_total", &[("node", &node.name)], 1);
        AllocDecision::Rejected
    }

    /// Forward an allocation request to the container's home node.
    /// **Unbounded** — suspension is the mechanism — but never hangs on a
    /// dead node: a transport failure (including the node dying
    /// mid-suspension) fails over to an `AllocDecision::Rejected`,
    /// exactly what the scheduler answers for a killed container's parked
    /// requests.
    pub fn alloc_request(
        &self,
        container: ContainerId,
        pid: u64,
        size: Bytes,
        api: ApiKind,
    ) -> IpcResult<AllocDecision> {
        let idx = self.route_idx(container)?;
        let node = &self.nodes[idx];
        if node.health() == NodeHealth::Down {
            return Ok(self.failover_reject(idx));
        }
        let client = match self.client_for(idx) {
            Ok(c) => c,
            Err(e) => {
                self.note_failure(idx, &e);
                return Ok(self.failover_reject(idx));
            }
        };
        let t0 = self.clock.now();
        let result = client.request(Request::AllocRequest {
            container,
            pid,
            size,
            api,
        });
        self.obs.registry.observe(
            "convgpu_router_route_seconds",
            &[("node", &node.name)],
            self.clock.now().saturating_since(t0),
        );
        match result {
            Ok(Response::Alloc { decision }) => {
                self.note_success(idx);
                Ok(decision)
            }
            Ok(other) => Err(IpcError::UnexpectedResponse(format!("{other:?}"))),
            Err(e @ IpcError::Scheduler(_)) => {
                self.note_success(idx);
                Err(e)
            }
            Err(e) => {
                self.note_failure(idx, &e);
                Ok(self.failover_reject(idx))
            }
        }
    }

    /// Forward a teardown-ish call that must never wedge a client: on a
    /// down node or after exhausted retries the call degrades to
    /// `fallback` instead of erroring.
    fn forward_or_degrade(
        &self,
        idx: usize,
        req: Request,
        fallback: Response,
    ) -> IpcResult<Response> {
        self.forward_or_degrade_flagged(idx, req, fallback)
            .map(|(resp, _degraded)| resp)
    }

    /// [`ClusterRouter::forward_or_degrade`], also reporting *whether*
    /// the answer is the degraded fallback rather than the node's own —
    /// the migration path needs to know if a `container_close` really
    /// freed memory on a live source or merely papered over a dead one.
    fn forward_or_degrade_flagged(
        &self,
        idx: usize,
        req: Request,
        fallback: Response,
    ) -> IpcResult<(Response, bool)> {
        if self.nodes[idx].health() == NodeHealth::Down {
            return Ok((fallback, true));
        }
        match self.call_gated(idx, req) {
            Ok(resp) => Ok((resp, false)),
            Err(e @ (IpcError::Scheduler(_) | IpcError::UnexpectedResponse(_))) => Err(e),
            Err(_transport) => Ok((fallback, true)),
        }
    }

    /// `free` for a routed container; degrades to zero bytes (the
    /// protocol's unknown-address answer) when the home node is gone.
    /// What the node reports freed is subtracted from the router's
    /// wire-observed `used` ledger — a degraded zero subtracts nothing,
    /// which is the point: a dead node freed nothing.
    pub fn free(&self, container: ContainerId, pid: u64, addr: u64) -> IpcResult<Bytes> {
        let idx = self.route_idx(container)?;
        match self.forward_or_degrade(
            idx,
            Request::Free {
                container,
                pid,
                addr,
            },
            Response::Freed { size: Bytes::ZERO },
        )? {
            Response::Freed { size } => {
                if size > Bytes::ZERO {
                    self.mutate(|map| match map.get_mut(&container) {
                        Some(home) => {
                            // Clamp, never wrap: a `free` reporting
                            // more bytes than the pid's recorded
                            // balance (out-of-order delivery, node
                            // restart) zeroes the entry.
                            if let Some(used) = home.used_by_pid.get_mut(&pid) {
                                *used = used.saturating_sub(size);
                            }
                            (
                                (),
                                Some(JournalOp::Free {
                                    container,
                                    pid,
                                    size,
                                }),
                            )
                        }
                        None => ((), None),
                    });
                }
                Ok(size)
            }
            other => Err(IpcError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// `alloc_done` for a routed container (degrades to an ack). The
    /// confirmed bytes are added to the router's wire-observed `used`
    /// ledger for the container — the checkpoint a dead-node migration
    /// carries to the adopter.
    pub fn alloc_done(
        &self,
        container: ContainerId,
        pid: u64,
        addr: u64,
        size: Bytes,
    ) -> IpcResult<()> {
        let idx = self.route_idx(container)?;
        match self.forward_or_degrade(
            idx,
            Request::AllocDone {
                container,
                pid,
                addr,
                size,
            },
            Response::Ok,
        )? {
            Response::Ok => {
                self.mutate(|map| match map.get_mut(&container) {
                    Some(home) => {
                        let used = home.used_by_pid.entry(pid).or_insert(Bytes::ZERO);
                        // Saturate rather than wrap: a hostile or
                        // buggy node confirming absurd totals can
                        // skew the ledger but never panic it.
                        *used = Bytes::new(used.as_u64().saturating_add(size.as_u64()));
                        (
                            (),
                            Some(JournalOp::AllocDone {
                                container,
                                pid,
                                size,
                            }),
                        )
                    }
                    None => ((), None),
                });
                Ok(())
            }
            other => Err(IpcError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// `alloc_failed` for a routed container (degrades to an ack).
    pub fn alloc_failed(&self, container: ContainerId, pid: u64, size: Bytes) -> IpcResult<()> {
        let idx = self.route_idx(container)?;
        match self.forward_or_degrade(
            idx,
            Request::AllocFailed {
                container,
                pid,
                size,
            },
            Response::Ok,
        )? {
            Response::Ok => Ok(()),
            other => Err(IpcError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// `mem_info` for a routed container. Not degraded: book-keeping
    /// answers from a dead node would be fabrications, so this errors.
    pub fn mem_info(&self, container: ContainerId, pid: u64) -> IpcResult<(Bytes, Bytes)> {
        let idx = self.route_idx(container)?;
        if self.nodes[idx].health() == NodeHealth::Down {
            return Err(IpcError::Scheduler(format!(
                "node {} is down",
                self.nodes[idx].name
            )));
        }
        match self.call_gated(idx, Request::MemInfo { container, pid })? {
            Response::MemInfo { free, total } => Ok((free, total)),
            other => Err(IpcError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// `process_exit` for a routed container (degrades to an ack). The
    /// pid's entry leaves the `used` ledger: the client declared the
    /// process dead, so its memory is reclaimable wherever the
    /// container lands next.
    pub fn process_exit(&self, container: ContainerId, pid: u64) -> IpcResult<()> {
        let idx = self.route_idx(container)?;
        match self.forward_or_degrade(idx, Request::ProcessExit { container, pid }, Response::Ok)? {
            Response::Ok => {
                self.mutate(|map| match map.get_mut(&container) {
                    Some(home) => {
                        home.used_by_pid.remove(&pid);
                        ((), Some(JournalOp::ProcessExit { container, pid }))
                    }
                    None => ((), None),
                });
                Ok(())
            }
            other => Err(IpcError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// `container_close` for a routed container: the router's home entry
    /// is dropped, and the node-side close degrades to an ack when the
    /// node is gone. A close that races a drain re-forwards to the
    /// adoptive node: without that, the close can land on the dying
    /// source while the hand-off adopts the container onto a survivor,
    /// leaving an open copy there that nobody will ever close.
    pub fn container_close(&self, container: ContainerId) -> IpcResult<()> {
        let mut idx = self.route_idx(container)?;
        loop {
            let result =
                self.forward_or_degrade(idx, Request::ContainerClose { container }, Response::Ok);
            // Re-check the home after the forward: a concurrent drain
            // may have re-homed the container while the close was in
            // flight on the old node.
            self.await_migration(container);
            let rehomed = self.mutate(|map| match map.get(&container).map(|h| h.node) {
                Some(new_idx) if new_idx != idx => (Some(new_idx), None),
                _ => {
                    let removed = map.remove(&container).is_some();
                    (None, removed.then_some(JournalOp::Close { container }))
                }
            });
            if let Some(new_idx) = rehomed {
                idx = new_idx;
                continue;
            }
            return match result? {
                Response::Ok => Ok(()),
                other => Err(IpcError::UnexpectedResponse(format!("{other:?}"))),
            };
        }
    }

    /// `request_dir` for a routed container (the volume directory lives
    /// on the home node).
    pub fn request_dir(&self, container: ContainerId) -> IpcResult<String> {
        let idx = self.route_idx(container)?;
        match self.call_gated(idx, Request::RequestDir { container })? {
            Response::Dir { path } => Ok(path),
            other => Err(IpcError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Aggregate `query_topology` across live nodes: kind `"cluster"`,
    /// each node's devices stamped with the router's node name. Downed or
    /// unreachable nodes contribute no devices.
    pub fn topology(&self) -> (String, Vec<TopologyDevice>) {
        let mut all = Vec::new();
        for idx in 0..self.nodes.len() {
            if self.nodes[idx].health() == NodeHealth::Down {
                continue;
            }
            if let Ok(Response::Topology { devices, .. }) =
                self.call_gated(idx, Request::QueryTopology)
            {
                for mut d in devices {
                    d.node = self.nodes[idx].name.clone();
                    all.push(d);
                }
            }
        }
        ("cluster".to_string(), all)
    }

    /// `query_home` through the router: the node name is the router's
    /// label for the home node; the device index comes from the node.
    pub fn query_home(&self, container: ContainerId) -> IpcResult<(String, u64)> {
        let idx = self.route_idx(container)?;
        match self.call_gated(idx, Request::QueryHome { container })? {
            Response::Home { device, .. } => Ok((self.nodes[idx].name.clone(), device)),
            other => Err(IpcError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Serve this router on its own UNIX socket, fronting the whole
    /// cluster behind the ordinary wire protocol.
    pub fn serve_on(self: &Arc<Self>, path: &Path) -> std::io::Result<SocketServer> {
        self.serve_on_endpoint(&EndpointAddr::from(path))
    }

    /// Serve this router on any transport endpoint (`unix:/path` or
    /// `tcp:host:port`), fronting the whole cluster behind the ordinary
    /// wire protocol.
    pub fn serve_on_endpoint(
        self: &Arc<Self>,
        endpoint: &EndpointAddr,
    ) -> std::io::Result<SocketServer> {
        SocketServer::bind_endpoint(endpoint, Arc::new(RouterHandler::new(Arc::clone(self))))
    }
}

/// Graceful shutdown keeps the journal's buffered tail: stop and join
/// the idle flusher, then drain whatever is still buffered. Only a
/// hard kill (`kill -9`) loses records, bounded by roughly one flush
/// tick — the durability contract in the journal module docs.
impl Drop for ClusterRouter {
    fn drop(&mut self) {
        if let Some(handle) = self.flusher.take() {
            let (stopped, tick) = &*self.flusher_stop;
            *stopped.lock() = true;
            tick.notify_all();
            let _ = handle.join();
        }
        self.journal_flush();
    }
}

/// The router behaves as a [`SchedulerEndpoint`], so every existing
/// driver (loadgen workers, the wrapper, tests) can run against a routed
/// cluster unchanged.
impl SchedulerEndpoint for ClusterRouter {
    fn register(&self, container: ContainerId, limit: Bytes) -> IpcResult<()> {
        ClusterRouter::register(self, container, limit).map(|_| ())
    }

    fn request_dir(&self, container: ContainerId) -> IpcResult<String> {
        ClusterRouter::request_dir(self, container)
    }

    fn request_alloc(
        &self,
        container: ContainerId,
        pid: u64,
        size: Bytes,
        api: ApiKind,
    ) -> IpcResult<AllocDecision> {
        self.alloc_request(container, pid, size, api)
    }

    fn alloc_done(
        &self,
        container: ContainerId,
        pid: u64,
        addr: u64,
        size: Bytes,
    ) -> IpcResult<()> {
        ClusterRouter::alloc_done(self, container, pid, addr, size)
    }

    fn alloc_failed(&self, container: ContainerId, pid: u64, size: Bytes) -> IpcResult<()> {
        ClusterRouter::alloc_failed(self, container, pid, size)
    }

    fn free(&self, container: ContainerId, pid: u64, addr: u64) -> IpcResult<Bytes> {
        ClusterRouter::free(self, container, pid, addr)
    }

    fn mem_info(&self, container: ContainerId, pid: u64) -> IpcResult<(Bytes, Bytes)> {
        ClusterRouter::mem_info(self, container, pid)
    }

    fn process_exit(&self, container: ContainerId, pid: u64) -> IpcResult<()> {
        ClusterRouter::process_exit(self, container, pid)
    }

    fn container_close(&self, container: ContainerId) -> IpcResult<()> {
        ClusterRouter::container_close(self, container)
    }

    fn ping(&self) -> IpcResult<()> {
        Ok(())
    }

    fn query_topology(&self) -> IpcResult<(String, Vec<TopologyDevice>)> {
        Ok(self.topology())
    }

    fn query_home(&self, container: ContainerId) -> IpcResult<(String, u64)> {
        ClusterRouter::query_home(self, container)
    }
}

/// Wire adapter serving a [`ClusterRouter`] on a socket. Allocation
/// requests are forwarded from their own thread so a suspension on one
/// node never blocks the connection's reader loop (the per-connection
/// analog of the service parking a [`Reply`]).
pub struct RouterHandler {
    router: Arc<ClusterRouter>,
}

impl RouterHandler {
    /// Wrap `router`.
    pub fn new(router: Arc<ClusterRouter>) -> Self {
        RouterHandler { router }
    }
}

fn reply_result<T>(reply: Reply, result: IpcResult<T>, f: impl FnOnce(T) -> Response) {
    match result {
        Ok(v) => reply.send(f(v)),
        Err(e) => reply.send(Response::Error {
            message: e.to_string(),
        }),
    }
}

impl RequestHandler for RouterHandler {
    fn on_request(&self, _conn: ConnId, req: Request, reply: Reply) {
        match req {
            Request::Register { container, limit } => {
                reply_result(
                    reply,
                    ClusterRouter::register(&self.router, container, limit),
                    |_| Response::Ok,
                );
            }
            Request::RequestDir { container } => {
                reply_result(reply, self.router.request_dir(container), |path| {
                    Response::Dir { path }
                });
            }
            Request::AllocRequest {
                container,
                pid,
                size,
                api,
            } => {
                // May block for as long as the node suspends — run it off
                // the reader thread.
                let router = Arc::clone(&self.router);
                std::thread::spawn(move || {
                    reply_result(
                        reply,
                        router.alloc_request(container, pid, size, api),
                        |decision| Response::Alloc { decision },
                    );
                });
            }
            Request::AllocDone {
                container,
                pid,
                addr,
                size,
            } => {
                reply_result(
                    reply,
                    ClusterRouter::alloc_done(&self.router, container, pid, addr, size),
                    |_| Response::Ok,
                );
            }
            Request::AllocFailed {
                container,
                pid,
                size,
            } => {
                reply_result(
                    reply,
                    ClusterRouter::alloc_failed(&self.router, container, pid, size),
                    |_| Response::Ok,
                );
            }
            Request::Free {
                container,
                pid,
                addr,
            } => {
                reply_result(
                    reply,
                    ClusterRouter::free(&self.router, container, pid, addr),
                    |size| Response::Freed { size },
                );
            }
            Request::MemInfo { container, pid } => {
                reply_result(
                    reply,
                    ClusterRouter::mem_info(&self.router, container, pid),
                    |(free, total)| Response::MemInfo { free, total },
                );
            }
            Request::ProcessExit { container, pid } => {
                reply_result(
                    reply,
                    ClusterRouter::process_exit(&self.router, container, pid),
                    |_| Response::Ok,
                );
            }
            Request::ContainerClose { container } => {
                reply_result(
                    reply,
                    ClusterRouter::container_close(&self.router, container),
                    |_| Response::Ok,
                );
            }
            Request::Ping => reply.send(Response::Pong),
            Request::QueryMetrics => reply.send(Response::Metrics {
                text: self.router.metrics_text(),
            }),
            Request::QueryTopology => {
                let (kind, devices) = self.router.topology();
                reply.send(Response::Topology { kind, devices });
            }
            Request::QueryHome { container } => {
                reply_result(
                    reply,
                    ClusterRouter::query_home(&self.router, container),
                    |(node, device)| Response::Home { node, device },
                );
            }
            Request::QueryCluster => {
                let (strategy, nodes) = self.router.cluster_status();
                reply.send(Response::Cluster { strategy, nodes });
            }
            Request::Migrate {
                container, node, ..
            } => {
                // The zero-container sentinel with a node name drains
                // that node; a real container id re-homes just it. Both
                // answer with the migration records they produced, so
                // `convgpu-cli cluster rebalance` can print the outcome.
                if container == ContainerId(0) && !node.is_empty() {
                    reply_result(reply, self.router.rebalance(&node), |records| {
                        Response::Migrations { records }
                    });
                } else {
                    reply_result(reply, self.router.migrate_container(container), |record| {
                        Response::Migrations {
                            records: vec![record],
                        }
                    });
                }
            }
            Request::QueryMigrations => reply.send(Response::Migrations {
                records: self.router.migration_records(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use convgpu_scheduler::core::{Scheduler, SchedulerConfig};
    use convgpu_scheduler::policy::PolicyKind;
    use convgpu_sim_core::clock::{RealClock, VirtualClock};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("convgpu-router-test-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn node(tag: &str, name: &str, capacity_mib: u64, clock: ClockHandle) -> NodeServer {
        let dir = temp_dir(tag).join(name);
        std::fs::create_dir_all(&dir).unwrap();
        let backend = TopologyBackend::Single(Scheduler::new(
            SchedulerConfig::with_capacity(Bytes::mib(capacity_mib)),
            PolicyKind::Fifo.build(0),
        ));
        NodeServer::serve(name, backend, clock, dir.clone(), &dir.join("node.sock")).unwrap()
    }

    fn router_over(nodes: &[&NodeServer], cfg: RouterConfig, clock: ClockHandle) -> ClusterRouter {
        router_over_codec(nodes, cfg, clock, WireCodec::Json)
    }

    fn router_over_codec(
        nodes: &[&NodeServer],
        cfg: RouterConfig,
        clock: ClockHandle,
        codec: WireCodec,
    ) -> ClusterRouter {
        ClusterRouter::attach(
            nodes
                .iter()
                .map(|n| (n.name().to_string(), n.socket_path().to_path_buf()))
                .collect(),
            codec,
            cfg,
            clock,
        )
    }

    #[test]
    fn spread_places_round_robin_across_nodes() {
        let clock = RealClock::handle();
        let n0 = node("spread", "n0", 1024, clock.clone());
        let n1 = node("spread", "n1", 1024, clock.clone());
        let router = router_over(&[&n0, &n1], RouterConfig::default(), clock);
        let mut names = Vec::new();
        for c in 1..=4 {
            names.push(router.register(ContainerId(c), Bytes::mib(100)).unwrap());
        }
        assert_eq!(names, vec!["n0", "n1", "n0", "n1"]);
        let (strategy, status) = router.cluster_status();
        assert_eq!(strategy, "spread");
        assert_eq!(status[0].containers, 2);
        assert_eq!(status[1].containers, 2);
        assert!(status.iter().all(|s| s.health == "up"));
        n0.shutdown();
        n1.shutdown();
    }

    #[test]
    fn full_lifecycle_routes_to_the_home_node() {
        let clock = RealClock::handle();
        let n0 = node("life", "n0", 1024, clock.clone());
        let n1 = node("life", "n1", 1024, clock.clone());
        let router = router_over(&[&n0, &n1], RouterConfig::default(), clock);
        router.register(ContainerId(1), Bytes::mib(256)).unwrap();
        assert_eq!(
            router
                .alloc_request(ContainerId(1), 7, Bytes::mib(64), ApiKind::Malloc)
                .unwrap(),
            AllocDecision::Granted
        );
        ClusterRouter::alloc_done(&router, ContainerId(1), 7, 0xA0, Bytes::mib(64)).unwrap();
        assert_eq!(
            ClusterRouter::mem_info(&router, ContainerId(1), 7).unwrap(),
            (Bytes::mib(192), Bytes::mib(256))
        );
        assert_eq!(
            ClusterRouter::free(&router, ContainerId(1), 7, 0xA0).unwrap(),
            Bytes::mib(64)
        );
        let (home, _device) = ClusterRouter::query_home(&router, ContainerId(1)).unwrap();
        assert_eq!(home, "n0");
        ClusterRouter::process_exit(&router, ContainerId(1), 7).unwrap();
        ClusterRouter::container_close(&router, ContainerId(1)).unwrap();
        assert!(router.home_idx(ContainerId(1)).is_none());
        n0.shutdown();
        n1.shutdown();
    }

    #[test]
    fn binpack_fills_one_node_before_the_next() {
        let clock = RealClock::handle();
        let n0 = node("binpack", "n0", 1024, clock.clone());
        let n1 = node("binpack", "n1", 1024, clock.clone());
        let cfg = RouterConfig {
            strategy: SwarmStrategy::BinPack,
            ..RouterConfig::default()
        };
        let router = router_over(&[&n0, &n1], cfg, clock);
        // 300 + 66 MiB committed per container: two fit in 1024, the
        // third must spill to the other node.
        let mut names = Vec::new();
        for c in 1..=3 {
            names.push(router.register(ContainerId(c), Bytes::mib(300)).unwrap());
        }
        assert_eq!(names, vec!["n0", "n0", "n1"]);
        n0.shutdown();
        n1.shutdown();
    }

    #[test]
    fn dead_node_fails_over_allocs_to_rejections() {
        let clock = RealClock::handle();
        let n0 = node("failover", "n0", 1024, clock.clone());
        let n1 = node("failover", "n1", 1024, clock.clone());
        // Virtual clock on the router: backoff and deadlines run in
        // virtual time, so the failure schedule is instant and exact.
        let vclock: ClockHandle = VirtualClock::new().handle();
        let cfg = RouterConfig {
            max_retries: 1,
            down_after: 2,
            ..RouterConfig::default()
        };
        let router = router_over(&[&n0, &n1], cfg, vclock);
        router.register(ContainerId(1), Bytes::mib(100)).unwrap(); // → n0
        router.register(ContainerId(2), Bytes::mib(100)).unwrap(); // → n1
        n0.shutdown();
        // Allocs for the dead node's container come back as rejections
        // (never hangs, never Err) until the failure threshold downs
        // the node.
        for _ in 0..2 {
            assert_eq!(
                router
                    .alloc_request(ContainerId(1), 1, Bytes::mib(10), ApiKind::Malloc)
                    .unwrap(),
                AllocDecision::Rejected
            );
        }
        assert_eq!(router.node_health("n0"), Some(NodeHealth::Down));
        // Going down triggered the drain: the container was migrated to
        // the survivor and its next allocation is served there.
        let records = router.migration_records();
        assert_eq!(records.len(), 1, "{records:?}");
        assert_eq!(records[0].container, ContainerId(1));
        assert_eq!(records[0].from, "n0");
        assert_eq!(records[0].to, "n1");
        assert_eq!(records[0].status, "completed");
        assert_eq!(
            router
                .alloc_request(ContainerId(1), 1, Bytes::mib(10), ApiKind::Malloc)
                .unwrap(),
            AllocDecision::Granted
        );
        let (home, _) = ClusterRouter::query_home(&router, ContainerId(1)).unwrap();
        assert_eq!(home, "n1");
        // The live node also still serves its own container.
        assert_eq!(
            router
                .alloc_request(ContainerId(2), 2, Bytes::mib(10), ApiKind::Malloc)
                .unwrap(),
            AllocDecision::Granted
        );
        assert_eq!(router.node_health("n1"), Some(NodeHealth::Up));
        // Teardown completes on the new home, zero hung clients.
        ClusterRouter::free(&router, ContainerId(1), 1, 0xDEAD).unwrap();
        ClusterRouter::container_close(&router, ContainerId(1)).unwrap();
        let (_, status) = router.cluster_status();
        assert!(status[0].failovers >= 1, "failovers: {status:?}");
        n1.shutdown();
    }

    #[test]
    fn dead_node_migration_carries_wire_observed_used() {
        let clock = RealClock::handle();
        let n0 = node("deadused", "n0", 1024, clock.clone());
        let n1 = node("deadused", "n1", 1024, clock.clone());
        let vclock: ClockHandle = VirtualClock::new().handle();
        let cfg = RouterConfig {
            max_retries: 1,
            down_after: 2,
            ..RouterConfig::default()
        };
        let router = router_over(&[&n0, &n1], cfg, vclock);
        // Registers onto n0. One pid allocates twice, frees once: the
        // router's wire-observed ledger ends at 300 − 200 = 100 MiB.
        router.register(ContainerId(1), Bytes::mib(400)).unwrap();
        assert_eq!(
            router
                .alloc_request(ContainerId(1), 7, Bytes::mib(200), ApiKind::Malloc)
                .unwrap(),
            AllocDecision::Granted
        );
        ClusterRouter::alloc_done(&router, ContainerId(1), 7, 0xA0, Bytes::mib(200)).unwrap();
        assert_eq!(
            router
                .alloc_request(ContainerId(1), 7, Bytes::mib(100), ApiKind::Malloc)
                .unwrap(),
            AllocDecision::Granted
        );
        ClusterRouter::alloc_done(&router, ContainerId(1), 7, 0xA1, Bytes::mib(100)).unwrap();
        assert_eq!(
            ClusterRouter::free(&router, ContainerId(1), 7, 0xA0).unwrap(),
            Bytes::mib(200)
        );
        // Kill the source; the failure threshold downs it and drains the
        // container onto the survivor.
        n0.shutdown();
        for _ in 0..2 {
            assert_eq!(
                router
                    .alloc_request(ContainerId(1), 7, Bytes::mib(10), ApiKind::Malloc)
                    .unwrap(),
                AllocDecision::Rejected
            );
        }
        assert_eq!(router.node_health("n0"), Some(NodeHealth::Down));
        let records = router.migration_records();
        assert_eq!(records.len(), 1, "{records:?}");
        assert_eq!(records[0].status, "completed");
        assert_eq!(records[0].to, "n1");
        assert_eq!(records[0].limit, Bytes::mib(400));
        // The dead source could not free anything: the checkpointed live
        // budget travelled with the container.
        assert_eq!(records[0].used, Bytes::mib(100));
        // Behavioral proof the adopter pre-committed it: with used = 100
        // and the 66 MiB context for a fresh pid, a 350 MiB allocation
        // exceeds the 400 + 66 requirement (rejected outright), while a
        // 250 MiB one fits and is granted. Had the adoption started from
        // used = 0, the 350 MiB request would have been granted.
        assert_eq!(
            router
                .alloc_request(ContainerId(1), 9, Bytes::mib(350), ApiKind::Malloc)
                .unwrap(),
            AllocDecision::Rejected
        );
        assert_eq!(
            router
                .alloc_request(ContainerId(1), 9, Bytes::mib(250), ApiKind::Malloc)
                .unwrap(),
            AllocDecision::Granted
        );
        n1.service().with_scheduler(|s| {
            s.check_invariants().unwrap();
        });
        ClusterRouter::container_close(&router, ContainerId(1)).unwrap();
        n1.shutdown();
    }

    #[test]
    fn register_fails_over_to_the_next_capable_node() {
        let clock = RealClock::handle();
        let n0 = node("regfail", "n0", 1024, clock.clone());
        let n1 = node("regfail", "n1", 1024, clock.clone());
        let vclock: ClockHandle = VirtualClock::new().handle();
        let cfg = RouterConfig {
            max_retries: 0,
            ..RouterConfig::default()
        };
        let router = router_over(&[&n0, &n1], cfg, vclock);
        // Warm the capability cache while both nodes are alive.
        router.register(ContainerId(9), Bytes::mib(1)).unwrap();
        n0.shutdown();
        // Spread would pick n0 next; its transport failure must fail the
        // placement over to n1 instead of erroring out.
        assert_eq!(
            router.register(ContainerId(1), Bytes::mib(100)).unwrap(),
            "n1"
        );
        n1.shutdown();
    }

    #[test]
    fn restarted_router_recovers_homes_from_live_nodes() {
        let clock = RealClock::handle();
        let n0 = node("recover", "n0", 1024, clock.clone());
        let n1 = node("recover", "n1", 1024, clock.clone());
        let first = router_over(&[&n0, &n1], RouterConfig::default(), clock.clone());
        first.register(ContainerId(1), Bytes::mib(100)).unwrap();
        first.register(ContainerId(2), Bytes::mib(100)).unwrap();
        drop(first);
        // A brand-new router (fresh homes map) re-attaches to the same
        // sockets and finds the containers by probing.
        let second = router_over(&[&n0, &n1], RouterConfig::default(), clock);
        assert_eq!(
            second
                .alloc_request(ContainerId(2), 2, Bytes::mib(10), ApiKind::Malloc)
                .unwrap(),
            AllocDecision::Granted
        );
        let (home, _) = ClusterRouter::query_home(&second, ContainerId(1)).unwrap();
        assert_eq!(home, "n0");
        n0.shutdown();
        n1.shutdown();
    }

    #[test]
    fn rebalance_drains_a_node_and_conserves_committed_budget() {
        let clock = RealClock::handle();
        let n0 = node("rebalance", "n0", 1024, clock.clone());
        let n1 = node("rebalance", "n1", 1024, clock.clone());
        let router = router_over(&[&n0, &n1], RouterConfig::default(), clock);
        // C1 lands on n0, C2 on n1; put live bytes on the source before
        // the drain…
        router.register(ContainerId(1), Bytes::mib(100)).unwrap();
        router.register(ContainerId(2), Bytes::mib(100)).unwrap();
        assert_eq!(
            router
                .alloc_request(ContainerId(1), 9, Bytes::mib(20), ApiKind::Malloc)
                .unwrap(),
            AllocDecision::Granted
        );
        ClusterRouter::alloc_done(&router, ContainerId(1), 9, 0xA9, Bytes::mib(20)).unwrap();
        let records = router.rebalance("n0").unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].container, ContainerId(1));
        assert_eq!(records[0].status, "completed");
        assert_eq!(records[0].to, "n1");
        assert_eq!(records[0].limit, Bytes::mib(100));
        // …but the source was *alive*: its acknowledged close really
        // freed them, so the adoption starts from zero.
        assert_eq!(records[0].used, Bytes::ZERO);
        // Both homes now on n1, none left on n0, and the moved
        // container completes a full lifecycle on its new home.
        let (_, status) = router.cluster_status();
        assert_eq!(status[0].containers, 0);
        assert_eq!(status[1].containers, 2);
        assert_eq!(
            router
                .alloc_request(ContainerId(1), 3, Bytes::mib(50), ApiKind::Malloc)
                .unwrap(),
            AllocDecision::Granted
        );
        ClusterRouter::alloc_done(&router, ContainerId(1), 3, 0xB0, Bytes::mib(50)).unwrap();
        // The adopting node pre-reserved the migrated budget: committed
        // memory on n1 never exceeds its capacity.
        n1.service().with_scheduler(|s| {
            s.check_invariants().unwrap();
            assert!(s.total_assigned() <= Bytes::mib(1024));
        });
        ClusterRouter::container_close(&router, ContainerId(1)).unwrap();
        ClusterRouter::container_close(&router, ContainerId(2)).unwrap();
        let text = router.metrics_text();
        assert!(text.contains("convgpu_router_migrations_total"), "{text}");
        assert!(text.contains("convgpu_router_migration_seconds"), "{text}");
        n0.shutdown();
        n1.shutdown();
    }

    #[test]
    fn migration_without_a_capable_survivor_is_a_clean_rejection() {
        let clock = RealClock::handle();
        let n0 = node("nofit", "n0", 1024, clock.clone());
        // Too small to adopt 100 MiB + the 66 MiB context hint.
        let n1 = node("nofit", "n1", 150, clock.clone());
        let vclock: ClockHandle = VirtualClock::new().handle();
        let cfg = RouterConfig {
            max_retries: 0,
            down_after: 1,
            ..RouterConfig::default()
        };
        let router = router_over(&[&n0, &n1], cfg, vclock);
        router.register(ContainerId(1), Bytes::mib(100)).unwrap(); // → n0
        n0.shutdown();
        assert_eq!(
            router
                .alloc_request(ContainerId(1), 1, Bytes::mib(10), ApiKind::Malloc)
                .unwrap(),
            AllocDecision::Rejected
        );
        let records = router.migration_records();
        assert_eq!(records.len(), 1, "{records:?}");
        assert_eq!(records[0].status, "rejected");
        assert_eq!(records[0].to, "");
        // The container ends closed — later requests error cleanly
        // instead of hanging, and the survivor is untouched.
        assert!(router
            .alloc_request(ContainerId(1), 1, Bytes::mib(10), ApiKind::Malloc)
            .is_err());
        n1.service()
            .with_scheduler(|s| s.check_invariants().unwrap());
        n1.shutdown();
    }

    #[test]
    fn backoff_saturates_at_extreme_config() {
        let n0 = node("backoffsat", "n0", 64, RealClock::handle());
        let cfg = RouterConfig {
            backoff_base: SimDuration::MAX,
            backoff_cap: SimDuration::MAX,
            ..RouterConfig::default()
        };
        let router = router_over(&[&n0], cfg, VirtualClock::new().handle());
        // Any attempt number must land on the cap — never on the debug
        // overflow abort the unchecked `base * (1 << shift)` used to hit.
        for attempt in [0, 1, 2, 17, u32::MAX] {
            assert_eq!(router.backoff(attempt), SimDuration::MAX);
        }
        n0.shutdown();
    }

    #[test]
    fn restarted_smaller_node_does_not_receive_oversized_placements() {
        let clock = RealClock::handle();
        let n0 = node("stalecaps", "n0", 1024, clock.clone());
        let n1 = node("stalecaps", "n1", 1024, clock.clone());
        let vclock: ClockHandle = VirtualClock::new().handle();
        let cfg = RouterConfig {
            max_retries: 0,
            ..RouterConfig::default()
        };
        let router = router_over(&[&n0, &n1], cfg, vclock);
        // Warm the capability cache at 1024 MiB on both nodes.
        router.register(ContainerId(1), Bytes::mib(100)).unwrap(); // → n0
        router.register(ContainerId(2), Bytes::mib(100)).unwrap(); // → n1
                                                                   // n0 dies; the next placement attempt on it fails over and — the
                                                                   // bugfix — drops the stale 1024 MiB capability entry with the
                                                                   // dead client.
        n0.shutdown();
        assert_eq!(
            router.register(ContainerId(3), Bytes::mib(300)).unwrap(),
            "n1"
        );
        // n0 restarts at the same socket with a smaller GPU. Spread
        // prefers it again (1 container vs 2), but the re-probed
        // capability says 150 MiB, so a 300 MiB container must not land
        // there. With the stale cache it would have.
        let n0b = node("stalecaps", "n0", 150, clock);
        assert_eq!(
            router.register(ContainerId(4), Bytes::mib(300)).unwrap(),
            "n1"
        );
        // A right-sized container still lands on the restarted node.
        assert_eq!(
            router.register(ContainerId(5), Bytes::mib(40)).unwrap(),
            "n0"
        );
        n0b.shutdown();
        n1.shutdown();
    }

    #[test]
    fn wire_ledger_clamps_on_out_of_order_frees() {
        let clock = RealClock::handle();
        let n0 = node("clamp", "n0", 1024, clock.clone());
        let first = router_over(&[&n0], RouterConfig::default(), clock.clone());
        first.register(ContainerId(1), Bytes::mib(400)).unwrap();
        assert_eq!(
            first
                .alloc_request(ContainerId(1), 7, Bytes::mib(200), ApiKind::Malloc)
                .unwrap(),
            AllocDecision::Granted
        );
        ClusterRouter::alloc_done(&first, ContainerId(1), 7, 0xA0, Bytes::mib(200)).unwrap();
        drop(first);
        // Restarted without a journal: the re-learned ledger is empty, so
        // the node's answer to the old free (200 MiB) exceeds the pid's
        // freshly recorded balance (10 MiB). The ledger must clamp to
        // zero, not wrap to ~2^64 bytes.
        let second = router_over(&[&n0], RouterConfig::default(), clock);
        assert_eq!(
            second
                .alloc_request(ContainerId(1), 7, Bytes::mib(10), ApiKind::Malloc)
                .unwrap(),
            AllocDecision::Granted
        );
        ClusterRouter::alloc_done(&second, ContainerId(1), 7, 0xB0, Bytes::mib(10)).unwrap();
        assert_eq!(
            ClusterRouter::free(&second, ContainerId(1), 7, 0xA0).unwrap(),
            Bytes::mib(200)
        );
        let homes = second.homes_snapshot();
        assert_eq!(homes[&ContainerId(1)].used_by_pid[&7], Bytes::ZERO);
        n0.shutdown();
    }

    #[test]
    fn restart_without_a_journal_is_pinned_to_zero_checkpoints() {
        // Frozen baseline for the journal's improvement, over both
        // codecs: a router restarted *without* a journal re-learns homes
        // with limit = 0, hint = 0, and an empty ledger, and a later
        // migration replays that zero checkpoint.
        for (tag, codec) in [
            ("zerojson", WireCodec::Json),
            ("zerobin", WireCodec::Binary),
        ] {
            let clock = RealClock::handle();
            let n0 = node(tag, "n0", 1024, clock.clone());
            let n1 = node(tag, "n1", 1024, clock.clone());
            let cfg = RouterConfig {
                max_retries: 1,
                down_after: 2,
                ..RouterConfig::default()
            };
            let first = router_over_codec(
                &[&n0, &n1],
                cfg.clone(),
                VirtualClock::new().handle(),
                codec,
            );
            first.register(ContainerId(1), Bytes::mib(400)).unwrap();
            assert_eq!(
                first
                    .alloc_request(ContainerId(1), 7, Bytes::mib(200), ApiKind::Malloc)
                    .unwrap(),
                AllocDecision::Granted
            );
            ClusterRouter::alloc_done(&first, ContainerId(1), 7, 0xA0, Bytes::mib(200)).unwrap();
            drop(first);
            let second = router_over_codec(&[&n0, &n1], cfg, VirtualClock::new().handle(), codec);
            // Lazy re-learn while the home is alive…
            assert_eq!(
                second
                    .alloc_request(ContainerId(1), 7, Bytes::mib(10), ApiKind::Malloc)
                    .unwrap(),
                AllocDecision::Granted
            );
            let homes = second.homes_snapshot();
            assert_eq!(homes[&ContainerId(1)].node, "n0", "codec {codec:?}");
            assert_eq!(homes[&ContainerId(1)].limit, Bytes::ZERO, "codec {codec:?}");
            assert_eq!(homes[&ContainerId(1)].hint, Bytes::ZERO, "codec {codec:?}");
            assert!(
                homes[&ContainerId(1)].used_by_pid.is_empty(),
                "codec {codec:?}"
            );
            // …then the home dies and the drain migrates the zeros.
            n0.shutdown();
            for _ in 0..2 {
                assert_eq!(
                    second
                        .alloc_request(ContainerId(1), 7, Bytes::mib(10), ApiKind::Malloc)
                        .unwrap(),
                    AllocDecision::Rejected
                );
            }
            let records = second.migration_records();
            assert_eq!(records.len(), 1, "codec {codec:?}: {records:?}");
            assert_eq!(records[0].limit, Bytes::ZERO, "codec {codec:?}");
            assert_eq!(records[0].used, Bytes::ZERO, "codec {codec:?}");
            n1.shutdown();
        }
    }

    #[test]
    fn journaled_router_recovers_full_checkpoints_across_restart() {
        let clock = RealClock::handle();
        let n0 = node("junit", "n0", 1024, clock.clone());
        let jdir = temp_dir("junit").join("journal");
        let _ = std::fs::remove_dir_all(&jdir);
        let jcfg = JournalConfig {
            flush_interval: SimDuration::ZERO,
            ..JournalConfig::new(jdir.clone())
        };
        let endpoints = vec![("n0".to_string(), n0.socket_path().to_path_buf())];
        let first = ClusterRouter::attach_with_journal(
            endpoints.clone(),
            WireCodec::Json,
            RouterConfig::default(),
            clock.clone(),
            jcfg.clone(),
        )
        .unwrap();
        first.register(ContainerId(1), Bytes::mib(400)).unwrap();
        assert_eq!(
            first
                .alloc_request(ContainerId(1), 7, Bytes::mib(100), ApiKind::Malloc)
                .unwrap(),
            AllocDecision::Granted
        );
        ClusterRouter::alloc_done(&first, ContainerId(1), 7, 0xA0, Bytes::mib(100)).unwrap();
        drop(first);
        // The restarted router holds the full checkpoint before touching
        // any node — limit, placement hint, and wire-observed ledger.
        let second = ClusterRouter::attach_with_journal(
            endpoints,
            WireCodec::Json,
            RouterConfig::default(),
            clock,
            jcfg,
        )
        .unwrap();
        let homes = second.homes_snapshot();
        let home = &homes[&ContainerId(1)];
        assert_eq!(home.node, "n0");
        assert_eq!(home.limit, Bytes::mib(400));
        assert_eq!(home.hint, ctx_hint(Bytes::mib(400)));
        assert_eq!(home.used_by_pid[&7], Bytes::mib(100));
        let text = second.metrics_text();
        assert!(
            text.contains("convgpu_router_journal_recovered_homes_total"),
            "{text}"
        );
        n0.shutdown();
    }

    #[test]
    fn concurrent_mutations_survive_compaction_races() {
        // Pins the compaction-atomicity and append-ordering fixes:
        // with a tiny snapshot_every, compactions race concurrent
        // ledger mutations constantly. Durable state must replay to
        // exactly the live map — a mutation journaled between the map
        // capture and the log truncation used to be lost (or, in the
        // reverse interleaving, double-applied).
        let clock = RealClock::handle();
        let n0 = node("jrace", "n0", 16384, clock.clone());
        let jdir = temp_dir("jrace").join("journal");
        let _ = std::fs::remove_dir_all(&jdir);
        let jcfg = JournalConfig {
            flush_interval: SimDuration::ZERO,
            snapshot_every: 4,
            ..JournalConfig::new(jdir.clone())
        };
        let endpoints = vec![("n0".to_string(), n0.socket_path().to_path_buf())];
        let router = ClusterRouter::attach_with_journal(
            endpoints,
            WireCodec::Json,
            RouterConfig::default(),
            clock,
            jcfg,
        )
        .unwrap();
        const WORKERS: u64 = 4;
        const OPS: u64 = 30;
        for t in 0..WORKERS {
            router
                .register(ContainerId(t + 1), Bytes::mib(1024))
                .unwrap();
        }
        std::thread::scope(|scope| {
            for t in 0..WORKERS {
                let router = &router;
                scope.spawn(move || {
                    let container = ContainerId(t + 1);
                    for i in 0..OPS {
                        assert_eq!(
                            router
                                .alloc_request(container, t + 1, Bytes::mib(1), ApiKind::Malloc)
                                .unwrap(),
                            AllocDecision::Granted
                        );
                        ClusterRouter::alloc_done(
                            router,
                            container,
                            t + 1,
                            0xC0DE + i,
                            Bytes::mib(1),
                        )
                        .unwrap();
                    }
                });
            }
        });
        let live = router.homes_snapshot();
        for t in 0..WORKERS {
            assert_eq!(
                live[&ContainerId(t + 1)].used_by_pid[&(t + 1)],
                Bytes::mib(OPS)
            );
        }
        drop(router); // graceful shutdown drains the buffered tail
        let (_j, _w, recovery) = Journal::open(JournalConfig::new(&jdir)).unwrap();
        assert_eq!(
            recovery.homes, live,
            "durable state diverged from the live map across racing compactions"
        );
        n0.shutdown();
    }

    #[test]
    fn orphaned_homes_survive_a_wrong_node_list_restart() {
        let clock = RealClock::handle();
        let n0 = node("orphan", "n0", 1024, clock.clone());
        let jdir = temp_dir("orphan").join("journal");
        let _ = std::fs::remove_dir_all(&jdir);
        let jcfg = JournalConfig {
            flush_interval: SimDuration::ZERO,
            ..JournalConfig::new(jdir.clone())
        };
        let first = ClusterRouter::attach_with_journal(
            vec![("n0".to_string(), n0.socket_path().to_path_buf())],
            WireCodec::Json,
            RouterConfig::default(),
            clock.clone(),
            jcfg.clone(),
        )
        .unwrap();
        first.register(ContainerId(1), Bytes::mib(400)).unwrap();
        drop(first);
        // Restart with a node list that no longer names n0: the
        // recovered home cannot be matched. It must ride through this
        // router's immediate recompaction as an orphan — not be erased
        // from durable state by a transiently wrong config.
        let ghost = temp_dir("orphan").join("ghost.sock");
        let wrong = ClusterRouter::attach_with_journal(
            vec![("other".to_string(), ghost)],
            WireCodec::Json,
            RouterConfig::default(),
            clock.clone(),
            jcfg.clone(),
        )
        .unwrap();
        assert!(
            wrong.homes_snapshot().is_empty(),
            "an orphan is not a live home"
        );
        let text = wrong.metrics_text();
        assert!(
            text.contains("convgpu_router_journal_orphan_homes_total"),
            "{text}"
        );
        drop(wrong);
        // A corrected restart recovers the full checkpoint.
        let fixed = ClusterRouter::attach_with_journal(
            vec![("n0".to_string(), n0.socket_path().to_path_buf())],
            WireCodec::Json,
            RouterConfig::default(),
            clock,
            jcfg,
        )
        .unwrap();
        let homes = fixed.homes_snapshot();
        let home = &homes[&ContainerId(1)];
        assert_eq!(home.node, "n0");
        assert_eq!(home.limit, Bytes::mib(400));
        assert_eq!(home.hint, ctx_hint(Bytes::mib(400)));
        n0.shutdown();
    }

    #[test]
    fn retry_metrics_and_health_are_exposed() {
        let n0 = node("metrics", "n0", 1024, RealClock::handle());
        let socket = n0.socket_path().to_path_buf();
        let vclock: ClockHandle = VirtualClock::new().handle();
        let router = ClusterRouter::attach(
            vec![
                ("n0".to_string(), socket),
                ("ghost".to_string(), temp_dir("metrics").join("ghost.sock")),
            ],
            WireCodec::Binary,
            RouterConfig::default(),
            vclock,
        );
        router.register(ContainerId(1), Bytes::mib(100)).unwrap();
        let text = router.metrics_text();
        assert!(text.contains("convgpu_router_node_health"), "{text}");
        assert!(text.contains("convgpu_router_placement_total"), "{text}");
        assert!(text.contains("convgpu_router_route_seconds"), "{text}");
        n0.shutdown();
    }
}
