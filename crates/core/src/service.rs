//! The live scheduler service.
//!
//! Wraps the pure [`Scheduler`] state machine with what the Go daemon had:
//! a lock ("each step is protected by a mutex lock to prevent the race
//! condition", §III-D), a clock, the per-container volume directories, and
//! the **waiter table** that realizes suspension: a suspended request's
//! reply handle is parked under its ticket and fired when a later event
//! produces the matching [`ResumeAction`].

use convgpu_ipc::endpoint::{IpcError, IpcResult, SchedulerEndpoint};
use convgpu_ipc::message::{
    AllocDecision, ApiKind, ClusterNodeStatus, MigrationRecord, Response, TopologyDevice,
};
use convgpu_ipc::server::Reply;
use convgpu_obs::{chrome, prometheus, Registry, RingSink, SpanSink, Tracer};
use convgpu_scheduler::backend::{Placement, SchedulerBackend, TopologyBackend};
use convgpu_scheduler::core::{AllocOutcome, ResumeAction, SchedError, SchedObs, Scheduler};
use convgpu_sim_core::clock::ClockHandle;
use convgpu_sim_core::ids::ContainerId;
use convgpu_sim_core::sync::Mutex;
use convgpu_sim_core::units::Bytes;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::Arc;

/// A parked reply for a suspended allocation.
enum Waiter {
    /// In-process caller blocked on a channel.
    Channel(SyncSender<AllocDecision>),
    /// Socket caller; the reply handle writes to its connection.
    Socket(Reply),
}

/// The service's observability fan-in: one metrics registry and one
/// tracer shared by the scheduler, the IPC layer, and the wrapper
/// modules. The ring sink retains the most recent spans for the
/// Chrome-trace export; tests attach a `CollectorSink` for full capture.
pub struct ObsHub {
    /// Metrics registry (counters, gauges, latency histograms).
    pub registry: Arc<Registry>,
    /// Span source; add sinks to receive subsequently emitted spans.
    pub tracer: Arc<Tracer>,
    /// Bounded span retention backing [`SchedulerService::chrome_trace`].
    pub ring: Arc<RingSink>,
}

impl ObsHub {
    /// Spans retained by the live daemon's ring.
    pub const RING_CAPACITY: usize = 4096;

    /// A hub with a fresh registry and a tracer draining into a ring.
    pub fn new() -> Self {
        let tracer = Arc::new(Tracer::new());
        let ring = Arc::new(RingSink::new(Self::RING_CAPACITY));
        tracer.add_sink(Arc::clone(&ring) as Arc<dyn SpanSink>);
        ObsHub {
            registry: Arc::new(Registry::new()),
            tracer,
            ring,
        }
    }

    /// The scheduler-facing view of the hub (no device label: the
    /// single-GPU service's exposition stays exactly as it always was;
    /// multi-device backends scope it per device themselves).
    pub fn sched_obs(&self) -> SchedObs {
        SchedObs::new(Arc::clone(&self.registry), Arc::clone(&self.tracer))
    }
}

impl Default for ObsHub {
    fn default() -> Self {
        Self::new()
    }
}

/// The live scheduler service shared by every connection and thread.
///
/// Since the topology refactor the service is **backend-agnostic**: it
/// stores a [`TopologyBackend`] and speaks only the [`SchedulerBackend`]
/// trait, so a single-GPU host, a multi-GPU host, and a Swarm cluster are
/// all served by the same waiter table and IPC stack. Tickets are
/// globally unique across devices/nodes (the backends tag the high bits),
/// so suspension plumbing is topology-blind.
pub struct SchedulerService {
    clock: ClockHandle,
    state: Mutex<TopologyBackend>,
    waiters: Mutex<HashMap<u64, Waiter>>,
    base_dir: PathBuf,
    obs: Arc<ObsHub>,
    migrations: Mutex<Vec<MigrationRecord>>,
}

impl SchedulerService {
    /// Wrap a single-GPU `scheduler`, serving per-container directories
    /// under `base_dir` (created on demand). The service always carries
    /// an [`ObsHub`] and attaches it to the scheduler.
    pub fn new(scheduler: Scheduler, clock: ClockHandle, base_dir: PathBuf) -> Self {
        Self::new_with_backend(TopologyBackend::Single(scheduler), clock, base_dir)
    }

    /// Wrap an arbitrary topology backend (multi-GPU host or cluster).
    pub fn new_with_backend(
        mut backend: TopologyBackend,
        clock: ClockHandle,
        base_dir: PathBuf,
    ) -> Self {
        let obs = Arc::new(ObsHub::new());
        backend.attach_obs(obs.sched_obs());
        SchedulerService {
            clock,
            state: Mutex::new(backend),
            waiters: Mutex::new(HashMap::new()),
            base_dir,
            obs,
            migrations: Mutex::new(Vec::new()),
        }
    }

    /// The observability hub shared across the middleware layers.
    pub fn obs(&self) -> &Arc<ObsHub> {
        &self.obs
    }

    /// Current metrics in Prometheus text exposition format. Refreshes
    /// the progress-state gauges from a fresh stall assessment first.
    pub fn metrics_text(&self) -> String {
        self.state.lock().observe_progress();
        prometheus::render(&self.obs.registry.snapshot())
    }

    /// Chrome-trace JSON (trace-event array) of the retained spans.
    pub fn chrome_trace(&self) -> String {
        chrome::render(&self.obs.ring.snapshot())
    }

    /// The directory under which container volumes are created.
    pub fn base_dir(&self) -> &Path {
        &self.base_dir
    }

    /// The session clock.
    pub fn clock(&self) -> &ClockHandle {
        &self.clock
    }

    /// Run a closure over the locked primary device scheduler (device 0
    /// of node 0) — the legacy single-device introspection surface.
    pub fn with_scheduler<T>(&self, f: impl FnOnce(&Scheduler) -> T) -> T {
        f(self.state.lock().primary())
    }

    /// Run a closure over the locked topology backend (topology-aware
    /// metrics collection, invariant checks in tests).
    pub fn with_backend<T>(&self, f: impl FnOnce(&TopologyBackend) -> T) -> T {
        f(&self.state.lock())
    }

    /// Snapshot the topology for the `query_topology` wire message:
    /// `(kind, devices)`.
    pub fn topology(&self) -> (String, Vec<TopologyDevice>) {
        let state = self.state.lock();
        let devices = state
            .devices()
            .into_iter()
            .map(|d| TopologyDevice {
                node: d.node.unwrap_or_default(),
                device: d.device as u64,
                capacity: d.capacity,
                unassigned: d.unassigned,
                containers: d.open_containers as u64,
                policy: d.policy,
            })
            .collect();
        (state.topology_kind().to_string(), devices)
    }

    /// A container's home placement, if it is registered.
    pub fn query_home(&self, container: ContainerId) -> Option<Placement> {
        self.state.lock().home_of(container)
    }

    /// The `query_cluster` answer for the in-process cluster backend, or
    /// `None` for single / multi-GPU daemons (which answer `error`).
    ///
    /// The in-process backend has no transport between router and nodes,
    /// so every node is `up` and the fault counters are zero; the
    /// distributed router (`crate::router`) overrides these with its real
    /// health view.
    pub fn cluster_status(&self) -> Option<(String, Vec<ClusterNodeStatus>)> {
        let state = self.state.lock();
        let TopologyBackend::Cluster(cs) = &*state else {
            return None;
        };
        let mut per_node = vec![0u64; cs.node_count()];
        for (_, node) in cs.homes() {
            per_node[node] += 1;
        }
        let nodes = (0..cs.node_count())
            .map(|i| ClusterNodeStatus {
                node: cs.node(i).name.clone(),
                health: "up".to_string(),
                containers: per_node[i],
                retries: 0,
                timeouts: 0,
                failovers: 0,
            })
            .collect();
        Some((cs.strategy().label().to_string(), nodes))
    }

    /// Deliver resume actions to their parked waiters. Socket replies are
    /// batched: one release can resume many suspended allocations, and
    /// `Reply::send_batch` coalesces their frames into a single write per
    /// connection instead of a lock/write/flush cycle per wakeup.
    fn dispatch(&self, actions: Vec<ResumeAction>) {
        if actions.is_empty() {
            return;
        }
        let mut socket_batch: Vec<(Reply, Response)> = Vec::new();
        {
            let mut waiters = self.waiters.lock();
            for action in actions {
                match waiters.remove(&action.ticket) {
                    Some(Waiter::Channel(tx)) => {
                        let _ = tx.send(action.decision);
                    }
                    Some(Waiter::Socket(reply)) => {
                        socket_batch.push((
                            reply,
                            Response::Alloc {
                                decision: action.decision,
                            },
                        ));
                    }
                    // Waiter already gone (connection died): the scheduler
                    // state was cleaned by process_exit/container_close.
                    None => {}
                }
            }
        }
        // Write outside the waiter lock: a slow client must not stall
        // other dispatchers.
        Reply::send_batch(socket_batch);
    }

    /// Register a container with its limit; reports where it was placed.
    pub fn register(&self, container: ContainerId, limit: Bytes) -> Result<Placement, SchedError> {
        // `now` is read under the lock: concurrent connections would
        // otherwise hand the scheduler out-of-order timestamps.
        let mut state = self.state.lock();
        let now = self.clock.now();
        state.register(container, limit, now)
    }

    /// Adopt a migrated container: register it with `limit` and mark
    /// `used` bytes pre-committed in one step — the receiving half of a
    /// migration hand-off. The adoption is appended to this daemon's
    /// migration log (source unknown at this layer, so `from` is empty).
    pub fn adopt(
        &self,
        container: ContainerId,
        limit: Bytes,
        used: Bytes,
    ) -> Result<Placement, SchedError> {
        let placement = {
            let mut state = self.state.lock();
            let now = self.clock.now();
            state.adopt(container, limit, used, now)?
        };
        self.migrations.lock().push(MigrationRecord {
            container,
            from: String::new(),
            to: placement.node.clone().unwrap_or_default(),
            limit,
            used,
            status: "completed".to_string(),
        });
        Ok(placement)
    }

    /// Handle the `migrate` wire message. The `container == 0` sentinel
    /// with a node name drains that node of the in-process cluster
    /// backend (re-homing every container it hosts onto survivors); any
    /// other container id is an adoption onto this daemon.
    pub fn migrate(
        &self,
        container: ContainerId,
        node: &str,
        limit: Bytes,
        used: Bytes,
    ) -> Result<(), SchedError> {
        if container != ContainerId(0) {
            return self.adopt(container, limit, used).map(|_| ());
        }
        let (records, actions) = {
            let mut state = self.state.lock();
            let TopologyBackend::Cluster(cs) = &mut *state else {
                return Err(SchedError::ProtocolViolation(
                    "migrate: node drain requires a cluster backend".into(),
                ));
            };
            let Some(idx) = (0..cs.node_count()).find(|&i| cs.node(i).name == node) else {
                return Err(SchedError::ProtocolViolation(format!(
                    "migrate: unknown node {node:?}"
                )));
            };
            let now = self.clock.now();
            let (moves, actions) = cs.migrate_node(idx, now);
            let records: Vec<MigrationRecord> = moves
                .into_iter()
                .map(|m| MigrationRecord {
                    container: m.container,
                    from: cs.node(m.from).name.clone(),
                    to: m.to.map(|n| cs.node(n).name.clone()).unwrap_or_default(),
                    limit: m.limit,
                    used: m.used,
                    status: if m.to.is_some() {
                        "completed".to_string()
                    } else {
                        "rejected".to_string()
                    },
                })
                .collect();
            (records, actions)
        };
        self.migrations.lock().extend(records);
        self.dispatch(actions);
        Ok(())
    }

    /// Every migration this daemon has recorded, oldest first.
    pub fn migration_records(&self) -> Vec<MigrationRecord> {
        self.migrations.lock().clone()
    }

    /// Create (if needed) and return the container's volume directory,
    /// with the wrapper-module file "copied" into it (paper §III-D: the
    /// scheduler "creates a directory to share the volume with the
    /// container, builds a UNIX socket inside the directory, and copies
    /// the wrapper module to the directory").
    pub fn request_dir(&self, container: ContainerId) -> std::io::Result<PathBuf> {
        let dir = self.base_dir.join(container.to_string());
        std::fs::create_dir_all(&dir)?;
        let module = dir.join("libgpushare.so");
        if !module.exists() {
            std::fs::write(
                &module,
                b"convgpu wrapper module placeholder (simulated shared library)\n",
            )?;
        }
        Ok(dir)
    }

    /// Socket path inside a container directory.
    pub fn socket_path(&self, container: ContainerId) -> PathBuf {
        self.base_dir
            .join(container.to_string())
            .join("convgpu.sock")
    }

    /// Blocking allocation request (in-process path): parks the calling
    /// thread while suspended.
    pub fn alloc_request_blocking(
        &self,
        container: ContainerId,
        pid: u64,
        size: Bytes,
        api: ApiKind,
    ) -> Result<AllocDecision, SchedError> {
        let (wait_rx, actions) = {
            let mut state = self.state.lock();
            let now = self.clock.now();
            let (outcome, actions) = state.alloc_request(container, pid, size, api, now)?;
            let wait_rx = match outcome {
                AllocOutcome::Granted => Some(Ok(AllocDecision::Granted)),
                AllocOutcome::Rejected => Some(Ok(AllocDecision::Rejected)),
                AllocOutcome::Suspended { ticket } => {
                    let (tx, rx) = sync_channel(1);
                    // Park under the scheduler lock so no resume can race
                    // ahead of the registration.
                    self.waiters.lock().insert(ticket, Waiter::Channel(tx));
                    let _ = tx; // moved into the map
                    None.or(Some(Err(rx)))
                }
            };
            (wait_rx, actions)
        };
        // Side-effect resumes first (they cannot contain our ticket).
        self.dispatch(actions);
        match wait_rx {
            Some(Ok(decision)) => Ok(decision),
            Some(Err(rx)) => {
                // Blocked: this is the container "pausing its execution".
                rx.recv().map_err(|_| {
                    SchedError::ProtocolViolation("scheduler dropped a suspended request".into())
                })
            }
            None => unreachable!(),
        }
    }

    /// Deferred allocation request (socket path): replies immediately or
    /// parks the [`Reply`].
    pub fn alloc_request_deferred(
        &self,
        container: ContainerId,
        pid: u64,
        size: Bytes,
        api: ApiKind,
        reply: Reply,
    ) {
        // Decide under the state lock, but send only after it (and the
        // waiter lock) are released — a blocked peer must never be able
        // to wedge a scheduler lock through a full socket buffer. The
        // suspended arm parks the `Reply` instead of answering.
        let (to_send, actions) = {
            let mut state = self.state.lock();
            let now = self.clock.now();
            match state.alloc_request(container, pid, size, api, now) {
                Ok((AllocOutcome::Granted, actions)) => (
                    Some((
                        reply,
                        Response::Alloc {
                            decision: AllocDecision::Granted,
                        },
                    )),
                    actions,
                ),
                Ok((AllocOutcome::Rejected, actions)) => (
                    Some((
                        reply,
                        Response::Alloc {
                            decision: AllocDecision::Rejected,
                        },
                    )),
                    actions,
                ),
                Ok((AllocOutcome::Suspended { ticket }, actions)) => {
                    self.waiters.lock().insert(ticket, Waiter::Socket(reply));
                    (None, actions)
                }
                Err(e) => (
                    Some((
                        reply,
                        Response::Error {
                            message: e.to_string(),
                        },
                    )),
                    Vec::new(),
                ),
            }
        };
        if let Some((reply, response)) = to_send {
            reply.send(response);
        }
        self.dispatch(actions);
    }

    /// Record a completed device allocation.
    pub fn alloc_done(
        &self,
        container: ContainerId,
        pid: u64,
        addr: u64,
        size: Bytes,
    ) -> Result<(), SchedError> {
        let mut state = self.state.lock();
        let now = self.clock.now();
        state.alloc_done(container, pid, addr, size, now)
    }

    /// Release a reservation whose device allocation failed.
    pub fn alloc_failed(
        &self,
        container: ContainerId,
        pid: u64,
        size: Bytes,
    ) -> Result<(), SchedError> {
        let actions = {
            let mut state = self.state.lock();
            let now = self.clock.now();
            state.alloc_failed(container, pid, size, now)?
        };
        self.dispatch(actions);
        Ok(())
    }

    /// Record a free; may resume the container's own parked requests.
    pub fn free(&self, container: ContainerId, pid: u64, addr: u64) -> Result<Bytes, SchedError> {
        let (freed, actions) = {
            let mut state = self.state.lock();
            let now = self.clock.now();
            state.free(container, pid, addr, now)?
        };
        self.dispatch(actions);
        Ok(freed)
    }

    /// Serve `cudaMemGetInfo` from the books.
    pub fn mem_info(&self, container: ContainerId, pid: u64) -> Result<(Bytes, Bytes), SchedError> {
        self.state.lock().mem_info(container, pid)
    }

    /// Process exit: reclaim the pid's memory.
    pub fn process_exit(&self, container: ContainerId, pid: u64) -> Result<(), SchedError> {
        let actions = {
            let mut state = self.state.lock();
            let now = self.clock.now();
            state.process_exit(container, pid, now)?
        };
        self.dispatch(actions);
        Ok(())
    }

    /// Container close: release everything and redistribute.
    pub fn container_close(&self, container: ContainerId) -> Result<(), SchedError> {
        let actions = {
            let mut state = self.state.lock();
            let now = self.clock.now();
            state.container_close(container, now)?
        };
        self.dispatch(actions);
        Ok(())
    }
}

/// In-process [`SchedulerEndpoint`] over the service — used by tests, the
/// transport ablation bench, and the `TransportMode::InProc` stack.
pub struct InProcEndpoint {
    service: Arc<SchedulerService>,
}

impl InProcEndpoint {
    /// Wrap `service`.
    pub fn new(service: Arc<SchedulerService>) -> Self {
        InProcEndpoint { service }
    }
}

fn sched_err(e: SchedError) -> IpcError {
    IpcError::Scheduler(e.to_string())
}

impl SchedulerEndpoint for InProcEndpoint {
    fn register(&self, container: ContainerId, limit: Bytes) -> IpcResult<()> {
        self.service
            .register(container, limit)
            .map(|_| ())
            .map_err(sched_err)
    }

    fn request_dir(&self, container: ContainerId) -> IpcResult<String> {
        self.service
            .request_dir(container)
            .map(|p| p.display().to_string())
            .map_err(IpcError::Io)
    }

    fn request_alloc(
        &self,
        container: ContainerId,
        pid: u64,
        size: Bytes,
        api: ApiKind,
    ) -> IpcResult<AllocDecision> {
        self.service
            .alloc_request_blocking(container, pid, size, api)
            .map_err(sched_err)
    }

    fn alloc_done(
        &self,
        container: ContainerId,
        pid: u64,
        addr: u64,
        size: Bytes,
    ) -> IpcResult<()> {
        self.service
            .alloc_done(container, pid, addr, size)
            .map_err(sched_err)
    }

    fn alloc_failed(&self, container: ContainerId, pid: u64, size: Bytes) -> IpcResult<()> {
        self.service
            .alloc_failed(container, pid, size)
            .map_err(sched_err)
    }

    fn free(&self, container: ContainerId, pid: u64, addr: u64) -> IpcResult<Bytes> {
        self.service.free(container, pid, addr).map_err(sched_err)
    }

    fn mem_info(&self, container: ContainerId, pid: u64) -> IpcResult<(Bytes, Bytes)> {
        self.service.mem_info(container, pid).map_err(sched_err)
    }

    fn process_exit(&self, container: ContainerId, pid: u64) -> IpcResult<()> {
        self.service.process_exit(container, pid).map_err(sched_err)
    }

    fn container_close(&self, container: ContainerId) -> IpcResult<()> {
        self.service.container_close(container).map_err(sched_err)
    }

    fn ping(&self) -> IpcResult<()> {
        Ok(())
    }

    fn query_topology(&self) -> IpcResult<(String, Vec<TopologyDevice>)> {
        Ok(self.service.topology())
    }

    fn query_home(&self, container: ContainerId) -> IpcResult<(String, u64)> {
        match self.service.query_home(container) {
            Some(p) => Ok((p.node.unwrap_or_default(), p.device as u64)),
            None => Err(IpcError::Scheduler(format!(
                "container {container} is not registered"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use convgpu_scheduler::core::SchedulerConfig;
    use convgpu_scheduler::policy::PolicyKind;
    use convgpu_sim_core::clock::RealClock;
    use std::time::Duration;

    fn service(capacity_mib: u64) -> Arc<SchedulerService> {
        let dir = std::env::temp_dir().join(format!(
            "convgpu-service-test-{}-{}",
            std::process::id(),
            capacity_mib
        ));
        Arc::new(SchedulerService::new(
            Scheduler::new(
                SchedulerConfig::with_capacity(Bytes::mib(capacity_mib)),
                PolicyKind::Fifo.build(0),
            ),
            RealClock::handle(),
            dir,
        ))
    }

    #[test]
    fn request_dir_creates_module_file() {
        let svc = service(5120);
        svc.register(ContainerId(1), Bytes::mib(256)).unwrap();
        let dir = svc.request_dir(ContainerId(1)).unwrap();
        assert!(dir.join("libgpushare.so").exists());
        assert!(svc
            .socket_path(ContainerId(1))
            .to_string_lossy()
            .ends_with("cnt-0001/convgpu.sock"));
    }

    #[test]
    fn blocking_suspension_resumes_on_close() {
        let svc = service(1200);
        svc.register(ContainerId(1), Bytes::mib(1000)).unwrap();
        svc.register(ContainerId(2), Bytes::mib(1000)).unwrap();
        assert_eq!(
            svc.alloc_request_blocking(ContainerId(1), 1, Bytes::mib(1000), ApiKind::Malloc)
                .unwrap(),
            AllocDecision::Granted
        );
        let svc2 = Arc::clone(&svc);
        let waiter = std::thread::spawn(move || {
            svc2.alloc_request_blocking(ContainerId(2), 2, Bytes::mib(1000), ApiKind::Malloc)
        });
        // Give the waiter time to park.
        std::thread::sleep(Duration::from_millis(30));
        assert!(!waiter.is_finished(), "request must be suspended");
        svc.container_close(ContainerId(1)).unwrap();
        let decision = waiter.join().unwrap().unwrap();
        assert_eq!(decision, AllocDecision::Granted);
        svc.with_scheduler(|s| s.check_invariants().unwrap());
    }

    #[test]
    fn endpoint_maps_errors() {
        let svc = service(1000);
        let ep = InProcEndpoint::new(Arc::clone(&svc));
        // Unregistered container → Scheduler error, not a panic.
        let err = ep
            .request_alloc(ContainerId(9), 1, Bytes::mib(1), ApiKind::Malloc)
            .unwrap_err();
        assert!(matches!(err, IpcError::Scheduler(_)));
        ep.register(ContainerId(1), Bytes::mib(100)).unwrap();
        assert!(matches!(
            ep.register(ContainerId(1), Bytes::mib(100)).unwrap_err(),
            IpcError::Scheduler(_)
        ));
        ep.ping().unwrap();
    }

    #[test]
    fn endpoint_full_cycle() {
        let svc = service(5120);
        let ep = InProcEndpoint::new(Arc::clone(&svc));
        ep.register(ContainerId(1), Bytes::mib(512)).unwrap();
        let d = ep
            .request_alloc(ContainerId(1), 1, Bytes::mib(128), ApiKind::Malloc)
            .unwrap();
        assert_eq!(d, AllocDecision::Granted);
        ep.alloc_done(ContainerId(1), 1, 0xABC, Bytes::mib(128))
            .unwrap();
        assert_eq!(ep.free(ContainerId(1), 1, 0xABC).unwrap(), Bytes::mib(128));
        let (free, total) = ep.mem_info(ContainerId(1), 1).unwrap();
        assert_eq!(total, Bytes::mib(512));
        // The context charge is budgeted on top of the limit, so the
        // container sees its full limit free again after the free().
        assert_eq!(free, Bytes::mib(512));
        ep.process_exit(ContainerId(1), 1).unwrap();
        ep.container_close(ContainerId(1)).unwrap();
    }
}
