//! The CUDA-Runtime-like API surface (paper Table II).
//!
//! [`CudaApi`] is the seam the whole reproduction pivots on: the raw
//! runtime ([`crate::runtime::RawCudaRuntime`]) implements it against the
//! simulated device, and the ConVGPU wrapper module implements it by
//! consulting the GPU memory scheduler *and then delegating to the raw
//! runtime* — precisely how `libgpushare.so` overrides symbols via
//! `LD_PRELOAD` and calls through to the real `libcudart`.
//!
//! Calls take an explicit `pid` because, unlike a real preloaded library,
//! the simulation hosts many "processes" in one address space.

use crate::context::Pid;
use crate::error::CudaResult;
use crate::kernel::KernelSpec;
use crate::memory::DevicePtr;
use crate::props::DeviceProperties;
use crate::stream::{EventId, StreamId};
use convgpu_sim_core::time::SimDuration;
use convgpu_sim_core::units::Bytes;

/// `cudaExtent` analog for `cudaMalloc3D`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Extent3D {
    /// Row width in bytes.
    pub width: Bytes,
    /// Number of rows.
    pub height: u64,
    /// Number of slices.
    pub depth: u64,
}

impl Extent3D {
    /// Construct an extent.
    pub fn new(width: Bytes, height: u64, depth: u64) -> Self {
        Extent3D {
            width,
            height,
            depth,
        }
    }
}

/// `cudaPitchedPtr` analog returned by `cudaMalloc3D`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PitchedPtr {
    /// Base device pointer.
    pub ptr: DevicePtr,
    /// Row pitch in bytes (≥ requested width, aligned).
    pub pitch: Bytes,
    /// Logical row width requested.
    pub xsize: Bytes,
    /// Logical row count requested.
    pub ysize: u64,
}

/// `cudaMemcpyKind` analog.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemcpyKind {
    /// Host → device over PCIe.
    HostToDevice,
    /// Device → host over PCIe.
    DeviceToHost,
    /// Device → device at memory bandwidth.
    DeviceToDevice,
    /// Host → host (no device involvement; modeled at PCIe speed).
    HostToHost,
}

/// The interposable CUDA API surface — exactly the calls the paper's
/// wrapper module covers (Table II) plus the data-path calls
/// (`cudaMemcpy`, kernel launch, synchronize) that the wrapper passes
/// through untouched.
pub trait CudaApi: Send + Sync {
    /// `cudaMalloc`: general-purpose device allocation.
    fn cuda_malloc(&self, pid: Pid, size: Bytes) -> CudaResult<DevicePtr>;

    /// `cudaMallocPitch`: allocate `height` rows of `width` bytes, each
    /// padded to the device's pitch alignment. Returns `(ptr, pitch)`.
    fn cuda_malloc_pitch(
        &self,
        pid: Pid,
        width: Bytes,
        height: u64,
    ) -> CudaResult<(DevicePtr, Bytes)>;

    /// `cudaMalloc3D`: pitched allocation of a 3-D extent.
    fn cuda_malloc_3d(&self, pid: Pid, extent: Extent3D) -> CudaResult<PitchedPtr>;

    /// `cudaMallocManaged`: unified (CPU+GPU mapped) allocation; consumes
    /// device memory in 128 MiB granules on the modeled hardware.
    fn cuda_malloc_managed(&self, pid: Pid, size: Bytes) -> CudaResult<DevicePtr>;

    /// `cudaFree`. Freeing [`DevicePtr::NULL`] is legal and a no-op.
    fn cuda_free(&self, pid: Pid, ptr: DevicePtr) -> CudaResult<()>;

    /// `cudaMemGetInfo`: `(free, total)` device memory.
    fn cuda_mem_get_info(&self, pid: Pid) -> CudaResult<(Bytes, Bytes)>;

    /// `cudaGetDeviceProperties`.
    fn cuda_get_device_properties(&self, pid: Pid) -> CudaResult<DeviceProperties>;

    /// `cudaMemcpy`: blocking copy of `bytes` in direction `kind`.
    fn cuda_memcpy(&self, pid: Pid, kind: MemcpyKind, bytes: Bytes) -> CudaResult<()>;

    /// `cudaMemcpy2D`: blocking pitched copy of `height` rows of `width`
    /// bytes. Only `width × height` bytes move, but the device walks
    /// `pitch × height` of address space; the cost model charges the
    /// moved bytes (pitch padding is skipped by the DMA engine).
    fn cuda_memcpy_2d(
        &self,
        pid: Pid,
        kind: MemcpyKind,
        width: Bytes,
        height: u64,
    ) -> CudaResult<()>;

    /// `cudaMemset`: fill `bytes` of device memory; bandwidth-bound at
    /// device memory speed.
    fn cuda_memset(&self, pid: Pid, bytes: Bytes) -> CudaResult<()>;

    /// Launch a kernel and wait for completion (launch + implicit
    /// synchronize). Subject to the device's Hyper-Q concurrency limit.
    fn cuda_launch_kernel(&self, pid: Pid, kernel: &KernelSpec) -> CudaResult<()>;

    /// `cudaDeviceSynchronize` — a no-op here because
    /// [`CudaApi::cuda_launch_kernel`] is synchronous, but kept so program
    /// sources read like real CUDA code.
    fn cuda_device_synchronize(&self, pid: Pid) -> CudaResult<()>;

    /// `cudaStreamCreate`: a new asynchronous work queue.
    fn cuda_stream_create(&self, pid: Pid) -> CudaResult<StreamId>;

    /// `cudaStreamDestroy`.
    fn cuda_stream_destroy(&self, pid: Pid, stream: StreamId) -> CudaResult<()>;

    /// Asynchronous kernel launch: enqueue on `stream` and return
    /// immediately. Work on one stream executes in order; different
    /// streams overlap (Hyper-Q).
    fn cuda_launch_kernel_async(
        &self,
        pid: Pid,
        stream: StreamId,
        kernel: &KernelSpec,
    ) -> CudaResult<()>;

    /// `cudaMemcpyAsync`: enqueue a copy on `stream` and return.
    fn cuda_memcpy_async(
        &self,
        pid: Pid,
        stream: StreamId,
        kind: MemcpyKind,
        bytes: Bytes,
    ) -> CudaResult<()>;

    /// `cudaStreamSynchronize`: block until `stream` drains.
    fn cuda_stream_synchronize(&self, pid: Pid, stream: StreamId) -> CudaResult<()>;

    /// `cudaEventCreate`.
    fn cuda_event_create(&self, pid: Pid) -> CudaResult<EventId>;

    /// `cudaEventDestroy`.
    fn cuda_event_destroy(&self, pid: Pid, event: EventId) -> CudaResult<()>;

    /// `cudaEventRecord`: the event fires when work currently enqueued on
    /// `stream` completes.
    fn cuda_event_record(&self, pid: Pid, event: EventId, stream: StreamId) -> CudaResult<()>;

    /// `cudaEventSynchronize`: block until the event fires.
    fn cuda_event_synchronize(&self, pid: Pid, event: EventId) -> CudaResult<()>;

    /// `cudaEventElapsedTime` between two recorded events.
    fn cuda_event_elapsed(&self, pid: Pid, start: EventId, end: EventId)
        -> CudaResult<SimDuration>;

    /// `__cudaRegisterFatBinary`: called implicitly at program start.
    fn cuda_register_fat_binary(&self, pid: Pid) -> CudaResult<()>;

    /// `__cudaUnregisterFatBinary`: called implicitly at program exit;
    /// destroys the process's context and reclaims its allocations.
    fn cuda_unregister_fat_binary(&self, pid: Pid) -> CudaResult<()>;
}

/// Names of the Table II APIs, used by coverage tests and trace output.
pub const TABLE_II_APIS: &[&str] = &[
    "cudaMalloc",
    "cudaMallocManaged",
    "cudaMallocPitch",
    "cudaMalloc3D",
    "cudaFree",
    "cudaMemGetInfo",
    "cudaGetDeviceProperties",
    "__cudaUnregisterFatBinary",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_has_eight_entries() {
        assert_eq!(TABLE_II_APIS.len(), 8);
        assert!(TABLE_II_APIS.contains(&"cudaMallocManaged"));
        assert!(TABLE_II_APIS.contains(&"__cudaUnregisterFatBinary"));
    }

    #[test]
    fn extent_and_pitched_ptr_construct() {
        let e = Extent3D::new(Bytes::new(100), 4, 2);
        assert_eq!(e.width, Bytes::new(100));
        let p = PitchedPtr {
            ptr: DevicePtr(0x1000),
            pitch: Bytes::new(512),
            xsize: Bytes::new(100),
            ysize: 4,
        };
        assert!(p.pitch >= p.xsize);
    }
}
