//! Per-process CUDA contexts and fat-binary registration.
//!
//! Real CUDA creates a context lazily on a process's first runtime call and
//! charges device memory for it (the paper measured ~64 MiB of process data
//! plus ~2 MiB of context on the K20m). When a process exits — observed by
//! the wrapper through `__cudaUnregisterFatBinary` — the driver destroys
//! the context and reclaims *all* of the process's allocations, including
//! leaked ones. ConVGPU's scheduler relies on exactly this behaviour
//! ("some program may not free its allocated GPU memory"), so the
//! simulated device reproduces it.

use crate::memory::DevicePtr;
use convgpu_sim_core::units::Bytes;
use std::collections::{HashMap, HashSet};

/// A process ID as seen by the device (host pid inside the container).
pub type Pid = u64;

/// State of one process's context on the device.
#[derive(Clone, Debug)]
pub struct ProcessContext {
    /// The owning process.
    pub pid: Pid,
    /// Device memory charged for the context itself (64 + 2 MiB).
    pub overhead: Bytes,
    /// Live allocations owned by this process.
    pub allocations: HashSet<DevicePtr>,
    /// Number of fat binaries currently registered (a process can link
    /// several CUDA modules; the context dies when the last unregisters).
    pub fat_binaries: u32,
}

/// Registry of process contexts on one device.
#[derive(Debug, Default)]
pub struct ContextTable {
    contexts: HashMap<Pid, ProcessContext>,
}

impl ContextTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when `pid` already has a context.
    pub fn has_context(&self, pid: Pid) -> bool {
        self.contexts.contains_key(&pid)
    }

    /// Ensure a context exists for `pid`, returning `true` (and recording
    /// `overhead`) when this call created it — the caller then charges the
    /// context's device memory and latency.
    pub fn ensure(&mut self, pid: Pid, overhead: Bytes) -> bool {
        if self.contexts.contains_key(&pid) {
            return false;
        }
        self.contexts.insert(
            pid,
            ProcessContext {
                pid,
                overhead,
                allocations: HashSet::new(),
                fat_binaries: 0,
            },
        );
        true
    }

    /// Record an allocation as owned by `pid` (context must exist).
    pub fn record_alloc(&mut self, pid: Pid, ptr: DevicePtr) {
        self.contexts
            .get_mut(&pid)
            .expect("record_alloc without context")
            .allocations
            .insert(ptr);
    }

    /// Remove an allocation record; returns `false` when the pointer was
    /// not owned by `pid` (the API layer turns that into
    /// `cudaErrorInvalidDevicePointer`).
    pub fn record_free(&mut self, pid: Pid, ptr: DevicePtr) -> bool {
        self.contexts
            .get_mut(&pid)
            .map(|c| c.allocations.remove(&ptr))
            .unwrap_or(false)
    }

    /// True when `pid` owns `ptr`.
    pub fn owns(&self, pid: Pid, ptr: DevicePtr) -> bool {
        self.contexts
            .get(&pid)
            .map(|c| c.allocations.contains(&ptr))
            .unwrap_or(false)
    }

    /// Register a fat binary for `pid` (creates no context by itself —
    /// real CUDA registers binaries at program load, before any context).
    pub fn register_fat_binary(&mut self, pid: Pid) {
        if let Some(c) = self.contexts.get_mut(&pid) {
            c.fat_binaries += 1;
        }
        // Registration before first runtime call: remembered implicitly;
        // `ensure` will create the context on the first real call.
    }

    /// Unregister a fat binary. Returns `true` when this ended the
    /// process's device lifetime (context should be destroyed).
    pub fn unregister_fat_binary(&mut self, pid: Pid) -> bool {
        match self.contexts.get_mut(&pid) {
            Some(c) => {
                c.fat_binaries = c.fat_binaries.saturating_sub(1);
                c.fat_binaries == 0
            }
            // No context was ever created (program used no memory): the
            // process still "ends" from the device's perspective.
            None => true,
        }
    }

    /// Destroy `pid`'s context, returning its overhead charge and every
    /// allocation it still owned (the device frees them — leak reclaim).
    pub fn destroy(&mut self, pid: Pid) -> Option<(Bytes, Vec<DevicePtr>)> {
        self.contexts.remove(&pid).map(|c| {
            let mut ptrs: Vec<DevicePtr> = c.allocations.into_iter().collect();
            ptrs.sort_unstable(); // deterministic reclaim order
            (c.overhead, ptrs)
        })
    }

    /// Number of live contexts.
    pub fn len(&self) -> usize {
        self.contexts.len()
    }

    /// True when no contexts exist.
    pub fn is_empty(&self) -> bool {
        self.contexts.is_empty()
    }

    /// Live allocation count for `pid` (diagnostics).
    pub fn allocation_count(&self, pid: Pid) -> usize {
        self.contexts
            .get(&pid)
            .map(|c| c.allocations.len())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_is_idempotent() {
        let mut t = ContextTable::new();
        assert!(t.ensure(1, Bytes::mib(66)));
        assert!(!t.ensure(1, Bytes::mib(66)));
        assert!(t.has_context(1));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn ownership_tracking() {
        let mut t = ContextTable::new();
        t.ensure(1, Bytes::mib(66));
        t.ensure(2, Bytes::mib(66));
        let p = DevicePtr(0x1000);
        t.record_alloc(1, p);
        assert!(t.owns(1, p));
        assert!(!t.owns(2, p));
        // pid 2 cannot free pid 1's pointer.
        assert!(!t.record_free(2, p));
        assert!(t.record_free(1, p));
        assert!(!t.owns(1, p));
    }

    #[test]
    fn destroy_returns_leaked_allocations_sorted() {
        let mut t = ContextTable::new();
        t.ensure(7, Bytes::mib(66));
        t.record_alloc(7, DevicePtr(0x3000));
        t.record_alloc(7, DevicePtr(0x1000));
        t.record_alloc(7, DevicePtr(0x2000));
        let (overhead, ptrs) = t.destroy(7).expect("context existed");
        assert_eq!(overhead, Bytes::mib(66));
        assert_eq!(
            ptrs,
            vec![DevicePtr(0x1000), DevicePtr(0x2000), DevicePtr(0x3000)]
        );
        assert!(t.destroy(7).is_none(), "second destroy is None");
        assert!(t.is_empty());
    }

    #[test]
    fn fat_binary_lifecycle() {
        let mut t = ContextTable::new();
        // Unregister with no context: process ends.
        assert!(t.unregister_fat_binary(9));
        t.ensure(9, Bytes::mib(66));
        t.register_fat_binary(9);
        t.register_fat_binary(9);
        assert!(!t.unregister_fat_binary(9), "one binary still registered");
        assert!(t.unregister_fat_binary(9), "last binary gone");
    }

    #[test]
    fn allocation_count() {
        let mut t = ContextTable::new();
        t.ensure(1, Bytes::mib(66));
        assert_eq!(t.allocation_count(1), 0);
        t.record_alloc(1, DevicePtr(0x100));
        assert_eq!(t.allocation_count(1), 1);
        assert_eq!(t.allocation_count(42), 0, "unknown pid has zero");
    }
}
