//! The simulated GPU device: allocator + context table + Hyper-Q slots.
//!
//! [`GpuDevice`] holds the mutable device state behind one mutex (the
//! paper's scheduler likewise serializes accounting under "a mutex lock to
//! prevent the race condition") plus a condvar-based counting semaphore
//! modeling Hyper-Q: at most `concurrent_kernels` kernels execute at once;
//! further launches queue, exactly like work queued behind the K20m's 32
//! hardware queues.

use crate::context::{ContextTable, Pid};
use crate::error::{CudaError, CudaResult};
use crate::fault::FaultPlan;
use crate::memory::{AllocatorKind, AllocatorStats, DeviceAllocator, DevicePtr};
use crate::props::DeviceProperties;
use convgpu_sim_core::sync::{Condvar, Mutex};
use convgpu_sim_core::units::Bytes;

/// Device construction parameters.
#[derive(Clone, Debug)]
pub struct DeviceConfig {
    /// Hardware properties (defaults to the paper's Tesla K20m).
    pub props: DeviceProperties,
    /// Fail every allocation once fewer than this much memory would remain
    /// (0 = disabled). Used by fault-injection tests to model driver
    /// reservations.
    pub reserve: Bytes,
    /// Allocation model. [`AllocatorKind::Paged`] matches real CUDA
    /// (virtually contiguous, physically paged — fragmentation cannot
    /// fail an allocation); [`AllocatorKind::FirstFit`] is the
    /// contiguity-constrained ablation.
    pub allocator: AllocatorKind,
    /// Fault injection (default: none).
    pub faults: std::sync::Arc<FaultPlan>,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            props: DeviceProperties::tesla_k20m(),
            reserve: Bytes::ZERO,
            allocator: AllocatorKind::Paged,
            faults: std::sync::Arc::new(FaultPlan::none()),
        }
    }
}

/// Cumulative device activity counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeviceCounters {
    /// Successful allocations (all four allocation APIs).
    pub allocs: u64,
    /// Successful frees.
    pub frees: u64,
    /// Allocations refused with `cudaErrorMemoryAllocation`.
    pub failed_allocs: u64,
    /// Kernels completed.
    pub kernels: u64,
    /// Memcpy operations completed.
    pub memcpys: u64,
    /// Bytes moved by memcpy.
    pub bytes_copied: u64,
    /// Contexts created.
    pub contexts_created: u64,
    /// Contexts destroyed.
    pub contexts_destroyed: u64,
    /// High-water mark of in-use memory.
    pub peak_in_use: Bytes,
}

struct DeviceState {
    allocator: DeviceAllocator,
    contexts: ContextTable,
    counters: DeviceCounters,
}

/// One simulated GPU.
pub struct GpuDevice {
    props: DeviceProperties,
    reserve: Bytes,
    faults: std::sync::Arc<FaultPlan>,
    state: Mutex<DeviceState>,
    kernel_slots: Mutex<u32>,
    kernel_slot_freed: Condvar,
}

impl GpuDevice {
    /// Build a device from `config`.
    pub fn new(config: DeviceConfig) -> Self {
        let capacity = config.props.total_global_mem;
        GpuDevice {
            kernel_slots: Mutex::new(config.props.concurrent_kernels),
            kernel_slot_freed: Condvar::new(),
            props: config.props,
            reserve: config.reserve,
            faults: config.faults,
            state: Mutex::new(DeviceState {
                allocator: DeviceAllocator::new(config.allocator, capacity),
                contexts: ContextTable::new(),
                counters: DeviceCounters::default(),
            }),
        }
    }

    /// A Tesla K20m, the paper's evaluation GPU.
    pub fn tesla_k20m() -> Self {
        Self::new(DeviceConfig::default())
    }

    /// Hardware properties.
    pub fn props(&self) -> &DeviceProperties {
        &self.props
    }

    /// Total device memory.
    pub fn capacity(&self) -> Bytes {
        self.props.total_global_mem
    }

    /// Allocate `size` bytes for `pid`, creating the process context (and
    /// charging its 66 MiB) when this is the process's first allocation.
    /// Returns the pointer and `true` when a context was created — the
    /// runtime uses that to charge context-creation latency.
    pub fn alloc(&self, pid: Pid, size: Bytes) -> CudaResult<(DevicePtr, bool)> {
        let mut st = self.state.lock();
        if size.is_zero() {
            return Err(CudaError::InvalidValue);
        }
        if self.faults.fail_alloc() {
            st.counters.failed_allocs += 1;
            return Err(CudaError::MemoryAllocation);
        }
        let overhead = self.props.first_use_overhead();
        let needs_context = !st.contexts.has_context(pid);
        let total_needed = if needs_context { size + overhead } else { size };
        if !self.fits(&st.allocator, total_needed) {
            st.counters.failed_allocs += 1;
            return Err(CudaError::MemoryAllocation);
        }
        if needs_context {
            // Charge the context block first, owned by the pid so that
            // context destruction reclaims it.
            let ctx_ptr = st.allocator.alloc(overhead).inspect_err(|_e| {
                st.counters.failed_allocs += 1;
            })?;
            st.contexts.ensure(pid, overhead);
            st.contexts.record_alloc(pid, ctx_ptr);
            st.counters.contexts_created += 1;
        }
        match st.allocator.alloc(size) {
            Ok(ptr) => {
                st.contexts.record_alloc(pid, ptr);
                st.counters.allocs += 1;
                let in_use = st.allocator.in_use();
                st.counters.peak_in_use = st.counters.peak_in_use.max(in_use);
                Ok((ptr, needs_context))
            }
            Err(e) => {
                st.counters.failed_allocs += 1;
                Err(e)
            }
        }
    }

    fn fits(&self, allocator: &DeviceAllocator, size: Bytes) -> bool {
        if self.reserve.is_zero() {
            // Still subject to fragmentation — a precise check happens in
            // the allocator; this is the fast path.
            allocator.free_bytes() >= size
        } else {
            allocator.free_bytes() >= size + self.reserve
        }
    }

    /// Free `ptr` on behalf of `pid`. Errors when the pointer is unknown
    /// or owned by another process. Returns the freed size.
    pub fn free(&self, pid: Pid, ptr: DevicePtr) -> CudaResult<Bytes> {
        if ptr.is_null() {
            return Ok(Bytes::ZERO);
        }
        let mut st = self.state.lock();
        if !st.contexts.owns(pid, ptr) {
            return Err(CudaError::InvalidDevicePointer);
        }
        let size = st.allocator.free(ptr)?;
        st.contexts.record_free(pid, ptr);
        st.counters.frees += 1;
        Ok(size)
    }

    /// `(free, total)` memory as `cudaMemGetInfo` reports it.
    pub fn mem_info(&self) -> (Bytes, Bytes) {
        let st = self.state.lock();
        (st.allocator.free_bytes(), self.props.total_global_mem)
    }

    /// Register a fat binary for `pid` (program start).
    pub fn register_fat_binary(&self, pid: Pid) {
        self.state.lock().contexts.register_fat_binary(pid);
    }

    /// Unregister a fat binary for `pid` (program exit). When the last
    /// binary unregisters, the context is destroyed and **all** of the
    /// process's allocations (including leaks) are reclaimed. Returns the
    /// total bytes reclaimed.
    pub fn unregister_fat_binary(&self, pid: Pid) -> Bytes {
        let mut st = self.state.lock();
        if st.contexts.unregister_fat_binary(pid) {
            self.destroy_context_locked(&mut st, pid)
        } else {
            Bytes::ZERO
        }
    }

    /// Forcibly destroy `pid`'s context (container kill / crash path).
    /// Returns bytes reclaimed (zero when no context existed).
    pub fn destroy_context(&self, pid: Pid) -> Bytes {
        let mut st = self.state.lock();
        self.destroy_context_locked(&mut st, pid)
    }

    fn destroy_context_locked(&self, st: &mut DeviceState, pid: Pid) -> Bytes {
        let Some((_overhead, ptrs)) = st.contexts.destroy(pid) else {
            return Bytes::ZERO;
        };
        let mut reclaimed = Bytes::ZERO;
        for ptr in ptrs {
            // The context table and allocator are kept in lockstep, so
            // every owned pointer is live.
            reclaimed += st
                .allocator
                .free(ptr)
                .expect("context-owned pointer must be live");
        }
        st.counters.contexts_destroyed += 1;
        reclaimed
    }

    /// True when `pid` currently has a context.
    pub fn has_context(&self, pid: Pid) -> bool {
        self.state.lock().contexts.has_context(pid)
    }

    /// Allocator statistics snapshot.
    pub fn allocator_stats(&self) -> AllocatorStats {
        self.state.lock().allocator.stats()
    }

    /// Activity counters snapshot.
    pub fn counters(&self) -> DeviceCounters {
        self.state.lock().counters
    }

    /// Acquire a Hyper-Q kernel slot, blocking while all
    /// `concurrent_kernels` slots are busy. Pairs with
    /// [`GpuDevice::release_kernel_slot`].
    pub fn acquire_kernel_slot(&self) {
        let mut slots = self.kernel_slots.lock();
        while *slots == 0 {
            self.kernel_slot_freed.wait(&mut slots);
        }
        *slots -= 1;
    }

    /// Release a Hyper-Q kernel slot.
    pub fn release_kernel_slot(&self) {
        let mut slots = self.kernel_slots.lock();
        *slots += 1;
        drop(slots);
        self.kernel_slot_freed.notify_one();
    }

    /// Record a completed kernel (called by the runtime after execution).
    pub fn note_kernel_completed(&self) {
        self.state.lock().counters.kernels += 1;
    }

    /// Consult the fault plan for a kernel launch.
    pub fn should_fail_launch(&self) -> bool {
        self.faults.fail_launch()
    }

    /// Record a completed memcpy.
    pub fn note_memcpy(&self, bytes: Bytes) {
        let mut st = self.state.lock();
        st.counters.memcpys += 1;
        st.counters.bytes_copied += bytes.as_u64();
    }

    /// Validate allocator invariants (tests / debug).
    pub fn check_invariants(&self) -> Result<(), String> {
        self.state.lock().allocator.check_invariants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_alloc_charges_context_overhead() {
        let dev = GpuDevice::tesla_k20m();
        let (free0, total) = dev.mem_info();
        assert_eq!(free0, total);
        let (_, created) = dev.alloc(1, Bytes::mib(100)).unwrap();
        assert!(created);
        let (free1, _) = dev.mem_info();
        assert_eq!(total - free1, Bytes::mib(166), "100 MiB + 66 MiB context");
        // Second allocation from the same pid: no extra overhead.
        let (_, created) = dev.alloc(1, Bytes::mib(10)).unwrap();
        assert!(!created);
        let (free2, _) = dev.mem_info();
        assert_eq!(free1 - free2, Bytes::mib(10));
    }

    #[test]
    fn each_pid_pays_its_own_context() {
        let dev = GpuDevice::tesla_k20m();
        dev.alloc(1, Bytes::mib(1)).unwrap();
        dev.alloc(2, Bytes::mib(1)).unwrap();
        let (free, total) = dev.mem_info();
        assert_eq!(total - free, Bytes::mib(2 * 66 + 2));
        assert_eq!(dev.counters().contexts_created, 2);
    }

    #[test]
    fn exhaustion_counts_failed_allocs() {
        let dev = GpuDevice::new(DeviceConfig {
            props: DeviceProperties::gtx_750ti(), // 2 GiB
            ..DeviceConfig::default()
        });
        dev.alloc(1, Bytes::mib(1900)).unwrap();
        assert_eq!(
            dev.alloc(1, Bytes::mib(200)).unwrap_err(),
            CudaError::MemoryAllocation
        );
        assert_eq!(dev.counters().failed_allocs, 1);
        dev.check_invariants().unwrap();
    }

    #[test]
    fn context_overhead_included_in_first_alloc_admission() {
        // 2 GiB device: a first allocation of 2 GiB-32 MiB must fail
        // because the 66 MiB context does not fit alongside it.
        let dev = GpuDevice::new(DeviceConfig {
            props: DeviceProperties::gtx_750ti(),
            ..DeviceConfig::default()
        });
        let req = Bytes::gib(2) - Bytes::mib(32);
        assert_eq!(dev.alloc(1, req).unwrap_err(), CudaError::MemoryAllocation);
        // No context must have been leaked by the failed attempt.
        assert!(!dev.has_context(1));
        let (free, total) = dev.mem_info();
        assert_eq!(free, total);
    }

    #[test]
    fn cross_pid_free_rejected() {
        let dev = GpuDevice::tesla_k20m();
        let (ptr, _) = dev.alloc(1, Bytes::mib(4)).unwrap();
        assert_eq!(dev.free(2, ptr), Err(CudaError::InvalidDevicePointer));
        assert_eq!(dev.free(1, ptr).unwrap(), Bytes::mib(4));
    }

    #[test]
    fn unregister_reclaims_leaks() {
        let dev = GpuDevice::tesla_k20m();
        dev.register_fat_binary(1);
        dev.alloc(1, Bytes::mib(100)).unwrap();
        dev.alloc(1, Bytes::mib(50)).unwrap(); // leaked on purpose
        let reclaimed = dev.unregister_fat_binary(1);
        assert_eq!(reclaimed, Bytes::mib(150 + 66));
        let (free, total) = dev.mem_info();
        assert_eq!(free, total, "all memory back");
        assert!(!dev.has_context(1));
        assert_eq!(dev.counters().contexts_destroyed, 1);
    }

    #[test]
    fn destroy_context_on_kill_path() {
        let dev = GpuDevice::tesla_k20m();
        dev.alloc(7, Bytes::mib(10)).unwrap();
        let reclaimed = dev.destroy_context(7);
        assert_eq!(reclaimed, Bytes::mib(76));
        assert_eq!(dev.destroy_context(7), Bytes::ZERO, "idempotent");
    }

    #[test]
    fn reserve_blocks_allocations_near_capacity() {
        let dev = GpuDevice::new(DeviceConfig {
            props: DeviceProperties::gtx_750ti(),
            reserve: Bytes::mib(256),
            ..DeviceConfig::default()
        });
        // 2048 - 66 ctx - 256 reserve = 1726 max single alloc.
        assert!(dev.alloc(1, Bytes::mib(1800)).is_err());
        assert!(dev.alloc(1, Bytes::mib(1700)).is_ok());
    }

    #[test]
    fn kernel_slots_enforce_hyperq_width() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;
        let props = DeviceProperties {
            concurrent_kernels: 2,
            ..DeviceProperties::tesla_k20m()
        };
        let dev = Arc::new(GpuDevice::new(DeviceConfig {
            props,
            ..DeviceConfig::default()
        }));
        let running = Arc::new(AtomicU32::new(0));
        let peak = Arc::new(AtomicU32::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let dev = Arc::clone(&dev);
            let running = Arc::clone(&running);
            let peak = Arc::clone(&peak);
            handles.push(std::thread::spawn(move || {
                dev.acquire_kernel_slot();
                let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(5));
                running.fetch_sub(1, Ordering::SeqCst);
                dev.release_kernel_slot();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "Hyper-Q width exceeded");
    }

    #[test]
    fn peak_in_use_tracks_high_water() {
        let dev = GpuDevice::tesla_k20m();
        let (p, _) = dev.alloc(1, Bytes::mib(500)).unwrap();
        dev.free(1, p).unwrap();
        dev.alloc(1, Bytes::mib(10)).unwrap();
        assert_eq!(dev.counters().peak_in_use, Bytes::mib(566));
    }
}
