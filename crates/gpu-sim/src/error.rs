//! CUDA error codes.
//!
//! A small subset of `cudaError_t` — the codes a memory-management
//! middleware can actually observe. Numeric values match the CUDA 8
//! runtime so logs read like real `cudaGetErrorString` output.

use std::fmt;

/// Result alias used across the simulated runtime.
pub type CudaResult<T> = Result<T, CudaError>;

/// Simulated `cudaError_t`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CudaError {
    /// `cudaErrorMemoryAllocation` (2): the device could not satisfy the
    /// allocation. This is the error a container sees when NVIDIA Docker
    /// shares a GPU without ConVGPU and another container got there first.
    MemoryAllocation,
    /// `cudaErrorInitializationError` (3): runtime used before/after its
    /// lifetime (e.g. an API call after `__cudaUnregisterFatBinary`).
    InitializationError,
    /// `cudaErrorInvalidValue` (11): a bad argument (zero-sized pitch
    /// request, null pointer free of an unknown address, …).
    InvalidValue,
    /// `cudaErrorInvalidDevicePointer` (17): freeing an address the device
    /// does not know, or one owned by a different process.
    InvalidDevicePointer,
    /// `cudaErrorInvalidDevice` (10): device ordinal out of range.
    InvalidDevice,
    /// `cudaErrorNoDevice` (38): no device present.
    NoDevice,
    /// `cudaErrorLaunchFailure` (4): a kernel launch failed (used by fault
    /// injection in tests).
    LaunchFailure,
    /// Not a CUDA code: the ConVGPU scheduler *rejected* the allocation
    /// because it exceeds the container's declared limit. Surfaced to the
    /// user program as an allocation failure, but kept distinct so tests
    /// and metrics can tell rejection from device exhaustion.
    SchedulerRejected,
    /// Not a CUDA code: the scheduler connection failed (plumbing errors in
    /// the live stack).
    SchedulerUnavailable,
}

impl CudaError {
    /// The numeric `cudaError_t` value (CUDA 8). ConVGPU-specific errors
    /// map onto `cudaErrorMemoryAllocation` because that is what the
    /// wrapper returns to the interposed program.
    pub fn code(self) -> u32 {
        match self {
            CudaError::MemoryAllocation => 2,
            CudaError::InitializationError => 3,
            CudaError::LaunchFailure => 4,
            CudaError::InvalidDevice => 10,
            CudaError::InvalidValue => 11,
            CudaError::InvalidDevicePointer => 17,
            CudaError::NoDevice => 38,
            CudaError::SchedulerRejected => 2,
            CudaError::SchedulerUnavailable => 2,
        }
    }

    /// `cudaGetErrorString`-style message.
    pub fn error_string(self) -> &'static str {
        match self {
            CudaError::MemoryAllocation => "out of memory",
            CudaError::InitializationError => "initialization error",
            CudaError::LaunchFailure => "unspecified launch failure",
            CudaError::InvalidDevice => "invalid device ordinal",
            CudaError::InvalidValue => "invalid argument",
            CudaError::InvalidDevicePointer => "invalid device pointer",
            CudaError::NoDevice => "no CUDA-capable device is detected",
            CudaError::SchedulerRejected => {
                "out of memory (ConVGPU: request exceeds container limit)"
            }
            CudaError::SchedulerUnavailable => "out of memory (ConVGPU: scheduler unavailable)",
        }
    }

    /// True for the errors a user program perceives as "allocation failed".
    pub fn is_allocation_failure(self) -> bool {
        self.code() == 2
    }
}

impl fmt::Display for CudaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cudaError {}: {}", self.code(), self.error_string())
    }
}

impl std::error::Error for CudaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_match_cuda8() {
        assert_eq!(CudaError::MemoryAllocation.code(), 2);
        assert_eq!(CudaError::InitializationError.code(), 3);
        assert_eq!(CudaError::InvalidValue.code(), 11);
        assert_eq!(CudaError::InvalidDevicePointer.code(), 17);
        assert_eq!(CudaError::NoDevice.code(), 38);
    }

    #[test]
    fn scheduler_errors_look_like_oom() {
        assert!(CudaError::SchedulerRejected.is_allocation_failure());
        assert!(CudaError::SchedulerUnavailable.is_allocation_failure());
        assert!(CudaError::MemoryAllocation.is_allocation_failure());
        assert!(!CudaError::InvalidValue.is_allocation_failure());
    }

    #[test]
    fn display_is_informative() {
        let s = CudaError::MemoryAllocation.to_string();
        assert!(s.contains("cudaError 2"));
        assert!(s.contains("out of memory"));
    }
}
