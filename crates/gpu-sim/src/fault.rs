//! Fault injection for robustness testing.
//!
//! ConVGPU's consistency goal ("failures in one container would not
//! affect other containers", §III-A) is only testable if the substrate
//! can *produce* failures. [`FaultPlan`] injects deterministic,
//! seed-reproducible faults into the device: allocation failures beyond
//! the scheduler's control (driver hiccups) and kernel launch failures
//! (the classic `unspecified launch failure`). The failure-injection
//! tests assert that the middleware contains each fault to its container
//! and releases its reservations.

use convgpu_sim_core::rng::DetRng;
use convgpu_sim_core::sync::Mutex;

/// Probabilistic fault configuration (all rates in `[0, 1]`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultRates {
    /// Probability that an otherwise-satisfiable allocation fails with
    /// `cudaErrorMemoryAllocation`.
    pub alloc_failure: f64,
    /// Probability that a kernel launch fails with
    /// `cudaErrorLaunchFailure`.
    pub launch_failure: f64,
}

impl FaultRates {
    /// No faults.
    pub const NONE: FaultRates = FaultRates {
        alloc_failure: 0.0,
        launch_failure: 0.0,
    };
}

/// A seeded fault injector.
#[derive(Debug)]
pub struct FaultPlan {
    rates: FaultRates,
    rng: Mutex<DetRng>,
}

impl FaultPlan {
    /// Build a plan with `rates`, reproducible under `seed`.
    pub fn new(rates: FaultRates, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rates.alloc_failure)
                && (0.0..=1.0).contains(&rates.launch_failure),
            "fault rates must be probabilities"
        );
        FaultPlan {
            rates,
            rng: Mutex::new(DetRng::seed_from_u64(seed)),
        }
    }

    /// A plan that never fires.
    pub fn none() -> Self {
        Self::new(FaultRates::NONE, 0)
    }

    /// Should this allocation fail?
    pub fn fail_alloc(&self) -> bool {
        self.rates.alloc_failure > 0.0 && self.rng.lock().next_f64() < self.rates.alloc_failure
    }

    /// Should this kernel launch fail?
    pub fn fail_launch(&self) -> bool {
        self.rates.launch_failure > 0.0 && self.rng.lock().next_f64() < self.rates.launch_failure
    }

    /// The configured rates.
    pub fn rates(&self) -> FaultRates {
        self.rates
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fires() {
        let p = FaultPlan::none();
        for _ in 0..1000 {
            assert!(!p.fail_alloc());
            assert!(!p.fail_launch());
        }
    }

    #[test]
    fn rates_are_roughly_respected() {
        let p = FaultPlan::new(
            FaultRates {
                alloc_failure: 0.25,
                launch_failure: 0.0,
            },
            7,
        );
        let hits = (0..10_000).filter(|_| p.fail_alloc()).count();
        assert!((2200..2800).contains(&hits), "≈25%: got {hits}");
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let mk = || {
            let p = FaultPlan::new(
                FaultRates {
                    alloc_failure: 0.5,
                    launch_failure: 0.5,
                },
                42,
            );
            (0..64)
                .map(|i| {
                    if i % 2 == 0 {
                        p.fail_alloc()
                    } else {
                        p.fail_launch()
                    }
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    #[should_panic(expected = "must be probabilities")]
    fn invalid_rates_rejected() {
        FaultPlan::new(
            FaultRates {
                alloc_failure: 1.5,
                launch_failure: 0.0,
            },
            0,
        );
    }
}
