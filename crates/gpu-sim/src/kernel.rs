//! Kernel descriptors and the roofline-style execution cost model.
//!
//! The workloads crate builds kernels (complement over a buffer, conv2d,
//! dense layers…) as [`KernelSpec`]s; the device turns one into a duration
//! with a simple roofline: execution time is the maximum of the compute
//! term (flops / peak throughput) and the memory term (bytes touched /
//! bandwidth), plus fixed launch overhead, divided by how much of the GPU
//! the kernel occupies.

use crate::props::DeviceProperties;
use convgpu_sim_core::time::SimDuration;
use convgpu_sim_core::units::Bytes;

/// A kernel launch request.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelSpec {
    /// Diagnostic name (shows up in traces).
    pub name: String,
    /// Floating-point operations performed.
    pub flops: f64,
    /// Device-memory bytes read + written.
    pub bytes_accessed: Bytes,
    /// Fraction of the device the kernel can occupy, in `(0, 1]`. A
    /// grid-saturating kernel uses 1.0; tiny kernels that underfill the
    /// GPU use less, lengthening their runtime proportionally.
    pub occupancy: f64,
}

impl KernelSpec {
    /// A memory-bound element-wise kernel over `bytes` of data (reads and
    /// writes each byte once; one op per byte) — the shape of the paper's
    /// sample program ("calculates the complement" of a buffer).
    pub fn elementwise(name: impl Into<String>, bytes: Bytes) -> Self {
        KernelSpec {
            name: name.into(),
            flops: bytes.as_u64() as f64,
            bytes_accessed: Bytes::new(bytes.as_u64().saturating_mul(2)),
            occupancy: 1.0,
        }
    }

    /// A compute-bound kernel performing `flops` operations on `bytes`.
    pub fn compute(name: impl Into<String>, flops: f64, bytes: Bytes) -> Self {
        KernelSpec {
            name: name.into(),
            flops,
            bytes_accessed: bytes,
            occupancy: 1.0,
        }
    }

    /// Set the occupancy fraction (clamped to `(0, 1]`).
    pub fn with_occupancy(mut self, occupancy: f64) -> Self {
        self.occupancy = occupancy.clamp(f64::MIN_POSITIVE, 1.0);
        self
    }

    /// Roofline execution time on `props` (excluding launch overhead,
    /// which the runtime charges separately).
    pub fn duration_on(&self, props: &DeviceProperties) -> SimDuration {
        let compute_secs = self.flops / (props.gflops * 1e9);
        let mem_secs =
            self.bytes_accessed.as_u64() as f64 / (props.mem_bandwidth_gib_s * (1u64 << 30) as f64);
        let occ = self.occupancy.clamp(f64::MIN_POSITIVE, 1.0);
        SimDuration::from_secs_f64(compute_secs.max(mem_secs) / occ)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elementwise_is_memory_bound_on_k20m() {
        let props = DeviceProperties::tesla_k20m();
        let k = KernelSpec::elementwise("complement", Bytes::gib(1));
        // 2 GiB touched at 194 GiB/s ≈ 10.3 ms; compute term (1 GiB flops
        // at 3.5 TFLOP/s ≈ 0.3 ms) is smaller.
        let d = k.duration_on(&props);
        assert!(d > SimDuration::from_millis(8), "{d}");
        assert!(d < SimDuration::from_millis(15), "{d}");
    }

    #[test]
    fn compute_bound_kernel_scales_with_flops() {
        let props = DeviceProperties::tesla_k20m();
        let k1 = KernelSpec::compute("k1", 3.52e12, Bytes::mib(1)); // 1 s of flops
        let d1 = k1.duration_on(&props);
        assert!((d1.as_secs_f64() - 1.0).abs() < 0.01, "{d1}");
        let k2 = KernelSpec::compute("k2", 7.04e12, Bytes::mib(1));
        let d2 = k2.duration_on(&props);
        assert!((d2.as_secs_f64() - 2.0).abs() < 0.02, "{d2}");
    }

    #[test]
    fn low_occupancy_lengthens_runtime() {
        let props = DeviceProperties::tesla_k20m();
        let full = KernelSpec::compute("k", 3.52e9, Bytes::new(1));
        let half = full.clone().with_occupancy(0.5);
        let df = full.duration_on(&props);
        let dh = half.duration_on(&props);
        assert!(dh.as_nanos() >= df.as_nanos() * 19 / 10, "{df} vs {dh}");
    }

    #[test]
    fn occupancy_is_clamped() {
        let k = KernelSpec::compute("k", 1.0, Bytes::new(1)).with_occupancy(7.0);
        assert_eq!(k.occupancy, 1.0);
        let k = KernelSpec::compute("k", 1.0, Bytes::new(1)).with_occupancy(-1.0);
        assert!(k.occupancy > 0.0);
    }

    #[test]
    fn zero_work_kernel_takes_zero_time() {
        let props = DeviceProperties::tesla_k20m();
        let k = KernelSpec::compute("empty", 0.0, Bytes::ZERO);
        assert_eq!(k.duration_on(&props), SimDuration::ZERO);
    }
}
