//! API latency model.
//!
//! The Fig. 4 experiment compares per-call response times with and without
//! ConVGPU. The "without" bars are properties of the device/driver, so the
//! simulated runtime charges a fixed cost per API call, calibrated to the
//! paper's reported baselines:
//!
//! * plain allocation APIs ≈ 0.035 ms on average;
//! * `cudaMallocManaged` ≈ 40× a plain allocation (mapped memory setup);
//! * `cudaMallocPitch` like a plain allocation (the wrapper's extra
//!   first-call property fetch is *ConVGPU's* cost, modeled in the
//!   wrapper, not here);
//! * `cudaFree` slightly cheaper than allocation;
//! * `cudaMemGetInfo` a bit slower than `cudaFree` (it queries the
//!   device; ConVGPU answers it from the scheduler's book-keeping, which
//!   is how the paper measured ConVGPU *faster* on this API);
//! * first-use context creation is expensive (tens of ms on real
//!   hardware) and happens once per process.

use convgpu_sim_core::time::SimDuration;

/// Fixed per-call device/driver costs.
#[derive(Clone, Debug, PartialEq)]
pub struct LatencyModel {
    /// `cudaMalloc` / `cudaMallocPitch` / `cudaMalloc3D` base cost.
    pub alloc: SimDuration,
    /// `cudaMallocManaged` cost (mapped CPU+GPU memory setup).
    pub alloc_managed: SimDuration,
    /// `cudaFree` cost.
    pub free: SimDuration,
    /// `cudaMemGetInfo` cost (device query).
    pub mem_get_info: SimDuration,
    /// `cudaGetDeviceProperties` cost.
    pub get_device_properties: SimDuration,
    /// Kernel launch overhead (enqueue, not execution).
    pub kernel_launch: SimDuration,
    /// Fixed per-`cudaMemcpy` overhead on top of the bandwidth term.
    pub memcpy_overhead: SimDuration,
    /// One-time context creation on first runtime use by a process.
    pub context_create: SimDuration,
    /// `__cudaRegisterFatBinary` / `__cudaUnregisterFatBinary` cost.
    pub fat_binary: SimDuration,
}

impl LatencyModel {
    /// Calibrated to the paper's Fig. 4 "without ConVGPU" numbers.
    pub fn tesla_k20m() -> Self {
        LatencyModel {
            alloc: SimDuration::from_nanos(35_000),
            alloc_managed: SimDuration::from_nanos(1_400_000),
            free: SimDuration::from_nanos(25_000),
            mem_get_info: SimDuration::from_nanos(45_000),
            get_device_properties: SimDuration::from_nanos(30_000),
            kernel_launch: SimDuration::from_nanos(5_000),
            memcpy_overhead: SimDuration::from_nanos(10_000),
            context_create: SimDuration::from_millis(80),
            fat_binary: SimDuration::from_nanos(15_000),
        }
    }

    /// All-zero model: used by the discrete-event experiments, where API
    /// latency is negligible against 5–45 s workloads (and by unit tests
    /// that do not want timing noise).
    pub fn zero() -> Self {
        LatencyModel {
            alloc: SimDuration::ZERO,
            alloc_managed: SimDuration::ZERO,
            free: SimDuration::ZERO,
            mem_get_info: SimDuration::ZERO,
            get_device_properties: SimDuration::ZERO,
            kernel_launch: SimDuration::ZERO,
            memcpy_overhead: SimDuration::ZERO,
            context_create: SimDuration::ZERO,
            fat_binary: SimDuration::ZERO,
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::tesla_k20m()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k20m_calibration_matches_fig4_shape() {
        let m = LatencyModel::tesla_k20m();
        // Paper: allocation without ConVGPU averages 0.035 ms.
        assert_eq!(m.alloc.as_nanos(), 35_000);
        // Paper: managed allocation ~40x other allocation APIs.
        let ratio = m.alloc_managed.as_nanos() as f64 / m.alloc.as_nanos() as f64;
        assert!(
            (30.0..=50.0).contains(&ratio),
            "managed/alloc ratio {ratio}"
        );
        // Free is cheaper than alloc; memGetInfo costs more than free.
        assert!(m.free < m.alloc);
        assert!(m.mem_get_info > m.free);
    }

    #[test]
    fn zero_model_is_zero() {
        let m = LatencyModel::zero();
        assert!(m.alloc.is_zero());
        assert!(m.context_create.is_zero());
        assert!(m.memcpy_overhead.is_zero());
    }
}
