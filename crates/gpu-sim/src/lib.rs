//! A simulated NVIDIA GPU and CUDA-Runtime-like API.
//!
//! The paper evaluated ConVGPU on a Tesla K20m with CUDA 8. This crate is
//! the substitution substrate: it reproduces every *observable behaviour of
//! the CUDA Runtime API that ConVGPU depends on* (see DESIGN.md §2):
//!
//! * the Table II API surface: `cudaMalloc`, `cudaMallocManaged`,
//!   `cudaMallocPitch`, `cudaMalloc3D`, `cudaFree`, `cudaMemGetInfo`,
//!   `cudaGetDeviceProperties`, and the implicit
//!   `__cudaRegisterFatBinary` / `__cudaUnregisterFatBinary` pair;
//! * allocation semantics: `cudaErrorMemoryAllocation` on exhaustion, the
//!   ~64 MiB process-data + ~2 MiB context charge on first use by a
//!   process, pitched-width rounding, managed memory's 128 MiB granularity;
//! * timing: a latency model per API call (calibrated to the paper's Fig. 4
//!   "without ConVGPU" bars), a PCIe-bandwidth memcpy model, and a
//!   Hyper-Q kernel executor allowing up to 32 concurrent kernels;
//! * cleanup: destroying a process's context reclaims its leaked
//!   allocations, mirroring the driver's behaviour on process exit.
//!
//! The API is exposed through the [`api::CudaApi`] trait so the ConVGPU
//! wrapper module (`convgpu-wrapper`) can interpose on it exactly like
//! `LD_PRELOAD` interposes on the real shared library.

#![forbid(unsafe_code)]

pub mod api;
pub mod context;
pub mod device;
pub mod error;
pub mod fault;
pub mod kernel;
pub mod latency;
pub mod memory;
pub mod program;
pub mod props;
pub mod runtime;
pub mod stream;

pub use api::{CudaApi, Extent3D, MemcpyKind, PitchedPtr};
pub use device::{DeviceConfig, GpuDevice};
pub use error::{CudaError, CudaResult};
pub use fault::{FaultPlan, FaultRates};
pub use kernel::KernelSpec;
pub use latency::LatencyModel;
pub use memory::{AllocatorKind, DevicePtr};
pub use program::{FnProgram, GpuProgram, ProgramLink};
pub use props::DeviceProperties;
pub use runtime::RawCudaRuntime;
pub use stream::{EventId, StreamEngine, StreamId};
