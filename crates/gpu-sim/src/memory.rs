//! Device memory allocators.
//!
//! Two models:
//!
//! * [`PagedAllocator`] — the realistic default. `cudaMalloc` returns
//!   *virtually* contiguous ranges backed by physical pages, so an
//!   allocation succeeds whenever enough total memory is free; physical
//!   fragmentation cannot fail it. This matters for ConVGPU: the
//!   scheduler's guarantee (`Σ assigned ≤ capacity`) is only sound if the
//!   device admits by total free space, as real GPUs do.
//! * [`AddressSpaceAllocator`] — a first-fit free-list over one flat
//!   address space, where fragmentation *can* fail an allocation. Kept
//!   for the `allocator` ablation bench, which quantifies how often a
//!   contiguity-constrained device would break the scheduler's guarantee.
//!
//! [`DeviceAllocator`] dispatches between them.

use crate::error::{CudaError, CudaResult};
use convgpu_sim_core::units::Bytes;
use std::collections::BTreeMap;
use std::fmt;

/// A device pointer. Address 0 is never handed out (it is CUDA's NULL).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DevicePtr(pub u64);

impl DevicePtr {
    /// The null device pointer.
    pub const NULL: DevicePtr = DevicePtr(0);

    /// Raw address value.
    pub fn addr(self) -> u64 {
        self.0
    }

    /// True for the null pointer.
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for DevicePtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:012x}", self.0)
    }
}

impl fmt::Display for DevicePtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Device base address for the simulated heap — an arbitrary non-zero
/// constant resembling real unified-addressing values.
const HEAP_BASE: u64 = 0x0007_0000_0000;

/// Minimum allocation granularity. Real CUDA allocations are at least
/// 256-byte aligned; we round sizes up to this too, so "0-byte" requests
/// still occupy a distinguishable block (matching `cudaMalloc(&p, 0)`
/// returning a unique pointer is NOT modeled — zero sizes are rejected
/// earlier by the API layer).
const GRANULE: u64 = 256;

/// Allocation statistics snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocatorStats {
    /// Bytes currently allocated (after granularity rounding).
    pub in_use: Bytes,
    /// Bytes currently free.
    pub free: Bytes,
    /// Largest single free block.
    pub largest_free_block: Bytes,
    /// Number of live allocations.
    pub live_allocations: usize,
    /// Number of free-list fragments.
    pub free_fragments: usize,
    /// Total allocations served over the allocator's lifetime.
    pub total_allocs: u64,
    /// Total frees over the allocator's lifetime.
    pub total_frees: u64,
}

/// First-fit free-list allocator with address-ordered coalescing.
pub struct AddressSpaceAllocator {
    capacity: Bytes,
    /// Free blocks keyed by start address → length. Address order makes
    /// coalescing a neighbour lookup.
    free: BTreeMap<u64, u64>,
    /// Live blocks keyed by start address → length.
    live: BTreeMap<u64, u64>,
    total_allocs: u64,
    total_frees: u64,
}

impl AddressSpaceAllocator {
    /// An empty allocator over `capacity` bytes of device memory.
    pub fn new(capacity: Bytes) -> Self {
        let mut free = BTreeMap::new();
        if capacity.as_u64() > 0 {
            free.insert(HEAP_BASE, capacity.as_u64());
        }
        AddressSpaceAllocator {
            capacity,
            free,
            live: BTreeMap::new(),
            total_allocs: 0,
            total_frees: 0,
        }
    }

    /// Total device memory.
    pub fn capacity(&self) -> Bytes {
        self.capacity
    }

    /// Bytes currently allocated (rounded to granules).
    pub fn in_use(&self) -> Bytes {
        Bytes::new(self.live.values().sum())
    }

    /// Bytes currently free.
    pub fn free_bytes(&self) -> Bytes {
        Bytes::new(self.free.values().sum())
    }

    /// Allocate `size` bytes (rounded up to the 256-byte granule),
    /// first-fit. Fails with [`CudaError::MemoryAllocation`] when no free
    /// block is large enough and with [`CudaError::InvalidValue`] for a
    /// zero size.
    pub fn alloc(&mut self, size: Bytes) -> CudaResult<DevicePtr> {
        if size.is_zero() {
            return Err(CudaError::InvalidValue);
        }
        let want = size.align_up(Bytes::new(GRANULE)).as_u64();
        // First fit in address order.
        let found = self
            .free
            .iter()
            .find(|(_, &len)| len >= want)
            .map(|(&addr, &len)| (addr, len));
        let (addr, len) = found.ok_or(CudaError::MemoryAllocation)?;
        self.free.remove(&addr);
        if len > want {
            self.free.insert(addr + want, len - want);
        }
        self.live.insert(addr, want);
        self.total_allocs += 1;
        Ok(DevicePtr(addr))
    }

    /// Free a previously allocated block, returning its (rounded) size.
    /// Freeing an unknown address fails with
    /// [`CudaError::InvalidDevicePointer`]; freeing NULL is a no-op
    /// returning zero (matching `cudaFree(0)` being legal).
    pub fn free(&mut self, ptr: DevicePtr) -> CudaResult<Bytes> {
        if ptr.is_null() {
            return Ok(Bytes::ZERO);
        }
        let len = self
            .live
            .remove(&ptr.0)
            .ok_or(CudaError::InvalidDevicePointer)?;
        self.insert_free(ptr.0, len);
        self.total_frees += 1;
        Ok(Bytes::new(len))
    }

    /// Size of a live allocation, if any.
    pub fn size_of(&self, ptr: DevicePtr) -> Option<Bytes> {
        self.live.get(&ptr.0).copied().map(Bytes::new)
    }

    /// Insert a block into the free list, coalescing with adjacent blocks.
    fn insert_free(&mut self, addr: u64, len: u64) {
        let mut start = addr;
        let mut length = len;
        // Coalesce with the previous block if contiguous.
        if let Some((&prev_addr, &prev_len)) = self.free.range(..addr).next_back() {
            if prev_addr + prev_len == addr {
                self.free.remove(&prev_addr);
                start = prev_addr;
                length += prev_len;
            }
        }
        // Coalesce with the next block if contiguous.
        if let Some((&next_addr, &next_len)) = self.free.range(addr..).next() {
            if start + length == next_addr {
                self.free.remove(&next_addr);
                length += next_len;
            }
        }
        self.free.insert(start, length);
    }

    /// Snapshot of allocator statistics.
    pub fn stats(&self) -> AllocatorStats {
        AllocatorStats {
            in_use: self.in_use(),
            free: self.free_bytes(),
            largest_free_block: Bytes::new(self.free.values().copied().max().unwrap_or(0)),
            live_allocations: self.live.len(),
            free_fragments: self.free.len(),
            total_allocs: self.total_allocs,
            total_frees: self.total_frees,
        }
    }

    /// Iterate over live blocks as `(ptr, size)`; used by context teardown
    /// to reclaim a process's leaked allocations.
    pub fn live_blocks(&self) -> impl Iterator<Item = (DevicePtr, Bytes)> + '_ {
        self.live
            .iter()
            .map(|(&a, &l)| (DevicePtr(a), Bytes::new(l)))
    }

    /// Internal consistency check, used by tests and debug assertions:
    /// free + live partition the address space with no overlap.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut regions: Vec<(u64, u64, bool)> = Vec::new();
        regions.extend(self.free.iter().map(|(&a, &l)| (a, l, true)));
        regions.extend(self.live.iter().map(|(&a, &l)| (a, l, false)));
        regions.sort_by_key(|r| r.0);
        let mut cursor = HEAP_BASE;
        let mut covered = 0u64;
        for (addr, len, _) in &regions {
            if *addr < cursor {
                return Err(format!("overlap at 0x{addr:x}"));
            }
            if *addr > cursor {
                return Err(format!(
                    "gap between 0x{cursor:x} and 0x{addr:x} (lost memory)"
                ));
            }
            if *len == 0 {
                return Err(format!("zero-length region at 0x{addr:x}"));
            }
            cursor = addr + len;
            covered += len;
        }
        if covered != self.capacity.as_u64() {
            return Err(format!(
                "coverage {covered} != capacity {}",
                self.capacity.as_u64()
            ));
        }
        // Adjacent free blocks must have been coalesced.
        let mut prev_end: Option<u64> = None;
        for (&a, &l) in &self.free {
            if prev_end == Some(a) {
                return Err(format!("uncoalesced free blocks at 0x{a:x}"));
            }
            prev_end = Some(a + l);
        }
        Ok(())
    }
}

/// Paged allocator: virtual bump addresses, physical accounting by
/// total bytes. Mirrors real `cudaMalloc` semantics (virtually
/// contiguous, physically paged).
pub struct PagedAllocator {
    capacity: Bytes,
    free: Bytes,
    next_addr: u64,
    live: BTreeMap<u64, u64>,
    total_allocs: u64,
    total_frees: u64,
}

impl PagedAllocator {
    /// An empty paged allocator over `capacity` bytes.
    pub fn new(capacity: Bytes) -> Self {
        PagedAllocator {
            capacity,
            free: capacity,
            next_addr: HEAP_BASE,
            live: BTreeMap::new(),
            total_allocs: 0,
            total_frees: 0,
        }
    }

    /// Total device memory.
    pub fn capacity(&self) -> Bytes {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn in_use(&self) -> Bytes {
        self.capacity - self.free
    }

    /// Bytes currently free.
    pub fn free_bytes(&self) -> Bytes {
        self.free
    }

    /// Allocate: succeeds whenever `size` (rounded to the granule) fits
    /// the free total — no contiguity constraint.
    pub fn alloc(&mut self, size: Bytes) -> CudaResult<DevicePtr> {
        if size.is_zero() {
            return Err(CudaError::InvalidValue);
        }
        let want = size.align_up(Bytes::new(GRANULE));
        if want > self.free {
            return Err(CudaError::MemoryAllocation);
        }
        let addr = self.next_addr;
        // Virtual addresses are never reused; a 64-bit space outlives any
        // simulation.
        self.next_addr = self
            .next_addr
            .checked_add(want.as_u64().max(GRANULE))
            .expect("virtual address space exhausted");
        self.free -= want;
        self.live.insert(addr, want.as_u64());
        self.total_allocs += 1;
        Ok(DevicePtr(addr))
    }

    /// Free a live allocation; NULL is a no-op.
    pub fn free(&mut self, ptr: DevicePtr) -> CudaResult<Bytes> {
        if ptr.is_null() {
            return Ok(Bytes::ZERO);
        }
        let len = self
            .live
            .remove(&ptr.0)
            .ok_or(CudaError::InvalidDevicePointer)?;
        self.free += Bytes::new(len);
        self.total_frees += 1;
        Ok(Bytes::new(len))
    }

    /// Size of a live allocation.
    pub fn size_of(&self, ptr: DevicePtr) -> Option<Bytes> {
        self.live.get(&ptr.0).copied().map(Bytes::new)
    }

    /// Statistics snapshot (free space is one "fragment" by definition).
    pub fn stats(&self) -> AllocatorStats {
        AllocatorStats {
            in_use: self.in_use(),
            free: self.free,
            largest_free_block: self.free,
            live_allocations: self.live.len(),
            free_fragments: usize::from(!self.free.is_zero()),
            total_allocs: self.total_allocs,
            total_frees: self.total_frees,
        }
    }

    /// Iterate live blocks.
    pub fn live_blocks(&self) -> impl Iterator<Item = (DevicePtr, Bytes)> + '_ {
        self.live
            .iter()
            .map(|(&a, &l)| (DevicePtr(a), Bytes::new(l)))
    }

    /// Consistency: live total + free == capacity.
    pub fn check_invariants(&self) -> Result<(), String> {
        let live: u64 = self.live.values().sum();
        if Bytes::new(live) + self.free != self.capacity {
            return Err(format!(
                "paged accounting broken: live {live} + free {} != capacity {}",
                self.free, self.capacity
            ));
        }
        Ok(())
    }
}

/// Which allocation model a device uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocatorKind {
    /// Realistic CUDA semantics (default).
    Paged,
    /// Contiguity-constrained first fit (ablation).
    FirstFit,
}

/// Dispatching wrapper over the two allocator models.
pub enum DeviceAllocator {
    /// Paged (default).
    Paged(PagedAllocator),
    /// First-fit (ablation).
    FirstFit(AddressSpaceAllocator),
}

impl DeviceAllocator {
    /// Build the chosen model over `capacity`.
    pub fn new(kind: AllocatorKind, capacity: Bytes) -> Self {
        match kind {
            AllocatorKind::Paged => DeviceAllocator::Paged(PagedAllocator::new(capacity)),
            AllocatorKind::FirstFit => {
                DeviceAllocator::FirstFit(AddressSpaceAllocator::new(capacity))
            }
        }
    }

    /// Allocate `size` bytes.
    pub fn alloc(&mut self, size: Bytes) -> CudaResult<DevicePtr> {
        match self {
            DeviceAllocator::Paged(a) => a.alloc(size),
            DeviceAllocator::FirstFit(a) => a.alloc(size),
        }
    }

    /// Free `ptr`.
    pub fn free(&mut self, ptr: DevicePtr) -> CudaResult<Bytes> {
        match self {
            DeviceAllocator::Paged(a) => a.free(ptr),
            DeviceAllocator::FirstFit(a) => a.free(ptr),
        }
    }

    /// Bytes in use.
    pub fn in_use(&self) -> Bytes {
        match self {
            DeviceAllocator::Paged(a) => a.in_use(),
            DeviceAllocator::FirstFit(a) => a.in_use(),
        }
    }

    /// Bytes free.
    pub fn free_bytes(&self) -> Bytes {
        match self {
            DeviceAllocator::Paged(a) => a.free_bytes(),
            DeviceAllocator::FirstFit(a) => a.free_bytes(),
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> AllocatorStats {
        match self {
            DeviceAllocator::Paged(a) => a.stats(),
            DeviceAllocator::FirstFit(a) => a.stats(),
        }
    }

    /// Consistency checks.
    pub fn check_invariants(&self) -> Result<(), String> {
        match self {
            DeviceAllocator::Paged(a) => a.check_invariants(),
            DeviceAllocator::FirstFit(a) => a.check_invariants(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc_mib(a: &mut AddressSpaceAllocator, mib: u64) -> DevicePtr {
        a.alloc(Bytes::mib(mib)).expect("alloc")
    }

    #[test]
    fn alloc_free_roundtrip() {
        let mut a = AddressSpaceAllocator::new(Bytes::mib(64));
        let p = alloc_mib(&mut a, 16);
        assert!(!p.is_null());
        assert_eq!(a.in_use(), Bytes::mib(16));
        assert_eq!(a.free(p).unwrap(), Bytes::mib(16));
        assert_eq!(a.in_use(), Bytes::ZERO);
        assert_eq!(a.free_bytes(), Bytes::mib(64));
        a.check_invariants().unwrap();
    }

    #[test]
    fn exhaustion_returns_memory_allocation() {
        let mut a = AddressSpaceAllocator::new(Bytes::mib(10));
        let _p = alloc_mib(&mut a, 8);
        assert_eq!(a.alloc(Bytes::mib(4)), Err(CudaError::MemoryAllocation));
        // A fitting request still succeeds.
        assert!(a.alloc(Bytes::mib(2)).is_ok());
    }

    #[test]
    fn zero_size_rejected() {
        let mut a = AddressSpaceAllocator::new(Bytes::mib(1));
        assert_eq!(a.alloc(Bytes::ZERO), Err(CudaError::InvalidValue));
    }

    #[test]
    fn free_null_is_noop() {
        let mut a = AddressSpaceAllocator::new(Bytes::mib(1));
        assert_eq!(a.free(DevicePtr::NULL).unwrap(), Bytes::ZERO);
    }

    #[test]
    fn double_free_detected() {
        let mut a = AddressSpaceAllocator::new(Bytes::mib(8));
        let p = alloc_mib(&mut a, 1);
        a.free(p).unwrap();
        assert_eq!(a.free(p), Err(CudaError::InvalidDevicePointer));
    }

    #[test]
    fn unknown_pointer_rejected() {
        let mut a = AddressSpaceAllocator::new(Bytes::mib(8));
        assert_eq!(
            a.free(DevicePtr(0xdead_beef)),
            Err(CudaError::InvalidDevicePointer)
        );
    }

    #[test]
    fn coalescing_reassembles_full_space() {
        let mut a = AddressSpaceAllocator::new(Bytes::mib(30));
        let p1 = alloc_mib(&mut a, 10);
        let p2 = alloc_mib(&mut a, 10);
        let p3 = alloc_mib(&mut a, 10);
        // Free out of order: middle, last, first.
        a.free(p2).unwrap();
        a.free(p3).unwrap();
        a.free(p1).unwrap();
        let s = a.stats();
        assert_eq!(s.free_fragments, 1, "blocks must coalesce");
        assert_eq!(s.largest_free_block, Bytes::mib(30));
        a.check_invariants().unwrap();
    }

    #[test]
    fn first_fit_reuses_earliest_hole() {
        let mut a = AddressSpaceAllocator::new(Bytes::mib(30));
        let p1 = alloc_mib(&mut a, 10);
        let _p2 = alloc_mib(&mut a, 10);
        a.free(p1).unwrap();
        let p3 = alloc_mib(&mut a, 5);
        assert_eq!(p3.addr(), p1.addr(), "first fit takes the first hole");
        a.check_invariants().unwrap();
    }

    #[test]
    fn sizes_round_to_granule() {
        let mut a = AddressSpaceAllocator::new(Bytes::mib(1));
        let p = a.alloc(Bytes::new(1)).unwrap();
        assert_eq!(a.size_of(p), Some(Bytes::new(256)));
        assert_eq!(a.in_use(), Bytes::new(256));
    }

    #[test]
    fn fragmentation_can_fail_despite_total_free() {
        let mut a = AddressSpaceAllocator::new(Bytes::mib(30));
        let p1 = alloc_mib(&mut a, 10);
        let _p2 = alloc_mib(&mut a, 10);
        let p3 = alloc_mib(&mut a, 10);
        a.free(p1).unwrap();
        a.free(p3).unwrap();
        // 20 MiB free but split 10+10: a 15 MiB request must fail.
        assert_eq!(a.alloc(Bytes::mib(15)), Err(CudaError::MemoryAllocation));
        let s = a.stats();
        assert_eq!(s.free, Bytes::mib(20));
        assert_eq!(s.largest_free_block, Bytes::mib(10));
    }

    #[test]
    fn live_blocks_enumerates_allocations() {
        let mut a = AddressSpaceAllocator::new(Bytes::mib(8));
        let p1 = alloc_mib(&mut a, 1);
        let p2 = alloc_mib(&mut a, 2);
        let blocks: Vec<_> = a.live_blocks().collect();
        assert_eq!(blocks.len(), 2);
        assert!(blocks.contains(&(p1, Bytes::mib(1))));
        assert!(blocks.contains(&(p2, Bytes::mib(2))));
    }

    #[test]
    fn stats_counters_accumulate() {
        let mut a = AddressSpaceAllocator::new(Bytes::mib(8));
        let p = alloc_mib(&mut a, 1);
        a.free(p).unwrap();
        let p = alloc_mib(&mut a, 1);
        a.free(p).unwrap();
        let s = a.stats();
        assert_eq!(s.total_allocs, 2);
        assert_eq!(s.total_frees, 2);
        assert_eq!(s.live_allocations, 0);
    }

    #[test]
    fn zero_capacity_allocator_always_fails() {
        let mut a = AddressSpaceAllocator::new(Bytes::ZERO);
        assert_eq!(a.alloc(Bytes::new(1)), Err(CudaError::MemoryAllocation));
    }

    #[test]
    fn paged_alloc_free_roundtrip() {
        let mut a = PagedAllocator::new(Bytes::mib(64));
        let p = a.alloc(Bytes::mib(16)).unwrap();
        assert_eq!(a.in_use(), Bytes::mib(16));
        assert_eq!(a.size_of(p), Some(Bytes::mib(16)));
        assert_eq!(a.free(p).unwrap(), Bytes::mib(16));
        assert_eq!(a.free_bytes(), Bytes::mib(64));
        a.check_invariants().unwrap();
    }

    #[test]
    fn paged_is_immune_to_fragmentation() {
        // The scenario that fails first-fit: 10+10 free but split.
        let mut a = PagedAllocator::new(Bytes::mib(30));
        let p1 = a.alloc(Bytes::mib(10)).unwrap();
        let _p2 = a.alloc(Bytes::mib(10)).unwrap();
        let p3 = a.alloc(Bytes::mib(10)).unwrap();
        a.free(p1).unwrap();
        a.free(p3).unwrap();
        // 20 MiB free → a 15 MiB request SUCCEEDS under paging.
        assert!(a.alloc(Bytes::mib(15)).is_ok());
        a.check_invariants().unwrap();
    }

    #[test]
    fn paged_exhaustion_and_errors() {
        let mut a = PagedAllocator::new(Bytes::mib(10));
        assert_eq!(a.alloc(Bytes::ZERO), Err(CudaError::InvalidValue));
        let p = a.alloc(Bytes::mib(8)).unwrap();
        assert_eq!(a.alloc(Bytes::mib(4)), Err(CudaError::MemoryAllocation));
        assert_eq!(a.free(DevicePtr::NULL).unwrap(), Bytes::ZERO);
        a.free(p).unwrap();
        assert_eq!(a.free(p), Err(CudaError::InvalidDevicePointer));
    }

    #[test]
    fn paged_addresses_are_unique_and_nonnull() {
        let mut a = PagedAllocator::new(Bytes::mib(64));
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let p = a.alloc(Bytes::kib(4)).unwrap();
            assert!(!p.is_null());
            assert!(seen.insert(p), "duplicate address {p}");
        }
    }

    #[test]
    fn device_allocator_dispatch() {
        for kind in [AllocatorKind::Paged, AllocatorKind::FirstFit] {
            let mut a = DeviceAllocator::new(kind, Bytes::mib(16));
            let p = a.alloc(Bytes::mib(4)).unwrap();
            assert_eq!(a.in_use(), Bytes::mib(4));
            assert_eq!(a.free(p).unwrap(), Bytes::mib(4));
            assert_eq!(a.free_bytes(), Bytes::mib(16));
            assert_eq!(a.stats().total_allocs, 1);
            a.check_invariants().unwrap();
        }
    }
}
