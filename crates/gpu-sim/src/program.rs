//! User-program abstraction.
//!
//! A [`GpuProgram`] is the analog of the CUDA binary a container runs: it
//! receives whatever [`CudaApi`] implementation the dynamic linker bound
//! (raw runtime or ConVGPU wrapper — the program cannot tell, which is the
//! paper's compatibility goal) plus its pid and the session clock for
//! host-side work.

use crate::api::CudaApi;
use crate::context::Pid;
use crate::error::CudaResult;
use convgpu_sim_core::clock::ClockHandle;

/// Link configuration of the "compiled" program — mirrors
/// `nvcc -cudart=shared` vs the static default. Lives here (not in the
/// wrapper crate) so programs can declare it without depending on the
/// wrapper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProgramLink {
    /// True for `-cudart=shared` (required for LD_PRELOAD interposition).
    pub cudart_shared: bool,
}

impl Default for ProgramLink {
    fn default() -> Self {
        ProgramLink {
            cudart_shared: true,
        }
    }
}

/// A program that uses the GPU.
pub trait GpuProgram: Send {
    /// Diagnostic name.
    fn name(&self) -> &str;

    /// Execute against the bound CUDA API. The fat-binary registration
    /// and unregistration around the run are performed by the host
    /// harness (they are implicit in real CUDA programs).
    fn run(&mut self, api: &dyn CudaApi, pid: Pid, clock: &ClockHandle) -> CudaResult<()>;

    /// How the program's CUDA runtime is linked (default: shared, i.e.
    /// built the way ConVGPU requires).
    fn link(&self) -> ProgramLink {
        ProgramLink::default()
    }
}

/// Adapter turning a closure into a [`GpuProgram`].
pub struct FnProgram<F> {
    name: String,
    f: F,
    link: ProgramLink,
}

impl<F> FnProgram<F>
where
    F: FnMut(&dyn CudaApi, Pid, &ClockHandle) -> CudaResult<()> + Send,
{
    /// Wrap `f` as a program called `name`.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnProgram {
            name: name.into(),
            f,
            link: ProgramLink::default(),
        }
    }

    /// Override the link configuration.
    pub fn with_link(mut self, link: ProgramLink) -> Self {
        self.link = link;
        self
    }
}

impl<F> GpuProgram for FnProgram<F>
where
    F: FnMut(&dyn CudaApi, Pid, &ClockHandle) -> CudaResult<()> + Send,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&mut self, api: &dyn CudaApi, pid: Pid, clock: &ClockHandle) -> CudaResult<()> {
        (self.f)(api, pid, clock)
    }

    fn link(&self) -> ProgramLink {
        self.link
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::GpuDevice;
    use crate::latency::LatencyModel;
    use crate::runtime::RawCudaRuntime;
    use convgpu_sim_core::clock::VirtualClock;
    use convgpu_sim_core::units::Bytes;
    use std::sync::Arc;

    #[test]
    fn fn_program_runs_against_api() {
        let clock = VirtualClock::new();
        let rt = RawCudaRuntime::new(
            Arc::new(GpuDevice::tesla_k20m()),
            LatencyModel::zero(),
            clock.handle(),
        );
        let mut prog = FnProgram::new("alloc-free", |api, pid, _clock| {
            let p = api.cuda_malloc(pid, Bytes::mib(8))?;
            api.cuda_free(pid, p)
        });
        assert_eq!(prog.name(), "alloc-free");
        assert!(prog.link().cudart_shared);
        let handle = clock.handle();
        prog.run(&rt, 1, &handle).unwrap();
    }

    #[test]
    fn link_override() {
        let prog = FnProgram::new("static", |_api, _pid, _clock| Ok(())).with_link(ProgramLink {
            cudart_shared: false,
        });
        assert!(!prog.link().cudart_shared);
    }
}
