//! Device property blocks (`cudaDeviceProp` analog) and presets.
//!
//! The fields are the subset ConVGPU and the workloads observe: memory
//! size, pitch alignment (the wrapper's `cudaMallocPitch` handling fetches
//! this on first call — the paper's Fig. 4 shows that first call costing
//! ~2× a plain allocation), Hyper-Q width, and the bandwidth/throughput
//! figures feeding the kernel and memcpy cost models.

use convgpu_sim_core::units::Bytes;

/// Simulated `cudaDeviceProp` subset.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceProperties {
    /// Marketing name, e.g. `"Tesla K20m"`.
    pub name: String,
    /// Total global memory.
    pub total_global_mem: Bytes,
    /// Compute capability (major, minor).
    pub compute_capability: (u32, u32),
    /// Number of streaming multiprocessors.
    pub multiprocessor_count: u32,
    /// Pitch alignment in bytes: `cudaMallocPitch` rounds row widths up to
    /// a multiple of this (`texturePitchAlignment` on real hardware).
    pub pitch_alignment: Bytes,
    /// Managed-memory allocation granularity. The paper observed
    /// `cudaMallocManaged` consuming multiples of 128 MiB on the K20m.
    pub managed_granularity: Bytes,
    /// Maximum concurrently resident kernels (Hyper-Q width; 32 on Kepler
    /// GK110 and later).
    pub concurrent_kernels: u32,
    /// Peak single-precision throughput in GFLOP/s (kernel cost model).
    pub gflops: f64,
    /// Device-memory bandwidth in GiB/s (kernel + D2D copy cost model).
    pub mem_bandwidth_gib_s: f64,
    /// Host↔device (PCIe) bandwidth in GiB/s (H2D/D2H copy cost model).
    pub pcie_bandwidth_gib_s: f64,
    /// Process-data charge on first runtime use by a process (~64 MiB
    /// observed in the paper).
    pub process_data_overhead: Bytes,
    /// CUDA-context charge on first runtime use by a process (~2 MiB).
    pub context_overhead: Bytes,
}

impl DeviceProperties {
    /// The paper's evaluation GPU: NVIDIA Tesla K20m, 5 GB GDDR5,
    /// compute capability 3.5, 13 SMs, Hyper-Q 32.
    pub fn tesla_k20m() -> Self {
        DeviceProperties {
            name: "Tesla K20m".to_string(),
            total_global_mem: Bytes::gib(5),
            compute_capability: (3, 5),
            multiprocessor_count: 13,
            pitch_alignment: Bytes::new(512),
            managed_granularity: Bytes::mib(128),
            concurrent_kernels: 32,
            gflops: 3520.0,
            mem_bandwidth_gib_s: 194.0,
            pcie_bandwidth_gib_s: 6.0,
            process_data_overhead: Bytes::mib(64),
            context_overhead: Bytes::mib(2),
        }
    }

    /// A smaller consumer GPU, used by tests that want tight memory.
    pub fn gtx_750ti() -> Self {
        DeviceProperties {
            name: "GeForce GTX 750 Ti".to_string(),
            total_global_mem: Bytes::gib(2),
            compute_capability: (5, 0),
            multiprocessor_count: 5,
            pitch_alignment: Bytes::new(512),
            managed_granularity: Bytes::mib(128),
            concurrent_kernels: 16,
            gflops: 1306.0,
            mem_bandwidth_gib_s: 80.0,
            pcie_bandwidth_gib_s: 6.0,
            process_data_overhead: Bytes::mib(64),
            context_overhead: Bytes::mib(2),
        }
    }

    /// A bigger datacenter GPU for the multi-GPU extension experiments.
    pub fn tesla_p100() -> Self {
        DeviceProperties {
            name: "Tesla P100-PCIE-16GB".to_string(),
            total_global_mem: Bytes::gib(16),
            compute_capability: (6, 0),
            multiprocessor_count: 56,
            pitch_alignment: Bytes::new(512),
            managed_granularity: Bytes::mib(128),
            concurrent_kernels: 32,
            gflops: 9300.0,
            mem_bandwidth_gib_s: 680.0,
            pcie_bandwidth_gib_s: 12.0,
            process_data_overhead: Bytes::mib(64),
            context_overhead: Bytes::mib(2),
        }
    }

    /// Combined first-use charge (process data + context); the paper's
    /// scheduler accounts "additional 66 MiB" per pid.
    pub fn first_use_overhead(&self) -> Bytes {
        self.process_data_overhead + self.context_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k20m_matches_paper_setup() {
        let p = DeviceProperties::tesla_k20m();
        assert_eq!(p.total_global_mem, Bytes::gib(5));
        assert_eq!(p.concurrent_kernels, 32);
        assert_eq!(p.first_use_overhead(), Bytes::mib(66));
        assert_eq!(p.managed_granularity, Bytes::mib(128));
        assert_eq!(p.compute_capability, (3, 5));
    }

    #[test]
    fn presets_are_distinct() {
        let a = DeviceProperties::tesla_k20m();
        let b = DeviceProperties::gtx_750ti();
        let c = DeviceProperties::tesla_p100();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert!(c.total_global_mem > a.total_global_mem);
    }
}
