//! The raw (un-interposed) CUDA runtime.
//!
//! [`RawCudaRuntime`] is what a container's program would call if ConVGPU
//! were absent (the paper's "without the solution" baseline): it talks
//! straight to the device, charging the latency model's per-call costs and
//! the bandwidth/roofline costs for data movement and kernels. The ConVGPU
//! wrapper module wraps exactly this object.

use crate::api::{CudaApi, Extent3D, MemcpyKind, PitchedPtr};
use crate::context::Pid;
use crate::device::GpuDevice;
use crate::error::{CudaError, CudaResult};
use crate::kernel::KernelSpec;
use crate::latency::LatencyModel;
use crate::memory::DevicePtr;
use crate::props::DeviceProperties;
use crate::stream::{EventId, StreamEngine, StreamId};
use convgpu_sim_core::clock::ClockHandle;
use convgpu_sim_core::sync::Mutex;
use convgpu_sim_core::time::SimDuration;
use convgpu_sim_core::units::Bytes;
use std::sync::Arc;

/// Direct, unmanaged access to a simulated GPU.
pub struct RawCudaRuntime {
    device: Arc<GpuDevice>,
    latency: LatencyModel,
    clock: ClockHandle,
    streams: Mutex<StreamEngine>,
}

impl RawCudaRuntime {
    /// Build a runtime for `device`, charging `latency` per call on
    /// `clock`.
    pub fn new(device: Arc<GpuDevice>, latency: LatencyModel, clock: ClockHandle) -> Self {
        RawCudaRuntime {
            device,
            latency,
            clock,
            streams: Mutex::new(StreamEngine::new()),
        }
    }

    /// The underlying device.
    pub fn device(&self) -> &Arc<GpuDevice> {
        &self.device
    }

    /// The latency model in force.
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// The clock the runtime charges costs on.
    pub fn clock(&self) -> &ClockHandle {
        &self.clock
    }

    fn charge(&self, d: SimDuration) {
        if !d.is_zero() {
            self.clock.sleep(d);
        }
    }

    /// Pitch for a row of `width` bytes on this device.
    pub fn pitch_for(&self, width: Bytes) -> Bytes {
        width.align_up(self.device.props().pitch_alignment)
    }

    /// Managed-allocation size rounding (128 MiB granules on the K20m).
    pub fn managed_size(&self, size: Bytes) -> Bytes {
        size.align_up(self.device.props().managed_granularity)
    }

    fn memcpy_duration(&self, kind: MemcpyKind, bytes: Bytes) -> SimDuration {
        let props = self.device.props();
        let gib_s = match kind {
            MemcpyKind::HostToDevice | MemcpyKind::DeviceToHost | MemcpyKind::HostToHost => {
                props.pcie_bandwidth_gib_s
            }
            MemcpyKind::DeviceToDevice => props.mem_bandwidth_gib_s,
        };
        let secs = bytes.as_u64() as f64 / (gib_s * (1u64 << 30) as f64);
        self.latency.memcpy_overhead + SimDuration::from_secs_f64(secs)
    }

    fn alloc_with_latency(
        &self,
        pid: Pid,
        size: Bytes,
        base_latency: SimDuration,
    ) -> CudaResult<DevicePtr> {
        let (ptr, created_context) = self.device.alloc(pid, size)?;
        let mut cost = base_latency;
        if created_context {
            cost += self.latency.context_create;
        }
        self.charge(cost);
        Ok(ptr)
    }
}

impl CudaApi for RawCudaRuntime {
    fn cuda_malloc(&self, pid: Pid, size: Bytes) -> CudaResult<DevicePtr> {
        self.alloc_with_latency(pid, size, self.latency.alloc)
    }

    fn cuda_malloc_pitch(
        &self,
        pid: Pid,
        width: Bytes,
        height: u64,
    ) -> CudaResult<(DevicePtr, Bytes)> {
        if width.is_zero() || height == 0 {
            return Err(CudaError::InvalidValue);
        }
        let pitch = self.pitch_for(width);
        let size = Bytes::new(
            pitch
                .as_u64()
                .checked_mul(height)
                .ok_or(CudaError::InvalidValue)?,
        );
        let ptr = self.alloc_with_latency(pid, size, self.latency.alloc)?;
        Ok((ptr, pitch))
    }

    fn cuda_malloc_3d(&self, pid: Pid, extent: Extent3D) -> CudaResult<PitchedPtr> {
        if extent.width.is_zero() || extent.height == 0 || extent.depth == 0 {
            return Err(CudaError::InvalidValue);
        }
        let pitch = self.pitch_for(extent.width);
        let rows = extent
            .height
            .checked_mul(extent.depth)
            .ok_or(CudaError::InvalidValue)?;
        let size = Bytes::new(
            pitch
                .as_u64()
                .checked_mul(rows)
                .ok_or(CudaError::InvalidValue)?,
        );
        let ptr = self.alloc_with_latency(pid, size, self.latency.alloc)?;
        Ok(PitchedPtr {
            ptr,
            pitch,
            xsize: extent.width,
            ysize: extent.height,
        })
    }

    fn cuda_malloc_managed(&self, pid: Pid, size: Bytes) -> CudaResult<DevicePtr> {
        if size.is_zero() {
            return Err(CudaError::InvalidValue);
        }
        let rounded = self.managed_size(size);
        self.alloc_with_latency(pid, rounded, self.latency.alloc_managed)
    }

    fn cuda_free(&self, pid: Pid, ptr: DevicePtr) -> CudaResult<()> {
        self.device.free(pid, ptr)?;
        self.charge(self.latency.free);
        Ok(())
    }

    fn cuda_mem_get_info(&self, _pid: Pid) -> CudaResult<(Bytes, Bytes)> {
        self.charge(self.latency.mem_get_info);
        Ok(self.device.mem_info())
    }

    fn cuda_get_device_properties(&self, _pid: Pid) -> CudaResult<DeviceProperties> {
        self.charge(self.latency.get_device_properties);
        Ok(self.device.props().clone())
    }

    fn cuda_memcpy(&self, pid: Pid, kind: MemcpyKind, bytes: Bytes) -> CudaResult<()> {
        let _ = pid;
        self.charge(self.memcpy_duration(kind, bytes));
        self.device.note_memcpy(bytes);
        Ok(())
    }

    fn cuda_memcpy_2d(
        &self,
        pid: Pid,
        kind: MemcpyKind,
        width: Bytes,
        height: u64,
    ) -> CudaResult<()> {
        if width.is_zero() || height == 0 {
            return Err(CudaError::InvalidValue);
        }
        let bytes = Bytes::new(
            width
                .as_u64()
                .checked_mul(height)
                .ok_or(CudaError::InvalidValue)?,
        );
        self.cuda_memcpy(pid, kind, bytes)
    }

    fn cuda_memset(&self, pid: Pid, bytes: Bytes) -> CudaResult<()> {
        let _ = pid;
        let secs =
            bytes.as_u64() as f64 / (self.device.props().mem_bandwidth_gib_s * (1u64 << 30) as f64);
        self.charge(self.latency.memcpy_overhead + SimDuration::from_secs_f64(secs));
        Ok(())
    }

    fn cuda_launch_kernel(&self, pid: Pid, kernel: &KernelSpec) -> CudaResult<()> {
        let _ = pid;
        self.charge(self.latency.kernel_launch);
        if self.device.should_fail_launch() {
            return Err(CudaError::LaunchFailure);
        }
        self.device.acquire_kernel_slot();
        let duration = kernel.duration_on(self.device.props());
        self.charge(duration);
        self.device.release_kernel_slot();
        self.device.note_kernel_completed();
        Ok(())
    }

    fn cuda_device_synchronize(&self, pid: Pid) -> CudaResult<()> {
        // Wait for every stream of this process to drain.
        let done = self.streams.lock().all_done_at(pid, self.clock.now());
        let wait = done.saturating_since(self.clock.now());
        self.charge(wait);
        Ok(())
    }

    fn cuda_stream_create(&self, pid: Pid) -> CudaResult<StreamId> {
        self.charge(self.latency.kernel_launch);
        Ok(self.streams.lock().create_stream(pid))
    }

    fn cuda_stream_destroy(&self, pid: Pid, stream: StreamId) -> CudaResult<()> {
        self.streams.lock().destroy_stream(pid, stream)
    }

    fn cuda_launch_kernel_async(
        &self,
        pid: Pid,
        stream: StreamId,
        kernel: &KernelSpec,
    ) -> CudaResult<()> {
        self.charge(self.latency.kernel_launch);
        if self.device.should_fail_launch() {
            return Err(CudaError::LaunchFailure);
        }
        let duration = kernel.duration_on(self.device.props());
        self.streams
            .lock()
            .enqueue(pid, stream, self.clock.now(), duration)?;
        self.device.note_kernel_completed();
        Ok(())
    }

    fn cuda_memcpy_async(
        &self,
        pid: Pid,
        stream: StreamId,
        kind: MemcpyKind,
        bytes: Bytes,
    ) -> CudaResult<()> {
        let duration = self.memcpy_duration(kind, bytes);
        self.streams
            .lock()
            .enqueue(pid, stream, self.clock.now(), duration)?;
        self.device.note_memcpy(bytes);
        Ok(())
    }

    fn cuda_stream_synchronize(&self, pid: Pid, stream: StreamId) -> CudaResult<()> {
        let done = self
            .streams
            .lock()
            .stream_done_at(pid, stream, self.clock.now())?;
        let wait = done.saturating_since(self.clock.now());
        self.charge(wait);
        Ok(())
    }

    fn cuda_event_create(&self, pid: Pid) -> CudaResult<EventId> {
        Ok(self.streams.lock().create_event(pid))
    }

    fn cuda_event_destroy(&self, pid: Pid, event: EventId) -> CudaResult<()> {
        self.streams.lock().destroy_event(pid, event)
    }

    fn cuda_event_record(&self, pid: Pid, event: EventId, stream: StreamId) -> CudaResult<()> {
        self.streams
            .lock()
            .record_event(pid, event, stream, self.clock.now())
    }

    fn cuda_event_synchronize(&self, pid: Pid, event: EventId) -> CudaResult<()> {
        let done = self.streams.lock().event_done_at(pid, event)?;
        let wait = done.saturating_since(self.clock.now());
        self.charge(wait);
        Ok(())
    }

    fn cuda_event_elapsed(
        &self,
        pid: Pid,
        start: EventId,
        end: EventId,
    ) -> CudaResult<convgpu_sim_core::time::SimDuration> {
        self.streams.lock().elapsed(pid, start, end)
    }

    fn cuda_register_fat_binary(&self, pid: Pid) -> CudaResult<()> {
        self.charge(self.latency.fat_binary);
        self.device.register_fat_binary(pid);
        Ok(())
    }

    fn cuda_unregister_fat_binary(&self, pid: Pid) -> CudaResult<()> {
        self.charge(self.latency.fat_binary);
        // A real process exit implicitly synchronizes and destroys its
        // streams/events with the context.
        self.cuda_device_synchronize(pid)?;
        self.streams.lock().destroy_process(pid);
        self.device.unregister_fat_binary(pid);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use convgpu_sim_core::clock::{Clock, VirtualClock};
    use convgpu_sim_core::time::SimTime;

    fn runtime() -> (RawCudaRuntime, VirtualClock) {
        let clock = VirtualClock::new();
        let rt = RawCudaRuntime::new(
            Arc::new(GpuDevice::tesla_k20m()),
            LatencyModel::tesla_k20m(),
            clock.handle(),
        );
        (rt, clock)
    }

    #[test]
    fn malloc_charges_calibrated_latency() {
        let (rt, clock) = runtime();
        // Warm the context so we measure steady-state malloc.
        rt.cuda_malloc(1, Bytes::mib(1)).unwrap();
        let t0 = clock.now();
        rt.cuda_malloc(1, Bytes::mib(1)).unwrap();
        let elapsed = clock.now() - t0;
        assert_eq!(elapsed, SimDuration::from_micros(35));
    }

    #[test]
    fn first_malloc_also_pays_context_creation() {
        let (rt, clock) = runtime();
        rt.cuda_malloc(1, Bytes::mib(1)).unwrap();
        let warm_start = clock.now();
        rt.cuda_malloc(2, Bytes::mib(1)).unwrap(); // new pid: cold
        let cold = clock.now() - warm_start;
        assert!(cold > SimDuration::from_millis(50), "{cold}");
    }

    #[test]
    fn pitch_rounds_width_up() {
        let (rt, _clock) = runtime();
        let (_ptr, pitch) = rt.cuda_malloc_pitch(1, Bytes::new(1000), 10).unwrap();
        assert_eq!(pitch, Bytes::new(1024), "1000 rounded to 512-alignment");
        // Aligned widths keep their size.
        let (_ptr, pitch) = rt.cuda_malloc_pitch(1, Bytes::new(1024), 10).unwrap();
        assert_eq!(pitch, Bytes::new(1024));
    }

    #[test]
    fn pitch_alloc_consumes_pitch_times_height() {
        let (rt, _clock) = runtime();
        let (free0, _) = rt.cuda_mem_get_info(1).unwrap();
        rt.cuda_malloc_pitch(1, Bytes::new(1000), 1024).unwrap();
        let (free1, _) = rt.cuda_mem_get_info(1).unwrap();
        // 1024 rows * 1024 pitch = 1 MiB, plus 66 MiB context.
        assert_eq!(free0 - free1, Bytes::mib(1) + Bytes::mib(66));
    }

    #[test]
    fn malloc_3d_uses_pitch_times_rows_times_depth() {
        let (rt, _clock) = runtime();
        rt.cuda_malloc(1, Bytes::mib(1)).unwrap(); // warm context
        let (free0, _) = rt.cuda_mem_get_info(1).unwrap();
        let p = rt
            .cuda_malloc_3d(1, Extent3D::new(Bytes::new(300), 8, 4))
            .unwrap();
        assert_eq!(p.pitch, Bytes::new(512));
        assert_eq!(p.xsize, Bytes::new(300));
        assert_eq!(p.ysize, 8);
        let (free1, _) = rt.cuda_mem_get_info(1).unwrap();
        assert_eq!(free0 - free1, Bytes::new(512 * 8 * 4));
    }

    #[test]
    fn managed_rounds_to_128_mib() {
        let (rt, _clock) = runtime();
        rt.cuda_malloc(1, Bytes::mib(1)).unwrap(); // warm context
        let (free0, _) = rt.cuda_mem_get_info(1).unwrap();
        rt.cuda_malloc_managed(1, Bytes::mib(1)).unwrap();
        let (free1, _) = rt.cuda_mem_get_info(1).unwrap();
        assert_eq!(free0 - free1, Bytes::mib(128));
        rt.cuda_malloc_managed(1, Bytes::mib(129)).unwrap();
        let (free2, _) = rt.cuda_mem_get_info(1).unwrap();
        assert_eq!(free1 - free2, Bytes::mib(256));
    }

    #[test]
    fn managed_costs_roughly_40x_malloc() {
        let (rt, clock) = runtime();
        rt.cuda_malloc(1, Bytes::mib(1)).unwrap(); // warm context
        let t0 = clock.now();
        rt.cuda_malloc(1, Bytes::mib(1)).unwrap();
        let malloc_t = (clock.now() - t0).as_nanos() as f64;
        let t1 = clock.now();
        rt.cuda_malloc_managed(1, Bytes::mib(1)).unwrap();
        let managed_t = (clock.now() - t1).as_nanos() as f64;
        let ratio = managed_t / malloc_t;
        assert!((30.0..=50.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn memcpy_time_scales_with_bytes_and_direction() {
        let (rt, clock) = runtime();
        let t0 = clock.now();
        rt.cuda_memcpy(1, MemcpyKind::HostToDevice, Bytes::gib(3))
            .unwrap();
        let h2d = clock.now() - t0;
        // 3 GiB at 6 GiB/s = 0.5 s.
        assert!((h2d.as_secs_f64() - 0.5).abs() < 0.01, "{h2d}");
        let t1 = clock.now();
        rt.cuda_memcpy(1, MemcpyKind::DeviceToDevice, Bytes::gib(3))
            .unwrap();
        let d2d = clock.now() - t1;
        assert!(d2d < h2d, "device copies are much faster");
    }

    #[test]
    fn kernel_launch_advances_clock_by_roofline_duration() {
        let (rt, clock) = runtime();
        let k = KernelSpec::compute("busy", 3.52e12, Bytes::mib(1)); // ≈1 s
        let t0 = clock.now();
        rt.cuda_launch_kernel(1, &k).unwrap();
        let d = clock.now() - t0;
        assert!((d.as_secs_f64() - 1.0).abs() < 0.01, "{d}");
        assert_eq!(rt.device().counters().kernels, 1);
    }

    #[test]
    fn zero_extent_rejected() {
        let (rt, _clock) = runtime();
        assert_eq!(
            rt.cuda_malloc_pitch(1, Bytes::ZERO, 5).unwrap_err(),
            CudaError::InvalidValue
        );
        assert_eq!(
            rt.cuda_malloc_3d(1, Extent3D::new(Bytes::new(8), 0, 1))
                .unwrap_err(),
            CudaError::InvalidValue
        );
        assert_eq!(
            rt.cuda_malloc_managed(1, Bytes::ZERO).unwrap_err(),
            CudaError::InvalidValue
        );
    }

    #[test]
    fn memcpy_2d_charges_moved_bytes_only() {
        let (rt, clock) = runtime();
        let t0 = clock.now();
        // 1 MiB rows × 3072 = 3 GiB at 6 GiB/s ≈ 0.5 s.
        rt.cuda_memcpy_2d(1, MemcpyKind::HostToDevice, Bytes::mib(1), 3072)
            .unwrap();
        let d = clock.now() - t0;
        assert!((d.as_secs_f64() - 0.5).abs() < 0.01, "{d}");
        assert_eq!(
            rt.cuda_memcpy_2d(1, MemcpyKind::HostToDevice, Bytes::ZERO, 5)
                .unwrap_err(),
            CudaError::InvalidValue
        );
    }

    #[test]
    fn memset_runs_at_device_bandwidth() {
        let (rt, clock) = runtime();
        let t0 = clock.now();
        rt.cuda_memset(1, Bytes::gib(1)).unwrap();
        let d = clock.now() - t0;
        // 1 GiB at 194 GiB/s ≈ 5.2 ms — far faster than a PCIe copy.
        assert!(d.as_secs_f64() < 0.02, "{d}");
        assert!(d.as_secs_f64() > 0.004, "{d}");
    }

    #[test]
    fn async_streams_overlap_in_virtual_time() {
        let (rt, clock) = runtime();
        let k = KernelSpec::compute("chunk", 3.52e12, Bytes::mib(1)); // ≈1 s
                                                                      // Sequential baseline: two sync launches ≈ 2 s.
        let t0 = clock.now();
        rt.cuda_launch_kernel(1, &k).unwrap();
        rt.cuda_launch_kernel(1, &k).unwrap();
        let sequential = clock.now() - t0;
        // Overlapped: two streams, async launches, one synchronize.
        let s1 = rt.cuda_stream_create(1).unwrap();
        let s2 = rt.cuda_stream_create(1).unwrap();
        let t1 = clock.now();
        rt.cuda_launch_kernel_async(1, s1, &k).unwrap();
        rt.cuda_launch_kernel_async(1, s2, &k).unwrap();
        rt.cuda_device_synchronize(1).unwrap();
        let overlapped = clock.now() - t1;
        assert!(
            overlapped.as_secs_f64() < sequential.as_secs_f64() * 0.6,
            "overlap must show: sequential {sequential}, overlapped {overlapped}"
        );
    }

    #[test]
    fn events_measure_stream_work() {
        let (rt, _clock) = runtime();
        let s = rt.cuda_stream_create(1).unwrap();
        let start = rt.cuda_event_create(1).unwrap();
        let end = rt.cuda_event_create(1).unwrap();
        rt.cuda_event_record(1, start, s).unwrap();
        let k = KernelSpec::compute("timed", 3.52e12, Bytes::mib(1)); // ≈1 s
        rt.cuda_launch_kernel_async(1, s, &k).unwrap();
        rt.cuda_event_record(1, end, s).unwrap();
        rt.cuda_event_synchronize(1, end).unwrap();
        let elapsed = rt.cuda_event_elapsed(1, start, end).unwrap();
        assert!((elapsed.as_secs_f64() - 1.0).abs() < 0.02, "{elapsed}");
        rt.cuda_event_destroy(1, start).unwrap();
        rt.cuda_event_destroy(1, end).unwrap();
        rt.cuda_stream_destroy(1, s).unwrap();
    }

    #[test]
    fn stream_synchronize_advances_to_completion_only_once() {
        let (rt, clock) = runtime();
        let s = rt.cuda_stream_create(1).unwrap();
        rt.cuda_memcpy_async(1, s, MemcpyKind::HostToDevice, Bytes::gib(3))
            .unwrap(); // ≈0.5 s at 6 GiB/s
        let t0 = clock.now();
        rt.cuda_stream_synchronize(1, s).unwrap();
        let first = clock.now() - t0;
        assert!((first.as_secs_f64() - 0.5).abs() < 0.05, "{first}");
        // Second synchronize on a drained stream is free.
        let t1 = clock.now();
        rt.cuda_stream_synchronize(1, s).unwrap();
        assert!((clock.now() - t1).is_zero());
    }

    #[test]
    fn unregister_drains_outstanding_async_work() {
        let (rt, clock) = runtime();
        let s = rt.cuda_stream_create(1).unwrap();
        let k = KernelSpec::compute("tail", 3.52e12, Bytes::mib(1)); // ≈1 s
        rt.cuda_launch_kernel_async(1, s, &k).unwrap();
        let t0 = clock.now();
        rt.cuda_unregister_fat_binary(1).unwrap();
        let waited = clock.now() - t0;
        assert!(
            waited.as_secs_f64() > 0.9,
            "exit waits for the GPU: {waited}"
        );
        // The stream is gone with the process.
        assert!(rt.cuda_stream_synchronize(1, s).is_err());
    }

    #[test]
    fn full_program_lifecycle_restores_memory() {
        let (rt, clock) = runtime();
        rt.cuda_register_fat_binary(1).unwrap();
        let a = rt.cuda_malloc(1, Bytes::mib(64)).unwrap();
        let _b = rt.cuda_malloc_managed(1, Bytes::mib(100)).unwrap(); // leak
        rt.cuda_free(1, a).unwrap();
        rt.cuda_unregister_fat_binary(1).unwrap();
        let (free, total) = rt.cuda_mem_get_info(1).unwrap();
        assert_eq!(free, total);
        assert!(clock.now() > SimTime::ZERO);
    }
}
