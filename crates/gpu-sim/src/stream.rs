//! CUDA streams and events — the asynchronous execution model.
//!
//! The paper leans on Hyper-Q ("it can run multiple GPU kernels
//! concurrently up to 32 kernels"); real programs exploit that through
//! streams: `cudaLaunchKernel(…, stream)` enqueues and returns, each
//! stream executes in order, and `cudaStreamSynchronize` /
//! `cudaEventSynchronize` wait.
//!
//! The timing model keeps one *timeline* per stream: an async launch (or
//! async copy) extends the stream's `busy_until` by the operation's
//! modeled duration starting from `max(now, busy_until)`; synchronizing
//! sleeps the caller until the timeline. Events snapshot a stream's
//! timeline at record time, giving `cudaEventElapsedTime` its usual
//! semantics. Cross-stream Hyper-Q slot contention is modeled only for
//! the *synchronous* launch path (which holds a device slot); fully
//! overlapping async kernels are assumed to fit the 32 hardware queues —
//! a documented simplification adequate for the paper's workloads.

use crate::error::{CudaError, CudaResult};
use convgpu_sim_core::time::{SimDuration, SimTime};
use std::collections::HashMap;

/// Identifies a stream within one process. Stream 0 is the legacy
/// default stream and always exists.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u64);

impl StreamId {
    /// The default (legacy) stream.
    pub const DEFAULT: StreamId = StreamId(0);
}

/// Identifies an event within one process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EventId(pub u64);

type Pid = u64;

#[derive(Debug, Default)]
struct StreamState {
    busy_until: Option<SimTime>,
}

#[derive(Debug, Default, Clone, Copy)]
struct EventState {
    recorded_at: Option<SimTime>,
}

/// Per-process stream/event timelines (owned by the runtime).
#[derive(Debug, Default)]
pub struct StreamEngine {
    streams: HashMap<(Pid, StreamId), StreamState>,
    events: HashMap<(Pid, EventId), EventState>,
    next_stream: u64,
    next_event: u64,
}

impl StreamEngine {
    /// Empty engine.
    pub fn new() -> Self {
        StreamEngine {
            next_stream: 1, // 0 is the default stream
            next_event: 1,
            ..Default::default()
        }
    }

    /// `cudaStreamCreate`.
    pub fn create_stream(&mut self, pid: Pid) -> StreamId {
        let id = StreamId(self.next_stream);
        self.next_stream += 1;
        self.streams.insert((pid, id), StreamState::default());
        id
    }

    /// `cudaStreamDestroy`. The default stream cannot be destroyed.
    pub fn destroy_stream(&mut self, pid: Pid, stream: StreamId) -> CudaResult<()> {
        if stream == StreamId::DEFAULT {
            return Err(CudaError::InvalidValue);
        }
        self.streams
            .remove(&(pid, stream))
            .map(|_| ())
            .ok_or(CudaError::InvalidValue)
    }

    fn stream_known(&self, pid: Pid, stream: StreamId) -> bool {
        stream == StreamId::DEFAULT || self.streams.contains_key(&(pid, stream))
    }

    /// Enqueue `duration` of work on `stream`: it starts when the stream
    /// is free, never before `now`. Returns the new completion time.
    pub fn enqueue(
        &mut self,
        pid: Pid,
        stream: StreamId,
        now: SimTime,
        duration: SimDuration,
    ) -> CudaResult<SimTime> {
        if !self.stream_known(pid, stream) {
            return Err(CudaError::InvalidValue);
        }
        let state = self.streams.entry((pid, stream)).or_default();
        let start = state.busy_until.map_or(now, |b| b.max(now));
        let done = start + duration;
        state.busy_until = Some(done);
        Ok(done)
    }

    /// Completion time of everything enqueued on `stream` (`now` when
    /// idle).
    pub fn stream_done_at(&self, pid: Pid, stream: StreamId, now: SimTime) -> CudaResult<SimTime> {
        if !self.stream_known(pid, stream) {
            return Err(CudaError::InvalidValue);
        }
        Ok(self
            .streams
            .get(&(pid, stream))
            .and_then(|s| s.busy_until)
            .map_or(now, |b| b.max(now)))
    }

    /// Completion time of all of `pid`'s streams (`cudaDeviceSynchronize`).
    pub fn all_done_at(&self, pid: Pid, now: SimTime) -> SimTime {
        self.streams
            .iter()
            .filter(|((p, _), _)| *p == pid)
            .filter_map(|(_, s)| s.busy_until)
            .fold(now, SimTime::max)
    }

    /// `cudaEventCreate`.
    pub fn create_event(&mut self, pid: Pid) -> EventId {
        let id = EventId(self.next_event);
        self.next_event += 1;
        self.events.insert((pid, id), EventState::default());
        id
    }

    /// `cudaEventDestroy`.
    pub fn destroy_event(&mut self, pid: Pid, event: EventId) -> CudaResult<()> {
        self.events
            .remove(&(pid, event))
            .map(|_| ())
            .ok_or(CudaError::InvalidValue)
    }

    /// `cudaEventRecord`: the event fires when everything currently on
    /// `stream` completes.
    pub fn record_event(
        &mut self,
        pid: Pid,
        event: EventId,
        stream: StreamId,
        now: SimTime,
    ) -> CudaResult<()> {
        let at = self.stream_done_at(pid, stream, now)?;
        let state = self
            .events
            .get_mut(&(pid, event))
            .ok_or(CudaError::InvalidValue)?;
        state.recorded_at = Some(at);
        Ok(())
    }

    /// When a recorded event fires; `InvalidValue` if never recorded.
    pub fn event_done_at(&self, pid: Pid, event: EventId) -> CudaResult<SimTime> {
        self.events
            .get(&(pid, event))
            .and_then(|e| e.recorded_at)
            .ok_or(CudaError::InvalidValue)
    }

    /// `cudaEventElapsedTime` between two recorded events.
    pub fn elapsed(&self, pid: Pid, start: EventId, end: EventId) -> CudaResult<SimDuration> {
        let s = self.event_done_at(pid, start)?;
        let e = self.event_done_at(pid, end)?;
        Ok(e.saturating_since(s))
    }

    /// Drop all of `pid`'s streams and events (context destruction).
    pub fn destroy_process(&mut self, pid: Pid) {
        self.streams.retain(|(p, _), _| *p != pid);
        self.events.retain(|(p, _), _| *p != pid);
    }

    /// Live stream count for `pid` (diagnostics; excludes the implicit
    /// default stream).
    pub fn stream_count(&self, pid: Pid) -> usize {
        self.streams
            .keys()
            .filter(|(p, s)| *p == pid && *s != StreamId::DEFAULT)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    fn d(ms: u64) -> SimDuration {
        SimDuration::from_millis(ms)
    }

    #[test]
    fn enqueue_serializes_within_a_stream() {
        let mut e = StreamEngine::new();
        let s = e.create_stream(1);
        assert_eq!(e.enqueue(1, s, t(0), d(10)).unwrap(), t(10));
        // Second op starts when the first completes, not at `now`.
        assert_eq!(e.enqueue(1, s, t(2), d(10)).unwrap(), t(20));
        // After the stream drains, new work starts at `now`.
        assert_eq!(e.enqueue(1, s, t(100), d(5)).unwrap(), t(105));
    }

    #[test]
    fn streams_overlap_each_other() {
        let mut e = StreamEngine::new();
        let a = e.create_stream(1);
        let b = e.create_stream(1);
        assert_eq!(e.enqueue(1, a, t(0), d(10)).unwrap(), t(10));
        assert_eq!(e.enqueue(1, b, t(0), d(10)).unwrap(), t(10), "parallel");
        assert_eq!(e.all_done_at(1, t(0)), t(10));
    }

    #[test]
    fn default_stream_always_exists() {
        let mut e = StreamEngine::new();
        assert_eq!(e.enqueue(7, StreamId::DEFAULT, t(0), d(3)).unwrap(), t(3));
        assert!(e.destroy_stream(7, StreamId::DEFAULT).is_err());
    }

    #[test]
    fn unknown_stream_rejected() {
        let mut e = StreamEngine::new();
        assert_eq!(
            e.enqueue(1, StreamId(99), t(0), d(1)).unwrap_err(),
            CudaError::InvalidValue
        );
        assert!(e.stream_done_at(1, StreamId(99), t(0)).is_err());
    }

    #[test]
    fn streams_are_per_process() {
        let mut e = StreamEngine::new();
        let s1 = e.create_stream(1);
        // Another pid cannot use pid 1's stream id.
        assert!(e.enqueue(2, s1, t(0), d(1)).is_err());
    }

    #[test]
    fn events_capture_stream_timelines() {
        let mut e = StreamEngine::new();
        let s = e.create_stream(1);
        let start = e.create_event(1);
        let end = e.create_event(1);
        e.record_event(1, start, s, t(0)).unwrap();
        e.enqueue(1, s, t(0), d(25)).unwrap();
        e.record_event(1, end, s, t(0)).unwrap();
        assert_eq!(e.elapsed(1, start, end).unwrap(), d(25));
        assert_eq!(e.event_done_at(1, end).unwrap(), t(25));
    }

    #[test]
    fn unrecorded_event_errors() {
        let mut e = StreamEngine::new();
        let ev = e.create_event(1);
        assert_eq!(e.event_done_at(1, ev).unwrap_err(), CudaError::InvalidValue);
        let ev2 = e.create_event(1);
        assert!(e.elapsed(1, ev, ev2).is_err());
    }

    #[test]
    fn destroy_process_drops_everything() {
        let mut e = StreamEngine::new();
        let s = e.create_stream(1);
        let ev = e.create_event(1);
        e.enqueue(1, s, t(0), d(10)).unwrap();
        e.record_event(1, ev, s, t(0)).unwrap();
        e.destroy_process(1);
        assert_eq!(e.stream_count(1), 0);
        assert!(e.enqueue(1, s, t(0), d(1)).is_err());
        assert!(e.event_done_at(1, ev).is_err());
    }

    #[test]
    fn destroy_stream_then_use_errors() {
        let mut e = StreamEngine::new();
        let s = e.create_stream(1);
        e.destroy_stream(1, s).unwrap();
        assert!(e.enqueue(1, s, t(0), d(1)).is_err());
        assert!(e.destroy_stream(1, s).is_err(), "double destroy");
    }
}
