//! Length-prefixed compact binary framing — the hot-path alternative to
//! newline-delimited JSON.
//!
//! A frame is `[MAGIC][u32 LE payload length][payload]`. JSON frames
//! always begin with `{` (0x7B) and the magic byte is nothing a JSON line
//! can start with, so a reader can tell the two codecs apart from the
//! first byte of every frame: see [`read_auto`]. That makes negotiation
//! implicit and per-connection — a client simply starts speaking binary
//! and the server answers each request in the codec it arrived in. JSON
//! stays the default (and the CLI's debugging-friendly format).
//!
//! The payload encoding is deliberately minimal: LEB128 varints for all
//! integers (ids, pids, addresses and byte counts are small most of the
//! time), one tag byte per enum variant, and varint-length-prefixed UTF-8
//! for strings. No self-description — the schema is pinned by the
//! exhaustive roundtrip tests against the JSON codec.

use crate::codec::MAX_LINE_BYTES;
use crate::json::{FromJson, ToJson};
use crate::message::{
    AllocDecision, ApiKind, ClusterNodeStatus, Envelope, MigrationRecord, Request, Response,
    TopologyDevice,
};
use convgpu_sim_core::ids::ContainerId;
use convgpu_sim_core::units::Bytes;
use std::io::{self, BufRead, Read, Write};

/// First byte of every binary frame. JSON lines start with `{` (0x7B), so
/// the two codecs are distinguishable from one byte.
pub const MAGIC: u8 = 0xC5;

/// Maximum accepted payload length — same bound as the JSON line cap, for
/// the same reason (a misbehaving writer must not balloon the scheduler).
pub const MAX_FRAME_BYTES: usize = MAX_LINE_BYTES;

/// Which wire codec a peer is speaking. Detected per frame on the read
/// side; replies are written in the codec their request arrived in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireCodec {
    /// Newline-delimited JSON (the default; human-readable).
    Json,
    /// Length-prefixed compact binary (the hot-path option).
    Binary,
}

impl WireCodec {
    /// Label for logs and metrics.
    pub fn label(self) -> &'static str {
        match self {
            WireCodec::Json => "json",
            WireCodec::Binary => "binary",
        }
    }
}

/// Decode failure inside a well-framed payload.
#[derive(Debug)]
pub struct BinError(String);

impl BinError {
    fn msg(m: impl Into<String>) -> Self {
        BinError(m.into())
    }
}

impl std::fmt::Display for BinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "binary decode: {}", self.0)
    }
}

impl std::error::Error for BinError {}

/// Types that serialize onto the compact binary wire.
pub trait ToBinary {
    /// Append this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
}

/// Types that deserialize from the compact binary wire.
pub trait FromBinary: Sized {
    /// Decode one value, advancing the reader.
    fn decode(r: &mut BinReader<'_>) -> Result<Self, BinError>;
}

/// Cursor over one frame's payload.
pub struct BinReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BinReader<'a> {
    /// Wrap a payload slice.
    pub fn new(buf: &'a [u8]) -> Self {
        BinReader { buf, pos: 0 }
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn byte(&mut self) -> Result<u8, BinError> {
        let b = self
            .buf
            .get(self.pos)
            .copied()
            .ok_or_else(|| BinError::msg("unexpected end of payload"))?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], BinError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| BinError::msg("length prefix exceeds payload"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
}

fn put_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn get_u64(r: &mut BinReader<'_>) -> Result<u64, BinError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = r.byte()?;
        if shift == 63 && (b & 0x7e) != 0 {
            return Err(BinError::msg("varint overflows u64"));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(BinError::msg("varint too long"));
        }
    }
}

impl ToBinary for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, *self);
    }
}

impl FromBinary for u64 {
    fn decode(r: &mut BinReader<'_>) -> Result<Self, BinError> {
        get_u64(r)
    }
}

impl ToBinary for Bytes {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.as_u64());
    }
}

impl FromBinary for Bytes {
    fn decode(r: &mut BinReader<'_>) -> Result<Self, BinError> {
        Ok(Bytes::new(get_u64(r)?))
    }
}

impl ToBinary for ContainerId {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.as_u64());
    }
}

impl FromBinary for ContainerId {
    fn decode(r: &mut BinReader<'_>) -> Result<Self, BinError> {
        Ok(ContainerId(get_u64(r)?))
    }
}

impl ToBinary for String {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.len() as u64);
        out.extend_from_slice(self.as_bytes());
    }
}

impl FromBinary for String {
    fn decode(r: &mut BinReader<'_>) -> Result<Self, BinError> {
        let len = get_u64(r)?;
        let len = usize::try_from(len).map_err(|_| BinError::msg("string length overflow"))?;
        let raw = r.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|e| BinError::msg(e.to_string()))
    }
}

impl ToBinary for ApiKind {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            ApiKind::Malloc => 0,
            ApiKind::MallocManaged => 1,
            ApiKind::MallocPitch => 2,
            ApiKind::Malloc3D => 3,
        });
    }
}

impl FromBinary for ApiKind {
    fn decode(r: &mut BinReader<'_>) -> Result<Self, BinError> {
        match r.byte()? {
            0 => Ok(ApiKind::Malloc),
            1 => Ok(ApiKind::MallocManaged),
            2 => Ok(ApiKind::MallocPitch),
            3 => Ok(ApiKind::Malloc3D),
            t => Err(BinError::msg(format!("unknown api kind tag {t}"))),
        }
    }
}

impl ToBinary for AllocDecision {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            AllocDecision::Granted => 0,
            AllocDecision::Rejected => 1,
        });
    }
}

impl FromBinary for AllocDecision {
    fn decode(r: &mut BinReader<'_>) -> Result<Self, BinError> {
        match r.byte()? {
            0 => Ok(AllocDecision::Granted),
            1 => Ok(AllocDecision::Rejected),
            t => Err(BinError::msg(format!("unknown decision tag {t}"))),
        }
    }
}

impl ToBinary for TopologyDevice {
    fn encode(&self, out: &mut Vec<u8>) {
        self.node.encode(out);
        self.device.encode(out);
        self.capacity.encode(out);
        self.unassigned.encode(out);
        self.containers.encode(out);
        self.policy.encode(out);
    }
}

impl FromBinary for TopologyDevice {
    fn decode(r: &mut BinReader<'_>) -> Result<Self, BinError> {
        Ok(TopologyDevice {
            node: FromBinary::decode(r)?,
            device: FromBinary::decode(r)?,
            capacity: FromBinary::decode(r)?,
            unassigned: FromBinary::decode(r)?,
            containers: FromBinary::decode(r)?,
            policy: FromBinary::decode(r)?,
        })
    }
}

impl ToBinary for ClusterNodeStatus {
    fn encode(&self, out: &mut Vec<u8>) {
        self.node.encode(out);
        self.health.encode(out);
        self.containers.encode(out);
        self.retries.encode(out);
        self.timeouts.encode(out);
        self.failovers.encode(out);
    }
}

impl FromBinary for ClusterNodeStatus {
    fn decode(r: &mut BinReader<'_>) -> Result<Self, BinError> {
        Ok(ClusterNodeStatus {
            node: FromBinary::decode(r)?,
            health: FromBinary::decode(r)?,
            containers: FromBinary::decode(r)?,
            retries: FromBinary::decode(r)?,
            timeouts: FromBinary::decode(r)?,
            failovers: FromBinary::decode(r)?,
        })
    }
}

impl ToBinary for MigrationRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        self.container.encode(out);
        self.from.encode(out);
        self.to.encode(out);
        self.limit.encode(out);
        self.used.encode(out);
        self.status.encode(out);
    }
}

impl FromBinary for MigrationRecord {
    fn decode(r: &mut BinReader<'_>) -> Result<Self, BinError> {
        Ok(MigrationRecord {
            container: FromBinary::decode(r)?,
            from: FromBinary::decode(r)?,
            to: FromBinary::decode(r)?,
            limit: FromBinary::decode(r)?,
            used: FromBinary::decode(r)?,
            status: FromBinary::decode(r)?,
        })
    }
}

impl ToBinary for Request {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Request::Register { container, limit } => {
                out.push(0);
                container.encode(out);
                limit.encode(out);
            }
            Request::RequestDir { container } => {
                out.push(1);
                container.encode(out);
            }
            Request::AllocRequest {
                container,
                pid,
                size,
                api,
            } => {
                out.push(2);
                container.encode(out);
                pid.encode(out);
                size.encode(out);
                api.encode(out);
            }
            Request::AllocDone {
                container,
                pid,
                addr,
                size,
            } => {
                out.push(3);
                container.encode(out);
                pid.encode(out);
                addr.encode(out);
                size.encode(out);
            }
            Request::AllocFailed {
                container,
                pid,
                size,
            } => {
                out.push(4);
                container.encode(out);
                pid.encode(out);
                size.encode(out);
            }
            Request::Free {
                container,
                pid,
                addr,
            } => {
                out.push(5);
                container.encode(out);
                pid.encode(out);
                addr.encode(out);
            }
            Request::MemInfo { container, pid } => {
                out.push(6);
                container.encode(out);
                pid.encode(out);
            }
            Request::ProcessExit { container, pid } => {
                out.push(7);
                container.encode(out);
                pid.encode(out);
            }
            Request::ContainerClose { container } => {
                out.push(8);
                container.encode(out);
            }
            Request::Ping => out.push(9),
            Request::QueryMetrics => out.push(10),
            Request::QueryTopology => out.push(11),
            Request::QueryHome { container } => {
                out.push(12);
                container.encode(out);
            }
            Request::QueryCluster => out.push(13),
            Request::Migrate {
                container,
                node,
                limit,
                used,
            } => {
                out.push(14);
                container.encode(out);
                node.encode(out);
                limit.encode(out);
                used.encode(out);
            }
            Request::QueryMigrations => out.push(15),
        }
    }
}

impl FromBinary for Request {
    fn decode(r: &mut BinReader<'_>) -> Result<Self, BinError> {
        match r.byte()? {
            0 => Ok(Request::Register {
                container: FromBinary::decode(r)?,
                limit: FromBinary::decode(r)?,
            }),
            1 => Ok(Request::RequestDir {
                container: FromBinary::decode(r)?,
            }),
            2 => Ok(Request::AllocRequest {
                container: FromBinary::decode(r)?,
                pid: FromBinary::decode(r)?,
                size: FromBinary::decode(r)?,
                api: FromBinary::decode(r)?,
            }),
            3 => Ok(Request::AllocDone {
                container: FromBinary::decode(r)?,
                pid: FromBinary::decode(r)?,
                addr: FromBinary::decode(r)?,
                size: FromBinary::decode(r)?,
            }),
            4 => Ok(Request::AllocFailed {
                container: FromBinary::decode(r)?,
                pid: FromBinary::decode(r)?,
                size: FromBinary::decode(r)?,
            }),
            5 => Ok(Request::Free {
                container: FromBinary::decode(r)?,
                pid: FromBinary::decode(r)?,
                addr: FromBinary::decode(r)?,
            }),
            6 => Ok(Request::MemInfo {
                container: FromBinary::decode(r)?,
                pid: FromBinary::decode(r)?,
            }),
            7 => Ok(Request::ProcessExit {
                container: FromBinary::decode(r)?,
                pid: FromBinary::decode(r)?,
            }),
            8 => Ok(Request::ContainerClose {
                container: FromBinary::decode(r)?,
            }),
            9 => Ok(Request::Ping),
            10 => Ok(Request::QueryMetrics),
            11 => Ok(Request::QueryTopology),
            12 => Ok(Request::QueryHome {
                container: FromBinary::decode(r)?,
            }),
            13 => Ok(Request::QueryCluster),
            14 => Ok(Request::Migrate {
                container: FromBinary::decode(r)?,
                node: FromBinary::decode(r)?,
                limit: FromBinary::decode(r)?,
                used: FromBinary::decode(r)?,
            }),
            15 => Ok(Request::QueryMigrations),
            t => Err(BinError::msg(format!("unknown request tag {t}"))),
        }
    }
}

impl ToBinary for Response {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Response::Ok => out.push(0),
            Response::Dir { path } => {
                out.push(1);
                path.encode(out);
            }
            Response::Alloc { decision } => {
                out.push(2);
                decision.encode(out);
            }
            Response::Freed { size } => {
                out.push(3);
                size.encode(out);
            }
            Response::MemInfo { free, total } => {
                out.push(4);
                free.encode(out);
                total.encode(out);
            }
            Response::Error { message } => {
                out.push(5);
                message.encode(out);
            }
            Response::Pong => out.push(6),
            Response::Metrics { text } => {
                out.push(7);
                text.encode(out);
            }
            Response::Topology { kind, devices } => {
                out.push(8);
                kind.encode(out);
                put_u64(out, devices.len() as u64);
                for d in devices {
                    d.encode(out);
                }
            }
            Response::Home { node, device } => {
                out.push(9);
                node.encode(out);
                device.encode(out);
            }
            Response::Cluster { strategy, nodes } => {
                out.push(10);
                strategy.encode(out);
                put_u64(out, nodes.len() as u64);
                for n in nodes {
                    n.encode(out);
                }
            }
            Response::Migrations { records } => {
                out.push(11);
                put_u64(out, records.len() as u64);
                for rec in records {
                    rec.encode(out);
                }
            }
        }
    }
}

impl FromBinary for Response {
    fn decode(r: &mut BinReader<'_>) -> Result<Self, BinError> {
        match r.byte()? {
            0 => Ok(Response::Ok),
            1 => Ok(Response::Dir {
                path: FromBinary::decode(r)?,
            }),
            2 => Ok(Response::Alloc {
                decision: FromBinary::decode(r)?,
            }),
            3 => Ok(Response::Freed {
                size: FromBinary::decode(r)?,
            }),
            4 => Ok(Response::MemInfo {
                free: FromBinary::decode(r)?,
                total: FromBinary::decode(r)?,
            }),
            5 => Ok(Response::Error {
                message: FromBinary::decode(r)?,
            }),
            6 => Ok(Response::Pong),
            7 => Ok(Response::Metrics {
                text: FromBinary::decode(r)?,
            }),
            8 => {
                let kind = String::decode(r)?;
                let n = get_u64(r)?;
                let n = usize::try_from(n).map_err(|_| BinError::msg("device count overflow"))?;
                if n > MAX_FRAME_BYTES / 8 {
                    return Err(BinError::msg("device count exceeds frame bound"));
                }
                let mut devices = Vec::with_capacity(n);
                for _ in 0..n {
                    devices.push(TopologyDevice::decode(r)?);
                }
                Ok(Response::Topology { kind, devices })
            }
            9 => Ok(Response::Home {
                node: FromBinary::decode(r)?,
                device: FromBinary::decode(r)?,
            }),
            10 => {
                let strategy = String::decode(r)?;
                let n = get_u64(r)?;
                let n = usize::try_from(n).map_err(|_| BinError::msg("node count overflow"))?;
                if n > MAX_FRAME_BYTES / 8 {
                    return Err(BinError::msg("node count exceeds frame bound"));
                }
                let mut nodes = Vec::with_capacity(n);
                for _ in 0..n {
                    nodes.push(ClusterNodeStatus::decode(r)?);
                }
                Ok(Response::Cluster { strategy, nodes })
            }
            11 => {
                let n = get_u64(r)?;
                let n = usize::try_from(n).map_err(|_| BinError::msg("record count overflow"))?;
                if n > MAX_FRAME_BYTES / 8 {
                    return Err(BinError::msg("record count exceeds frame bound"));
                }
                let mut records = Vec::with_capacity(n);
                for _ in 0..n {
                    records.push(MigrationRecord::decode(r)?);
                }
                Ok(Response::Migrations { records })
            }
            t => Err(BinError::msg(format!("unknown response tag {t}"))),
        }
    }
}

impl<T: ToBinary> ToBinary for Envelope<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.id);
        self.body.encode(out);
    }
}

impl<T: FromBinary> FromBinary for Envelope<T> {
    fn decode(r: &mut BinReader<'_>) -> Result<Self, BinError> {
        Ok(Envelope {
            id: get_u64(r)?,
            body: T::decode(r)?,
        })
    }
}

/// Serialize `value` into one complete frame (`MAGIC` + length + payload).
/// Frames are self-delimiting byte strings, so a batch of them can be
/// concatenated and written with a single syscall — the server's reply
/// coalescing path does exactly that.
pub fn encode_frame<T: ToBinary>(value: &T) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64);
    value.encode(&mut payload);
    let mut frame = Vec::with_capacity(payload.len() + 5);
    frame.push(MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Write one frame and flush it.
pub fn write_binary<T: ToBinary, W: Write>(w: &mut W, value: &T) -> io::Result<()> {
    w.write_all(&encode_frame(value))?;
    w.flush()
}

fn invalid(e: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

/// Read one binary frame whose `MAGIC` byte has already been consumed.
fn read_frame_body<T: FromBinary, R: Read>(r: &mut R) -> io::Result<T> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(invalid("frame exceeds MAX_FRAME_BYTES"));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let mut reader = BinReader::new(&payload);
    let value = T::decode(&mut reader).map_err(invalid)?;
    if !reader.is_empty() {
        return Err(invalid("trailing bytes after payload"));
    }
    Ok(value)
}

/// Read one binary frame. `Ok(None)` on clean EOF; `InvalidData` for a
/// wrong magic byte, over-long frame, or undecodable payload.
pub fn read_binary<T: FromBinary, R: BufRead>(r: &mut R) -> io::Result<Option<T>> {
    let first = {
        let buf = r.fill_buf()?;
        match buf.first() {
            None => return Ok(None),
            Some(&b) => b,
        }
    };
    if first != MAGIC {
        return Err(invalid(format!("bad frame magic 0x{first:02x}")));
    }
    r.consume(1);
    read_frame_body(r).map(Some)
}

/// Read one message in whichever codec the peer used for this frame,
/// detected from its first byte: `{` means a JSON line, [`MAGIC`] means a
/// binary frame, anything else is `InvalidData`. Returns the decoded
/// message and the codec it arrived in, so the reply can be written the
/// same way.
pub fn read_auto<T, R>(r: &mut R) -> io::Result<Option<(T, WireCodec)>>
where
    T: FromJson + FromBinary,
    R: BufRead,
{
    let first = {
        let buf = r.fill_buf()?;
        match buf.first() {
            None => return Ok(None),
            Some(&b) => b,
        }
    };
    match first {
        b'{' => Ok(crate::codec::read_json(r)?.map(|v| (v, WireCodec::Json))),
        MAGIC => {
            r.consume(1);
            read_frame_body(r).map(|v| Some((v, WireCodec::Binary)))
        }
        other => Err(invalid(format!("unrecognized frame start 0x{other:02x}"))),
    }
}

/// Serialize `value` in the given codec as one self-delimiting byte
/// string, suitable for concatenation into a batched write.
pub fn encode_with<T: ToBinary + ToJson>(value: &T, codec: WireCodec) -> Vec<u8> {
    match codec {
        WireCodec::Json => {
            let mut line = value.to_json_string().into_bytes();
            line.push(b'\n');
            line
        }
        WireCodec::Binary => encode_frame(value),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::write_json;
    use std::io::BufReader;

    fn all_requests() -> Vec<Request> {
        vec![
            Request::Register {
                container: ContainerId(3),
                limit: Bytes::mib(512),
            },
            Request::RequestDir {
                container: ContainerId(3),
            },
            Request::AllocRequest {
                container: ContainerId(3),
                pid: 42,
                size: Bytes::mib(128),
                api: ApiKind::Malloc,
            },
            Request::AllocRequest {
                container: ContainerId(3),
                pid: 42,
                size: Bytes::mib(128),
                api: ApiKind::MallocManaged,
            },
            Request::AllocRequest {
                container: ContainerId(3),
                pid: 42,
                size: Bytes::mib(128),
                api: ApiKind::MallocPitch,
            },
            Request::AllocRequest {
                container: ContainerId(3),
                pid: 42,
                size: Bytes::mib(128),
                api: ApiKind::Malloc3D,
            },
            Request::AllocDone {
                container: ContainerId(3),
                pid: 42,
                addr: 0x7000_0000,
                size: Bytes::mib(128),
            },
            Request::AllocFailed {
                container: ContainerId(3),
                pid: 42,
                size: Bytes::mib(128),
            },
            Request::Free {
                container: ContainerId(3),
                pid: 42,
                addr: u64::MAX,
            },
            Request::MemInfo {
                container: ContainerId(3),
                pid: 42,
            },
            Request::ProcessExit {
                container: ContainerId(3),
                pid: 42,
            },
            Request::ContainerClose {
                container: ContainerId(3),
            },
            Request::Ping,
            Request::QueryMetrics,
            Request::QueryTopology,
            Request::QueryHome {
                container: ContainerId(3),
            },
            Request::QueryCluster,
            Request::Migrate {
                container: ContainerId(3),
                node: String::new(),
                limit: Bytes::mib(512),
                used: Bytes::mib(128),
            },
            Request::Migrate {
                container: ContainerId(0),
                node: "node-1".into(),
                limit: Bytes::new(0),
                used: Bytes::new(0),
            },
            Request::QueryMigrations,
        ]
    }

    fn all_responses() -> Vec<Response> {
        vec![
            Response::Ok,
            Response::Dir {
                path: "/var/lib/convgpu/cnt-0003".into(),
            },
            Response::Alloc {
                decision: AllocDecision::Granted,
            },
            Response::Alloc {
                decision: AllocDecision::Rejected,
            },
            Response::Freed {
                size: Bytes::mib(64),
            },
            Response::MemInfo {
                free: Bytes::mib(100),
                total: Bytes::mib(512),
            },
            Response::Error {
                message: "unregistered container — π≈3.14".into(),
            },
            Response::Pong,
            Response::Metrics {
                text: "# TYPE convgpu_x counter\nconvgpu_x{type=\"ping\"} 3\n".into(),
            },
            Response::Topology {
                kind: "cluster".into(),
                devices: vec![
                    TopologyDevice {
                        node: "node-0".into(),
                        device: 0,
                        capacity: Bytes::gib(5),
                        unassigned: Bytes::mib(1234),
                        containers: 2,
                        policy: "fifo".into(),
                    },
                    TopologyDevice {
                        node: "node-1".into(),
                        device: 1,
                        capacity: Bytes::gib(16),
                        unassigned: Bytes::gib(16),
                        containers: 0,
                        policy: "random".into(),
                    },
                ],
            },
            Response::Topology {
                kind: "single".into(),
                devices: vec![],
            },
            Response::Home {
                node: String::new(),
                device: 1,
            },
            Response::Cluster {
                strategy: "spread".into(),
                nodes: vec![
                    ClusterNodeStatus {
                        node: "node-0".into(),
                        health: "up".into(),
                        containers: 3,
                        retries: 0,
                        timeouts: 0,
                        failovers: 0,
                    },
                    ClusterNodeStatus {
                        node: "node-1".into(),
                        health: "down".into(),
                        containers: 0,
                        retries: 5,
                        timeouts: 2,
                        failovers: 3,
                    },
                ],
            },
            Response::Cluster {
                strategy: "random".into(),
                nodes: vec![],
            },
            Response::Migrations {
                records: vec![
                    MigrationRecord {
                        container: ContainerId(3),
                        from: "node-0".into(),
                        to: "node-1".into(),
                        limit: Bytes::mib(512),
                        used: Bytes::mib(128),
                        status: "completed".into(),
                    },
                    MigrationRecord {
                        container: ContainerId(4),
                        from: "node-0".into(),
                        to: String::new(),
                        limit: Bytes::mib(256),
                        used: Bytes::new(0),
                        status: "rejected".into(),
                    },
                ],
            },
            Response::Migrations { records: vec![] },
        ]
    }

    /// Exhaustive roundtrip against the JSON codec: every `message.rs`
    /// variant must decode from its own binary frame to the identical
    /// value the JSON wire yields — the two codecs are interchangeable.
    #[test]
    fn binary_matches_json_for_every_request_variant() {
        for (i, req) in all_requests().into_iter().enumerate() {
            let env = Envelope {
                id: i as u64 * 7 + u64::MAX / 2,
                body: req,
            };
            let mut json_buf = Vec::new();
            write_json(&mut json_buf, &env).unwrap();
            let mut jr = BufReader::new(json_buf.as_slice());
            let via_json: Envelope<Request> = crate::codec::read_json(&mut jr).unwrap().unwrap();

            let mut bin_buf = Vec::new();
            write_binary(&mut bin_buf, &env).unwrap();
            let mut br = BufReader::new(bin_buf.as_slice());
            let via_bin: Envelope<Request> = read_binary(&mut br).unwrap().unwrap();

            assert_eq!(via_json, env);
            assert_eq!(via_bin, env);
            assert_eq!(via_bin, via_json);
        }
    }

    #[test]
    fn binary_matches_json_for_every_response_variant() {
        for (i, resp) in all_responses().into_iter().enumerate() {
            let env = Envelope {
                id: i as u64,
                body: resp,
            };
            let mut json_buf = Vec::new();
            write_json(&mut json_buf, &env).unwrap();
            let mut jr = BufReader::new(json_buf.as_slice());
            let via_json: Envelope<Response> = crate::codec::read_json(&mut jr).unwrap().unwrap();

            let mut bin_buf = Vec::new();
            write_binary(&mut bin_buf, &env).unwrap();
            let mut br = BufReader::new(bin_buf.as_slice());
            let via_bin: Envelope<Response> = read_binary(&mut br).unwrap().unwrap();

            assert_eq!(via_json, env);
            assert_eq!(via_bin, env);
            assert_eq!(via_bin, via_json);
        }
    }

    #[test]
    fn binary_frames_are_smaller_than_json_lines() {
        // The point of the codec: the hot-path message must shrink.
        let env = Envelope {
            id: 12,
            body: Request::AllocRequest {
                container: ContainerId(3),
                pid: 4242,
                size: Bytes::mib(128),
                api: ApiKind::Malloc,
            },
        };
        let bin = encode_frame(&env);
        let mut json = Vec::new();
        write_json(&mut json, &env).unwrap();
        assert!(
            bin.len() * 2 < json.len(),
            "binary {} vs json {} bytes",
            bin.len(),
            json.len()
        );
    }

    #[test]
    fn auto_detect_reads_mixed_codecs_on_one_stream() {
        let a = Envelope {
            id: 1,
            body: Request::Ping,
        };
        let b = Envelope {
            id: 2,
            body: Request::QueryMetrics,
        };
        let mut buf = Vec::new();
        write_json(&mut buf, &a).unwrap();
        write_binary(&mut buf, &b).unwrap();
        write_json(&mut buf, &b).unwrap();
        let mut r = BufReader::new(buf.as_slice());
        let (x, cx): (Envelope<Request>, _) = read_auto(&mut r).unwrap().unwrap();
        let (y, cy): (Envelope<Request>, _) = read_auto(&mut r).unwrap().unwrap();
        let (z, cz): (Envelope<Request>, _) = read_auto(&mut r).unwrap().unwrap();
        assert_eq!((x, cx), (a, WireCodec::Json));
        assert_eq!((y.clone(), cy), (b.clone(), WireCodec::Binary));
        assert_eq!((z, cz), (b, WireCodec::Json));
        let eof: Option<(Envelope<Request>, _)> = read_auto(&mut r).unwrap();
        assert!(eof.is_none());
    }

    #[test]
    fn truncated_frame_is_unexpected_eof() {
        let env = Envelope {
            id: 7,
            body: Request::Register {
                container: ContainerId(1),
                limit: Bytes::mib(100),
            },
        };
        let full = encode_frame(&env);
        // Every proper prefix must fail cleanly, never panic or hang.
        for cut in 1..full.len() {
            let mut r = BufReader::new(&full[..cut]);
            let err = read_binary::<Envelope<Request>, _>(&mut r).unwrap_err();
            assert_eq!(
                err.kind(),
                io::ErrorKind::UnexpectedEof,
                "prefix of {cut} bytes"
            );
        }
    }

    /// Malformed-frame property test: drive the decoder with a
    /// deterministic pseudo-random byte fuzzer. It must reject garbage
    /// with an error (or happen to parse a valid frame) — never panic,
    /// never read past the frame. The iteration budget defaults to a
    /// PR-sized 2000 and is raised by the nightly deep tier via
    /// `CONVGPU_FUZZ_ITERS` (the seed stays fixed; more iterations walk
    /// further down the same deterministic stream).
    #[test]
    fn random_bytes_never_panic_the_decoder() {
        let iters: u64 = std::env::var("CONVGPU_FUZZ_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2000);
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            // xorshift* — deterministic, no external RNG dependency.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        for _ in 0..iters {
            let len = (next() % 64) as usize;
            let mut payload = Vec::with_capacity(len);
            for _ in 0..len {
                payload.push(next() as u8);
            }
            let mut frame = vec![MAGIC];
            frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frame.extend_from_slice(&payload);
            let mut r = BufReader::new(frame.as_slice());
            // Must terminate with Ok or Err — the assertion is no panic.
            let _ = read_binary::<Envelope<Request>, _>(&mut r);
            let mut r = BufReader::new(frame.as_slice());
            let _ = read_binary::<Envelope<Response>, _>(&mut r);
        }
    }

    #[test]
    fn corrupted_tag_and_trailing_bytes_are_invalid_data() {
        let env = Envelope {
            id: 1,
            body: Request::Ping,
        };
        let mut frame = encode_frame(&env);
        // Corrupt the body tag (last payload byte for Ping).
        let last = frame.len() - 1;
        frame[last] = 0xEE;
        let mut r = BufReader::new(frame.as_slice());
        let err = read_binary::<Envelope<Request>, _>(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // A frame whose payload has trailing bytes is rejected too.
        let mut payload = Vec::new();
        env.encode(&mut payload);
        payload.push(0x00);
        let mut frame = vec![MAGIC];
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        let mut r = BufReader::new(frame.as_slice());
        let err = read_binary::<Envelope<Request>, _>(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_frame_is_rejected_without_allocation() {
        let mut frame = vec![MAGIC];
        frame.extend_from_slice(&(u32::MAX).to_le_bytes());
        frame.extend_from_slice(&[0u8; 16]);
        let mut r = BufReader::new(frame.as_slice());
        let err = read_binary::<Envelope<Request>, _>(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn varint_boundaries_round_trip() {
        for v in [
            0u64,
            1,
            127,
            128,
            16383,
            16384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut out = Vec::new();
            put_u64(&mut out, v);
            let mut r = BinReader::new(&out);
            assert_eq!(get_u64(&mut r).unwrap(), v);
            assert!(r.is_empty());
        }
        // An overlong / overflowing varint is rejected.
        let overlong = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        let mut r = BinReader::new(&overlong);
        assert!(get_u64(&mut r).is_err());
    }
}
