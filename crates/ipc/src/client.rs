//! The wrapper side of the socket.
//!
//! [`SchedulerClient`] multiplexes requests over one connection with
//! correlation IDs: a background reader thread routes each response to the
//! thread that issued the matching request. A suspended allocation is a
//! thread parked in `recv()` on its response channel — the exact analog of
//! the paper's wrapper blocking in `read(2)` until the scheduler decides
//! to answer.

use crate::binary::{encode_with, read_auto, WireCodec};
use crate::endpoint::{IpcError, IpcResult, SchedulerEndpoint};
use crate::message::{AllocDecision, ApiKind, ClusterNodeStatus, Envelope, Request, Response};
use crate::transport::{Conn, EndpointAddr};
use convgpu_obs::Registry;
use convgpu_sim_core::clock::ClockHandle;
use convgpu_sim_core::ids::ContainerId;
use convgpu_sim_core::sync::Mutex;
use convgpu_sim_core::time::SimDuration;
use convgpu_sim_core::units::Bytes;
use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::sync::Arc;

/// Instrumentation hook for a client: records the full request→response
/// round-trip per message type. For a suspended allocation the round-trip
/// *is* the suspension — the histogram's tail is the paper's wait time.
#[derive(Clone)]
pub struct ClientObs {
    /// Shared metrics registry.
    pub registry: Arc<Registry>,
    /// Time source for the latency measurements.
    pub clock: ClockHandle,
}

struct ClientShared {
    writer: Mutex<Conn>,
    pending: Mutex<Option<HashMap<u64, SyncSender<Response>>>>,
    next_id: AtomicU64,
    codec: WireCodec,
    obs: Option<ClientObs>,
}

/// A connected protocol client.
///
/// Dropping the client shuts the connection down (both directions), so
/// its reader thread exits and the server observes the disconnect — a
/// container's socket does not outlive its wrapper module.
pub struct SchedulerClient {
    shared: Arc<ClientShared>,
}

impl Drop for SchedulerClient {
    fn drop(&mut self) {
        // The reader thread holds its own clone of the stream; without
        // an explicit shutdown the connection (and two threads) would
        // leak until server shutdown.
        let _ = self.shared.writer.lock().shutdown(std::net::Shutdown::Both);
    }
}

impl SchedulerClient {
    /// Connect to the scheduler's UNIX socket at `path`.
    pub fn connect(path: &Path) -> IpcResult<SchedulerClient> {
        SchedulerClient::connect_with_obs(path, None)
    }

    /// Like [`SchedulerClient::connect`], but every round-trip latency is
    /// recorded into `obs` under `convgpu_ipc_client_rtt_seconds{type}`.
    pub fn connect_with_obs(path: &Path, obs: Option<ClientObs>) -> IpcResult<SchedulerClient> {
        SchedulerClient::connect_with_codec(path, WireCodec::Json, obs)
    }

    /// Connect to a UNIX socket speaking `codec`; see
    /// [`SchedulerClient::connect_endpoint_with_codec`].
    pub fn connect_with_codec(
        path: &Path,
        codec: WireCodec,
        obs: Option<ClientObs>,
    ) -> IpcResult<SchedulerClient> {
        SchedulerClient::connect_endpoint_with_codec(&EndpointAddr::from(path), codec, obs)
    }

    /// Connect to any transport endpoint (`unix:/path` or
    /// `tcp:host:port`), speaking JSON.
    pub fn connect_endpoint(addr: &EndpointAddr) -> IpcResult<SchedulerClient> {
        SchedulerClient::connect_endpoint_with_codec(addr, WireCodec::Json, None)
    }

    /// Connect to any transport endpoint speaking `codec`. No *codec*
    /// handshake: the server detects the codec from each frame's first
    /// byte and answers in kind, so a binary client and a JSON CLI can
    /// share one socket. JSON remains the default everywhere
    /// ([`SchedulerClient::connect`]). A TCP endpoint does complete the
    /// *transport* hello (version check) inside [`Conn::connect`] before
    /// this returns.
    pub fn connect_endpoint_with_codec(
        addr: &EndpointAddr,
        codec: WireCodec,
        obs: Option<ClientObs>,
    ) -> IpcResult<SchedulerClient> {
        let stream = Conn::connect(addr)?;
        let reader_stream = stream.try_clone()?;
        let shared = Arc::new(ClientShared {
            writer: Mutex::new(stream),
            pending: Mutex::new(Some(HashMap::new())),
            next_id: AtomicU64::new(1),
            codec,
            obs,
        });
        let reader_shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("convgpu-ipc-client-reader".into())
            .spawn(move || reader_loop(reader_stream, reader_shared))
            .map_err(IpcError::Io)?;
        Ok(SchedulerClient { shared })
    }

    /// Send `req` and block for the matching response. Blocking may last
    /// arbitrarily long — that is the suspension mechanism.
    pub fn request(&self, req: Request) -> IpcResult<Response> {
        let kind = req.kind();
        let sent_at = self.shared.obs.as_ref().map(|o| o.clock.now());
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx): (SyncSender<Response>, Receiver<Response>) = sync_channel(1);
        {
            let mut pending = self.shared.pending.lock();
            match pending.as_mut() {
                Some(map) => {
                    map.insert(id, tx);
                }
                None => return Err(IpcError::Disconnected),
            }
        }
        let frame = encode_with(&Envelope { id, body: req }, self.shared.codec);
        let write_result = {
            let mut w = self.shared.writer.lock();
            w.write_all(&frame).and_then(|()| w.flush())
        };
        if let Err(e) = write_result {
            if let Some(map) = self.shared.pending.lock().as_mut() {
                map.remove(&id);
            }
            return Err(IpcError::Io(e));
        }
        let received = rx.recv();
        if let (Some(o), Some(t0)) = (&self.shared.obs, sent_at) {
            o.registry.observe(
                "convgpu_ipc_client_rtt_seconds",
                &[("type", kind)],
                o.clock.now().saturating_since(t0),
            );
        }
        match received {
            Ok(Response::Error { message }) => Err(IpcError::Scheduler(message)),
            Ok(resp) => Ok(resp),
            Err(_) => Err(IpcError::Disconnected),
        }
    }

    /// Like [`SchedulerClient::request`], but bounded: fails with
    /// [`IpcError::TimedOut`] once `clock` reports that `deadline` has
    /// elapsed since the send. Progress is measured on the *sim* clock —
    /// under a [`convgpu_sim_core::clock::VirtualClock`] each poll round
    /// advances virtual time by a fraction of the deadline, so timeouts
    /// fire deterministically without real waiting; under a real clock
    /// the short receive polls advance it naturally. A late response to a
    /// timed-out request is discarded by the reader thread (its pending
    /// entry is gone).
    ///
    /// Deadlines are for *control-plane* calls. `alloc_request` must stay
    /// unbounded — blocking arbitrarily long **is** the paper's
    /// suspension mechanism — and unblocks via [`IpcError::Disconnected`]
    /// when the peer dies instead.
    pub fn request_deadline(
        &self,
        req: Request,
        clock: &ClockHandle,
        deadline: SimDuration,
    ) -> IpcResult<Response> {
        let kind = req.kind();
        let sent_at = self.shared.obs.as_ref().map(|o| o.clock.now());
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx): (SyncSender<Response>, Receiver<Response>) = sync_channel(1);
        {
            let mut pending = self.shared.pending.lock();
            match pending.as_mut() {
                Some(map) => {
                    map.insert(id, tx);
                }
                None => return Err(IpcError::Disconnected),
            }
        }
        let frame = encode_with(&Envelope { id, body: req }, self.shared.codec);
        let write_result = {
            let mut w = self.shared.writer.lock();
            w.write_all(&frame).and_then(|()| w.flush())
        };
        if let Err(e) = write_result {
            if let Some(map) = self.shared.pending.lock().as_mut() {
                map.remove(&id);
            }
            return Err(IpcError::Io(e));
        }
        let deadline_at = clock.now() + deadline;
        // Sim-time quantum burned per empty poll round; 8 rounds reach the
        // deadline under a virtual clock that nothing else advances.
        let quantum = SimDuration::from_nanos((deadline.as_nanos() / 8).max(1));
        let received = loop {
            // The real-time poll gives a live server a window to answer
            // before any virtual time is charged, so a virtual-clock
            // caller does not time out spuriously on a healthy socket.
            let before = clock.now();
            match rx.recv_timeout(std::time::Duration::from_millis(1)) {
                Ok(resp) => break resp,
                Err(RecvTimeoutError::Disconnected) => return Err(IpcError::Disconnected),
                Err(RecvTimeoutError::Timeout) => {
                    let now = clock.now();
                    if now >= deadline_at {
                        if let Some(map) = self.shared.pending.lock().as_mut() {
                            map.remove(&id);
                        }
                        return Err(IpcError::TimedOut);
                    }
                    // A wall-backed clock already advanced during the
                    // receive poll above — charging the quantum on top
                    // would oversleep past a reply that is milliseconds
                    // away. Only a clock that stood still (virtual, with
                    // no external driver) needs the explicit jump to ever
                    // reach its deadline.
                    if now <= before {
                        clock.sleep(quantum);
                    }
                }
            }
        };
        if let (Some(o), Some(t0)) = (&self.shared.obs, sent_at) {
            o.registry.observe(
                "convgpu_ipc_client_rtt_seconds",
                &[("type", kind)],
                o.clock.now().saturating_since(t0),
            );
        }
        match received {
            Response::Error { message } => Err(IpcError::Scheduler(message)),
            resp => Ok(resp),
        }
    }

    /// Ask the daemon for its current metrics in Prometheus text format.
    pub fn query_metrics(&self) -> IpcResult<String> {
        match self.request(Request::QueryMetrics)? {
            Response::Metrics { text } => Ok(text),
            other => Err(IpcError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Ask a cluster router for its strategy and per-node status. Errors
    /// with the daemon's own message on non-cluster topologies.
    pub fn query_cluster(&self) -> IpcResult<(String, Vec<ClusterNodeStatus>)> {
        match self.request(Request::QueryCluster)? {
            Response::Cluster { strategy, nodes } => Ok((strategy, nodes)),
            other => Err(IpcError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Ask a cluster router to re-home one container off its current
    /// node. Errors with the router's own message when the container is
    /// unknown or no survivor can absorb it.
    pub fn migrate(
        &self,
        container: ContainerId,
    ) -> IpcResult<Vec<crate::message::MigrationRecord>> {
        match self.request(Request::Migrate {
            container,
            node: String::new(),
            limit: Bytes::ZERO,
            used: Bytes::ZERO,
        })? {
            Response::Migrations { records } => Ok(records),
            other => Err(IpcError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Ask a cluster router to drain every container homed on `node`
    /// (`cluster rebalance`): the 0-sentinel form of [`Request::Migrate`].
    pub fn rebalance(&self, node: &str) -> IpcResult<Vec<crate::message::MigrationRecord>> {
        match self.request(Request::Migrate {
            container: ContainerId(0),
            node: node.to_string(),
            limit: Bytes::ZERO,
            used: Bytes::ZERO,
        })? {
            Response::Migrations { records } => Ok(records),
            other => Err(IpcError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Ask a cluster router for every migration it has performed so far.
    pub fn query_migrations(&self) -> IpcResult<Vec<crate::message::MigrationRecord>> {
        match self.request(Request::QueryMigrations)? {
            Response::Migrations { records } => Ok(records),
            other => Err(IpcError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    fn expect_ok(&self, req: Request) -> IpcResult<()> {
        match self.request(req)? {
            Response::Ok => Ok(()),
            other => Err(IpcError::UnexpectedResponse(format!("{other:?}"))),
        }
    }
}

fn reader_loop(stream: Conn, shared: Arc<ClientShared>) {
    let mut reader = BufReader::new(stream);
    // Errors and EOF both end the connection. Replies arrive in whatever
    // codec each request used; auto-detect keeps the loop codec-agnostic.
    while let Ok(Some((env, _codec))) = read_auto::<Envelope<Response>, _>(&mut reader) {
        let tx = shared
            .pending
            .lock()
            .as_mut()
            .and_then(|map| map.remove(&env.id));
        if let Some(tx) = tx {
            let _ = tx.send(env.body);
        }
        // Unmatched ids are dropped: a reply to a request whose caller
        // already errored out.
    }
    // Connection gone: drop the pending map so every parked caller's
    // recv() fails with Disconnected instead of hanging forever.
    *shared.pending.lock() = None;
}

impl SchedulerEndpoint for SchedulerClient {
    fn register(&self, container: ContainerId, limit: Bytes) -> IpcResult<()> {
        self.expect_ok(Request::Register { container, limit })
    }

    fn request_dir(&self, container: ContainerId) -> IpcResult<String> {
        match self.request(Request::RequestDir { container })? {
            Response::Dir { path } => Ok(path),
            other => Err(IpcError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    fn request_alloc(
        &self,
        container: ContainerId,
        pid: u64,
        size: Bytes,
        api: ApiKind,
    ) -> IpcResult<AllocDecision> {
        match self.request(Request::AllocRequest {
            container,
            pid,
            size,
            api,
        })? {
            Response::Alloc { decision } => Ok(decision),
            other => Err(IpcError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    fn alloc_done(
        &self,
        container: ContainerId,
        pid: u64,
        addr: u64,
        size: Bytes,
    ) -> IpcResult<()> {
        self.expect_ok(Request::AllocDone {
            container,
            pid,
            addr,
            size,
        })
    }

    fn alloc_failed(&self, container: ContainerId, pid: u64, size: Bytes) -> IpcResult<()> {
        self.expect_ok(Request::AllocFailed {
            container,
            pid,
            size,
        })
    }

    fn free(&self, container: ContainerId, pid: u64, addr: u64) -> IpcResult<Bytes> {
        match self.request(Request::Free {
            container,
            pid,
            addr,
        })? {
            Response::Freed { size } => Ok(size),
            other => Err(IpcError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    fn mem_info(&self, container: ContainerId, pid: u64) -> IpcResult<(Bytes, Bytes)> {
        match self.request(Request::MemInfo { container, pid })? {
            Response::MemInfo { free, total } => Ok((free, total)),
            other => Err(IpcError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    fn process_exit(&self, container: ContainerId, pid: u64) -> IpcResult<()> {
        self.expect_ok(Request::ProcessExit { container, pid })
    }

    fn container_close(&self, container: ContainerId) -> IpcResult<()> {
        self.expect_ok(Request::ContainerClose { container })
    }

    fn ping(&self) -> IpcResult<()> {
        match self.request(Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(IpcError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    fn query_topology(&self) -> IpcResult<(String, Vec<crate::message::TopologyDevice>)> {
        match self.request(Request::QueryTopology)? {
            Response::Topology { kind, devices } => Ok((kind, devices)),
            other => Err(IpcError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    fn query_home(&self, container: ContainerId) -> IpcResult<(String, u64)> {
        match self.request(Request::QueryHome { container })? {
            Response::Home { node, device } => Ok((node, device)),
            other => Err(IpcError::UnexpectedResponse(format!("{other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ConnId, Reply, RequestHandler, SocketServer};
    use std::path::PathBuf;
    use std::time::Duration;

    fn temp_sock(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "convgpu-ipc-client-test-{}-{}",
            std::process::id(),
            name
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("sched.sock")
    }

    /// Grants allocations under 100 MiB instantly; suspends (answers after
    /// a delay from another thread) anything larger — a miniature of the
    /// real scheduler's behaviour.
    struct MiniScheduler;

    impl RequestHandler for MiniScheduler {
        fn on_request(&self, _conn: ConnId, req: Request, reply: Reply) {
            match req {
                Request::Ping => reply.send(Response::Pong),
                Request::Register { .. } => reply.send(Response::Ok),
                Request::RequestDir { container } => reply.send(Response::Dir {
                    path: format!("/tmp/convgpu/{container}"),
                }),
                Request::AllocRequest { size, .. } => {
                    if size <= Bytes::mib(100) {
                        reply.send(Response::Alloc {
                            decision: AllocDecision::Granted,
                        });
                    } else {
                        // Deferred reply: the suspension mechanism.
                        std::thread::spawn(move || {
                            std::thread::sleep(Duration::from_millis(50));
                            reply.send(Response::Alloc {
                                decision: AllocDecision::Granted,
                            });
                        });
                    }
                }
                Request::MemInfo { .. } => reply.send(Response::MemInfo {
                    free: Bytes::mib(10),
                    total: Bytes::mib(512),
                }),
                Request::Free { .. } => reply.send(Response::Freed {
                    size: Bytes::mib(1),
                }),
                _ => reply.send(Response::Ok),
            }
        }
    }

    #[test]
    fn full_endpoint_round_trip() {
        let path = temp_sock("roundtrip");
        let server = SocketServer::bind(&path, Arc::new(MiniScheduler)).unwrap();
        let client = SchedulerClient::connect(&path).unwrap();

        client.ping().unwrap();
        client.register(ContainerId(1), Bytes::mib(512)).unwrap();
        assert_eq!(
            client.request_dir(ContainerId(1)).unwrap(),
            "/tmp/convgpu/cnt-0001"
        );
        assert_eq!(
            client
                .request_alloc(ContainerId(1), 1, Bytes::mib(10), ApiKind::Malloc)
                .unwrap(),
            AllocDecision::Granted
        );
        client
            .alloc_done(ContainerId(1), 1, 0x7000, Bytes::mib(10))
            .unwrap();
        assert_eq!(
            client.free(ContainerId(1), 1, 0x7000).unwrap(),
            Bytes::mib(1)
        );
        assert_eq!(
            client.mem_info(ContainerId(1), 1).unwrap(),
            (Bytes::mib(10), Bytes::mib(512))
        );
        client.process_exit(ContainerId(1), 1).unwrap();
        client.container_close(ContainerId(1)).unwrap();
        server.shutdown();
    }

    #[test]
    fn binary_codec_runs_the_full_endpoint() {
        let path = temp_sock("binroundtrip");
        let server = SocketServer::bind(&path, Arc::new(MiniScheduler)).unwrap();
        let client = SchedulerClient::connect_with_codec(&path, WireCodec::Binary, None).unwrap();
        client.ping().unwrap();
        client.register(ContainerId(1), Bytes::mib(512)).unwrap();
        assert_eq!(
            client
                .request_alloc(ContainerId(1), 1, Bytes::mib(10), ApiKind::Malloc)
                .unwrap(),
            AllocDecision::Granted
        );
        assert_eq!(
            client.mem_info(ContainerId(1), 1).unwrap(),
            (Bytes::mib(10), Bytes::mib(512))
        );
        // Deferred (suspended) replies come back binary too.
        assert_eq!(
            client
                .request_alloc(ContainerId(1), 1, Bytes::mib(500), ApiKind::Malloc)
                .unwrap(),
            AllocDecision::Granted
        );
        client.container_close(ContainerId(1)).unwrap();
        server.shutdown();
    }

    #[test]
    fn suspended_request_blocks_until_deferred_reply() {
        let path = temp_sock("suspend");
        let server = SocketServer::bind(&path, Arc::new(MiniScheduler)).unwrap();
        let client = SchedulerClient::connect(&path).unwrap();
        let t0 = std::time::Instant::now();
        let decision = client
            .request_alloc(ContainerId(1), 1, Bytes::mib(500), ApiKind::Malloc)
            .unwrap();
        assert_eq!(decision, AllocDecision::Granted);
        assert!(
            t0.elapsed() >= Duration::from_millis(45),
            "must have waited for the deferred reply"
        );
        server.shutdown();
    }

    #[test]
    fn concurrent_requests_multiplex_on_one_socket() {
        let path = temp_sock("mux");
        let server = SocketServer::bind(&path, Arc::new(MiniScheduler)).unwrap();
        let client = Arc::new(SchedulerClient::connect(&path).unwrap());
        let mut handles = Vec::new();
        // One slow (suspended) request in flight while fast ones complete.
        {
            let c = Arc::clone(&client);
            handles.push(std::thread::spawn(move || {
                c.request_alloc(ContainerId(1), 1, Bytes::mib(500), ApiKind::Malloc)
                    .unwrap()
            }));
        }
        for _ in 0..4 {
            let c = Arc::clone(&client);
            handles.push(std::thread::spawn(move || {
                c.request_alloc(ContainerId(1), 2, Bytes::mib(1), ApiKind::Malloc)
                    .unwrap()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), AllocDecision::Granted);
        }
        server.shutdown();
    }

    #[test]
    fn server_shutdown_unblocks_waiting_clients() {
        let path = temp_sock("shutdown");
        let server = SocketServer::bind(&path, Arc::new(MiniScheduler)).unwrap();
        let client = Arc::new(SchedulerClient::connect(&path).unwrap());
        let c = Arc::clone(&client);
        let waiter = std::thread::spawn(move || {
            // Large → deferred 50 ms; we kill the server first.
            c.request_alloc(ContainerId(1), 1, Bytes::mib(500), ApiKind::Malloc)
        });
        std::thread::sleep(Duration::from_millis(10));
        server.shutdown();
        let res = waiter.join().unwrap();
        assert!(res.is_err(), "waiter must error, not hang: {res:?}");
    }

    #[test]
    fn dropping_the_client_disconnects_the_server() {
        use std::sync::atomic::AtomicUsize;
        struct CountDisconnects {
            disconnects: AtomicUsize,
        }
        impl RequestHandler for CountDisconnects {
            fn on_request(&self, _c: ConnId, _r: Request, reply: Reply) {
                reply.send(crate::message::Response::Pong);
            }
            fn on_disconnect(&self, _c: ConnId) {
                self.disconnects
                    .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
        }
        let path = temp_sock("dropclient");
        let handler = Arc::new(CountDisconnects {
            disconnects: AtomicUsize::new(0),
        });
        let server = SocketServer::bind(&path, handler.clone()).unwrap();
        {
            let client = SchedulerClient::connect(&path).unwrap();
            client.ping().unwrap();
        } // drop
        for _ in 0..200 {
            if handler
                .disconnects
                .load(std::sync::atomic::Ordering::SeqCst)
                == 1
            {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(
            handler
                .disconnects
                .load(std::sync::atomic::Ordering::SeqCst),
            1,
            "server must see the disconnect promptly after client drop"
        );
        server.shutdown();
    }

    #[test]
    fn deadline_request_times_out_on_a_stalled_reply() {
        use convgpu_sim_core::clock::VirtualClock;
        let path = temp_sock("deadline-stall");
        let server = SocketServer::bind(&path, Arc::new(MiniScheduler)).unwrap();
        let client = SchedulerClient::connect(&path).unwrap();
        let vclock = VirtualClock::new();
        let clock: ClockHandle = vclock.handle();
        // >100 MiB → MiniScheduler defers the reply by 50 ms of real time;
        // the virtual deadline fires first (8 poll rounds ≈ 8 ms real).
        let res = client.request_deadline(
            Request::AllocRequest {
                container: ContainerId(1),
                pid: 1,
                size: Bytes::mib(500),
                api: ApiKind::Malloc,
            },
            &clock,
            SimDuration::from_millis(5),
        );
        assert!(
            matches!(res, Err(IpcError::TimedOut)),
            "expected TimedOut, got {res:?}"
        );
        // The connection must remain usable after a timeout: the late
        // reply is dropped by the reader, not misdelivered.
        client.ping().unwrap();
        server.shutdown();
    }

    #[test]
    fn deadline_request_passes_through_a_prompt_reply() {
        use convgpu_sim_core::clock::VirtualClock;
        let path = temp_sock("deadline-ok");
        let server = SocketServer::bind(&path, Arc::new(MiniScheduler)).unwrap();
        let client = SchedulerClient::connect(&path).unwrap();
        let vclock = VirtualClock::new();
        let clock: ClockHandle = vclock.handle();
        let resp = client
            .request_deadline(Request::Ping, &clock, SimDuration::from_millis(5))
            .unwrap();
        assert_eq!(resp, Response::Pong);
        server.shutdown();
    }

    #[test]
    fn deadline_request_errors_not_hangs_when_server_dies() {
        use convgpu_sim_core::clock::VirtualClock;
        let path = temp_sock("deadline-dead");
        let server = SocketServer::bind(&path, Arc::new(MiniScheduler)).unwrap();
        let client = Arc::new(SchedulerClient::connect(&path).unwrap());
        let vclock = VirtualClock::new();
        let clock: ClockHandle = vclock.handle();
        let c = Arc::clone(&client);
        let ck = clock.clone();
        let waiter = std::thread::spawn(move || {
            c.request_deadline(
                Request::AllocRequest {
                    container: ContainerId(1),
                    pid: 1,
                    size: Bytes::mib(500),
                    api: ApiKind::Malloc,
                },
                &ck,
                SimDuration::from_secs(3600),
            )
        });
        std::thread::sleep(Duration::from_millis(10));
        server.shutdown();
        let res = waiter.join().unwrap();
        assert!(res.is_err(), "waiter must error, not hang: {res:?}");
    }

    #[test]
    fn connect_to_missing_socket_errors() {
        let path = temp_sock("missing");
        let _ = std::fs::remove_file(&path);
        assert!(SchedulerClient::connect(&path).is_err());
    }

    #[test]
    fn tcp_endpoint_runs_the_full_endpoint_in_both_codecs() {
        let server = SocketServer::bind_endpoint(
            &EndpointAddr::parse("tcp:127.0.0.1:0").unwrap(),
            Arc::new(MiniScheduler),
        )
        .unwrap();
        let endpoint = server.endpoint().clone();
        for codec in [WireCodec::Json, WireCodec::Binary] {
            let client =
                SchedulerClient::connect_endpoint_with_codec(&endpoint, codec, None).unwrap();
            client.ping().unwrap();
            client.register(ContainerId(1), Bytes::mib(512)).unwrap();
            assert_eq!(
                client
                    .request_alloc(ContainerId(1), 1, Bytes::mib(10), ApiKind::Malloc)
                    .unwrap(),
                AllocDecision::Granted
            );
            // A deferred (suspended) reply crosses TCP too.
            assert_eq!(
                client
                    .request_alloc(ContainerId(1), 1, Bytes::mib(500), ApiKind::Malloc)
                    .unwrap(),
                AllocDecision::Granted
            );
            assert_eq!(
                client.mem_info(ContainerId(1), 1).unwrap(),
                (Bytes::mib(10), Bytes::mib(512))
            );
            client.container_close(ContainerId(1)).unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn tcp_server_shutdown_unblocks_suspended_tcp_clients() {
        let server = SocketServer::bind_endpoint(
            &EndpointAddr::parse("tcp:127.0.0.1:0").unwrap(),
            Arc::new(MiniScheduler),
        )
        .unwrap();
        let client = Arc::new(SchedulerClient::connect_endpoint(server.endpoint()).unwrap());
        let c = Arc::clone(&client);
        let waiter = std::thread::spawn(move || {
            c.request_alloc(ContainerId(1), 1, Bytes::mib(500), ApiKind::Malloc)
        });
        std::thread::sleep(Duration::from_millis(10));
        server.shutdown();
        let res = waiter.join().unwrap();
        assert!(res.is_err(), "waiter must error, not hang: {res:?}");
    }
}
