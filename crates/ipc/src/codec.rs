//! Newline-delimited JSON framing.
//!
//! One serialized [`crate::message::Envelope`] per `\n`-terminated line.
//! JSON never contains a raw newline (the [`crate::json`] writer escapes
//! them), so line framing is unambiguous. A line-length cap protects the
//! scheduler from a misbehaving container writing garbage into the shared
//! socket.

use crate::json::{self, FromJson, ToJson};
use std::io::{self, BufRead, Write};

/// Maximum accepted line length. Real messages are < 200 bytes; 64 KiB
/// leaves generous headroom while bounding a hostile writer.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Serialize `value` as one JSON line and flush it.
pub fn write_json<T: ToJson, W: Write>(w: &mut W, value: &T) -> io::Result<()> {
    let mut line = value.to_json_string().into_bytes();
    line.push(b'\n');
    w.write_all(&line)?;
    w.flush()
}

/// Read one JSON line. Returns `Ok(None)` on clean EOF, an
/// `InvalidData` error for malformed JSON or an over-long line.
pub fn read_json<T: FromJson, R: BufRead>(r: &mut R) -> io::Result<Option<T>> {
    let mut line = Vec::new();
    loop {
        let buf = r.fill_buf()?;
        if buf.is_empty() {
            // EOF: clean if nothing was read, mid-message otherwise.
            if line.is_empty() {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-message",
            ));
        }
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            line.extend_from_slice(&buf[..pos]);
            r.consume(pos + 1);
            break;
        }
        line.extend_from_slice(buf);
        let consumed = buf.len();
        r.consume(consumed);
        if line.len() > MAX_LINE_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "protocol line exceeds MAX_LINE_BYTES",
            ));
        }
    }
    if line.len() > MAX_LINE_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "protocol line exceeds MAX_LINE_BYTES",
        ));
    }
    let text = std::str::from_utf8(&line)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let value =
        json::parse(text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    T::from_json(&value)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Envelope, Request};
    use std::io::BufReader;

    #[test]
    fn round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        let env = Envelope {
            id: 9,
            body: Request::Ping,
        };
        write_json(&mut buf, &env).unwrap();
        write_json(&mut buf, &env).unwrap();
        let mut r = BufReader::new(buf.as_slice());
        let a: Envelope<Request> = read_json(&mut r).unwrap().unwrap();
        let b: Envelope<Request> = read_json(&mut r).unwrap().unwrap();
        assert_eq!(a, env);
        assert_eq!(b, env);
        let eof: Option<Envelope<Request>> = read_json(&mut r).unwrap();
        assert!(eof.is_none());
    }

    #[test]
    fn malformed_json_is_invalid_data() {
        let mut r = BufReader::new(&b"{nonsense\n"[..]);
        let err = read_json::<Envelope<Request>, _>(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_message_is_unexpected_eof() {
        let mut r = BufReader::new(&br#"{"id":1,"body":{"type":"ping""#[..]);
        let err = read_json::<Envelope<Request>, _>(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_line_is_rejected() {
        let mut big = vec![b'x'; MAX_LINE_BYTES + 10];
        big.push(b'\n');
        let mut r = BufReader::new(big.as_slice());
        let err = read_json::<Envelope<Request>, _>(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn interleaved_reads_resume_at_line_boundaries() {
        let mut buf = Vec::new();
        for id in 0..10u64 {
            write_json(
                &mut buf,
                &Envelope {
                    id,
                    body: Request::Ping,
                },
            )
            .unwrap();
        }
        let mut r = BufReader::new(buf.as_slice());
        for id in 0..10u64 {
            let env: Envelope<Request> = read_json(&mut r).unwrap().unwrap();
            assert_eq!(env.id, id);
        }
    }
}
