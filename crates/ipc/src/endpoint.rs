//! [`SchedulerEndpoint`] — the synchronous interface the wrapper module
//! programs against.
//!
//! Two implementations exist:
//!
//! * [`crate::client::SchedulerClient`] — the live path over a UNIX
//!   socket (this crate);
//! * `convgpu_core::service::InProcEndpoint` — a direct in-process handle
//!   to the scheduler state machine, used by tests and the transport
//!   ablation bench.
//!
//! In both, [`SchedulerEndpoint::request_alloc`] **blocks while the
//! scheduler suspends the container** — the defining mechanism of the
//! paper's design ("the response from the scheduler will be suspended
//! until the required size of memory is available").

use crate::message::{AllocDecision, ApiKind, TopologyDevice};
use convgpu_sim_core::ids::ContainerId;
use convgpu_sim_core::units::Bytes;
use std::fmt;

/// Errors surfaced by an endpoint (transport failures, protocol
/// violations, scheduler-side errors).
#[derive(Debug)]
pub enum IpcError {
    /// Underlying socket/channel failure.
    Io(std::io::Error),
    /// The peer answered with a protocol-level error.
    Scheduler(String),
    /// The peer sent a response of the wrong variant.
    UnexpectedResponse(String),
    /// The connection closed while a request was outstanding.
    Disconnected,
    /// The request's deadline elapsed before a response arrived (the
    /// response, if it ever comes, is discarded).
    TimedOut,
}

impl fmt::Display for IpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpcError::Io(e) => write!(f, "ipc i/o error: {e}"),
            IpcError::Scheduler(m) => write!(f, "scheduler error: {m}"),
            IpcError::UnexpectedResponse(m) => write!(f, "unexpected response: {m}"),
            IpcError::Disconnected => write!(f, "scheduler connection closed"),
            IpcError::TimedOut => write!(f, "request deadline exceeded"),
        }
    }
}

impl std::error::Error for IpcError {}

impl From<std::io::Error> for IpcError {
    fn from(e: std::io::Error) -> Self {
        IpcError::Io(e)
    }
}

/// Result alias for endpoint operations.
pub type IpcResult<T> = Result<T, IpcError>;

/// The scheduler as seen by its clients (wrapper module, nvidia-docker,
/// nvidia-docker-plugin).
pub trait SchedulerEndpoint: Send + Sync {
    /// Declare a container and its GPU memory limit (nvidia-docker, before
    /// the container is created).
    fn register(&self, container: ContainerId, limit: Bytes) -> IpcResult<()>;

    /// Obtain the per-container volume directory path (nvidia-docker).
    fn request_dir(&self, container: ContainerId) -> IpcResult<String>;

    /// Ask permission to allocate `size` bytes. **Blocks while the
    /// container is suspended**; returns the eventual verdict.
    fn request_alloc(
        &self,
        container: ContainerId,
        pid: u64,
        size: Bytes,
        api: ApiKind,
    ) -> IpcResult<AllocDecision>;

    /// Report a successful device allocation at `addr`.
    fn alloc_done(&self, container: ContainerId, pid: u64, addr: u64, size: Bytes)
        -> IpcResult<()>;

    /// Report that a granted allocation failed on the device (the
    /// scheduler must release the reservation it made for it).
    fn alloc_failed(&self, container: ContainerId, pid: u64, size: Bytes) -> IpcResult<()>;

    /// Report a `cudaFree`; returns the size the scheduler had recorded.
    fn free(&self, container: ContainerId, pid: u64, addr: u64) -> IpcResult<Bytes>;

    /// Serve `cudaMemGetInfo` from scheduler book-keeping:
    /// `(free-for-this-container, container-limit)`.
    fn mem_info(&self, container: ContainerId, pid: u64) -> IpcResult<(Bytes, Bytes)>;

    /// `__cudaUnregisterFatBinary`: the process exited.
    fn process_exit(&self, container: ContainerId, pid: u64) -> IpcResult<()>;

    /// The container stopped (plugin saw the dummy volume unmount).
    fn container_close(&self, container: ContainerId) -> IpcResult<()>;

    /// Liveness probe.
    fn ping(&self) -> IpcResult<()>;

    /// Query the daemon's device/node topology: `(kind, devices)`.
    /// Default: unsupported — endpoints predating the topology protocol
    /// keep compiling and report the capability gap explicitly.
    fn query_topology(&self) -> IpcResult<(String, Vec<TopologyDevice>)> {
        Err(IpcError::Scheduler(
            "endpoint does not support query_topology".into(),
        ))
    }

    /// Query a container's home placement: `(node, device)`; the node is
    /// empty for single-host topologies. Same default as
    /// [`query_topology`](Self::query_topology).
    fn query_home(&self, container: ContainerId) -> IpcResult<(String, u64)> {
        let _ = container;
        Err(IpcError::Scheduler(
            "endpoint does not support query_home".into(),
        ))
    }
}
