//! Minimal JSON value model, parser and writer (pure `std`).
//!
//! The sealed build environment has no `serde_json`, so the wire protocol
//! is (de)serialized by hand. The subset implemented here is full JSON on
//! the *read* side (objects, arrays, strings with escapes, numbers, bools,
//! null) and exactly what the protocol emits on the *write* side: compact
//! encoding, no whitespace, object keys in insertion order — byte-for-byte
//! the format `serde_json::to_string` produced for these types, which the
//! wire-format tests in [`crate::message`] pin down.

use std::fmt;

/// A parsed JSON value. Object keys keep insertion order so encoding is
/// deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer (every number the protocol uses).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// Any other number (fraction or exponent).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Compact encoding with no whitespace.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::I64(n) => out.push_str(&n.to_string()),
            Json::F64(x) => {
                if x.is_finite() {
                    out.push_str(&x.to_string());
                } else {
                    // JSON has no Inf/NaN; encode as null like serde_json.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error produced by [`parse`] or by typed decoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError(pub String);

impl JsonError {
    /// Build an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Self {
        JsonError(m.to_string())
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

/// Nesting depth cap: protocol messages are depth 3; 64 bounds a hostile
/// writer without recursing the parser off the stack.
const MAX_DEPTH: usize = 64;

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::msg(format!(
            "trailing bytes at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::msg(format!(
                "expected {:?} at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::msg("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(JsonError::msg(format!(
                "unexpected byte {:?} at offset {}",
                other as char, self.pos
            ))),
            None => Err(JsonError::msg("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::msg(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => {
                    return Err(JsonError::msg(format!(
                        "expected ',' or '}}' at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => {
                    return Err(JsonError::msg(format!(
                        "expected ',' or ']' at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(JsonError::msg("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(JsonError::msg("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(JsonError::msg("bad low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            let c = char::from_u32(code)
                                .ok_or_else(|| JsonError::msg("bad unicode escape"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(JsonError::msg(format!(
                                "invalid escape \\{}",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Multi-byte UTF-8: step back and take the full char.
                    self.pos -= 1;
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| JsonError::msg("invalid utf-8 in string"))?;
                    let Some(c) = s.chars().next() else {
                        return Err(JsonError::msg("unterminated string"));
                    };
                    if (c as u32) < 0x20 {
                        return Err(JsonError::msg("raw control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(JsonError::msg("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| JsonError::msg("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| JsonError::msg("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::msg("bad number"))?;
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| JsonError::msg(format!("bad number {text:?}")))
    }
}

/// Types that encode themselves as a [`Json`] value.
pub trait ToJson {
    /// Build the JSON representation.
    fn to_json(&self) -> Json;

    /// Compact string encoding (convenience).
    fn to_json_string(&self) -> String {
        self.to_json().encode()
    }
}

/// Types that decode themselves from a [`Json`] value.
pub trait FromJson: Sized {
    /// Decode, reporting a message naming the offending field on failure.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::U64(*self)
    }
}

impl FromJson for u64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_u64()
            .ok_or_else(|| JsonError::msg("expected unsigned integer"))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| JsonError::msg("expected string"))
    }
}

impl ToJson for convgpu_sim_core::Bytes {
    fn to_json(&self) -> Json {
        Json::U64(self.as_u64())
    }
}

impl FromJson for convgpu_sim_core::Bytes {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(convgpu_sim_core::Bytes::new(u64::from_json(v)?))
    }
}

impl ToJson for convgpu_sim_core::ContainerId {
    fn to_json(&self) -> Json {
        Json::U64(self.as_u64())
    }
}

impl FromJson for convgpu_sim_core::ContainerId {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(convgpu_sim_core::ContainerId(u64::from_json(v)?))
    }
}

/// Fetch and decode a required object field.
pub fn field<T: FromJson>(obj: &Json, key: &str) -> Result<T, JsonError> {
    let v = obj
        .get(key)
        .ok_or_else(|| JsonError::msg(format!("missing field {key:?}")))?;
    T::from_json(v).map_err(|e| JsonError::msg(format!("field {key:?}: {}", e.0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::U64(42));
        assert_eq!(parse("-7").unwrap(), Json::I64(-7));
        assert_eq!(parse("1.5").unwrap(), Json::F64(1.5));
        assert_eq!(parse("1e3").unwrap(), Json::F64(1000.0));
        assert_eq!(parse(r#""hi""#).unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn u64_precision_is_exact() {
        let big = u64::MAX;
        assert_eq!(parse(&big.to_string()).unwrap(), Json::U64(big));
        assert_eq!(Json::U64(big).encode(), big.to_string());
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,{"b":"c"},null], "d" : true}"#).unwrap();
        assert_eq!(v.get("d"), Some(&Json::Bool(true)));
        match v.get("a") {
            Some(Json::Arr(items)) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[1].get("b").and_then(Json::as_str), Some("c"));
            }
            other => panic!("bad array: {other:?}"),
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        for s in [
            "plain",
            "q\"uote",
            "back\\slash",
            "new\nline",
            "tab\t",
            "Δ GPU 例",
        ] {
            let v = Json::Str(s.to_string());
            let encoded = v.encode();
            assert_eq!(parse(&encoded).unwrap(), v, "encoding {encoded}");
        }
    }

    #[test]
    fn unicode_escape_and_surrogates() {
        assert_eq!(parse(r#""A""#).unwrap(), Json::Str("A".into()));
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("\u{1F600}".into()));
        assert!(parse(r#""\ud83d""#).is_err(), "lone high surrogate");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"a\"}",
            "[1,]",
            "{\"a\":1,}",
            "nul",
            "01x",
            "\"unterminated",
            "1 2",
            "{\"a\":1} extra",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn object_encoding_preserves_insertion_order() {
        let v = Json::Obj(vec![("z".into(), Json::U64(1)), ("a".into(), Json::U64(2))]);
        assert_eq!(v.encode(), r#"{"z":1,"a":2}"#);
    }
}
