//! The ConVGPU wire protocol.
//!
//! The paper (§III-A): *"These components … are connected and communicating
//! using UNIX Domain Socket with JSON format."* This crate is that layer,
//! and it is **not** simulated — the live stack really speaks
//! newline-delimited JSON over `std::os::unix::net` sockets, so the Fig. 4
//! response-time experiment measures genuine IPC cost.
//!
//! * [`message`] — the request/response schema: container registration,
//!   allocation requests/decisions, free notifications, `cudaMemGetInfo`
//!   service, process-exit and container-close signals.
//! * [`json`] — hand-rolled JSON value model, parser and writer (the
//!   sealed build environment has no serde), plus the [`json::ToJson`] /
//!   [`json::FromJson`] traits the schema implements.
//! * [`codec`] — newline-delimited JSON framing with a line-length guard.
//! * [`binary`] — length-prefixed compact binary framing, negotiated per
//!   connection by the first byte of each frame (JSON lines start with
//!   `{`; binary frames with a magic byte). JSON stays the default — the
//!   binary codec is the hot-path option for allocation storms.
//! * [`endpoint`] — [`endpoint::SchedulerEndpoint`], the synchronous
//!   interface the wrapper module calls. A *suspended* allocation (the
//!   scheduler withholding its reply, §III-D) surfaces here as a blocking
//!   call, exactly as `read(2)` on the socket blocks in the original.
//! * [`client`] — [`client::SchedulerClient`]: the wrapper side of the
//!   socket, with request correlation so several processes in one
//!   container can share the socket.
//! * [`server`] — [`server::SocketServer`]: accept loop + per-connection
//!   reader threads + deferred [`server::Reply`] handles, which is what
//!   lets the scheduler park a reply and release the thread.
//! * [`transport`] — the pluggable transport layer:
//!   [`transport::EndpointAddr`] (`unix:/path`, `tcp:host:port`),
//!   [`transport::Conn`] and [`transport::TransportListener`]. UNIX
//!   sockets stay the default (byte-identical to the paper's stack); TCP
//!   adds real multi-host clusters behind the same wire protocol, with a
//!   version-checked hello frame and half-open-peer timeouts.

#![forbid(unsafe_code)]

pub mod binary;
pub mod client;
pub mod codec;
pub mod endpoint;
pub mod json;
pub mod message;
pub mod server;
pub mod transport;

pub use binary::{read_auto, read_binary, write_binary, WireCodec, MAX_FRAME_BYTES};
pub use client::{ClientObs, SchedulerClient};
pub use codec::{read_json, write_json, MAX_LINE_BYTES};
pub use endpoint::{IpcError, IpcResult, SchedulerEndpoint};
pub use message::{AllocDecision, ApiKind, ClusterNodeStatus, Envelope, Request, Response};
pub use server::{Reply, RequestHandler, ServerObs, SocketServer};
pub use transport::{Conn, EndpointAddr, TransportListener};
