//! Protocol message schema.
//!
//! One JSON object per line; every message is an [`Envelope`] carrying a
//! correlation `id` and a body. Requests flow wrapper/nvidia-docker →
//! scheduler; responses flow back with the same `id`. Notifications
//! (`AllocDone`, `ProcessExit`, …) still get an `Ok` response so senders
//! can detect a dead scheduler.
//!
//! Encoding is the hand-rolled codec in [`crate::json`]: internally tagged
//! (`"type"` field), snake_case variant and field names, `Bytes` and
//! `ContainerId` as bare numbers — the same wire format the original
//! serde-derived schema produced, pinned by the tests below.

use crate::json::{field, FromJson, Json, JsonError, ToJson};
use convgpu_sim_core::ids::ContainerId;
use convgpu_sim_core::units::Bytes;

/// Which allocation API triggered a request — used for tracing and for the
/// Fig. 4 per-API breakdown. The scheduler treats all four identically
/// (it only sees adjusted sizes; the wrapper does the pitch/granule math).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ApiKind {
    /// `cudaMalloc`
    Malloc,
    /// `cudaMallocManaged`
    MallocManaged,
    /// `cudaMallocPitch`
    MallocPitch,
    /// `cudaMalloc3D`
    Malloc3D,
}

impl ApiKind {
    /// CUDA function name, for traces.
    pub fn api_name(self) -> &'static str {
        match self {
            ApiKind::Malloc => "cudaMalloc",
            ApiKind::MallocManaged => "cudaMallocManaged",
            ApiKind::MallocPitch => "cudaMallocPitch",
            ApiKind::Malloc3D => "cudaMalloc3D",
        }
    }

    /// snake_case wire name.
    fn wire_name(self) -> &'static str {
        match self {
            ApiKind::Malloc => "malloc",
            ApiKind::MallocManaged => "malloc_managed",
            ApiKind::MallocPitch => "malloc_pitch",
            ApiKind::Malloc3D => "malloc3_d",
        }
    }
}

impl ToJson for ApiKind {
    fn to_json(&self) -> Json {
        Json::Str(self.wire_name().to_string())
    }
}

impl FromJson for ApiKind {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str() {
            Some("malloc") => Ok(ApiKind::Malloc),
            Some("malloc_managed") => Ok(ApiKind::MallocManaged),
            Some("malloc_pitch") => Ok(ApiKind::MallocPitch),
            Some("malloc3_d") => Ok(ApiKind::Malloc3D),
            other => Err(JsonError::msg(format!("unknown api kind {other:?}"))),
        }
    }
}

/// Scheduler verdict on an allocation request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocDecision {
    /// Proceed: call the real CUDA allocation API.
    Granted,
    /// The request exceeds the container's declared limit — fail the call
    /// with `cudaErrorMemoryAllocation` without touching the device.
    Rejected,
}

impl ToJson for AllocDecision {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                AllocDecision::Granted => "granted",
                AllocDecision::Rejected => "rejected",
            }
            .to_string(),
        )
    }
}

impl FromJson for AllocDecision {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str() {
            Some("granted") => Ok(AllocDecision::Granted),
            Some("rejected") => Ok(AllocDecision::Rejected),
            other => Err(JsonError::msg(format!("unknown decision {other:?}"))),
        }
    }
}

/// Requests sent *to* the GPU memory scheduler.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// nvidia-docker: declare a container and its GPU memory limit before
    /// creation (`--nvidia-memory`, label, or the 1 GiB default).
    Register {
        /// The container being created.
        container: ContainerId,
        /// Declared maximum GPU memory.
        limit: Bytes,
    },
    /// nvidia-docker: ask for the per-container directory that will be
    /// volume-mounted into the container (wrapper module + socket).
    RequestDir {
        /// The registered container.
        container: ContainerId,
    },
    /// Wrapper: permission to allocate `size` (already adjusted for pitch
    /// or managed granularity). The reply may be withheld — suspension.
    AllocRequest {
        /// Requesting container.
        container: ContainerId,
        /// Requesting process inside the container.
        pid: u64,
        /// Adjusted allocation size.
        size: Bytes,
        /// Originating CUDA API.
        api: ApiKind,
    },
    /// Wrapper: the real CUDA allocation succeeded at `addr`.
    AllocDone {
        /// Allocating container.
        container: ContainerId,
        /// Allocating process.
        pid: u64,
        /// Device address returned by CUDA.
        addr: u64,
        /// Adjusted size actually charged.
        size: Bytes,
    },
    /// Wrapper: the real CUDA allocation *failed* after a grant (device
    /// fragmentation); the scheduler must release the reservation.
    AllocFailed {
        /// Container whose allocation failed.
        container: ContainerId,
        /// Process whose allocation failed.
        pid: u64,
        /// Size that had been granted.
        size: Bytes,
    },
    /// Wrapper: `cudaFree(addr)` completed.
    Free {
        /// Freeing container.
        container: ContainerId,
        /// Freeing process.
        pid: u64,
        /// Freed device address.
        addr: u64,
    },
    /// Wrapper: serve `cudaMemGetInfo` from the scheduler's books.
    MemInfo {
        /// Asking container.
        container: ContainerId,
        /// Asking process.
        pid: u64,
    },
    /// Wrapper: `__cudaUnregisterFatBinary` fired — the process exited;
    /// drop all accounting for this pid.
    ProcessExit {
        /// Container whose process exited.
        container: ContainerId,
        /// The exiting process.
        pid: u64,
    },
    /// nvidia-docker-plugin: the container's dummy volume unmounted — the
    /// container stopped; drop all accounting for it.
    ContainerClose {
        /// The stopped container.
        container: ContainerId,
    },
    /// Liveness probe.
    Ping,
    /// Ask the daemon for its current metrics as Prometheus exposition
    /// text (observability; any client may ask).
    QueryMetrics,
    /// Ask the daemon for its device/node topology: one entry per device
    /// with capacity and occupancy (multi-GPU and cluster topologies
    /// report several; single-GPU reports one).
    QueryTopology,
    /// Ask where a container was placed (its home node/device) — the
    /// wrapper uses this to answer `cudaGetDeviceProperties` with the
    /// home device's capacity.
    QueryHome {
        /// The registered container.
        container: ContainerId,
    },
    /// Ask a cluster router (or a cluster-topology daemon) for its
    /// per-node status: health, placements, and fault-tolerance
    /// counters. Non-cluster daemons answer `error`.
    QueryCluster,
    /// Migration hand-off. To a node daemon: adopt `container` with its
    /// declared `limit` and pre-committed `used` budget (`node` ignored).
    /// To a cluster router: re-home `container` off its current node, or —
    /// when `container` is the 0 sentinel and `node` names a router node —
    /// drain every container homed on that node (`cluster rebalance`).
    Migrate {
        /// The container to hand off (0 = every container on `node`).
        container: ContainerId,
        /// Router only: node to drain when `container` is 0.
        node: String,
        /// Declared limit carried over (daemon adopt path).
        limit: Bytes,
        /// Committed (used) budget carried over (daemon adopt path).
        used: Bytes,
    },
    /// Ask a cluster router for the migrations it has performed.
    /// Non-router daemons answer `error`.
    QueryMigrations,
}

impl Request {
    /// The wire tag — also the `type` label every per-message-type
    /// metric (server handle time, client round-trip time) is keyed by.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Register { .. } => "register",
            Request::RequestDir { .. } => "request_dir",
            Request::AllocRequest { .. } => "alloc_request",
            Request::AllocDone { .. } => "alloc_done",
            Request::AllocFailed { .. } => "alloc_failed",
            Request::Free { .. } => "free",
            Request::MemInfo { .. } => "mem_info",
            Request::ProcessExit { .. } => "process_exit",
            Request::ContainerClose { .. } => "container_close",
            Request::Ping => "ping",
            Request::QueryMetrics => "query_metrics",
            Request::QueryTopology => "query_topology",
            Request::QueryHome { .. } => "query_home",
            Request::QueryCluster => "query_cluster",
            Request::Migrate { .. } => "migrate",
            Request::QueryMigrations => "query_migrations",
        }
    }
}

/// Build an internally tagged object: `{"type":<tag>, <fields>...}`.
fn tagged(tag: &str, fields: Vec<(String, Json)>) -> Json {
    let mut obj = Vec::with_capacity(fields.len() + 1);
    obj.push(("type".to_string(), Json::Str(tag.to_string())));
    obj.extend(fields);
    Json::Obj(obj)
}

impl ToJson for Request {
    fn to_json(&self) -> Json {
        match self {
            Request::Register { container, limit } => tagged(
                "register",
                vec![
                    ("container".into(), container.to_json()),
                    ("limit".into(), limit.to_json()),
                ],
            ),
            Request::RequestDir { container } => tagged(
                "request_dir",
                vec![("container".into(), container.to_json())],
            ),
            Request::AllocRequest {
                container,
                pid,
                size,
                api,
            } => tagged(
                "alloc_request",
                vec![
                    ("container".into(), container.to_json()),
                    ("pid".into(), pid.to_json()),
                    ("size".into(), size.to_json()),
                    ("api".into(), api.to_json()),
                ],
            ),
            Request::AllocDone {
                container,
                pid,
                addr,
                size,
            } => tagged(
                "alloc_done",
                vec![
                    ("container".into(), container.to_json()),
                    ("pid".into(), pid.to_json()),
                    ("addr".into(), addr.to_json()),
                    ("size".into(), size.to_json()),
                ],
            ),
            Request::AllocFailed {
                container,
                pid,
                size,
            } => tagged(
                "alloc_failed",
                vec![
                    ("container".into(), container.to_json()),
                    ("pid".into(), pid.to_json()),
                    ("size".into(), size.to_json()),
                ],
            ),
            Request::Free {
                container,
                pid,
                addr,
            } => tagged(
                "free",
                vec![
                    ("container".into(), container.to_json()),
                    ("pid".into(), pid.to_json()),
                    ("addr".into(), addr.to_json()),
                ],
            ),
            Request::MemInfo { container, pid } => tagged(
                "mem_info",
                vec![
                    ("container".into(), container.to_json()),
                    ("pid".into(), pid.to_json()),
                ],
            ),
            Request::ProcessExit { container, pid } => tagged(
                "process_exit",
                vec![
                    ("container".into(), container.to_json()),
                    ("pid".into(), pid.to_json()),
                ],
            ),
            Request::ContainerClose { container } => tagged(
                "container_close",
                vec![("container".into(), container.to_json())],
            ),
            Request::Ping => tagged("ping", vec![]),
            Request::QueryMetrics => tagged("query_metrics", vec![]),
            Request::QueryTopology => tagged("query_topology", vec![]),
            Request::QueryHome { container } => tagged(
                "query_home",
                vec![("container".into(), container.to_json())],
            ),
            Request::QueryCluster => tagged("query_cluster", vec![]),
            Request::Migrate {
                container,
                node,
                limit,
                used,
            } => tagged(
                "migrate",
                vec![
                    ("container".into(), container.to_json()),
                    ("node".into(), node.to_json()),
                    ("limit".into(), limit.to_json()),
                    ("used".into(), used.to_json()),
                ],
            ),
            Request::QueryMigrations => tagged("query_migrations", vec![]),
        }
    }
}

impl FromJson for Request {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let tag = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| JsonError::msg("missing \"type\" tag"))?;
        match tag {
            "register" => Ok(Request::Register {
                container: field(v, "container")?,
                limit: field(v, "limit")?,
            }),
            "request_dir" => Ok(Request::RequestDir {
                container: field(v, "container")?,
            }),
            "alloc_request" => Ok(Request::AllocRequest {
                container: field(v, "container")?,
                pid: field(v, "pid")?,
                size: field(v, "size")?,
                api: field(v, "api")?,
            }),
            "alloc_done" => Ok(Request::AllocDone {
                container: field(v, "container")?,
                pid: field(v, "pid")?,
                addr: field(v, "addr")?,
                size: field(v, "size")?,
            }),
            "alloc_failed" => Ok(Request::AllocFailed {
                container: field(v, "container")?,
                pid: field(v, "pid")?,
                size: field(v, "size")?,
            }),
            "free" => Ok(Request::Free {
                container: field(v, "container")?,
                pid: field(v, "pid")?,
                addr: field(v, "addr")?,
            }),
            "mem_info" => Ok(Request::MemInfo {
                container: field(v, "container")?,
                pid: field(v, "pid")?,
            }),
            "process_exit" => Ok(Request::ProcessExit {
                container: field(v, "container")?,
                pid: field(v, "pid")?,
            }),
            "container_close" => Ok(Request::ContainerClose {
                container: field(v, "container")?,
            }),
            "ping" => Ok(Request::Ping),
            "query_metrics" => Ok(Request::QueryMetrics),
            "query_topology" => Ok(Request::QueryTopology),
            "query_home" => Ok(Request::QueryHome {
                container: field(v, "container")?,
            }),
            "query_cluster" => Ok(Request::QueryCluster),
            "migrate" => Ok(Request::Migrate {
                container: field(v, "container")?,
                node: field(v, "node")?,
                limit: field(v, "limit")?,
                used: field(v, "used")?,
            }),
            "query_migrations" => Ok(Request::QueryMigrations),
            other => Err(JsonError::msg(format!("unknown request type {other:?}"))),
        }
    }
}

/// One device in a [`Response::Topology`] answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TopologyDevice {
    /// Cluster node name; empty for single-host topologies.
    pub node: String,
    /// Device index within its node.
    pub device: u64,
    /// Total device capacity.
    pub capacity: Bytes,
    /// Memory not currently reserved on the device.
    pub unassigned: Bytes,
    /// Containers registered and not yet closed on the device.
    pub containers: u64,
    /// Redistribution policy running on the device.
    pub policy: String,
}

impl ToJson for TopologyDevice {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("node".into(), self.node.to_json()),
            ("device".into(), self.device.to_json()),
            ("capacity".into(), self.capacity.to_json()),
            ("unassigned".into(), self.unassigned.to_json()),
            ("containers".into(), self.containers.to_json()),
            ("policy".into(), self.policy.to_json()),
        ])
    }
}

impl FromJson for TopologyDevice {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(TopologyDevice {
            node: field(v, "node")?,
            device: field(v, "device")?,
            capacity: field(v, "capacity")?,
            unassigned: field(v, "unassigned")?,
            containers: field(v, "containers")?,
            policy: field(v, "policy")?,
        })
    }
}

/// One node in a [`Response::Cluster`] answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterNodeStatus {
    /// Node name, as configured on the router.
    pub node: String,
    /// Router-observed health: `"up"`, `"degraded"`, or `"down"`.
    pub health: String,
    /// Containers the router has placed on (and not yet closed from)
    /// the node.
    pub containers: u64,
    /// Requests to this node the router retried after a transport
    /// failure.
    pub retries: u64,
    /// Requests to this node that exceeded their deadline.
    pub timeouts: u64,
    /// Containers failed over to rejection because the node went down.
    pub failovers: u64,
}

impl ToJson for ClusterNodeStatus {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("node".into(), self.node.to_json()),
            ("health".into(), self.health.to_json()),
            ("containers".into(), self.containers.to_json()),
            ("retries".into(), self.retries.to_json()),
            ("timeouts".into(), self.timeouts.to_json()),
            ("failovers".into(), self.failovers.to_json()),
        ])
    }
}

impl FromJson for ClusterNodeStatus {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(ClusterNodeStatus {
            node: field(v, "node")?,
            health: field(v, "health")?,
            containers: field(v, "containers")?,
            retries: field(v, "retries")?,
            timeouts: field(v, "timeouts")?,
            failovers: field(v, "failovers")?,
        })
    }
}

/// One completed (or refused) container move in a
/// [`Response::Migrations`] answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MigrationRecord {
    /// The migrated container.
    pub container: ContainerId,
    /// Node it was drained off.
    pub from: String,
    /// Node that adopted it; empty when no node could (`status` says
    /// `"rejected"`).
    pub to: String,
    /// Declared limit carried over.
    pub limit: Bytes,
    /// Committed (used) budget carried over.
    pub used: Bytes,
    /// `"completed"` or `"rejected"`.
    pub status: String,
}

impl ToJson for MigrationRecord {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("container".into(), self.container.to_json()),
            ("from".into(), self.from.to_json()),
            ("to".into(), self.to.to_json()),
            ("limit".into(), self.limit.to_json()),
            ("used".into(), self.used.to_json()),
            ("status".into(), self.status.to_json()),
        ])
    }
}

impl FromJson for MigrationRecord {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(MigrationRecord {
            container: field(v, "container")?,
            from: field(v, "from")?,
            to: field(v, "to")?,
            limit: field(v, "limit")?,
            used: field(v, "used")?,
            status: field(v, "status")?,
        })
    }
}

/// Responses sent *from* the scheduler.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Generic acknowledgement.
    Ok,
    /// Reply to [`Request::RequestDir`].
    Dir {
        /// Host path of the per-container volume directory.
        path: String,
    },
    /// Reply to [`Request::AllocRequest`] (possibly after suspension).
    Alloc {
        /// The verdict.
        decision: AllocDecision,
    },
    /// Reply to [`Request::Free`].
    Freed {
        /// Bytes the scheduler had on its books for the address (zero for
        /// an unknown address).
        size: Bytes,
    },
    /// Reply to [`Request::MemInfo`] — answered from scheduler
    /// book-keeping, *not* the device (which is why the paper measured
    /// this API faster under ConVGPU).
    MemInfo {
        /// Free bytes from the container's viewpoint.
        free: Bytes,
        /// Total bytes from the container's viewpoint (its limit).
        total: Bytes,
    },
    /// Protocol or state error.
    Error {
        /// Human-readable cause.
        message: String,
    },
    /// Reply to [`Request::Ping`].
    Pong,
    /// Reply to [`Request::QueryMetrics`]: the daemon's metrics rendered
    /// as Prometheus exposition text. Carried as opaque text so the wire
    /// schema does not depend on the metrics model.
    Metrics {
        /// Prometheus text exposition (may be multi-line; JSON escaping
        /// keeps the line framing unambiguous).
        text: String,
    },
    /// Reply to [`Request::QueryTopology`].
    Topology {
        /// Topology kind: `"single"`, `"multi-gpu"`, or `"cluster"`.
        kind: String,
        /// Every device, in node order then device index.
        devices: Vec<TopologyDevice>,
    },
    /// Reply to [`Request::QueryHome`].
    Home {
        /// Home node name; empty for single-host topologies.
        node: String,
        /// Home device index within the node.
        device: u64,
    },
    /// Reply to [`Request::QueryCluster`].
    Cluster {
        /// Placement strategy running on the router
        /// (`"spread"` / `"binpack"` / `"random"`).
        strategy: String,
        /// Every node, in router configuration order.
        nodes: Vec<ClusterNodeStatus>,
    },
    /// Reply to [`Request::QueryMigrations`].
    Migrations {
        /// Every migration the router has performed, oldest first.
        records: Vec<MigrationRecord>,
    },
}

impl ToJson for Response {
    fn to_json(&self) -> Json {
        match self {
            Response::Ok => tagged("ok", vec![]),
            Response::Dir { path } => tagged("dir", vec![("path".into(), path.to_json())]),
            Response::Alloc { decision } => {
                tagged("alloc", vec![("decision".into(), decision.to_json())])
            }
            Response::Freed { size } => tagged("freed", vec![("size".into(), size.to_json())]),
            Response::MemInfo { free, total } => tagged(
                "mem_info",
                vec![
                    ("free".into(), free.to_json()),
                    ("total".into(), total.to_json()),
                ],
            ),
            Response::Error { message } => {
                tagged("error", vec![("message".into(), message.to_json())])
            }
            Response::Pong => tagged("pong", vec![]),
            Response::Metrics { text } => tagged("metrics", vec![("text".into(), text.to_json())]),
            Response::Topology { kind, devices } => tagged(
                "topology",
                vec![
                    ("kind".into(), kind.to_json()),
                    (
                        "devices".into(),
                        Json::Arr(devices.iter().map(ToJson::to_json).collect()),
                    ),
                ],
            ),
            Response::Home { node, device } => tagged(
                "home",
                vec![
                    ("node".into(), node.to_json()),
                    ("device".into(), device.to_json()),
                ],
            ),
            Response::Cluster { strategy, nodes } => tagged(
                "cluster",
                vec![
                    ("strategy".into(), strategy.to_json()),
                    (
                        "nodes".into(),
                        Json::Arr(nodes.iter().map(ToJson::to_json).collect()),
                    ),
                ],
            ),
            Response::Migrations { records } => tagged(
                "migrations",
                vec![(
                    "records".into(),
                    Json::Arr(records.iter().map(ToJson::to_json).collect()),
                )],
            ),
        }
    }
}

impl FromJson for Response {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let tag = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| JsonError::msg("missing \"type\" tag"))?;
        match tag {
            "ok" => Ok(Response::Ok),
            "dir" => Ok(Response::Dir {
                path: field(v, "path")?,
            }),
            "alloc" => Ok(Response::Alloc {
                decision: field(v, "decision")?,
            }),
            "freed" => Ok(Response::Freed {
                size: field(v, "size")?,
            }),
            "mem_info" => Ok(Response::MemInfo {
                free: field(v, "free")?,
                total: field(v, "total")?,
            }),
            "error" => Ok(Response::Error {
                message: field(v, "message")?,
            }),
            "pong" => Ok(Response::Pong),
            "metrics" => Ok(Response::Metrics {
                text: field(v, "text")?,
            }),
            "topology" => {
                let devices = match v.get("devices") {
                    Some(Json::Arr(items)) => items
                        .iter()
                        .map(TopologyDevice::from_json)
                        .collect::<Result<Vec<_>, _>>()?,
                    _ => return Err(JsonError::msg("topology: missing \"devices\" array")),
                };
                Ok(Response::Topology {
                    kind: field(v, "kind")?,
                    devices,
                })
            }
            "home" => Ok(Response::Home {
                node: field(v, "node")?,
                device: field(v, "device")?,
            }),
            "cluster" => {
                let nodes = match v.get("nodes") {
                    Some(Json::Arr(items)) => items
                        .iter()
                        .map(ClusterNodeStatus::from_json)
                        .collect::<Result<Vec<_>, _>>()?,
                    _ => return Err(JsonError::msg("cluster: missing \"nodes\" array")),
                };
                Ok(Response::Cluster {
                    strategy: field(v, "strategy")?,
                    nodes,
                })
            }
            "migrations" => {
                let records = match v.get("records") {
                    Some(Json::Arr(items)) => items
                        .iter()
                        .map(MigrationRecord::from_json)
                        .collect::<Result<Vec<_>, _>>()?,
                    _ => return Err(JsonError::msg("migrations: missing \"records\" array")),
                };
                Ok(Response::Migrations { records })
            }
            other => Err(JsonError::msg(format!("unknown response type {other:?}"))),
        }
    }
}

/// Correlation envelope: `id` ties a [`Response`] to its [`Request`].
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope<T> {
    /// Correlation id, unique per connection.
    pub id: u64,
    /// The payload.
    pub body: T,
}

impl<T: ToJson> ToJson for Envelope<T> {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("id".to_string(), Json::U64(self.id)),
            ("body".to_string(), self.body.to_json()),
        ])
    }
}

impl<T: FromJson> FromJson for Envelope<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Envelope {
            id: field(v, "id")?,
            body: field(v, "body")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn round_trip<T: ToJson + FromJson + PartialEq + std::fmt::Debug>(env: &Envelope<T>) {
        let text = env.to_json_string();
        let back = Envelope::<T>::from_json(&json::parse(&text).expect("parse")).expect("decode");
        assert_eq!(&back, env, "wire text: {text}");
    }

    #[test]
    fn request_json_round_trip() {
        let reqs = vec![
            Request::Register {
                container: ContainerId(3),
                limit: Bytes::mib(512),
            },
            Request::RequestDir {
                container: ContainerId(3),
            },
            Request::AllocRequest {
                container: ContainerId(3),
                pid: 42,
                size: Bytes::mib(128),
                api: ApiKind::MallocManaged,
            },
            Request::AllocDone {
                container: ContainerId(3),
                pid: 42,
                addr: 0x7000_0000,
                size: Bytes::mib(128),
            },
            Request::AllocFailed {
                container: ContainerId(3),
                pid: 42,
                size: Bytes::mib(128),
            },
            Request::Free {
                container: ContainerId(3),
                pid: 42,
                addr: 0x7000_0000,
            },
            Request::MemInfo {
                container: ContainerId(3),
                pid: 42,
            },
            Request::ProcessExit {
                container: ContainerId(3),
                pid: 42,
            },
            Request::ContainerClose {
                container: ContainerId(3),
            },
            Request::Ping,
            Request::QueryMetrics,
            Request::QueryTopology,
            Request::QueryHome {
                container: ContainerId(3),
            },
            Request::QueryCluster,
            Request::Migrate {
                container: ContainerId(3),
                node: String::new(),
                limit: Bytes::mib(512),
                used: Bytes::mib(128),
            },
            Request::Migrate {
                container: ContainerId(0),
                node: "n1".into(),
                limit: Bytes::ZERO,
                used: Bytes::ZERO,
            },
            Request::QueryMigrations,
        ];
        for req in reqs {
            round_trip(&Envelope {
                id: 7,
                body: req.clone(),
            });
        }
    }

    #[test]
    fn response_json_round_trip() {
        let resps = vec![
            Response::Ok,
            Response::Dir {
                path: "/var/lib/convgpu/cnt-0003".into(),
            },
            Response::Alloc {
                decision: AllocDecision::Granted,
            },
            Response::Alloc {
                decision: AllocDecision::Rejected,
            },
            Response::Freed {
                size: Bytes::mib(64),
            },
            Response::MemInfo {
                free: Bytes::mib(100),
                total: Bytes::mib(512),
            },
            Response::Error {
                message: "unregistered container".into(),
            },
            Response::Pong,
            Response::Metrics {
                text: "# TYPE convgpu_x counter\nconvgpu_x{type=\"ping\"} 3\n".into(),
            },
            Response::Topology {
                kind: "multi-gpu".into(),
                devices: vec![
                    TopologyDevice {
                        node: String::new(),
                        device: 0,
                        capacity: Bytes::gib(5),
                        unassigned: Bytes::gib(2),
                        containers: 3,
                        policy: "fifo".into(),
                    },
                    TopologyDevice {
                        node: "node-1".into(),
                        device: 1,
                        capacity: Bytes::gib(16),
                        unassigned: Bytes::gib(16),
                        containers: 0,
                        policy: "best_fit".into(),
                    },
                ],
            },
            Response::Home {
                node: String::new(),
                device: 1,
            },
            Response::Cluster {
                strategy: "spread".into(),
                nodes: vec![
                    ClusterNodeStatus {
                        node: "n0".into(),
                        health: "up".into(),
                        containers: 2,
                        retries: 0,
                        timeouts: 0,
                        failovers: 0,
                    },
                    ClusterNodeStatus {
                        node: "n1".into(),
                        health: "down".into(),
                        containers: 0,
                        retries: 3,
                        timeouts: 1,
                        failovers: 2,
                    },
                ],
            },
            Response::Migrations {
                records: vec![
                    MigrationRecord {
                        container: ContainerId(3),
                        from: "n0".into(),
                        to: "n1".into(),
                        limit: Bytes::mib(512),
                        used: Bytes::mib(128),
                        status: "completed".into(),
                    },
                    MigrationRecord {
                        container: ContainerId(4),
                        from: "n0".into(),
                        to: String::new(),
                        limit: Bytes::gib(4),
                        used: Bytes::gib(4),
                        status: "rejected".into(),
                    },
                ],
            },
        ];
        for resp in resps {
            round_trip(&Envelope {
                id: 1,
                body: resp.clone(),
            });
        }
    }

    #[test]
    fn wire_format_is_snake_case_tagged() {
        let json = Request::Ping.to_json_string();
        assert_eq!(json, r#"{"type":"ping"}"#);
        let json = Request::AllocRequest {
            container: ContainerId(1),
            pid: 2,
            size: Bytes::new(3),
            api: ApiKind::Malloc,
        }
        .to_json_string();
        assert!(json.contains(r#""type":"alloc_request""#), "{json}");
        assert!(json.contains(r#""api":"malloc""#), "{json}");
        // Numeric newtypes stay bare numbers on the wire.
        assert!(json.contains(r#""container":1"#), "{json}");
        assert!(json.contains(r#""size":3"#), "{json}");
    }

    #[test]
    fn envelope_wire_format_is_stable() {
        let env = Envelope {
            id: 9,
            body: Request::Register {
                container: ContainerId(3),
                limit: Bytes::mib(512),
            },
        };
        assert_eq!(
            env.to_json_string(),
            r#"{"id":9,"body":{"type":"register","container":3,"limit":536870912}}"#
        );
    }

    #[test]
    fn query_metrics_wire_format_is_stable() {
        assert_eq!(
            Request::QueryMetrics.to_json_string(),
            r#"{"type":"query_metrics"}"#
        );
        let resp = Response::Metrics {
            text: "a 1\n".into(),
        };
        assert_eq!(
            resp.to_json_string(),
            r#"{"type":"metrics","text":"a 1\n"}"#
        );
    }

    #[test]
    fn request_kind_matches_wire_tag() {
        for req in [
            Request::Ping,
            Request::QueryMetrics,
            Request::ContainerClose {
                container: ContainerId(1),
            },
        ] {
            let json = req.to_json_string();
            assert!(
                json.contains(&format!(r#""type":"{}""#, req.kind())),
                "{json} vs {}",
                req.kind()
            );
        }
    }

    #[test]
    fn topology_wire_format_is_stable() {
        assert_eq!(
            Request::QueryTopology.to_json_string(),
            r#"{"type":"query_topology"}"#
        );
        assert_eq!(
            Request::QueryHome {
                container: ContainerId(3)
            }
            .to_json_string(),
            r#"{"type":"query_home","container":3}"#
        );
        let resp = Response::Topology {
            kind: "single".into(),
            devices: vec![TopologyDevice {
                node: String::new(),
                device: 0,
                capacity: Bytes::new(5),
                unassigned: Bytes::new(2),
                containers: 1,
                policy: "fifo".into(),
            }],
        };
        assert_eq!(
            resp.to_json_string(),
            r#"{"type":"topology","kind":"single","devices":[{"node":"","device":0,"capacity":5,"unassigned":2,"containers":1,"policy":"fifo"}]}"#
        );
        assert_eq!(
            Response::Home {
                node: "n1".into(),
                device: 2
            }
            .to_json_string(),
            r#"{"type":"home","node":"n1","device":2}"#
        );
    }

    #[test]
    fn cluster_wire_format_is_stable() {
        assert_eq!(
            Request::QueryCluster.to_json_string(),
            r#"{"type":"query_cluster"}"#
        );
        let resp = Response::Cluster {
            strategy: "binpack".into(),
            nodes: vec![ClusterNodeStatus {
                node: "n0".into(),
                health: "degraded".into(),
                containers: 1,
                retries: 2,
                timeouts: 1,
                failovers: 0,
            }],
        };
        assert_eq!(
            resp.to_json_string(),
            r#"{"type":"cluster","strategy":"binpack","nodes":[{"node":"n0","health":"degraded","containers":1,"retries":2,"timeouts":1,"failovers":0}]}"#
        );
    }

    #[test]
    fn migration_wire_format_is_stable() {
        assert_eq!(
            Request::QueryMigrations.to_json_string(),
            r#"{"type":"query_migrations"}"#
        );
        assert_eq!(
            Request::Migrate {
                container: ContainerId(3),
                node: String::new(),
                limit: Bytes::new(512),
                used: Bytes::new(128),
            }
            .to_json_string(),
            r#"{"type":"migrate","container":3,"node":"","limit":512,"used":128}"#
        );
        let resp = Response::Migrations {
            records: vec![MigrationRecord {
                container: ContainerId(3),
                from: "n0".into(),
                to: "n1".into(),
                limit: Bytes::new(512),
                used: Bytes::new(128),
                status: "completed".into(),
            }],
        };
        assert_eq!(
            resp.to_json_string(),
            r#"{"type":"migrations","records":[{"container":3,"from":"n0","to":"n1","limit":512,"used":128,"status":"completed"}]}"#
        );
    }

    #[test]
    fn api_names_match_cuda() {
        assert_eq!(ApiKind::Malloc.api_name(), "cudaMalloc");
        assert_eq!(ApiKind::MallocPitch.api_name(), "cudaMallocPitch");
        assert_eq!(ApiKind::Malloc3D.api_name(), "cudaMalloc3D");
        assert_eq!(ApiKind::MallocManaged.api_name(), "cudaMallocManaged");
    }
}
