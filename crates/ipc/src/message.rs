//! Protocol message schema.
//!
//! One JSON object per line; every message is an [`Envelope`] carrying a
//! correlation `id` and a body. Requests flow wrapper/nvidia-docker →
//! scheduler; responses flow back with the same `id`. Notifications
//! (`AllocDone`, `ProcessExit`, …) still get an `Ok` response so senders
//! can detect a dead scheduler.

use convgpu_sim_core::ids::ContainerId;
use convgpu_sim_core::units::Bytes;
use serde::{Deserialize, Serialize};

/// Which allocation API triggered a request — used for tracing and for the
/// Fig. 4 per-API breakdown. The scheduler treats all four identically
/// (it only sees adjusted sizes; the wrapper does the pitch/granule math).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ApiKind {
    /// `cudaMalloc`
    Malloc,
    /// `cudaMallocManaged`
    MallocManaged,
    /// `cudaMallocPitch`
    MallocPitch,
    /// `cudaMalloc3D`
    Malloc3D,
}

impl ApiKind {
    /// CUDA function name, for traces.
    pub fn api_name(self) -> &'static str {
        match self {
            ApiKind::Malloc => "cudaMalloc",
            ApiKind::MallocManaged => "cudaMallocManaged",
            ApiKind::MallocPitch => "cudaMallocPitch",
            ApiKind::Malloc3D => "cudaMalloc3D",
        }
    }
}

/// Scheduler verdict on an allocation request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum AllocDecision {
    /// Proceed: call the real CUDA allocation API.
    Granted,
    /// The request exceeds the container's declared limit — fail the call
    /// with `cudaErrorMemoryAllocation` without touching the device.
    Rejected,
}

/// Requests sent *to* the GPU memory scheduler.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum Request {
    /// nvidia-docker: declare a container and its GPU memory limit before
    /// creation (`--nvidia-memory`, label, or the 1 GiB default).
    Register {
        /// The container being created.
        container: ContainerId,
        /// Declared maximum GPU memory.
        limit: Bytes,
    },
    /// nvidia-docker: ask for the per-container directory that will be
    /// volume-mounted into the container (wrapper module + socket).
    RequestDir {
        /// The registered container.
        container: ContainerId,
    },
    /// Wrapper: permission to allocate `size` (already adjusted for pitch
    /// or managed granularity). The reply may be withheld — suspension.
    AllocRequest {
        /// Requesting container.
        container: ContainerId,
        /// Requesting process inside the container.
        pid: u64,
        /// Adjusted allocation size.
        size: Bytes,
        /// Originating CUDA API.
        api: ApiKind,
    },
    /// Wrapper: the real CUDA allocation succeeded at `addr`.
    AllocDone {
        /// Allocating container.
        container: ContainerId,
        /// Allocating process.
        pid: u64,
        /// Device address returned by CUDA.
        addr: u64,
        /// Adjusted size actually charged.
        size: Bytes,
    },
    /// Wrapper: the real CUDA allocation *failed* after a grant (device
    /// fragmentation); the scheduler must release the reservation.
    AllocFailed {
        /// Container whose allocation failed.
        container: ContainerId,
        /// Process whose allocation failed.
        pid: u64,
        /// Size that had been granted.
        size: Bytes,
    },
    /// Wrapper: `cudaFree(addr)` completed.
    Free {
        /// Freeing container.
        container: ContainerId,
        /// Freeing process.
        pid: u64,
        /// Freed device address.
        addr: u64,
    },
    /// Wrapper: serve `cudaMemGetInfo` from the scheduler's books.
    MemInfo {
        /// Asking container.
        container: ContainerId,
        /// Asking process.
        pid: u64,
    },
    /// Wrapper: `__cudaUnregisterFatBinary` fired — the process exited;
    /// drop all accounting for this pid.
    ProcessExit {
        /// Container whose process exited.
        container: ContainerId,
        /// The exiting process.
        pid: u64,
    },
    /// nvidia-docker-plugin: the container's dummy volume unmounted — the
    /// container stopped; drop all accounting for it.
    ContainerClose {
        /// The stopped container.
        container: ContainerId,
    },
    /// Liveness probe.
    Ping,
}

/// Responses sent *from* the scheduler.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum Response {
    /// Generic acknowledgement.
    Ok,
    /// Reply to [`Request::RequestDir`].
    Dir {
        /// Host path of the per-container volume directory.
        path: String,
    },
    /// Reply to [`Request::AllocRequest`] (possibly after suspension).
    Alloc {
        /// The verdict.
        decision: AllocDecision,
    },
    /// Reply to [`Request::Free`].
    Freed {
        /// Bytes the scheduler had on its books for the address (zero for
        /// an unknown address).
        size: Bytes,
    },
    /// Reply to [`Request::MemInfo`] — answered from scheduler
    /// book-keeping, *not* the device (which is why the paper measured
    /// this API faster under ConVGPU).
    MemInfo {
        /// Free bytes from the container's viewpoint.
        free: Bytes,
        /// Total bytes from the container's viewpoint (its limit).
        total: Bytes,
    },
    /// Protocol or state error.
    Error {
        /// Human-readable cause.
        message: String,
    },
    /// Reply to [`Request::Ping`].
    Pong,
}

/// Correlation envelope: `id` ties a [`Response`] to its [`Request`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Envelope<T> {
    /// Correlation id, unique per connection.
    pub id: u64,
    /// The payload.
    pub body: T,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_json_round_trip() {
        let reqs = vec![
            Request::Register {
                container: ContainerId(3),
                limit: Bytes::mib(512),
            },
            Request::RequestDir {
                container: ContainerId(3),
            },
            Request::AllocRequest {
                container: ContainerId(3),
                pid: 42,
                size: Bytes::mib(128),
                api: ApiKind::MallocManaged,
            },
            Request::AllocDone {
                container: ContainerId(3),
                pid: 42,
                addr: 0x7000_0000,
                size: Bytes::mib(128),
            },
            Request::AllocFailed {
                container: ContainerId(3),
                pid: 42,
                size: Bytes::mib(128),
            },
            Request::Free {
                container: ContainerId(3),
                pid: 42,
                addr: 0x7000_0000,
            },
            Request::MemInfo {
                container: ContainerId(3),
                pid: 42,
            },
            Request::ProcessExit {
                container: ContainerId(3),
                pid: 42,
            },
            Request::ContainerClose {
                container: ContainerId(3),
            },
            Request::Ping,
        ];
        for req in reqs {
            let env = Envelope { id: 7, body: req.clone() };
            let json = serde_json::to_string(&env).unwrap();
            let back: Envelope<Request> = serde_json::from_str(&json).unwrap();
            assert_eq!(back.id, 7);
            assert_eq!(back.body, req);
        }
    }

    #[test]
    fn response_json_round_trip() {
        let resps = vec![
            Response::Ok,
            Response::Dir {
                path: "/var/lib/convgpu/cnt-0003".into(),
            },
            Response::Alloc {
                decision: AllocDecision::Granted,
            },
            Response::Alloc {
                decision: AllocDecision::Rejected,
            },
            Response::Freed {
                size: Bytes::mib(64),
            },
            Response::MemInfo {
                free: Bytes::mib(100),
                total: Bytes::mib(512),
            },
            Response::Error {
                message: "unregistered container".into(),
            },
            Response::Pong,
        ];
        for resp in resps {
            let env = Envelope { id: 1, body: resp.clone() };
            let json = serde_json::to_string(&env).unwrap();
            let back: Envelope<Response> = serde_json::from_str(&json).unwrap();
            assert_eq!(back.body, resp);
        }
    }

    #[test]
    fn wire_format_is_snake_case_tagged() {
        let json = serde_json::to_string(&Request::Ping).unwrap();
        assert_eq!(json, r#"{"type":"ping"}"#);
        let json = serde_json::to_string(&Request::AllocRequest {
            container: ContainerId(1),
            pid: 2,
            size: Bytes::new(3),
            api: ApiKind::Malloc,
        })
        .unwrap();
        assert!(json.contains(r#""type":"alloc_request""#), "{json}");
        assert!(json.contains(r#""api":"malloc""#), "{json}");
    }

    #[test]
    fn api_names_match_cuda() {
        assert_eq!(ApiKind::Malloc.api_name(), "cudaMalloc");
        assert_eq!(ApiKind::MallocPitch.api_name(), "cudaMallocPitch");
        assert_eq!(ApiKind::Malloc3D.api_name(), "cudaMalloc3D");
        assert_eq!(ApiKind::MallocManaged.api_name(), "cudaMallocManaged");
    }
}
