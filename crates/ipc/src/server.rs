//! The scheduler side of the socket: accept loop, per-connection readers,
//! and deferred replies.
//!
//! The key requirement comes from the paper's suspension mechanism: when a
//! container must wait for memory, the scheduler simply *does not answer
//! yet*. [`Reply`] is therefore a detachable one-shot handle — the handler
//! can stash it in the suspended-container queue and fire it minutes later
//! from whatever thread processes the memory release.

use crate::binary::{encode_with, read_auto, WireCodec};
use crate::message::{Envelope, Request, Response};
use crate::transport::{self, Conn, EndpointAddr, TransportListener};
use convgpu_obs::Registry;
use convgpu_sim_core::clock::ClockHandle;
use convgpu_sim_core::sync::Mutex;
use convgpu_sim_core::time::SimTime;
use std::collections::HashMap;
use std::io::{self, BufReader, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Identifies one accepted connection for the handler's lifetime hooks.
pub type ConnId = u64;

/// Server-side request callback.
pub trait RequestHandler: Send + Sync + 'static {
    /// A request arrived on connection `conn`. Reply now or stash `reply`
    /// and answer later (suspension).
    fn on_request(&self, conn: ConnId, req: Request, reply: Reply);

    /// Connection `conn` closed (client process or container died).
    fn on_disconnect(&self, conn: ConnId) {
        let _ = conn;
    }
}

/// Instrumentation hook for a server: where to record per-message-type
/// request counts and latency histograms, and which clock stamps them
/// (the same scaled/virtual clock the rest of the stack runs on — the
/// ipc layer never reads the wall clock directly).
#[derive(Clone)]
pub struct ServerObs {
    /// Shared metrics registry.
    pub registry: Arc<Registry>,
    /// Time source for the latency measurements.
    pub clock: ClockHandle,
}

/// Per-reply slice of [`ServerObs`]: carried inside the [`Reply`] handle
/// so a *deferred* reply (a suspended allocation) still records its
/// write-back and full receipt→reply turnaround when it finally fires.
struct ReplyObs {
    registry: Arc<Registry>,
    clock: ClockHandle,
    kind: &'static str,
    received_at: SimTime,
}

/// One-shot deferred reply handle. Remembers which codec its request
/// arrived in, so even a reply fired minutes later (a suspension ending)
/// answers in the format the client is reading.
pub struct Reply {
    writer: Arc<Mutex<Conn>>,
    id: u64,
    codec: WireCodec,
    obs: Option<ReplyObs>,
}

impl Reply {
    /// Send the response. Errors (client already gone) are swallowed: the
    /// scheduler must not crash because a container died mid-wait — the
    /// disconnect path reclaims its state instead.
    pub fn send(self, resp: Response) {
        let write_started = self.obs.as_ref().map(|o| o.clock.now());
        let frame = encode_with(
            &Envelope {
                id: self.id,
                body: resp,
            },
            self.codec,
        );
        {
            let mut w = self.writer.lock();
            let _ = w.write_all(&frame).and_then(|()| w.flush());
        }
        Self::observe_sent(&self.obs, write_started);
    }

    /// Send many responses with one syscall per connection: frames are
    /// encoded up front (each in its reply's own codec), grouped by
    /// destination stream, and each group is written with a single
    /// `write_all`. This is the reply-coalescing path `dispatch` uses when
    /// one release resumes a burst of suspended allocations — N wakeups
    /// previously cost N lock/write/flush cycles per socket.
    pub fn send_batch(batch: Vec<(Reply, Response)>) {
        // Tiny batches (the common case) go through the simple path.
        if batch.len() <= 1 {
            for (reply, resp) in batch {
                reply.send(resp);
            }
            return;
        }
        // One entry per destination connection: (stream, coalesced
        // frames, per-reply observability records).
        type Group = (
            Arc<Mutex<Conn>>,
            Vec<u8>,
            Vec<(Option<ReplyObs>, Option<SimTime>)>,
        );
        let mut groups: Vec<Group> = Vec::new();
        for (reply, resp) in batch {
            let write_started = reply.obs.as_ref().map(|o| o.clock.now());
            let frame = encode_with(
                &Envelope {
                    id: reply.id,
                    body: resp,
                },
                reply.codec,
            );
            match groups
                .iter_mut()
                .find(|(w, _, _)| Arc::ptr_eq(w, &reply.writer))
            {
                Some((_, buf, obs)) => {
                    buf.extend_from_slice(&frame);
                    obs.push((reply.obs, write_started));
                }
                None => groups.push((
                    Arc::clone(&reply.writer),
                    frame,
                    vec![(reply.obs, write_started)],
                )),
            }
        }
        for (writer, buf, obs_list) in groups {
            {
                let mut w = writer.lock();
                let _ = w.write_all(&buf).and_then(|()| w.flush());
            }
            for (obs, write_started) in obs_list {
                Self::observe_sent(&obs, write_started);
            }
        }
    }

    fn observe_sent(obs: &Option<ReplyObs>, write_started: Option<SimTime>) {
        if let (Some(obs), Some(t0)) = (obs, write_started) {
            let now = obs.clock.now();
            let labels = [("type", obs.kind)];
            obs.registry.observe(
                "convgpu_ipc_server_write_seconds",
                &labels,
                now.saturating_since(t0),
            );
            // Receipt → reply: for a suspended allocation this is the
            // whole time the reply was withheld.
            obs.registry.observe(
                "convgpu_ipc_server_turnaround_seconds",
                &labels,
                now.saturating_since(obs.received_at),
            );
        }
    }
}

struct ServerShared {
    handler: Arc<dyn RequestHandler>,
    shutting_down: AtomicBool,
    conns: Mutex<HashMap<ConnId, Arc<Mutex<Conn>>>>,
    next_conn: AtomicU64,
    obs: Option<ServerObs>,
}

/// A socket server for the wire protocol, over any
/// [`crate::transport`] endpoint (UNIX socket by default, TCP for
/// multi-host clusters).
pub struct SocketServer {
    endpoint: EndpointAddr,
    shared: Arc<ServerShared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl SocketServer {
    /// Bind a UNIX socket at `path` (removing a stale socket file first)
    /// and start accepting. Each connection gets its own reader thread;
    /// requests are dispatched to `handler`.
    pub fn bind(path: &Path, handler: Arc<dyn RequestHandler>) -> io::Result<SocketServer> {
        SocketServer::bind_with_obs(path, handler, None)
    }

    /// Like [`SocketServer::bind`], but every request/response round-trip is
    /// recorded into `obs` (per-message-type counters plus handle / write /
    /// turnaround latency histograms).
    pub fn bind_with_obs(
        path: &Path,
        handler: Arc<dyn RequestHandler>,
        obs: Option<ServerObs>,
    ) -> io::Result<SocketServer> {
        SocketServer::bind_endpoint_with_obs(&EndpointAddr::from(path), handler, obs)
    }

    /// Bind any transport endpoint (`unix:/path` or `tcp:host:port`; a
    /// TCP port of 0 is resolved by the kernel — read it back with
    /// [`SocketServer::endpoint`]).
    pub fn bind_endpoint(
        addr: &EndpointAddr,
        handler: Arc<dyn RequestHandler>,
    ) -> io::Result<SocketServer> {
        SocketServer::bind_endpoint_with_obs(addr, handler, None)
    }

    /// Like [`SocketServer::bind_endpoint`], with observability.
    pub fn bind_endpoint_with_obs(
        addr: &EndpointAddr,
        handler: Arc<dyn RequestHandler>,
        obs: Option<ServerObs>,
    ) -> io::Result<SocketServer> {
        let listener = TransportListener::bind(addr)?;
        let endpoint = listener.local_endpoint();
        let shared = Arc::new(ServerShared {
            handler,
            shutting_down: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(1),
            obs,
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("convgpu-ipc-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn accept thread");
        Ok(SocketServer {
            endpoint,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The UNIX socket path this server listens on.
    ///
    /// # Panics
    /// On a TCP server — use [`SocketServer::endpoint`] there.
    pub fn path(&self) -> &Path {
        self.endpoint
            .unix_path()
            .expect("SocketServer::path() on a non-unix endpoint; use endpoint()")
    }

    /// The endpoint this server listens on (with any TCP port 0 already
    /// resolved to the kernel-assigned port).
    pub fn endpoint(&self) -> &EndpointAddr {
        &self.endpoint
    }

    /// Stop accepting, close every live connection, and join the accept
    /// loop. Reader threads exit as their streams shut down.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept() with a throw-away connection.
        transport::wake(&self.endpoint);
        for (_, conn) in self.shared.conns.lock().drain() {
            let _ = conn.lock().shutdown(std::net::Shutdown::Both);
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(path) = self.endpoint.unix_path() {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for SocketServer {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn accept_loop(listener: TransportListener, shared: Arc<ServerShared>) {
    loop {
        let stream = match listener.accept() {
            Ok(stream) => stream,
            Err(_) => break,
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        let writer = Arc::new(Mutex::new(match stream.try_clone() {
            Ok(s) => s,
            Err(_) => continue,
        }));
        shared.conns.lock().insert(conn_id, Arc::clone(&writer));
        let conn_shared = Arc::clone(&shared);
        let _ = std::thread::Builder::new()
            .name(format!("convgpu-ipc-conn-{conn_id}"))
            .spawn(move || {
                let mut stream = stream;
                // The TCP hello runs on the connection's own thread so a
                // client that never says hello stalls only itself, not
                // the accept loop. A failed handshake (bad magic/version,
                // hello timeout) drops the connection without ever
                // reaching the handler.
                let greeted = transport::server_handshake(&mut stream, &writer);
                match greeted {
                    Ok(()) => reader_loop(stream, writer, conn_id, &conn_shared),
                    Err(e) => debug_log(&format!("conn {conn_id}: handshake failed: {e}")),
                }
                conn_shared.conns.lock().remove(&conn_id);
                if !conn_shared.shutting_down.load(Ordering::SeqCst) {
                    conn_shared.handler.on_disconnect(conn_id);
                }
            });
    }
}

fn reader_loop(stream: Conn, writer: Arc<Mutex<Conn>>, conn_id: ConnId, shared: &ServerShared) {
    let mut reader = BufReader::new(stream);
    // Errors (malformed input) and EOF both end the connection. The codec
    // is detected per frame, and the reply handle carries it so this
    // request's answer goes back in the same format.
    loop {
        match read_auto::<Envelope<Request>, _>(&mut reader) {
            Ok(Some((env, codec))) => {
                let kind = env.body.kind();
                let received_at = shared.obs.as_ref().map(|o| {
                    o.registry
                        .inc("convgpu_ipc_requests_total", &[("type", kind)], 1);
                    o.clock.now()
                });
                let reply = Reply {
                    writer: Arc::clone(&writer),
                    id: env.id,
                    codec,
                    obs: shared.obs.as_ref().zip(received_at).map(|(o, t)| ReplyObs {
                        registry: Arc::clone(&o.registry),
                        clock: o.clock.clone(),
                        kind,
                        received_at: t,
                    }),
                };
                shared.handler.on_request(conn_id, env.body, reply);
                if let (Some(o), Some(t0)) = (&shared.obs, received_at) {
                    // Synchronous handler time; a deferred (suspended) reply
                    // shows up in the turnaround histogram instead.
                    o.registry.observe(
                        "convgpu_ipc_server_handle_seconds",
                        &[("type", kind)],
                        o.clock.now().saturating_since(t0),
                    );
                }
            }
            Ok(None) => {
                debug_log(&format!("conn {conn_id}: EOF"));
                break;
            }
            Err(e) => {
                debug_log(&format!("conn {conn_id}: read error: {e}"));
                break;
            }
        }
    }
}

/// Stderr diagnostics, enabled by `CONVGPU_IPC_DEBUG=1` (protocol-level
/// troubleshooting; silent otherwise).
fn debug_log(msg: &str) {
    if std::env::var_os("CONVGPU_IPC_DEBUG").is_some() {
        eprintln!("[convgpu-ipc] {msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::{read_binary, write_binary};
    use crate::codec::{read_json, write_json};
    use crate::message::AllocDecision;
    use convgpu_sim_core::ids::ContainerId;
    use convgpu_sim_core::units::Bytes;
    use std::sync::atomic::AtomicUsize;

    fn temp_sock(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("convgpu-ipc-test-{}-{}", std::process::id(), name));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("sched.sock")
    }

    fn dial(path: &Path) -> Conn {
        Conn::connect(&EndpointAddr::from(path)).unwrap()
    }

    /// Echo handler: answers Ping with Pong, AllocRequest with Granted,
    /// anything else with Ok.
    struct Echo {
        disconnects: AtomicUsize,
    }

    impl RequestHandler for Echo {
        fn on_request(&self, _conn: ConnId, req: Request, reply: Reply) {
            match req {
                Request::Ping => reply.send(Response::Pong),
                Request::AllocRequest { .. } => reply.send(Response::Alloc {
                    decision: AllocDecision::Granted,
                }),
                _ => reply.send(Response::Ok),
            }
        }
        fn on_disconnect(&self, _conn: ConnId) {
            self.disconnects.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn serves_requests_and_notices_disconnects() {
        let path = temp_sock("echo");
        let handler = Arc::new(Echo {
            disconnects: AtomicUsize::new(0),
        });
        let server = SocketServer::bind(&path, handler.clone()).unwrap();

        {
            let mut stream = dial(&path);
            write_json(
                &mut stream,
                &Envelope {
                    id: 1,
                    body: Request::Ping,
                },
            )
            .unwrap();
            let mut r = BufReader::new(stream.try_clone().unwrap());
            let resp: Envelope<Response> = read_json(&mut r).unwrap().unwrap();
            assert_eq!(resp.id, 1);
            assert_eq!(resp.body, Response::Pong);

            write_json(
                &mut stream,
                &Envelope {
                    id: 2,
                    body: Request::AllocRequest {
                        container: ContainerId(1),
                        pid: 1,
                        size: Bytes::mib(1),
                        api: crate::message::ApiKind::Malloc,
                    },
                },
            )
            .unwrap();
            let resp: Envelope<Response> = read_json(&mut r).unwrap().unwrap();
            assert_eq!(
                resp.body,
                Response::Alloc {
                    decision: AllocDecision::Granted
                }
            );
        } // stream drops → disconnect

        // Wait for the disconnect callback.
        for _ in 0..100 {
            if handler.disconnects.load(Ordering::SeqCst) == 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(handler.disconnects.load(Ordering::SeqCst), 1);
        server.shutdown();
        assert!(!path.exists(), "socket file removed on shutdown");
    }

    #[test]
    fn replies_follow_each_requests_codec() {
        let path = temp_sock("codecs");
        let handler = Arc::new(Echo {
            disconnects: AtomicUsize::new(0),
        });
        let server = SocketServer::bind(&path, handler).unwrap();
        let mut stream = dial(&path);
        let mut r = BufReader::new(stream.try_clone().unwrap());
        // A binary request gets a binary reply…
        write_binary(
            &mut stream,
            &Envelope {
                id: 1,
                body: Request::Ping,
            },
        )
        .unwrap();
        let resp: Envelope<Response> = read_binary(&mut r).unwrap().unwrap();
        assert_eq!((resp.id, resp.body), (1, Response::Pong));
        // …and a JSON request on the very same connection a JSON reply.
        write_json(
            &mut stream,
            &Envelope {
                id: 2,
                body: Request::Ping,
            },
        )
        .unwrap();
        let resp: Envelope<Response> = read_json(&mut r).unwrap().unwrap();
        assert_eq!((resp.id, resp.body), (2, Response::Pong));
        server.shutdown();
    }

    #[test]
    fn malformed_input_only_kills_that_connection() {
        let path = temp_sock("malformed");
        let handler = Arc::new(Echo {
            disconnects: AtomicUsize::new(0),
        });
        let server = SocketServer::bind(&path, handler.clone()).unwrap();

        let mut bad = dial(&path);
        bad.write_all(b"this is not json\n").unwrap();
        bad.flush().unwrap();

        // A well-behaved client still works.
        let mut good = dial(&path);
        write_json(
            &mut good,
            &Envelope {
                id: 5,
                body: Request::Ping,
            },
        )
        .unwrap();
        let mut r = BufReader::new(good.try_clone().unwrap());
        let resp: Envelope<Response> = read_json(&mut r).unwrap().unwrap();
        assert_eq!(resp.body, Response::Pong);
        server.shutdown();
    }

    #[test]
    fn bind_replaces_stale_socket_file() {
        let path = temp_sock("stale");
        std::fs::write(&path, b"stale").unwrap();
        let handler = Arc::new(Echo {
            disconnects: AtomicUsize::new(0),
        });
        let server = SocketServer::bind(&path, handler).unwrap();
        assert!(Conn::connect(&EndpointAddr::from(path.as_path())).is_ok());
        server.shutdown();
    }

    #[test]
    fn tcp_endpoint_serves_the_same_protocol() {
        let handler = Arc::new(Echo {
            disconnects: AtomicUsize::new(0),
        });
        let server = SocketServer::bind_endpoint(
            &EndpointAddr::parse("tcp:127.0.0.1:0").unwrap(),
            handler.clone(),
        )
        .unwrap();
        let endpoint = server.endpoint().clone();
        assert_eq!(endpoint.scheme(), "tcp");
        let mut stream = Conn::connect(&endpoint).unwrap();
        let mut r = BufReader::new(stream.try_clone().unwrap());
        // Both codecs on one TCP connection, exactly like UNIX.
        write_binary(
            &mut stream,
            &Envelope {
                id: 1,
                body: Request::Ping,
            },
        )
        .unwrap();
        let resp: Envelope<Response> = read_binary(&mut r).unwrap().unwrap();
        assert_eq!((resp.id, resp.body), (1, Response::Pong));
        write_json(
            &mut stream,
            &Envelope {
                id: 2,
                body: Request::Ping,
            },
        )
        .unwrap();
        let resp: Envelope<Response> = read_json(&mut r).unwrap().unwrap();
        assert_eq!((resp.id, resp.body), (2, Response::Pong));
        drop(stream);
        drop(r);
        for _ in 0..100 {
            if handler.disconnects.load(Ordering::SeqCst) == 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(handler.disconnects.load(Ordering::SeqCst), 1);
        server.shutdown();
    }

    #[test]
    fn tcp_client_without_hello_never_reaches_the_handler() {
        use std::sync::atomic::AtomicBool;
        struct FailIfCalled {
            called: Arc<AtomicBool>,
        }
        impl RequestHandler for FailIfCalled {
            fn on_request(&self, _c: ConnId, _r: Request, reply: Reply) {
                self.called.store(true, Ordering::SeqCst);
                reply.send(Response::Pong);
            }
        }
        let called = Arc::new(AtomicBool::new(false));
        let server = SocketServer::bind_endpoint(
            &EndpointAddr::parse("tcp:127.0.0.1:0").unwrap(),
            Arc::new(FailIfCalled {
                called: Arc::clone(&called),
            }),
        )
        .unwrap();
        let mut raw = Conn::connect_raw(server.endpoint()).unwrap();
        // A protocol frame instead of the hello: the handshake must
        // reject it before the request dispatcher ever sees it.
        write_json(
            &mut raw,
            &Envelope {
                id: 1,
                body: Request::Ping,
            },
        )
        .unwrap();
        let mut r = BufReader::new(raw.try_clone().unwrap());
        let got: Result<Option<Envelope<Response>>, _> = read_json(&mut r);
        assert!(
            !matches!(got, Ok(Some(_))),
            "no reply may cross a failed handshake: {got:?}"
        );
        assert!(!called.load(Ordering::SeqCst), "handler must not run");
        server.shutdown();
    }
}
