//! Pluggable transport layer: every socket the stack opens goes through
//! here.
//!
//! The paper's middleware speaks over a local socket; the distributed
//! cluster mode needs the same wire protocol across machines. This module
//! is the single place that constructs OS-level streams — an enum-dispatch
//! mirror of `TopologyBackend`, not a trait object, so the hot path stays
//! a direct match with no vtable. The `raw-transport` lint freezes the
//! boundary: `UnixStream` / `UnixListener` / `TcpStream` / `TcpListener`
//! may be named nowhere else in the workspace.
//!
//! Endpoints are written as URIs:
//!
//! * `unix:/run/convgpu/sched.sock` — UNIX domain socket (the default);
//! * `tcp:host:port` — TCP, for real multi-host clusters;
//! * a bare path keeps meaning a UNIX socket, so every pre-transport CLI
//!   invocation and config file still parses.
//!
//! **TCP hello frame.** A UNIX socket's reachability implies a shared
//! filesystem namespace; a TCP port guarantees nothing, so both ends
//! exchange a 4-byte version-checked hello before the first protocol
//! frame: `[0xC7, b'V', version, role]` with role `b'c'` (client) or
//! `b's'` (server). The client sends first and waits for the server's
//! echo under [`TCP_HELLO_TIMEOUT`]; a wrong magic or version fails the
//! connect with a clear error instead of letting two incompatible builds
//! trade garbage frames. UNIX connections skip the hello entirely —
//! their byte streams (and golden traces) are bit-for-bit identical to
//! the pre-transport stack.
//!
//! **Timeouts.** TCP half-open peers are undetectable without them: a
//! read timeout covers only the handshake (and is cleared afterwards —
//! a *suspension* must block indefinitely, that is the paper's
//! mechanism), while [`TCP_WRITE_TIMEOUT`] stays armed for the life of
//! the connection so a peer that stops draining its receive window
//! surfaces as an I/O error — which the router treats exactly like a
//! dead node. Both are fd-level options shared across [`Conn::try_clone`].

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// First byte of the TCP hello frame (distinct from the binary-codec
/// magic `0xC5` and from `{`/digits, so a stray protocol frame can never
/// be mistaken for a hello).
pub const HELLO_MAGIC: u8 = 0xC7;
/// Second byte of the hello frame.
pub const HELLO_TAG: u8 = b'V';
/// Transport protocol version; bumped on incompatible wire changes.
pub const TRANSPORT_VERSION: u8 = 1;
/// Hello role byte sent by the connecting side.
pub const HELLO_ROLE_CLIENT: u8 = b'c';
/// Hello role byte echoed by the accepting side.
pub const HELLO_ROLE_SERVER: u8 = b's';
/// Read timeout covering only the TCP hello exchange.
pub const TCP_HELLO_TIMEOUT: Duration = Duration::from_secs(5);
/// Permanent TCP write timeout: a peer that stops draining its window
/// turns into an I/O error instead of a wedged writer.
pub const TCP_WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// A parsed endpoint address: where a server listens or a client dials.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EndpointAddr {
    /// UNIX domain socket at this filesystem path.
    Unix(PathBuf),
    /// TCP `host:port` (as given; resolved at connect/bind time).
    Tcp(String),
}

impl EndpointAddr {
    /// Parse an endpoint URI: `unix:/path`, `tcp:host:port`, or a bare
    /// path (kept as a UNIX socket for backwards compatibility).
    pub fn parse(s: &str) -> io::Result<EndpointAddr> {
        if let Some(rest) = s.strip_prefix("unix:") {
            if rest.is_empty() {
                return Err(invalid(format!("empty unix endpoint path in {s:?}")));
            }
            return Ok(EndpointAddr::Unix(PathBuf::from(rest)));
        }
        if let Some(rest) = s.strip_prefix("tcp:") {
            let Some((host, port)) = rest.rsplit_once(':') else {
                return Err(invalid(format!("tcp endpoint {s:?} must be tcp:host:port")));
            };
            if host.is_empty() || port.parse::<u16>().is_err() {
                return Err(invalid(format!(
                    "tcp endpoint {s:?} must be tcp:host:port with a numeric port"
                )));
            }
            return Ok(EndpointAddr::Tcp(rest.to_string()));
        }
        if s.is_empty() {
            return Err(invalid("empty endpoint".to_string()));
        }
        Ok(EndpointAddr::Unix(PathBuf::from(s)))
    }

    /// The URI scheme label (`"unix"` / `"tcp"`), used for metric labels
    /// and bench axes.
    pub fn scheme(&self) -> &'static str {
        match self {
            EndpointAddr::Unix(_) => "unix",
            EndpointAddr::Tcp(_) => "tcp",
        }
    }

    /// The filesystem path behind a UNIX endpoint, if that is what this
    /// is.
    pub fn unix_path(&self) -> Option<&Path> {
        match self {
            EndpointAddr::Unix(p) => Some(p),
            EndpointAddr::Tcp(_) => None,
        }
    }
}

impl fmt::Display for EndpointAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EndpointAddr::Unix(p) => write!(f, "unix:{}", p.display()),
            EndpointAddr::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

impl From<&Path> for EndpointAddr {
    fn from(p: &Path) -> Self {
        EndpointAddr::Unix(p.to_path_buf())
    }
}

impl From<PathBuf> for EndpointAddr {
    fn from(p: PathBuf) -> Self {
        EndpointAddr::Unix(p)
    }
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidInput, msg)
}

/// One connected stream, over either transport. Implements [`Read`] and
/// [`Write`] by direct dispatch so the codec layer never knows which
/// transport it is framing onto.
pub enum Conn {
    /// A UNIX-domain stream.
    Unix(UnixStream),
    /// A TCP stream (hello already exchanged unless built by
    /// [`Conn::connect_raw`] / [`TransportListener::accept`]).
    Tcp(TcpStream),
}

impl Conn {
    /// Dial `addr` and complete the transport handshake: for TCP this
    /// sends the client hello and validates the server's echo before
    /// returning, so a version-mismatched or non-convgpu peer fails the
    /// connect instead of corrupting the protocol stream.
    pub fn connect(addr: &EndpointAddr) -> io::Result<Conn> {
        let mut conn = Conn::connect_raw(addr)?;
        conn.client_handshake()?;
        Ok(conn)
    }

    /// Dial `addr` without the hello exchange. For hostile-client tests
    /// and the server's own shutdown wake-up; a raw TCP connection will
    /// be rejected by the server's handshake unless it speaks the hello
    /// itself.
    pub fn connect_raw(addr: &EndpointAddr) -> io::Result<Conn> {
        match addr {
            EndpointAddr::Unix(path) => Ok(Conn::Unix(UnixStream::connect(path)?)),
            EndpointAddr::Tcp(hostport) => {
                let stream = TcpStream::connect(hostport.as_str())?;
                configure_tcp(&stream)?;
                Ok(Conn::Tcp(stream))
            }
        }
    }

    /// Client side of the TCP hello; a no-op on UNIX.
    fn client_handshake(&mut self) -> io::Result<()> {
        let Conn::Tcp(stream) = self else {
            return Ok(());
        };
        stream.set_read_timeout(Some(TCP_HELLO_TIMEOUT))?;
        stream.write_all(&[HELLO_MAGIC, HELLO_TAG, TRANSPORT_VERSION, HELLO_ROLE_CLIENT])?;
        stream.flush()?;
        let mut echo = [0u8; 4];
        stream.read_exact(&mut echo)?;
        check_hello(&echo, HELLO_ROLE_SERVER)?;
        // Suspension blocks indefinitely by design: only the handshake
        // is read-bounded.
        stream.set_read_timeout(None)?;
        Ok(())
    }

    /// A second handle onto the same OS stream (for a reader thread).
    /// Socket options are fd-level and therefore shared with the clone.
    pub fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Unix(s) => Ok(Conn::Unix(s.try_clone()?)),
            Conn::Tcp(s) => Ok(Conn::Tcp(s.try_clone()?)),
        }
    }

    /// Shut down one or both directions of the stream.
    pub fn shutdown(&self, how: Shutdown) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.shutdown(how),
            Conn::Tcp(s) => s.shutdown(how),
        }
    }

    /// Set (or clear) the read timeout on the underlying stream.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.set_read_timeout(dur),
            Conn::Tcp(s) => s.set_read_timeout(dur),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

fn configure_tcp(stream: &TcpStream) -> io::Result<()> {
    // The protocol is request/response with small frames; Nagle only
    // adds latency. The write timeout stays armed for the connection's
    // whole life (see module docs).
    stream.set_nodelay(true)?;
    stream.set_write_timeout(Some(TCP_WRITE_TIMEOUT))
}

fn check_hello(frame: &[u8; 4], expected_role: u8) -> io::Result<()> {
    if frame[0] != HELLO_MAGIC || frame[1] != HELLO_TAG {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("peer is not a convgpu transport (hello {frame:02x?})"),
        ));
    }
    if frame[2] != TRANSPORT_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "transport version mismatch: peer v{}, local v{TRANSPORT_VERSION}",
                frame[2]
            ),
        ));
    }
    if frame[3] != expected_role {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unexpected hello role {:#04x}", frame[3]),
        ));
    }
    Ok(())
}

/// Server side of the TCP hello, run from the per-connection thread (not
/// the accept loop — a hostile client that never sends its hello must
/// only stall its own connection, never the server's accept path).
/// `reader` and `writer` are clones of the same accepted stream. A no-op
/// for UNIX connections.
pub fn server_handshake(
    reader: &mut Conn,
    writer: &convgpu_sim_core::sync::Mutex<Conn>,
) -> io::Result<()> {
    if matches!(reader, Conn::Unix(_)) {
        return Ok(());
    }
    // fd-level timeout, shared with the writer clone; cleared below.
    reader.set_read_timeout(Some(TCP_HELLO_TIMEOUT))?;
    let mut hello = [0u8; 4];
    reader.read_exact(&mut hello)?;
    check_hello(&hello, HELLO_ROLE_CLIENT)?;
    {
        let mut w = writer.lock();
        w.write_all(&[HELLO_MAGIC, HELLO_TAG, TRANSPORT_VERSION, HELLO_ROLE_SERVER])?;
        w.flush()?;
    }
    reader.set_read_timeout(None)
}

/// A bound, accepting socket over either transport.
pub enum TransportListener {
    /// A UNIX-domain listener and the path it is bound to.
    Unix {
        /// The listening socket.
        listener: UnixListener,
        /// Bound filesystem path (removed by the server on shutdown).
        path: PathBuf,
    },
    /// A TCP listener.
    Tcp(TcpListener),
}

impl TransportListener {
    /// Bind `addr`. A UNIX bind removes a stale socket file and creates
    /// the parent directory first; a TCP bind may use port 0 and read the
    /// kernel-assigned port back via [`TransportListener::local_endpoint`].
    pub fn bind(addr: &EndpointAddr) -> io::Result<TransportListener> {
        match addr {
            EndpointAddr::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                if let Some(parent) = path.parent() {
                    std::fs::create_dir_all(parent)?;
                }
                Ok(TransportListener::Unix {
                    listener: UnixListener::bind(path)?,
                    path: path.clone(),
                })
            }
            EndpointAddr::Tcp(hostport) => Ok(TransportListener::Tcp(TcpListener::bind(
                hostport.as_str(),
            )?)),
        }
    }

    /// The endpoint this listener is actually bound to — for TCP this
    /// resolves a requested port 0 to the kernel-assigned port.
    pub fn local_endpoint(&self) -> EndpointAddr {
        match self {
            TransportListener::Unix { path, .. } => EndpointAddr::Unix(path.clone()),
            TransportListener::Tcp(l) => EndpointAddr::Tcp(match l.local_addr() {
                Ok(addr) => addr.to_string(),
                Err(_) => String::new(),
            }),
        }
    }

    /// Block for the next connection. TCP sockets come back configured
    /// (`TCP_NODELAY`, write timeout) but **not** handshaken — the
    /// accepting server runs [`server_handshake`] from the connection's
    /// own thread.
    pub fn accept(&self) -> io::Result<Conn> {
        match self {
            TransportListener::Unix { listener, .. } => {
                let (stream, _) = listener.accept()?;
                Ok(Conn::Unix(stream))
            }
            TransportListener::Tcp(listener) => {
                let (stream, _) = listener.accept()?;
                configure_tcp(&stream)?;
                Ok(Conn::Tcp(stream))
            }
        }
    }
}

/// Best-effort poke at `addr` to wake a blocking `accept()` (server
/// shutdown). The throw-away connection never speaks the hello; the
/// accept loop notices its shutdown flag before servicing it.
pub fn wake(addr: &EndpointAddr) {
    let _ = Conn::connect_raw(addr);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_unix_tcp_and_bare_paths() {
        assert_eq!(
            EndpointAddr::parse("unix:/run/convgpu/s.sock").unwrap(),
            EndpointAddr::Unix(PathBuf::from("/run/convgpu/s.sock"))
        );
        assert_eq!(
            EndpointAddr::parse("tcp:127.0.0.1:7070").unwrap(),
            EndpointAddr::Tcp("127.0.0.1:7070".to_string())
        );
        assert_eq!(
            EndpointAddr::parse("/bare/path.sock").unwrap(),
            EndpointAddr::Unix(PathBuf::from("/bare/path.sock"))
        );
        assert_eq!(
            EndpointAddr::parse("tcp:0.0.0.0:0").unwrap(),
            EndpointAddr::Tcp("0.0.0.0:0".to_string())
        );
    }

    #[test]
    fn rejects_malformed_endpoints() {
        assert!(EndpointAddr::parse("").is_err());
        assert!(EndpointAddr::parse("unix:").is_err());
        assert!(EndpointAddr::parse("tcp:").is_err());
        assert!(EndpointAddr::parse("tcp:noport").is_err());
        assert!(EndpointAddr::parse("tcp:host:notaport").is_err());
        assert!(EndpointAddr::parse("tcp::7070").is_err());
    }

    #[test]
    fn display_round_trips() {
        for uri in ["unix:/a/b.sock", "tcp:10.0.0.1:7070"] {
            let addr = EndpointAddr::parse(uri).unwrap();
            assert_eq!(addr.to_string(), uri);
            assert_eq!(EndpointAddr::parse(&addr.to_string()).unwrap(), addr);
        }
    }

    #[test]
    fn scheme_and_unix_path_accessors() {
        let u = EndpointAddr::parse("unix:/x.sock").unwrap();
        let t = EndpointAddr::parse("tcp:127.0.0.1:1").unwrap();
        assert_eq!(u.scheme(), "unix");
        assert_eq!(t.scheme(), "tcp");
        assert_eq!(u.unix_path(), Some(Path::new("/x.sock")));
        assert_eq!(t.unix_path(), None);
    }

    #[test]
    fn tcp_listener_resolves_port_zero() {
        let listener =
            TransportListener::bind(&EndpointAddr::parse("tcp:127.0.0.1:0").unwrap()).unwrap();
        let endpoint = listener.local_endpoint();
        assert_eq!(endpoint.scheme(), "tcp");
        assert!(
            !endpoint.to_string().ends_with(":0"),
            "port must be resolved: {endpoint}"
        );
    }

    #[test]
    fn tcp_hello_handshake_completes_and_rejects_bad_version() {
        use convgpu_sim_core::sync::Mutex;
        let listener =
            TransportListener::bind(&EndpointAddr::parse("tcp:127.0.0.1:0").unwrap()).unwrap();
        let endpoint = listener.local_endpoint();

        // Good client: full hello exchange on both sides.
        let server = std::thread::spawn(move || {
            let mut reader = listener.accept().unwrap();
            let writer = Mutex::new(reader.try_clone().unwrap());
            server_handshake(&mut reader, &writer).unwrap();

            // Bad client: wrong version byte must be rejected.
            let mut reader = listener.accept().unwrap();
            let writer = Mutex::new(reader.try_clone().unwrap());
            assert!(server_handshake(&mut reader, &writer).is_err());
        });
        let conn = Conn::connect(&endpoint).unwrap();
        drop(conn);

        let mut raw = Conn::connect_raw(&endpoint).unwrap();
        raw.write_all(&[
            HELLO_MAGIC,
            HELLO_TAG,
            TRANSPORT_VERSION + 1,
            HELLO_ROLE_CLIENT,
        ])
        .unwrap();
        raw.flush().unwrap();
        // The server drops us without an echo.
        let mut buf = [0u8; 4];
        assert!(raw.read_exact(&mut buf).is_err());
        server.join().unwrap();
    }
}
