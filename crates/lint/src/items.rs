//! Brace-aware item walker over the token stream.
//!
//! Extracts what the analyses need from a lexed file without a full
//! parse: function bodies (with their enclosing `impl` type), item-level
//! `#[cfg(test)]` regions, and `lint:allow` suppression markers (line-
//! and file-level).

use crate::lexer::{lex, Lexed, Tok, Token};
use std::path::PathBuf;

/// A function item: `Type::name` when defined in an `impl Type` block.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl` self-type, if any.
    pub impl_type: Option<String>,
    /// Token index of the body's `{`.
    pub body_start: usize,
    /// Token index one past the body's `}`.
    pub body_end: usize,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Whole item sits in a `#[cfg(test)]` region.
    pub in_test: bool,
}

impl FnItem {
    /// `Type::name` or bare `name`.
    pub fn qualified(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A lexed-and-walked source file.
pub struct SourceFile {
    /// Path relative to the workspace root (`/`-separated).
    pub rel: PathBuf,
    /// Token stream + comment trivia.
    pub lexed: Lexed,
    /// Per-token: inside a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
    /// Every function item found, in source order.
    pub fns: Vec<FnItem>,
    /// Rules suppressed for the whole file (`// lint:allow(rule)`
    /// before the first token).
    pub file_allows: Vec<String>,
}

impl SourceFile {
    /// Lex and walk `src`.
    pub fn parse(rel: PathBuf, src: &str) -> SourceFile {
        let lexed = lex(src);
        let in_test = mark_test_regions(&lexed.tokens);
        let fns = collect_fns(&lexed.tokens, &in_test);
        let first_code_line = lexed.tokens.first().map(|t| t.line).unwrap_or(usize::MAX);
        let mut file_allows = Vec::new();
        for (line, text) in &lexed.comments {
            if *line < first_code_line {
                collect_allow_markers(text, &mut file_allows);
            }
        }
        SourceFile {
            rel,
            lexed,
            in_test,
            fns,
            file_allows,
        }
    }

    /// The crate this file belongs to (`crates/<name>/…`), if any.
    pub fn crate_name(&self) -> Option<String> {
        let mut comps = self.rel.components();
        if comps.next()?.as_os_str() == "crates" {
            Some(comps.next()?.as_os_str().to_string_lossy().into_owned())
        } else {
            None
        }
    }

    /// File stem (`service` for `crates/core/src/service.rs`).
    pub fn stem(&self) -> String {
        self.rel
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default()
    }

    /// Is `rule` suppressed at `line` — by a marker on the same line,
    /// the line above, or a file-level marker?
    pub fn allowed(&self, rule: &str, line: usize) -> bool {
        if self.file_allows.iter().any(|r| r == rule) {
            return true;
        }
        let marker = format!("lint:allow({rule})");
        let near = |l: usize| self.lexed.comment_on(l).contains(&marker);
        near(line) || (line > 1 && near(line - 1)) || multi_allow_near(self, rule, line)
    }

    /// Tokens of a function body (inclusive of braces).
    pub fn body(&self, f: &FnItem) -> &[Token] {
        &self.lexed.tokens[f.body_start..f.body_end]
    }
}

/// `lint:allow(a, b)` lists several rules; check the list form too.
fn multi_allow_near(file: &SourceFile, rule: &str, line: usize) -> bool {
    let check = |l: usize| {
        let text = file.lexed.comment_on(l);
        allow_list(&text).iter().any(|r| r == rule)
    };
    check(line) || (line > 1 && check(line - 1))
}

/// Extract every rule named by `lint:allow(…)` markers in `text`.
fn allow_list(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    collect_allow_markers(text, &mut out);
    out
}

/// Parse all `lint:allow(r1, r2, …)` markers in a comment's text.
fn collect_allow_markers(text: &str, out: &mut Vec<String>) {
    let mut rest = text;
    while let Some(pos) = rest.find("lint:allow(") {
        rest = &rest[pos + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else { break };
        for rule in rest[..close].split(',') {
            let rule = rule.trim();
            if !rule.is_empty() {
                out.push(rule.to_string());
            }
        }
        rest = &rest[close..];
    }
}

/// Mark each token as test/non-test by tracking `#[cfg(test)]` item
/// attributes: the attribute plus the item it decorates (to the close
/// of its brace block, or to `;` for braceless items).
fn mark_test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            let attr_end = attr_close(tokens, i);
            // Everything from the attribute through the decorated item.
            let item_end = item_close(tokens, attr_end);
            for flag in in_test.iter_mut().take(item_end).skip(i) {
                *flag = true;
            }
            i = item_end;
        } else {
            i += 1;
        }
    }
    in_test
}

/// Does `#[…]` starting at `i` contain the ident `test` (covers
/// `#[cfg(test)]` and `#[cfg(all(test, …))]`)?
fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    if !tokens[i].tok.is_punct("#") || !tokens.get(i + 1).is_some_and(|t| t.tok.is_punct("[")) {
        return false;
    }
    if !tokens.get(i + 2).is_some_and(|t| t.tok.is_ident("cfg")) {
        return false;
    }
    let end = attr_close(tokens, i);
    tokens[i..end].iter().any(|t| t.tok.is_ident("test"))
}

/// One past the `]` closing the attribute at `i` (which is on `#`).
fn attr_close(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0i64;
    for (j, t) in tokens.iter().enumerate().skip(i + 1) {
        if t.tok.is_punct("[") {
            depth += 1;
        } else if t.tok.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
    }
    tokens.len()
}

/// One past the end of the item starting at `start`: through its first
/// brace block, or through `;` if none opens first. Nested attributes
/// before the item keyword are skipped naturally (brace search).
fn item_close(tokens: &[Token], start: usize) -> usize {
    let mut j = start;
    // Skip any further attributes on the same item.
    while j < tokens.len()
        && tokens[j].tok.is_punct("#")
        && tokens.get(j + 1).is_some_and(|t| t.tok.is_punct("["))
    {
        j = attr_close(tokens, j);
    }
    let mut depth = 0i64;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.tok.is_punct("{") {
            depth += 1;
        } else if t.tok.is_punct("}") {
            depth -= 1;
            if depth <= 0 {
                return j + 1;
            }
        } else if t.tok.is_punct(";") && depth == 0 {
            return j + 1;
        }
        j += 1;
    }
    tokens.len()
}

/// Collect every `fn` item with a body, tracking the enclosing `impl`
/// self-type via a brace-depth stack.
fn collect_fns(tokens: &[Token], in_test: &[bool]) -> Vec<FnItem> {
    let mut fns = Vec::new();
    // Stack of (brace_depth_at_open, Option<impl type>) for impl blocks.
    let mut impl_stack: Vec<(i64, String)> = Vec::new();
    let mut depth = 0i64;
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.tok.is_punct("{") {
            depth += 1;
            i += 1;
            continue;
        }
        if t.tok.is_punct("}") {
            depth -= 1;
            while impl_stack.last().is_some_and(|(d, _)| *d > depth) {
                impl_stack.pop();
            }
            i += 1;
            continue;
        }
        if t.tok.is_ident("impl") {
            if let Some((ty, open)) = impl_self_type(tokens, i) {
                impl_stack.push((depth + 1, ty));
                depth += 1;
                i = open + 1;
                continue;
            }
        }
        if t.tok.is_ident("fn") {
            if let Some(Tok::Ident(name)) = tokens.get(i + 1).map(|t| &t.tok) {
                if let Some((body_start, body_end)) = fn_body_range(tokens, i + 2) {
                    let opens = tokens[body_start..body_end]
                        .iter()
                        .filter(|t| t.tok.is_punct("{"))
                        .count() as i64;
                    let closes = opens; // body range is brace-balanced
                    let _ = closes;
                    fns.push(FnItem {
                        name: name.clone(),
                        impl_type: impl_stack.last().map(|(_, ty)| ty.clone()),
                        body_start,
                        body_end,
                        line: t.line,
                        in_test: in_test[i],
                    });
                    // Continue walking *inside* the body too? No: nested
                    // fns/closures belong to their parent's analysis.
                    depth += 0;
                    i = body_end;
                    // The body's braces were consumed; depth unchanged.
                    continue;
                }
            }
        }
        i += 1;
    }
    fns
}

/// For `impl … {` at `i`: the self-type name and the index of the `{`.
/// `impl Trait for Type` → `Type`; `impl Type` → `Type`; generics and
/// paths reduced to the last plain identifier before `<`/`{`.
fn impl_self_type(tokens: &[Token], i: usize) -> Option<(String, usize)> {
    let mut j = i + 1;
    let mut after_for: Option<usize> = None;
    let mut angle = 0i64;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.tok.is_punct("<") {
            angle += 1;
        } else if t.tok.is_punct(">") {
            angle -= 1;
        } else if t.tok.is_punct("<<") {
            angle += 2;
        } else if t.tok.is_punct(">>") {
            angle -= 2;
        } else if angle == 0 {
            if t.tok.is_ident("for") {
                after_for = Some(j);
            } else if t.tok.is_punct("{") {
                // Last ident before `{` (or `where`) that sits outside
                // angle brackets — the self-type's final path segment,
                // not a generic parameter.
                let seg_start = after_for.map(|f| f + 1).unwrap_or(i + 1);
                let mut depth = 0i64;
                let mut name: Option<&str> = None;
                for t in &tokens[seg_start..j] {
                    if t.tok.is_ident("where") {
                        break;
                    }
                    match &t.tok {
                        Tok::Punct("<") => depth += 1,
                        Tok::Punct(">") => depth -= 1,
                        Tok::Punct("<<") => depth += 2,
                        Tok::Punct(">>") => depth -= 2,
                        Tok::Ident(s) if depth == 0 => name = Some(s),
                        _ => {}
                    }
                }
                return Some((name?.to_string(), j));
            } else if t.tok.is_punct(";") {
                return None; // `impl Trait for Type;` — no block
            }
        }
        j += 1;
    }
    None
}

/// From the token after the fn name, find the body `{`…`}` range
/// (handling generics, params, return types, where clauses). `None`
/// for body-less trait method declarations.
fn fn_body_range(tokens: &[Token], mut j: usize) -> Option<(usize, usize)> {
    let mut angle = 0i64;
    let mut paren = 0i64;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.tok.is_punct("<") {
            angle += 1;
        } else if t.tok.is_punct(">") {
            angle = (angle - 1).max(0);
        } else if t.tok.is_punct("->") {
            // return type; keep scanning
        } else if t.tok.is_punct("(") {
            paren += 1;
        } else if t.tok.is_punct(")") {
            paren -= 1;
        } else if t.tok.is_punct("{") && angle == 0 && paren == 0 {
            // Found the body open; match to its close.
            let mut depth = 0i64;
            for (k, u) in tokens.iter().enumerate().skip(j) {
                if u.tok.is_punct("{") {
                    depth += 1;
                } else if u.tok.is_punct("}") {
                    depth -= 1;
                    if depth == 0 {
                        return Some((j, k + 1));
                    }
                }
            }
            return Some((j, tokens.len()));
        } else if t.tok.is_punct(";") && paren == 0 {
            return None; // declaration only
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from("crates/x/src/lib.rs"), src)
    }

    #[test]
    fn finds_free_and_impl_fns() {
        let f = parse(
            "fn free() { body(); }\n\
             impl Reply { fn send(self) { go(); } }\n\
             impl ToBinary for Request { fn encode(&self) { x(); } }\n",
        );
        let names: Vec<String> = f.fns.iter().map(|f| f.qualified()).collect();
        assert_eq!(names, vec!["free", "Reply::send", "Request::encode"]);
    }

    #[test]
    fn nested_fns_are_inside_parent_body() {
        let f = parse("fn outer() { fn inner() {} call(); }\n");
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].name, "outer");
    }

    #[test]
    fn cfg_test_marks_whole_item() {
        let f = parse(
            "fn prod() { a(); }\n\
             #[cfg(test)]\nmod tests {\n fn t() { b(); }\n}\n\
             fn after() { c(); }\n",
        );
        assert!(!f.fns[0].in_test);
        assert!(f.fns[1].in_test, "fn inside #[cfg(test)] mod");
        assert!(!f.fns[2].in_test);
    }

    #[test]
    fn file_level_allow() {
        let f = parse("// lint:allow(wall-clock)\n\nfn f() {}\n");
        assert!(f.allowed("wall-clock", 3));
        assert!(!f.allowed("lock-unwrap", 3));
    }

    #[test]
    fn line_level_allow_same_and_previous() {
        let f = parse("fn f() {\n // lint:allow(a, b)\n bad();\n bad();\n}\n");
        assert!(f.allowed("a", 2));
        assert!(f.allowed("a", 3));
        assert!(f.allowed("b", 3));
        assert!(!f.allowed("a", 4));
    }

    #[test]
    fn impl_with_generics_and_where() {
        let f = parse("impl<T: Clone> Envelope<T> where T: Send { fn go(&self) { x(); } }\n");
        assert_eq!(f.fns[0].qualified(), "Envelope::go");
    }

    #[test]
    fn trait_decls_without_bodies_are_skipped() {
        let f = parse("trait H { fn on_request(&self, r: Request); fn go(&self) { x(); } }\n");
        let names: Vec<&str> = f.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["go"]);
    }

    #[test]
    fn fn_with_return_type_and_where_clause() {
        let f = parse("fn g<T>(x: T) -> Vec<T> where T: Ord { build(x) }\n");
        assert_eq!(f.fns[0].name, "g");
    }
}
