//! A pure-`std` Rust lexer.
//!
//! Produces a token stream with line numbers plus a per-line comment
//! index. Unlike the retired line scanner this handles every lexical
//! shape that let violations hide (or phantom violations appear):
//! nested block comments, raw strings (`r#"…"#`), byte/raw-byte
//! strings, char literals vs. lifetimes, and numeric literals with
//! suffixes. Comments become *trivia* — they never reach the rule
//! matchers, but their text is kept (per line) so `lint:allow`
//! suppression markers still work.

use std::fmt;

/// One lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `state`, `Request`, …).
    Ident(String),
    /// Lifetime (`'a`, `'static`) — distinguished from char literals.
    Lifetime(String),
    /// Numeric literal, raw text (`48`, `0x7B`, `1_000u64`).
    Num(String),
    /// String literal with its *cooked* content (escapes resolved for
    /// ordinary strings, verbatim for raw strings).
    Str(String),
    /// Char or byte literal (content irrelevant to every rule).
    Char,
    /// Punctuation. Selected two-char operators arrive joined:
    /// `::`, `=>`, `->`, `<<`, `>>`, `&&`, `||`, `..`.
    Punct(&'static str),
}

impl Tok {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True for `Punct(p)` equal to `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(self, Tok::Punct(q) if *q == p)
    }

    /// True for the identifier `kw`.
    pub fn is_ident(&self, kw: &str) -> bool {
        matches!(self, Tok::Ident(s) if s == kw)
    }

    /// Numeric value, if this is an integer literal (handles `_`
    /// separators, `0x`/`0o`/`0b` prefixes, and type suffixes).
    pub fn int_value(&self) -> Option<u64> {
        let Tok::Num(raw) = self else { return None };
        let s: String = raw.chars().filter(|c| *c != '_').collect();
        let (digits, radix) = if let Some(h) = s.strip_prefix("0x") {
            (h, 16)
        } else if let Some(o) = s.strip_prefix("0o") {
            (o, 8)
        } else if let Some(b) = s.strip_prefix("0b") {
            (b, 2)
        } else {
            (s.as_str(), 10)
        };
        let end = digits
            .find(|c: char| !c.is_digit(radix))
            .unwrap_or(digits.len());
        u64::from_str_radix(&digits[..end], radix).ok()
    }
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Lifetime(s) => write!(f, "'{s}"),
            Tok::Num(s) => write!(f, "{s}"),
            Tok::Str(_) => write!(f, "\"…\""),
            Tok::Char => write!(f, "'…'"),
            Tok::Punct(p) => write!(f, "{p}"),
        }
    }
}

/// A token plus the 1-based source line it starts on.
#[derive(Clone, Debug)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based line number.
    pub line: usize,
}

/// The lexed file: tokens plus comment trivia, indexed by line.
pub struct Lexed {
    /// The token stream, comments and whitespace removed.
    pub tokens: Vec<Token>,
    /// Comment text per 1-based line. A block comment contributes its
    /// text to every line it spans.
    pub comments: Vec<(usize, String)>,
    /// Number of lines the file has.
    pub lines: usize,
}

impl Lexed {
    /// All comment text attached to `line`, concatenated.
    pub fn comment_on(&self, line: usize) -> String {
        let mut out = String::new();
        for (l, text) in &self.comments {
            if *l == line {
                out.push_str(text);
                out.push(' ');
            }
        }
        out
    }
}

/// Two-char operators the lexer joins (longest-match, in source order).
const JOINED: [&str; 8] = ["::", "=>", "->", "<<", ">>", "&&", "||", ".."];

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }
}

fn is_ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic() || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80
}

/// Lex `src` into tokens and comment trivia. The lexer is total: any
/// byte sequence produces *some* stream (unterminated literals run to
/// end of file), so rules never panic on malformed input.
pub fn lex(src: &str) -> Lexed {
    let mut c = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut tokens = Vec::new();
    let mut comments: Vec<(usize, String)> = Vec::new();

    while let Some(b) = c.peek() {
        let line = c.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek_at(1) == Some(b'/') => {
                let start = c.pos;
                while c.peek().is_some_and(|b| b != b'\n') {
                    c.bump();
                }
                comments.push((line, String::from_utf8_lossy(&c.src[start..c.pos]).into()));
            }
            b'/' if c.peek_at(1) == Some(b'*') => {
                lex_block_comment(&mut c, &mut comments);
            }
            b'"' => {
                c.bump();
                tokens.push(Token {
                    tok: Tok::Str(lex_string_body(&mut c)),
                    line,
                });
            }
            b'\'' => {
                c.bump();
                tokens.push(Token {
                    tok: lex_char_or_lifetime(&mut c),
                    line,
                });
            }
            _ if is_ident_start(b) => {
                // Raw-string / byte-string / raw-identifier prefixes are
                // resolved before falling back to a plain identifier.
                if let Some(tok) = lex_prefixed_literal(&mut c) {
                    tokens.push(Token { tok, line });
                } else {
                    let start = c.pos;
                    while c.peek().is_some_and(is_ident_continue) {
                        c.bump();
                    }
                    let text = String::from_utf8_lossy(&c.src[start..c.pos]).into_owned();
                    tokens.push(Token {
                        tok: Tok::Ident(text),
                        line,
                    });
                }
            }
            _ if b.is_ascii_digit() => {
                tokens.push(Token {
                    tok: lex_number(&mut c),
                    line,
                });
            }
            _ => {
                if let Some(op) = JOINED.iter().find(|op| c.starts_with(op)) {
                    // `..` must not split `...`/`..=`; all joined ops here
                    // are only used by pattern matchers, so longest-match
                    // on the two-char form is sufficient.
                    c.bump();
                    c.bump();
                    tokens.push(Token {
                        tok: Tok::Punct(op),
                        line,
                    });
                } else {
                    c.bump();
                    tokens.push(Token {
                        tok: Tok::Punct(punct_str(b)),
                        line,
                    });
                }
            }
        }
    }

    Lexed {
        tokens,
        comments,
        lines: c.line,
    }
}

/// Map a single punctuation byte to a static string.
fn punct_str(b: u8) -> &'static str {
    const TABLE: &[(u8, &str)] = &[
        (b'{', "{"),
        (b'}', "}"),
        (b'(', "("),
        (b')', ")"),
        (b'[', "["),
        (b']', "]"),
        (b';', ";"),
        (b',', ","),
        (b'.', "."),
        (b':', ":"),
        (b'=', "="),
        (b'<', "<"),
        (b'>', ">"),
        (b'&', "&"),
        (b'|', "|"),
        (b'+', "+"),
        (b'-', "-"),
        (b'*', "*"),
        (b'/', "/"),
        (b'%', "%"),
        (b'^', "^"),
        (b'!', "!"),
        (b'?', "?"),
        (b'#', "#"),
        (b'@', "@"),
        (b'$', "$"),
        (b'~', "~"),
        (b'\\', "\\"),
    ];
    TABLE
        .iter()
        .find(|(k, _)| *k == b)
        .map(|(_, s)| *s)
        .unwrap_or("?")
}

/// Nested block comment; text recorded per spanned line.
fn lex_block_comment(c: &mut Cursor<'_>, comments: &mut Vec<(usize, String)>) {
    c.bump(); // /
    c.bump(); // *
    let mut depth = 1usize;
    let mut line = c.line;
    let mut text = String::new();
    while depth > 0 {
        if c.starts_with("/*") {
            depth += 1;
            c.bump();
            c.bump();
            text.push_str("/*");
        } else if c.starts_with("*/") {
            depth -= 1;
            c.bump();
            c.bump();
        } else {
            match c.bump() {
                Some(b'\n') => {
                    comments.push((line, std::mem::take(&mut text)));
                    line = c.line;
                }
                Some(b) => text.push(b as char),
                None => break, // unterminated: runs to EOF
            }
        }
    }
    comments.push((line, text));
}

/// Body of a `"`-delimited string, opening quote already consumed.
/// Returns the cooked content (common escapes resolved).
fn lex_string_body(c: &mut Cursor<'_>) -> String {
    let mut out = String::new();
    while let Some(b) = c.bump() {
        match b {
            b'"' => break,
            b'\\' => match c.bump() {
                Some(b'n') => out.push('\n'),
                Some(b't') => out.push('\t'),
                Some(b'r') => out.push('\r'),
                Some(b'\\') => out.push('\\'),
                Some(b'"') => out.push('"'),
                Some(b'\n') => { /* line continuation */ }
                Some(other) => {
                    // \u{…}, \x.. and friends: keep raw, rules only care
                    // about plain-ASCII names and tags.
                    out.push('\\');
                    out.push(other as char);
                }
                None => break,
            },
            _ => out.push(b as char),
        }
    }
    out
}

/// After a `'`: a lifetime (`'a`) or a char literal (`'a'`, `'\n'`).
fn lex_char_or_lifetime(c: &mut Cursor<'_>) -> Tok {
    match c.peek() {
        Some(b'\\') => {
            // Escaped char literal: consume escape then closing quote.
            c.bump();
            c.bump();
            while c.peek().is_some_and(|b| b != b'\'') {
                c.bump();
            }
            c.bump();
            Tok::Char
        }
        Some(b) if is_ident_start(b) => {
            let start = c.pos;
            while c.peek().is_some_and(is_ident_continue) {
                c.bump();
            }
            if c.peek() == Some(b'\'') {
                c.bump();
                Tok::Char
            } else {
                Tok::Lifetime(String::from_utf8_lossy(&c.src[start..c.pos]).into_owned())
            }
        }
        _ => {
            // `'('`, `' '`, unterminated — consume one char + quote.
            c.bump();
            if c.peek() == Some(b'\'') {
                c.bump();
            }
            Tok::Char
        }
    }
}

/// `r"…"`, `r#"…"#`, `b"…"`, `br##"…"##`, `b'c'`, `r#ident`.
/// Returns `None` when the cursor is on a plain identifier.
fn lex_prefixed_literal(c: &mut Cursor<'_>) -> Option<Tok> {
    let b0 = c.peek()?;
    let b1 = c.peek_at(1);
    match (b0, b1) {
        // r"…" / r#…  (raw string or raw identifier)
        (b'r', Some(b'"')) => {
            c.bump();
            c.bump();
            Some(Tok::Str(raw_string_body(c, 0)))
        }
        (b'r', Some(b'#')) => {
            // Count hashes; a following quote means raw string, an
            // identifier char means raw identifier (`r#type`).
            let mut hashes = 0;
            while c.peek_at(1 + hashes) == Some(b'#') {
                hashes += 1;
            }
            if c.peek_at(1 + hashes) == Some(b'"') {
                for _ in 0..hashes + 2 {
                    c.bump();
                }
                Some(Tok::Str(raw_string_body(c, hashes)))
            } else if hashes == 1 {
                c.bump(); // r
                c.bump(); // #
                let start = c.pos;
                while c.peek().is_some_and(is_ident_continue) {
                    c.bump();
                }
                Some(Tok::Ident(
                    String::from_utf8_lossy(&c.src[start..c.pos]).into_owned(),
                ))
            } else {
                None
            }
        }
        // b"…" / b'c' / br"…" / br#"…"#
        (b'b', Some(b'"')) => {
            c.bump();
            c.bump();
            Some(Tok::Str(lex_string_body(c)))
        }
        (b'b', Some(b'\'')) => {
            c.bump();
            c.bump();
            Some(lex_char_or_lifetime(c))
        }
        (b'b', Some(b'r')) => {
            let mut hashes = 0;
            while c.peek_at(2 + hashes) == Some(b'#') {
                hashes += 1;
            }
            if c.peek_at(2 + hashes) == Some(b'"') {
                for _ in 0..hashes + 3 {
                    c.bump();
                }
                Some(Tok::Str(raw_string_body(c, hashes)))
            } else {
                None
            }
        }
        // c"…" (C strings, Rust 1.77+) — lex like a plain string.
        (b'c', Some(b'"')) => {
            c.bump();
            c.bump();
            Some(Tok::Str(lex_string_body(c)))
        }
        _ => None,
    }
}

/// Raw string body: runs until `"` followed by `hashes` `#`s. No
/// escapes — that is the point of raw strings.
fn raw_string_body(c: &mut Cursor<'_>, hashes: usize) -> String {
    let mut out = String::new();
    while let Some(b) = c.peek() {
        if b == b'"' {
            let mut ok = true;
            for i in 0..hashes {
                if c.peek_at(1 + i) != Some(b'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                for _ in 0..hashes + 1 {
                    c.bump();
                }
                return out;
            }
        }
        out.push(b as char);
        c.bump();
    }
    out
}

/// Numeric literal: integer/float with separators and suffixes. A `.`
/// is consumed only when followed by a digit (so `1.max(2)` and `0..n`
/// lex as number-then-punct).
fn lex_number(c: &mut Cursor<'_>) -> Tok {
    let start = c.pos;
    // 0x / 0o / 0b prefix
    if c.peek() == Some(b'0')
        && matches!(
            c.peek_at(1),
            Some(b'x') | Some(b'o') | Some(b'b') | Some(b'X')
        )
    {
        c.bump();
        c.bump();
    }
    loop {
        match c.peek() {
            Some(b) if b.is_ascii_alphanumeric() || b == b'_' => {
                c.bump();
            }
            Some(b'.') if c.peek_at(1).is_some_and(|d| d.is_ascii_digit()) => {
                c.bump();
            }
            _ => break,
        }
    }
    Tok::Num(String::from_utf8_lossy(&c.src[start..c.pos]).into_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.tok.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn block_comments_are_trivia() {
        let l = lex("let a = 1; /* Instant::now() */ let b = 2;\n");
        assert_eq!(idents("let a = 1; /* Instant::now() */ let b = 2;"), {
            vec!["let", "a", "let", "b"]
        });
        assert!(l.comment_on(1).contains("Instant::now"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ fn f() {}";
        assert_eq!(idents(src), vec!["fn", "f"]);
    }

    #[test]
    fn multiline_block_comment_tracks_lines() {
        let src = "/* a\n b lint:allow(x)\n c */\nfn f() {}\n";
        let l = lex(src);
        assert!(l.comment_on(2).contains("lint:allow(x)"));
        assert_eq!(l.tokens[0].line, 4);
    }

    #[test]
    fn raw_strings_are_strings_not_code() {
        let src = r####"let s = r#"Instant::now() "quoted" here"#; fn g() {}"####;
        assert_eq!(idents(src), vec!["let", "s", "fn", "g"]);
        let l = lex(src);
        let strs: Vec<_> = l
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Str(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, vec!["Instant::now() \"quoted\" here".to_string()]);
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        assert_eq!(idents(r##"let x = b"abc"; let y = br#"d"e"#;"##), {
            vec!["let", "x", "let", "y"]
        });
    }

    #[test]
    fn char_vs_lifetime() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Lifetime(_)))
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars = l
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Char))
            .count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn strings_hide_comment_markers() {
        let src = r#"let s = "// not a comment"; let t = 1;"#;
        assert_eq!(idents(src), vec!["let", "s", "let", "t"]);
        assert!(lex(src).comments.is_empty());
    }

    #[test]
    fn numbers_parse_with_separators_and_radix() {
        let l = lex("const A: u64 = 1_000; const B: u8 = 0x7B; const C: u32 = 48u32;");
        let nums: Vec<u64> = l.tokens.iter().filter_map(|t| t.tok.int_value()).collect();
        assert_eq!(nums, vec![1000, 0x7B, 48]);
    }

    #[test]
    fn shift_operators_join() {
        let l = lex("let t = (d << 48) | raw;");
        assert!(l.tokens.iter().any(|t| t.tok.is_punct("<<")));
    }

    #[test]
    fn line_numbers_are_accurate() {
        let l = lex("fn a() {}\nfn b() {}\nfn c() {}\n");
        let fns: Vec<usize> = l
            .tokens
            .iter()
            .filter(|t| t.tok.is_ident("fn"))
            .map(|t| t.line)
            .collect();
        assert_eq!(fns, vec![1, 2, 3]);
    }

    #[test]
    fn lexer_is_total_on_garbage() {
        // Unterminated literals must not panic or loop.
        for src in ["\"abc", "r#\"abc", "'x", "/* open", "b'"] {
            let _ = lex(src);
        }
    }
}
