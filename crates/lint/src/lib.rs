//! `convgpu_lint` — the workspace analyzer behind `convgpu-lint`.
//!
//! A pure-`std` static-analysis library: [`lexer`] turns Rust source
//! into a token stream (comments become trivia), [`items`] walks it
//! into function items with `impl` context and `#[cfg(test)]` regions,
//! and [`rules`] holds the nine analyses. [`run`] loads a workspace
//! root and returns every finding after `lint:allow` suppression.
//!
//! See `docs/LINT.md` for the rule catalogue and suppression grammar.
#![forbid(unsafe_code)]

pub mod items;
pub mod lexer;
pub mod rules;

use items::SourceFile;
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// The analyses. Names (`Rule::name`) are the stable identifiers used
/// by `--rules`, `lint:allow(…)`, and the fixture goldens.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// `Instant::now` / `SystemTime` inside simulation-path crates.
    WallClock,
    /// Unordered `HashMap` iteration in the scheduler.
    HashmapIter,
    /// `.lock().unwrap()` / `.expect(…)` instead of the sync wrappers.
    LockUnwrap,
    /// Every non-wrapper crate root carries `#![forbid(unsafe_code)]`.
    ForbidUnsafe,
    /// Lock-acquisition cycles and IPC writes under a held guard.
    LockOrder,
    /// `Message` enums vs. binary tags, JSON names, and PROTOCOL.md.
    ProtocolDrift,
    /// Device/node ticket tagging uses the canonical bit-48/56 shifts.
    TicketBits,
    /// Registered metric names match `docs/OBSERVABILITY.md` exactly.
    MetricNames,
    /// Raw socket construction outside `crates/ipc/src/transport.rs`.
    RawTransport,
}

impl Rule {
    /// All rules, in the order they run and report.
    pub const ALL: [Rule; 9] = [
        Rule::WallClock,
        Rule::HashmapIter,
        Rule::LockUnwrap,
        Rule::ForbidUnsafe,
        Rule::LockOrder,
        Rule::ProtocolDrift,
        Rule::TicketBits,
        Rule::MetricNames,
        Rule::RawTransport,
    ];

    /// Stable kebab-case identifier.
    pub fn name(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::HashmapIter => "hashmap-iter",
            Rule::LockUnwrap => "lock-unwrap",
            Rule::ForbidUnsafe => "forbid-unsafe",
            Rule::LockOrder => "lock-order",
            Rule::ProtocolDrift => "protocol-drift",
            Rule::TicketBits => "ticket-bits",
            Rule::MetricNames => "metric-names",
            Rule::RawTransport => "raw-transport",
        }
    }

    /// Reverse of [`Rule::name`].
    pub fn from_name(s: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == s)
    }

    /// One-line description for `--list-rules`.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::WallClock => "no Instant::now/SystemTime in simulation-path crates",
            Rule::HashmapIter => "no order-sensitive HashMap iteration in the scheduler",
            Rule::LockUnwrap => "no .lock().unwrap(); use convgpu_sim_core::sync wrappers",
            Rule::ForbidUnsafe => "crate roots carry #![forbid(unsafe_code)] (wrapper exempt)",
            Rule::LockOrder => "no lock cycles; no socket/Reply write while a guard is held",
            Rule::ProtocolDrift => "message enums, binary tags, JSON names, PROTOCOL.md agree",
            Rule::TicketBits => "ticket tags use the canonical bit-48/bit-56 shifts",
            Rule::MetricNames => "registered metric names match docs/OBSERVABILITY.md",
            Rule::RawTransport => {
                "no raw Unix/TCP socket construction outside crates/ipc/src/transport.rs"
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One reported violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (`/`-separated).
    pub file: String,
    /// 1-based line; 0 when the finding has no single anchor line.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A loaded workspace: every scanned `.rs` file (parsed) plus the
/// `docs/*.md` texts the cross-checking rules read.
pub struct Workspace {
    /// Absolute root the relative paths hang off.
    pub root: PathBuf,
    /// Parsed source files, sorted by relative path.
    pub files: Vec<SourceFile>,
    /// `docs/<name>.md` → contents.
    pub docs: BTreeMap<String, String>,
}

/// Top-level directories scanned for Rust sources.
const SCAN_ROOTS: [&str; 4] = ["crates", "src", "tests", "examples"];

/// Directory names never descended into. `fixtures` keeps the lint
/// corpus (which deliberately contains violations) out of real scans —
/// corpus runs point the root *at* a fixture, so its own `crates/` is
/// still reached.
const SKIP_DIRS: [&str; 2] = ["target", "fixtures"];

impl Workspace {
    /// Read and parse every scanned source under `root`.
    pub fn load(root: &Path) -> Result<Workspace, String> {
        let mut files = Vec::new();
        for top in SCAN_ROOTS {
            let dir = root.join(top);
            if dir.is_dir() {
                walk(root, &dir, &mut files)?;
            }
        }
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        let mut docs = BTreeMap::new();
        let docs_dir = root.join("docs");
        if docs_dir.is_dir() {
            for entry in read_dir_sorted(&docs_dir)? {
                if entry.extension().is_some_and(|e| e == "md") {
                    let rel = format!(
                        "docs/{}",
                        entry.file_name().unwrap_or_default().to_string_lossy()
                    );
                    let text = fs::read_to_string(&entry)
                        .map_err(|e| format!("read {}: {e}", entry.display()))?;
                    docs.insert(rel, text);
                }
            }
        }
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
            docs,
        })
    }

    /// The parsed file at `rel`, if it was scanned.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == Path::new(rel))
    }

    /// A doc's text by workspace-relative path.
    pub fn doc(&self, rel: &str) -> Option<&str> {
        self.docs.get(rel).map(String::as_str)
    }
}

/// `read_dir` with deterministic (sorted) order.
fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("read_dir {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    Ok(entries)
}

/// Recursively collect `.rs` files under `dir` into `files`.
fn walk(root: &Path, dir: &Path, files: &mut Vec<SourceFile>) -> Result<(), String> {
    for path in read_dir_sorted(dir)? {
        let name = path
            .file_name()
            .unwrap_or_default()
            .to_string_lossy()
            .into_owned();
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            walk(root, &path, files)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let src =
                fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("strip {}: {e}", path.display()))?
                .to_path_buf();
            files.push(SourceFile::parse(rel, &src));
        }
    }
    Ok(())
}

/// Load the workspace at `root` and run `rules` over it.
pub fn run(root: &Path, rules: &[Rule]) -> Result<Vec<Finding>, String> {
    let ws = Workspace::load(root)?;
    Ok(run_on(&ws, rules))
}

/// Run `rules` over an already-loaded workspace. Findings come back
/// suppression-filtered, deduplicated, and sorted by file/line/rule.
pub fn run_on(ws: &Workspace, rules: &[Rule]) -> Vec<Finding> {
    let mut out = Vec::new();
    for &rule in rules {
        out.extend(match rule {
            Rule::WallClock => rules::wall_clock::check(ws),
            Rule::HashmapIter => rules::hashmap_iter::check(ws),
            Rule::LockUnwrap => rules::lock_unwrap::check(ws),
            Rule::ForbidUnsafe => rules::forbid_unsafe::check(ws),
            Rule::LockOrder => rules::lock_order::check(ws),
            Rule::ProtocolDrift => rules::protocol_drift::check(ws),
            Rule::TicketBits => rules::ticket_bits::check(ws),
            Rule::MetricNames => rules::metric_names::check(ws),
            Rule::RawTransport => rules::raw_transport::check(ws),
        });
    }
    out.retain(|f| {
        ws.file(&f.file)
            .is_none_or(|sf| !sf.allowed(f.rule.name(), f.line))
    });
    out.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.name()).cmp(&(b.file.as_str(), b.line, b.rule.name()))
    });
    out.dedup();
    out
}

/// Shorthand used by every rule module.
pub(crate) fn finding(file: &Path, line: usize, rule: Rule, message: String) -> Finding {
    Finding {
        file: file.to_string_lossy().replace('\\', "/"),
        line,
        rule,
        message,
    }
}
