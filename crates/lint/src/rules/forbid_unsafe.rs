//! forbid-unsafe: every crate root must carry `#![forbid(unsafe_code)]`.
//! Only the wrapper crate — which models the `LD_PRELOAD` shim that by
//! its nature would interpose on a C ABI — is exempt.

use super::{ident, is_punct};
use crate::items::SourceFile;
use crate::{finding, Finding, Rule, Workspace};
use std::path::Path;

/// The crate allowed to omit the attribute.
const EXEMPT: &str = "wrapper";

pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in &ws.files {
        let name = match f.crate_name() {
            Some(c) if f.rel.ends_with(Path::new("src/lib.rs")) => c,
            Some(_) => continue,
            None if f.rel == Path::new("src/lib.rs") => "convgpu".to_string(),
            None => continue,
        };
        if name == EXEMPT {
            continue;
        }
        if !has_forbid_unsafe(f) {
            out.push(finding(
                &f.rel,
                1,
                Rule::ForbidUnsafe,
                format!(
                    "crate `{name}` is missing `#![forbid(unsafe_code)]` \
                     (only `{EXEMPT}` is exempt)"
                ),
            ));
        }
    }
    out
}

/// Token sequence `# ! [ forbid ( unsafe_code ) ]` anywhere in `f`.
fn has_forbid_unsafe(f: &SourceFile) -> bool {
    let toks = &f.lexed.tokens;
    (0..toks.len()).any(|i| {
        is_punct(toks, i, "#")
            && is_punct(toks, i + 1, "!")
            && is_punct(toks, i + 2, "[")
            && ident(toks, i + 3) == Some("forbid")
            && is_punct(toks, i + 4, "(")
            && ident(toks, i + 5) == Some("unsafe_code")
    })
}
