//! hashmap-iter: unordered `HashMap` iteration inside the scheduler
//! makes policy decisions nondeterministic. Iteration is fine when the
//! statement window shows the order is fixed (sorted, ordered min/max,
//! re-collected into a BTree) or irrelevant (order-insensitive fold).

use super::{ident, ident_in, is_punct};
use crate::lexer::Token;
use crate::{finding, Finding, Rule, Workspace};

/// Iteration methods whose order leaks out of a `HashMap`.
const MAP_ITER: [&str; 6] = ["iter", "iter_mut", "values", "values_mut", "keys", "drain"];

/// Idents that count as order evidence on their own.
const EVIDENCE_IDENTS: [&str; 6] = [
    "min_by_key",
    "max_by_key",
    "min_by",
    "max_by",
    "BTreeMap",
    "BTreeSet",
];

/// Method names after `.` that count as order evidence (`sort*`/`sum*`
/// are prefix matches; the rest exact).
const EVIDENCE_METHODS: [&str; 4] = ["count", "len", "all", "any"];

/// Lines of lookahead (inclusive of the hit line) searched for order
/// evidence — covers a multi-line chain or an immediate sort of the
/// collected Vec.
const WINDOW: usize = 7;

pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in &ws.files {
        if f.crate_name().as_deref() != Some("scheduler") {
            continue;
        }
        let toks = &f.lexed.tokens;
        let maps = hashmap_names(toks);
        for i in 0..toks.len() {
            // `name.iter()` where `name` was declared as a HashMap.
            let hit = ident(toks, i).is_some_and(|n| maps.iter().any(|m| m == n))
                && is_punct(toks, i + 1, ".")
                && ident_in(toks, i + 2, &MAP_ITER)
                && is_punct(toks, i + 3, "(")
                && is_punct(toks, i + 4, ")");
            if !hit {
                continue;
            }
            let line = toks[i].line;
            if has_order_evidence(toks, line) {
                continue;
            }
            out.push(finding(
                &f.rel,
                line,
                Rule::HashmapIter,
                "HashMap iteration in the scheduler without nearby ordering \
                 (sort / ordered min-max / BTree collection); unordered iteration \
                 makes policy decisions nondeterministic"
                    .to_string(),
            ));
        }
    }
    out
}

/// Names declared as `HashMap` in this file: `name: HashMap<…>` fields
/// and parameters, and `name = HashMap::new()` locals.
fn hashmap_names(toks: &[Token]) -> Vec<String> {
    let mut maps = Vec::new();
    for i in 0..toks.len() {
        if ident(toks, i) != Some("HashMap") {
            continue;
        }
        if i >= 2 && is_punct(toks, i - 1, ":") && is_punct(toks, i + 1, "<") {
            if let Some(name) = ident(toks, i - 2) {
                maps.push(name.to_string());
            }
        }
        if i >= 2
            && is_punct(toks, i - 1, "=")
            && is_punct(toks, i + 1, "::")
            && ident(toks, i + 2) == Some("new")
        {
            if let Some(name) = ident(toks, i - 2) {
                maps.push(name.to_string());
            }
        }
    }
    maps
}

/// Scan the statement window (`line ..= line + WINDOW - 1`) for order
/// evidence.
fn has_order_evidence(toks: &[Token], line: usize) -> bool {
    let last = line + WINDOW - 1;
    for (i, t) in toks.iter().enumerate() {
        if t.line < line {
            continue;
        }
        if t.line > last {
            break;
        }
        if let Some(name) = t.tok.ident() {
            if EVIDENCE_IDENTS.contains(&name) {
                return true;
            }
            let after_dot = i > 0 && toks[i - 1].tok.is_punct(".");
            if after_dot && (name.starts_with("sort") || name.starts_with("sum")) {
                return true;
            }
            if after_dot && EVIDENCE_METHODS.contains(&name) && is_punct(toks, i + 1, "(") {
                return true;
            }
        }
    }
    false
}
